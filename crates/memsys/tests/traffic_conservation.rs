//! Conservation properties of the traffic accounting: bytes that enter the
//! model are never double-counted or lost across the counters.

use memsys::{AccessKind, MemConfig, MemSystem, NodeId};
use simcore::{SimRng, Time};

/// Repeated CPU reads of the same cached data generate DRAM traffic at
/// most once (the fill); the LLC absorbs the rest.
#[test]
fn prop_rereads_are_free() {
    let mut r = SimRng::seed(0x7fa1);
    for _ in 0..64 {
        let len = 64 + r.below(16384 - 64);
        let reps = 2 + r.below(8) as usize;
        let mut m = MemSystem::new(MemConfig::dual_socket_broadwell());
        let buf = m.alloc(NodeId(0), 32768);
        m.cpu_read(Time::ZERO, NodeId(0), buf, len, AccessKind::Stream);
        let after_fill = m.counters().total_dram_bytes();
        for i in 0..reps {
            m.cpu_read(
                Time::from_us(i as u64 + 1),
                NodeId(0),
                buf,
                len,
                AccessKind::Stream,
            );
        }
        assert_eq!(m.counters().total_dram_bytes(), after_fill);
    }
}

/// Interconnect bytes for a remote DMA write are within one TLP-roundup
/// of the payload: nothing is silently amplified.
#[test]
fn prop_remote_write_interconnect_bounded() {
    let mut r = SimRng::seed(0x7fa2);
    for _ in 0..64 {
        let len = 1 + r.below(8999);
        let mut m = MemSystem::new(MemConfig::dual_socket_broadwell());
        let buf = m.alloc(NodeId(0), 16384);
        m.reset_counters();
        m.dma_write(Time::ZERO, NodeId(1), buf, len);
        let ic = m.counters().interconnect_bytes;
        assert!(ic >= len);
        assert!(ic <= len + 128, "ic={ic} len={len}");
    }
}

/// DDIO on/off flips exactly the DRAM-write behaviour of local device
/// writes and nothing else about the accounting.
#[test]
fn prop_ddio_toggle() {
    let mut r = SimRng::seed(0x7fa3);
    for _ in 0..64 {
        let len = 64 + r.below(4096 - 64);
        let mut on = MemSystem::new(MemConfig::dual_socket_broadwell());
        let b1 = on.alloc(NodeId(0), 8192);
        on.dma_write(Time::ZERO, NodeId(0), b1, len);
        assert_eq!(on.counters().dram_write_bytes(NodeId(0)), 0);

        let mut off = MemSystem::new(MemConfig::dual_socket_broadwell());
        off.set_ddio(false);
        let b2 = off.alloc(NodeId(0), 8192);
        off.dma_write(Time::ZERO, NodeId(0), b2, len);
        assert!(off.counters().dram_write_bytes(NodeId(0)) >= len);
        // Neither case crosses the interconnect: the device is local.
        assert_eq!(on.counters().interconnect_bytes, 0);
        assert_eq!(off.counters().interconnect_bytes, 0);
    }
}

/// Stalls are monotone in queue pressure: an access issued after a big
/// bandwidth reservation takes at least as long as one issued cold.
#[test]
fn prop_stall_monotone_under_pressure() {
    let mut r = SimRng::seed(0x7fa4);
    for _ in 0..64 {
        let len = 64 + r.below(4096 - 64);
        let mut quiet = MemSystem::new(MemConfig::dual_socket_broadwell());
        let b1 = quiet.alloc(NodeId(1), 8192);
        let s_quiet = quiet.cpu_read(Time::ZERO, NodeId(0), b1, len, AccessKind::Pointer);

        let mut busy = MemSystem::new(MemConfig::dual_socket_broadwell());
        let b2 = busy.alloc(NodeId(1), 8192);
        // 1 ms of cross-socket pressure in the same direction first.
        busy.cpu_stream_through(Time::ZERO, NodeId(0), NodeId(1), 28_800_000, false);
        let s_busy = busy.cpu_read(Time::ZERO, NodeId(0), b2, len, AccessKind::Pointer);
        assert!(s_busy >= s_quiet, "busy {s_busy} vs quiet {s_quiet}");
    }
}
