//! Property tests of the memory system's coherence invariants: the model's
//! correctness backbone. A line is Modified in at most one LLC; device and
//! CPU views never diverge; traffic accounting is conservative.

use memsys::cache::LineState;
use memsys::{AccessKind, MemConfig, MemSystem, NodeId, PhysAddr};
use simcore::{SimRng, Time};

/// The agents a random schedule can exercise.
#[derive(Debug, Clone, Copy)]
enum Op {
    CpuRead { node: usize, line: u64 },
    CpuWrite { node: usize, line: u64 },
    DmaRead { dev: usize, line: u64 },
    DmaWrite { dev: usize, line: u64 },
}

fn random_op(r: &mut SimRng) -> Op {
    let node = r.below(2) as usize;
    let line = r.below(64);
    match r.below(4) {
        0 => Op::CpuRead { node, line },
        1 => Op::CpuWrite { node, line },
        2 => Op::DmaRead { dev: node, line },
        _ => Op::DmaWrite { dev: node, line },
    }
}

fn apply(mem: &mut MemSystem, base: PhysAddr, t: Time, op: Op) {
    let a = base.offset(match op {
        Op::CpuRead { line, .. }
        | Op::CpuWrite { line, .. }
        | Op::DmaRead { line, .. }
        | Op::DmaWrite { line, .. } => line * 64,
    });
    match op {
        Op::CpuRead { node, .. } => {
            mem.cpu_read(t, NodeId(node), a, 64, AccessKind::Pointer);
        }
        Op::CpuWrite { node, .. } => {
            mem.cpu_write(t, NodeId(node), a, 64, AccessKind::Pointer);
        }
        Op::DmaRead { dev, .. } => {
            mem.dma_read(t, NodeId(dev), a, 64);
        }
        Op::DmaWrite { dev, .. } => {
            mem.dma_write(t, NodeId(dev), a, 64);
        }
    }
}

/// Single-writer invariant: after any schedule, no line is Modified in
/// more than one socket's LLC.
#[test]
fn prop_single_modified_owner() {
    let mut r = SimRng::seed(0xc0e1);
    for _ in 0..64 {
        let n_ops = 1 + r.below(199) as usize;
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut r)).collect();
        let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let base = mem.alloc(NodeId(0), 64 * 64);
        for (i, op) in ops.iter().enumerate() {
            apply(&mut mem, base, Time::from_us(i as u64), *op);
        }
        for line in 0..64u64 {
            let a = base.offset(line * 64);
            let modified_owners = (0..2)
                .filter(|n| mem.peek_line(NodeId(*n), a) == Some(LineState::Modified))
                .count();
            assert!(
                modified_owners <= 1,
                "line {line} dirty in {modified_owners} LLCs"
            );
        }
    }
}

/// Accounting conservation: interconnect traffic only appears when an
/// access actually crossed sockets.
#[test]
fn prop_local_only_schedules_never_cross() {
    let mut r = SimRng::seed(0xc0e2);
    for _ in 0..64 {
        let n_ops = 1 + r.below(99) as usize;
        let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let base = mem.alloc(NodeId(0), 64 * 64);
        mem.reset_counters();
        for i in 0..n_ops {
            let line = r.below(64);
            let write = r.chance(0.5);
            let a = base.offset(line * 64);
            if write {
                mem.cpu_write(
                    Time::from_us(i as u64),
                    NodeId(0),
                    a,
                    64,
                    AccessKind::Pointer,
                );
            } else {
                mem.cpu_read(
                    Time::from_us(i as u64),
                    NodeId(0),
                    a,
                    64,
                    AccessKind::Pointer,
                );
            }
        }
        assert_eq!(mem.counters().interconnect_bytes, 0);
        assert_eq!(mem.counters().dram_read_bytes(NodeId(1)), 0);
    }
}

/// A CPU read after any DMA write must stall at least as long as an
/// LLC hit — never returns negative/zero-cost garbage — and monotone
/// stalls: remote writes make the subsequent read at least as slow as
/// after a local (DDIO) write.
#[test]
fn prop_remote_write_never_cheaper_to_read_back() {
    for line in 0..64u64 {
        let mut local = MemSystem::new(MemConfig::dual_socket_broadwell());
        let b1 = local.alloc(NodeId(0), 64 * 64);
        local.dma_write(Time::ZERO, NodeId(0), b1.offset(line * 64), 64);
        let s_local = local.cpu_read(
            Time::ZERO,
            NodeId(0),
            b1.offset(line * 64),
            64,
            AccessKind::Pointer,
        );

        let mut remote = MemSystem::new(MemConfig::dual_socket_broadwell());
        let b2 = remote.alloc(NodeId(0), 64 * 64);
        remote.dma_write(Time::ZERO, NodeId(1), b2.offset(line * 64), 64);
        let s_remote = remote.cpu_read(
            Time::ZERO,
            NodeId(0),
            b2.offset(line * 64),
            64,
            AccessKind::Pointer,
        );

        assert!(s_remote >= s_local, "remote {s_remote} vs local {s_local}");
    }
}
