//! Per-node DRAM channel groups.
//!
//! Each NUMA node owns one [`DramGroup`]: a bandwidth server representing the
//! node's aggregated memory channels, plus separate read/write byte counters
//! (the figures plot "memory bandwidth", which is the sum of both).

use simcore::{BwLink, Dur, Time};

/// Aggregated DRAM channels of one node.
///
/// Reads and writes are served by separate bandwidth servers: memory
/// controllers buffer writes and give reads priority, so a read does not
/// FIFO behind a posted-write burst (it only queues behind other reads).
#[derive(Debug, Clone)]
pub struct DramGroup {
    read_link: BwLink,
    write_link: BwLink,
    read_bytes: u64,
    write_bytes: u64,
}

/// DRAM timing/bandwidth parameters for one node.
#[derive(Debug, Clone, Copy)]
pub struct DramConfig {
    /// Aggregate channel bandwidth in bytes/second.
    pub bytes_per_sec: u64,
    /// Loaded-idle access latency (row activation + transfer start).
    pub latency: Dur,
}

impl DramConfig {
    /// 4× DDR4-2400 channels ≈ 76.8 GB/s, ~85 ns idle latency — the paper's
    /// Broadwell nodes (4×16 GB DIMMs per socket).
    pub fn ddr4_broadwell() -> Self {
        DramConfig {
            bytes_per_sec: 76_800_000_000,
            latency: Dur::from_ns(85),
        }
    }

    /// 6× DDR4-2666 channels ≈ 128 GB/s — the paper's Skylake NVMe testbed
    /// (6×8 GB DIMMs per socket).
    pub fn ddr4_skylake() -> Self {
        DramConfig {
            bytes_per_sec: 128_000_000_000,
            latency: Dur::from_ns(90),
        }
    }
}

impl DramGroup {
    /// Creates the channel group for one node.
    pub fn new(node: usize, cfg: DramConfig) -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static INSTANCE: AtomicUsize = AtomicUsize::new(0);
        let inst = INSTANCE.fetch_add(1, Ordering::Relaxed);
        DramGroup {
            read_link: BwLink::new(
                format!("dram{node}-rd#{inst}"),
                cfg.bytes_per_sec,
                cfg.latency,
            ),
            write_link: BwLink::new(
                format!("dram{node}-wr#{inst}"),
                cfg.bytes_per_sec,
                cfg.latency,
            ),
            read_bytes: 0,
            write_bytes: 0,
        }
    }

    /// Reserves a read of `bytes`; returns the completion time.
    pub fn read(&mut self, now: Time, bytes: u64) -> Time {
        self.read_bytes += bytes;
        self.read_link.reserve(now, bytes)
    }

    /// Reserves a write of `bytes`; returns the completion time.
    pub fn write(&mut self, now: Time, bytes: u64) -> Time {
        self.write_bytes += bytes;
        self.write_link.reserve(now, bytes)
    }

    /// [`read`](Self::read) on an idle read link with the serialization time
    /// already known (memoized fast path; see `BwLink::reserve_precomputed`).
    pub(crate) fn read_precomputed(&mut self, now: Time, bytes: u64, xfer: Dur) -> Time {
        self.read_bytes += bytes;
        self.read_link.reserve_precomputed(now, bytes, xfer)
    }

    /// [`write`](Self::write) on an idle write link with the serialization
    /// time already known (memoized fast path).
    pub(crate) fn write_precomputed(&mut self, now: Time, bytes: u64, xfer: Dur) -> Time {
        self.write_bytes += bytes;
        self.write_link.reserve_precomputed(now, bytes, xfer)
    }

    /// Bytes read since the last counter reset.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Bytes written since the last counter reset.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes
    }

    /// Total traffic (read + write) since the last reset.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// The queueing delay a request arriving now would suffer (used to detect
    /// saturation in tests).
    pub fn queue_delay(&self, now: Time) -> Dur {
        self.read_link
            .queue_delay(now)
            .max(self.write_link.queue_delay(now))
    }

    /// Queueing delay on the read link alone (memo idleness gate).
    pub(crate) fn read_queue_delay(&self, now: Time) -> Dur {
        self.read_link.queue_delay(now)
    }

    /// Queueing delay on the write link alone (memo idleness gate).
    pub(crate) fn write_queue_delay(&self, now: Time) -> Dur {
        self.write_link.queue_delay(now)
    }

    /// Resets the byte counters (measurement-window start). In-flight
    /// occupancy is preserved.
    pub fn reset_counters(&mut self) {
        self.read_bytes = 0;
        self.write_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_accounting() {
        let mut d = DramGroup::new(0, DramConfig::ddr4_broadwell());
        d.read(Time::ZERO, 1000);
        d.write(Time::ZERO, 500);
        assert_eq!(d.read_bytes(), 1000);
        assert_eq!(d.write_bytes(), 500);
        assert_eq!(d.total_bytes(), 1500);
        d.reset_counters();
        assert_eq!(d.total_bytes(), 0);
    }

    #[test]
    fn latency_applied() {
        let mut d = DramGroup::new(0, DramConfig::ddr4_broadwell());
        let done = d.read(Time::ZERO, 64);
        // 64 B at 76.8 GB/s is under 1 ns; latency dominates.
        assert!(done >= Time::from_ns(85), "done = {done}");
        assert!(done < Time::from_ns(90));
    }

    #[test]
    fn write_burst_does_not_stall_reads() {
        let mut d = DramGroup::new(0, DramConfig::ddr4_broadwell());
        // 76.8 MB of posted writes (1 ms of write occupancy)...
        d.write(Time::ZERO, 76_800_000);
        assert!(d.queue_delay(Time::ZERO) >= Dur::from_us(999));
        // ...but a read is served at read-priority latency.
        let done = d.read(Time::ZERO, 64);
        assert!(done < Time::from_us(1), "reads bypass buffered writes");
    }

    #[test]
    fn reads_congest_reads() {
        let mut d = DramGroup::new(0, DramConfig::ddr4_broadwell());
        d.read(Time::ZERO, 76_800_000);
        let done = d.read(Time::ZERO, 64);
        assert!(done >= Time::from_ms(1), "queued behind the big read");
    }
}
