//! The CPU interconnect (QPI/UPI) as per-direction bandwidth servers.
//!
//! The paper's Broadwell testbed connects its two sockets with two 9.6 GT/s
//! QPI links; the Skylake NVMe testbed uses two 10.4 GT/s UPI links. Each
//! *direction* of the aggregate is an independent [`BwLink`], because QPI is
//! full-duplex: Figure 11's STREAM antagonists saturate one direction while
//! the other still carries acknowledgements.

use simcore::{BwLink, Dur, Time};

use crate::topology::NodeId;

/// Interconnect parameters.
#[derive(Debug, Clone, Copy)]
pub struct InterconnectConfig {
    /// Aggregate one-direction bandwidth between a node pair, bytes/second.
    pub bytes_per_sec: u64,
    /// One-hop latency added to every crossing.
    pub latency: Dur,
}

impl InterconnectConfig {
    /// Two 9.6 GT/s QPI links: 2 × 19.2 GB/s raw per direction (Broadwell
    /// testbed, §5 "connected via two 9.6 GT/s QPI links"), derated to ~75%
    /// for coherence-protocol overhead (snoops, headers, credits) — the
    /// *data* bandwidth software actually observes.
    pub fn qpi_broadwell_2links() -> Self {
        InterconnectConfig {
            bytes_per_sec: 28_800_000_000,
            latency: Dur::from_ns(55),
        }
    }

    /// Two 10.4 GT/s UPI links: 2 × 20.8 GB/s raw per direction (Skylake
    /// NVMe testbed, §5.4), derated to ~75% effective data bandwidth.
    pub fn upi_skylake_2links() -> Self {
        InterconnectConfig {
            bytes_per_sec: 31_200_000_000,
            latency: Dur::from_ns(50),
        }
    }
}

/// All interconnect directions of the machine.
///
/// Fully connected: every ordered node pair gets its own direction server
/// (trivially two for a dual-socket machine). Directions are stored densely
/// — indexed by `from * nodes + to` — so the per-transfer lookup on the DMA
/// hot path is an array index, not a hash.
#[derive(Debug, Clone)]
pub struct Interconnect {
    cfg: InterconnectConfig,
    nodes: usize,
    /// `dirs[from * nodes + to]`; `None` on the diagonal (from == to).
    dirs: Vec<Option<BwLink>>,
}

impl Interconnect {
    /// Builds the interconnect for `nodes` fully connected sockets.
    pub fn new(nodes: usize, cfg: InterconnectConfig) -> Self {
        let mut dirs = Vec::with_capacity(nodes * nodes);
        for a in 0..nodes {
            for b in 0..nodes {
                dirs.push(
                    (a != b).then(|| {
                        BwLink::new(format!("qpi{a}->{b}"), cfg.bytes_per_sec, cfg.latency)
                    }),
                );
            }
        }
        Interconnect { cfg, nodes, dirs }
    }

    /// The one-hop crossing latency.
    pub fn hop_latency(&self) -> Dur {
        self.cfg.latency
    }

    /// Reserves a `bytes` transfer from `from` to `to`; returns completion.
    ///
    /// Same-node "transfers" complete immediately at `now` — there is no hop.
    pub fn transfer(&mut self, now: Time, from: NodeId, to: NodeId, bytes: u64) -> Time {
        if from == to {
            return now;
        }
        self.dir_mut(from, to).reserve(now, bytes)
    }

    /// [`transfer`](Self::transfer) on an idle direction with the
    /// serialization time already known (memoized fast path; see
    /// `BwLink::reserve_precomputed`). Must not be called with `from == to`.
    pub(crate) fn transfer_precomputed(
        &mut self,
        now: Time,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        xfer: Dur,
    ) -> Time {
        self.dir_mut(from, to).reserve_precomputed(now, bytes, xfer)
    }

    /// The current queueing delay in the `from → to` direction.
    pub fn queue_delay(&self, now: Time, from: NodeId, to: NodeId) -> Dur {
        if from == to {
            return Dur::ZERO;
        }
        self.dir(from, to).queue_delay(now)
    }

    /// Bytes moved in the `from → to` direction since the last reset.
    pub fn bytes(&self, from: NodeId, to: NodeId) -> u64 {
        if from == to {
            return 0;
        }
        self.dir(from, to).total_bytes()
    }

    /// Total bytes across every direction since the last reset.
    pub fn total_bytes(&self) -> u64 {
        self.dirs.iter().flatten().map(BwLink::total_bytes).sum()
    }

    /// Resets all traffic meters.
    pub fn reset_counters(&mut self) {
        for l in self.dirs.iter_mut().flatten() {
            l.reset_meter();
        }
    }

    fn dir(&self, from: NodeId, to: NodeId) -> &BwLink {
        self.dirs
            .get(from.0 * self.nodes + to.0)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("no interconnect direction {from}->{to}"))
    }

    fn dir_mut(&mut self, from: NodeId, to: NodeId) -> &mut BwLink {
        self.dirs
            .get_mut(from.0 * self.nodes + to.0)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("no interconnect direction {from}->{to}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qpi() -> Interconnect {
        Interconnect::new(2, InterconnectConfig::qpi_broadwell_2links())
    }

    #[test]
    fn same_node_is_free() {
        let mut ic = qpi();
        let done = ic.transfer(Time::from_ns(7), NodeId(0), NodeId(0), 1 << 20);
        assert_eq!(done, Time::from_ns(7));
        assert_eq!(ic.total_bytes(), 0);
    }

    #[test]
    fn crossing_pays_latency() {
        let mut ic = qpi();
        let done = ic.transfer(Time::ZERO, NodeId(0), NodeId(1), 64);
        assert!(done >= Time::from_ns(55));
        assert!(done < Time::from_ns(60));
    }

    #[test]
    fn directions_are_independent() {
        let mut ic = qpi();
        // Saturate 0->1 with ~1 ms of traffic.
        ic.transfer(Time::ZERO, NodeId(0), NodeId(1), 38_400_000);
        assert!(ic.queue_delay(Time::ZERO, NodeId(0), NodeId(1)) > Dur::from_us(900));
        // The reverse direction is unaffected.
        assert_eq!(ic.queue_delay(Time::ZERO, NodeId(1), NodeId(0)), Dur::ZERO);
    }

    #[test]
    fn congestion_delays_later_transfers() {
        let mut ic = qpi();
        ic.transfer(Time::ZERO, NodeId(0), NodeId(1), 38_400_000); // 1 ms backlog
        let done = ic.transfer(Time::ZERO, NodeId(0), NodeId(1), 64);
        assert!(done >= Time::from_ms(1));
    }

    #[test]
    fn byte_accounting_per_direction() {
        let mut ic = qpi();
        ic.transfer(Time::ZERO, NodeId(0), NodeId(1), 100);
        ic.transfer(Time::ZERO, NodeId(1), NodeId(0), 40);
        assert_eq!(ic.bytes(NodeId(0), NodeId(1)), 100);
        assert_eq!(ic.bytes(NodeId(1), NodeId(0)), 40);
        assert_eq!(ic.total_bytes(), 140);
        ic.reset_counters();
        assert_eq!(ic.total_bytes(), 0);
    }
}
