//! A per-socket last-level cache with a DDIO way partition.
//!
//! The model is set-associative over *touched* sets only (sparse storage), in
//! MESI-lite: a line is either `Shared` (clean, possibly in several LLCs) or
//! `Modified` (dirty, in exactly one LLC — the [`system`](crate::system)
//! façade enforces that invariant by invalidating other caches).
//!
//! Intel DDIO allocates device writes into a restricted subset of the LLC
//! ways (2 of 20 on the paper's Broadwell parts). Lines allocated on behalf
//! of a device carry the `ddio` flag and compete only for those ways, so
//! device traffic cannot sweep the whole cache — exactly the behaviour that
//! keeps NIC rings hot without destroying application working sets.

use simcore::FxHashMap;

use crate::topology::{PhysAddr, LINE_BYTES};

/// Coherence state of a cached line (MESI-lite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Clean; may be present in several LLCs.
    Shared,
    /// Dirty; present in exactly one LLC.
    Modified,
}

#[derive(Debug, Clone)]
struct Way {
    tag: u64,
    state: LineState,
    ddio: bool,
    last_use: u64,
}

/// LLC geometry and sizing.
#[derive(Debug, Clone, Copy)]
pub struct LlcConfig {
    /// Total capacity in bytes (e.g. 35 MiB for a 14-core Broadwell).
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Ways device (DDIO) writes may allocate into.
    pub ddio_ways: usize,
}

impl LlcConfig {
    /// The paper's server CPU: 35 MiB, 20-way, 2 DDIO ways.
    pub fn broadwell_14c() -> Self {
        LlcConfig {
            capacity_bytes: 35 * 1024 * 1024,
            ways: 20,
            ddio_ways: 2,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / LINE_BYTES / self.ways as u64
    }
}

/// Result of inserting a line: what, if anything, was evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evicted {
    /// No eviction was necessary.
    None,
    /// A clean line was dropped.
    Clean,
    /// A dirty line was evicted and must be written back to the home of the
    /// returned line address (`line * 64` is its byte address).
    Dirty(u64),
}

/// A single socket's last-level cache.
#[derive(Debug, Clone)]
pub struct Llc {
    cfg: LlcConfig,
    sets: FxHashMap<u64, Vec<Way>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Llc {
    /// Creates an empty LLC with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero ways, DDIO ways exceeding
    /// total ways, or zero sets).
    pub fn new(cfg: LlcConfig) -> Self {
        assert!(cfg.ways > 0, "cache must have at least one way");
        assert!(cfg.ddio_ways <= cfg.ways, "DDIO ways cannot exceed total");
        assert!(cfg.sets() > 0, "cache must have at least one set");
        Llc {
            cfg,
            sets: FxHashMap::default(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> LlcConfig {
        self.cfg
    }

    fn set_index(&self, line: u64) -> u64 {
        line % self.cfg.sets()
    }

    /// Looks up the line containing `addr`; returns its state on hit.
    /// Updates recency and hit/miss statistics.
    pub fn probe(&mut self, addr: PhysAddr) -> Option<LineState> {
        let line = addr.line();
        let set = self.set_index(line);
        self.tick += 1;
        let tick = self.tick;
        if let Some(ways) = self.sets.get_mut(&set) {
            if let Some(w) = ways.iter_mut().find(|w| w.tag == line) {
                w.last_use = tick;
                self.hits += 1;
                return Some(w.state);
            }
        }
        self.misses += 1;
        None
    }

    /// Looks up without disturbing recency or statistics (snoop from another
    /// agent).
    pub fn peek(&self, addr: PhysAddr) -> Option<LineState> {
        let line = addr.line();
        let set = self.set_index(line);
        self.sets
            .get(&set)
            .and_then(|ways| ways.iter().find(|w| w.tag == line))
            .map(|w| w.state)
    }

    /// Inserts (or upgrades) the line containing `addr`.
    ///
    /// `ddio` restricts replacement to the DDIO way-partition, mirroring how
    /// device writes cannot occupy the whole cache. Returns eviction
    /// information so the caller can account the writeback.
    pub fn insert(&mut self, addr: PhysAddr, state: LineState, ddio: bool) -> Evicted {
        let line = addr.line();
        let set = self.set_index(line);
        self.tick += 1;
        let tick = self.tick;
        let cfg = self.cfg;
        let ways = self
            .sets
            .entry(set)
            .or_insert_with(|| Vec::with_capacity(cfg.ways));

        if let Some(w) = ways.iter_mut().find(|w| w.tag == line) {
            w.last_use = tick;
            w.ddio = ddio;
            // Upgrades stick; a Modified line never silently becomes Shared.
            if state == LineState::Modified {
                w.state = LineState::Modified;
            }
            return Evicted::None;
        }

        let (limit, partition_len) = if ddio {
            (cfg.ddio_ways, ways.iter().filter(|w| w.ddio).count())
        } else {
            // Non-DDIO fills may use every way.
            (cfg.ways, ways.len())
        };

        let evicted = if partition_len >= limit || ways.len() >= cfg.ways {
            // Evict the LRU line of the relevant partition (or of the whole
            // set if the set itself is full).
            let victim_idx = ways
                .iter()
                .enumerate()
                .filter(|(_, w)| {
                    if partition_len >= limit && ddio {
                        w.ddio
                    } else {
                        true
                    }
                })
                .min_by_key(|(_, w)| w.last_use)
                .map(|(i, _)| i)
                .expect("partition is non-empty when full");
            let victim = ways.swap_remove(victim_idx);
            match victim.state {
                LineState::Modified => Evicted::Dirty(victim.tag),
                LineState::Shared => Evicted::Clean,
            }
        } else {
            Evicted::None
        };

        ways.push(Way {
            tag: line,
            state,
            ddio,
            last_use: tick,
        });
        evicted
    }

    /// Removes the line containing `addr` if present, returning its state.
    /// The caller decides whether a `Modified` line's contents matter (a full
    /// DMA overwrite drops them; an eviction writes them back).
    pub fn invalidate(&mut self, addr: PhysAddr) -> Option<LineState> {
        let line = addr.line();
        let set = self.set_index(line);
        let ways = self.sets.get_mut(&set)?;
        let idx = ways.iter().position(|w| w.tag == line)?;
        Some(ways.swap_remove(idx).state)
    }

    /// Downgrades a `Modified` line to `Shared` (after a snoop writeback).
    /// Returns `true` if the line was present.
    pub fn downgrade(&mut self, addr: PhysAddr) -> bool {
        let line = addr.line();
        let set = self.set_index(line);
        if let Some(ways) = self.sets.get_mut(&set) {
            if let Some(w) = ways.iter_mut().find(|w| w.tag == line) {
                w.state = LineState::Shared;
                return true;
            }
        }
        false
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of resident lines (for tests and diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.sets.values().map(Vec::len).sum()
    }

    /// Drops every line, as after `wbinvd`. Dirty data is discarded; tests
    /// use this to construct cold-cache scenarios.
    pub fn flush_all(&mut self) {
        self.sets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    fn tiny() -> Llc {
        // 4 sets x 4 ways x 64 B = 1 KiB, 2 DDIO ways.
        Llc::new(LlcConfig {
            capacity_bytes: 1024,
            ways: 4,
            ddio_ways: 2,
        })
    }

    fn addr_for_set(set: u64, tag_round: u64) -> PhysAddr {
        // 4 sets in `tiny`; line = set + 4 * tag_round.
        PhysAddr((set + 4 * tag_round) * LINE_BYTES)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let a = PhysAddr(0);
        assert_eq!(c.probe(a), None);
        c.insert(a, LineState::Shared, false);
        assert_eq!(c.probe(a), Some(LineState::Shared));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_in_full_set() {
        let mut c = tiny();
        for round in 0..4 {
            assert_eq!(
                c.insert(addr_for_set(0, round), LineState::Shared, false),
                Evicted::None
            );
        }
        // Touch rounds 1..4 so round 0 is LRU.
        for round in 1..4 {
            c.probe(addr_for_set(0, round));
        }
        assert_eq!(
            c.insert(addr_for_set(0, 9), LineState::Shared, false),
            Evicted::Clean
        );
        assert_eq!(c.peek(addr_for_set(0, 0)), None, "LRU line evicted");
        assert!(c.peek(addr_for_set(0, 1)).is_some());
    }

    #[test]
    fn dirty_eviction_reports_victim() {
        let mut c = tiny();
        for round in 0..4 {
            c.insert(addr_for_set(1, round), LineState::Modified, false);
        }
        match c.insert(addr_for_set(1, 7), LineState::Shared, false) {
            Evicted::Dirty(line) => assert_eq!(line, addr_for_set(1, 0).line()),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn ddio_confined_to_partition() {
        let mut c = tiny();
        // Fill the DDIO partition (2 ways) of set 2.
        c.insert(addr_for_set(2, 0), LineState::Modified, true);
        c.insert(addr_for_set(2, 1), LineState::Modified, true);
        // A third DDIO insert must evict a DDIO line even though the set
        // still has free ways.
        let ev = c.insert(addr_for_set(2, 2), LineState::Modified, true);
        assert!(matches!(ev, Evicted::Dirty(_)), "got {ev:?}");
        assert_eq!(c.resident_lines(), 2);
        // Non-DDIO fills can still use the remaining ways.
        assert_eq!(
            c.insert(addr_for_set(2, 3), LineState::Shared, false),
            Evicted::None
        );
        assert_eq!(
            c.insert(addr_for_set(2, 4), LineState::Shared, false),
            Evicted::None
        );
    }

    #[test]
    fn upgrade_sticks() {
        let mut c = tiny();
        let a = PhysAddr(0);
        c.insert(a, LineState::Shared, false);
        c.insert(a, LineState::Modified, false);
        assert_eq!(c.peek(a), Some(LineState::Modified));
        // Re-inserting as Shared must not lose the dirty bit.
        c.insert(a, LineState::Shared, false);
        assert_eq!(c.peek(a), Some(LineState::Modified));
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = tiny();
        let a = PhysAddr(128);
        c.insert(a, LineState::Modified, false);
        assert!(c.downgrade(a));
        assert_eq!(c.peek(a), Some(LineState::Shared));
        assert_eq!(c.invalidate(a), Some(LineState::Shared));
        assert_eq!(c.invalidate(a), None);
        assert!(!c.downgrade(a));
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = tiny();
        c.insert(PhysAddr(0), LineState::Shared, false);
        let h = c.hits();
        c.peek(PhysAddr(0));
        assert_eq!(c.hits(), h);
    }

    #[test]
    fn flush_all_empties() {
        let mut c = tiny();
        c.insert(PhysAddr(0), LineState::Modified, false);
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.peek(PhysAddr(0)), None);
    }

    #[test]
    fn broadwell_geometry() {
        let cfg = LlcConfig::broadwell_14c();
        assert_eq!(cfg.sets(), 35 * 1024 * 1024 / 64 / 20);
        let _ = Llc::new(cfg);
    }

    #[test]
    #[should_panic(expected = "DDIO ways cannot exceed")]
    fn bad_ddio_ways() {
        Llc::new(LlcConfig {
            capacity_bytes: 1024,
            ways: 2,
            ddio_ways: 3,
        });
    }

    #[test]
    fn prop_occupancy_never_exceeds_ways() {
        let mut r = SimRng::seed(0xcac4e);
        for _ in 0..16 {
            let ops = 1 + r.below(299) as usize;
            let mut c = tiny();
            for _ in 0..ops {
                let line = r.below(64);
                let ddio = r.chance(0.5);
                c.insert(PhysAddr(line * LINE_BYTES), LineState::Shared, ddio);
            }
            // No set may exceed associativity; checked via total residency per set.
            for set in 0..4u64 {
                let count = (0..64u64)
                    .filter(|l| l % 4 == set)
                    .filter(|l| c.peek(PhysAddr(l * LINE_BYTES)).is_some())
                    .count();
                assert!(count <= 4, "set {} holds {}", set, count);
            }
        }
    }

    #[test]
    fn prop_probe_after_insert_hits() {
        let mut r = SimRng::seed(0xcac4f);
        for _ in 0..8 {
            let n = 1 + r.below(49) as usize;
            let lines: Vec<u64> = (0..n).map(|_| r.below(1_000_000)).collect();
            let mut c = Llc::new(LlcConfig::broadwell_14c());
            for &l in &lines {
                c.insert(PhysAddr(l * LINE_BYTES), LineState::Shared, false);
            }
            // With a 28k-set cache and <50 distinct lines, nothing can have
            // been evicted: every line must still be resident.
            for &l in &lines {
                assert!(c.peek(PhysAddr(l * LINE_BYTES)).is_some());
            }
        }
    }
}
