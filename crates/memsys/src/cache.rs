//! A per-socket last-level cache with a DDIO way partition.
//!
//! The model is set-associative with dense, directly indexed sets (a flat
//! zero-initialized slab of way slots, `ways` consecutive slots per set, so
//! first-touching a set never allocates), in MESI-lite: a line is either
//! `Shared` (clean, possibly in several LLCs) or
//! `Modified` (dirty, in exactly one LLC — the [`system`](crate::system)
//! façade enforces that invariant by invalidating other caches).
//!
//! Intel DDIO allocates device writes into a restricted subset of the LLC
//! ways (2 of 20 on the paper's Broadwell parts). Lines allocated on behalf
//! of a device carry the `ddio` flag and compete only for those ways, so
//! device traffic cannot sweep the whole cache — exactly the behaviour that
//! keeps NIC rings hot without destroying application working sets.

use crate::topology::{PhysAddr, LINE_BYTES};

/// Coherence state of a cached line (MESI-lite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Clean; may be present in several LLCs.
    Shared,
    /// Dirty; present in exactly one LLC.
    Modified,
}

/// Per-slot metadata bits (see [`Llc::meta`]). Validity is positional —
/// a slot is resident iff it lies below its set's occupancy count — so the
/// metadata only needs state flags and the recency tick.
const DIRTY: u64 = 1;
const DDIO: u64 = 1 << 1;
/// Bits above the flags hold the slot's last-use tick.
const TICK_SHIFT: u64 = 2;

/// LLC geometry and sizing.
#[derive(Debug, Clone, Copy)]
pub struct LlcConfig {
    /// Total capacity in bytes (e.g. 35 MiB for a 14-core Broadwell).
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Ways device (DDIO) writes may allocate into.
    pub ddio_ways: usize,
}

impl LlcConfig {
    /// The paper's server CPU: 35 MiB, 20-way, 2 DDIO ways.
    pub fn broadwell_14c() -> Self {
        LlcConfig {
            capacity_bytes: 35 * 1024 * 1024,
            ways: 20,
            ddio_ways: 2,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / LINE_BYTES / self.ways as u64
    }
}

/// Result of inserting a line: what, if anything, was evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evicted {
    /// No eviction was necessary.
    None,
    /// A clean line was dropped.
    Clean,
    /// A dirty line was evicted and must be written back to the home of the
    /// returned line address (`line * 64` is its byte address).
    Dirty(u64),
}

/// A single socket's last-level cache.
///
/// Storage is a flat slab of way slots, `cfg.ways` consecutive slots per
/// set, indexed by `line % n_sets`. Every lookup on the DMA and copy paths
/// walks one set per 64-byte line, so the index must be a direct slice
/// access rather than a hash probe. Two properties matter for the
/// zero-allocation hot path:
///
/// * The slab is zero-initialized primitive arrays: `vec![0; n]` takes the
///   zeroed-page allocation path, so construction costs three allocator
///   calls regardless of geometry, and no slot is ever allocated lazily
///   during simulation.
/// * Each set keeps its resident lines packed at the front of its slot
///   range (`lens` holds the per-set count, maintained by swap-remove on
///   invalidation). Scans iterate only the resident prefix — typically one
///   or two slots in the sparse footprints the experiments generate —
///   rather than the full associativity.
#[derive(Debug, Clone)]
pub struct Llc {
    cfg: LlcConfig,
    /// Line tag of each way slot; meaningful for the first `lens[set]`
    /// slots of each set's range.
    tags: Vec<u64>,
    /// Packed slot state: `DIRTY | DDIO | last_use << TICK_SHIFT`.
    meta: Vec<u64>,
    /// Resident-line count per set (dense prefix length).
    lens: Vec<u8>,
    n_sets: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Llc {
    /// Creates an empty LLC with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero ways, DDIO ways exceeding
    /// total ways, or zero sets).
    pub fn new(cfg: LlcConfig) -> Self {
        assert!(cfg.ways > 0, "cache must have at least one way");
        assert!(cfg.ways <= u8::MAX as usize, "occupancy counts are u8");
        assert!(cfg.ddio_ways <= cfg.ways, "DDIO ways cannot exceed total");
        assert!(cfg.sets() > 0, "cache must have at least one set");
        let n_sets = cfg.sets();
        let slots = n_sets as usize * cfg.ways;
        Llc {
            cfg,
            tags: vec![0; slots],
            meta: vec![0; slots],
            lens: vec![0; n_sets as usize],
            n_sets,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> LlcConfig {
        self.cfg
    }

    /// Set index of `line`.
    fn set_of(&self, line: u64) -> usize {
        (line % self.n_sets) as usize
    }

    /// Slot range of the resident prefix of the set holding `line`.
    fn resident_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = self.set_of(line);
        let start = set * self.cfg.ways;
        start..start + self.lens[set] as usize
    }

    /// Slot index of `line` within its set, if resident.
    fn find(&self, line: u64) -> Option<usize> {
        self.resident_range(line).find(|&i| self.tags[i] == line)
    }

    fn state_of(meta: u64) -> LineState {
        if meta & DIRTY != 0 {
            LineState::Modified
        } else {
            LineState::Shared
        }
    }

    /// Looks up the line containing `addr`; returns its state on hit.
    /// Updates recency and hit/miss statistics.
    pub fn probe(&mut self, addr: PhysAddr) -> Option<LineState> {
        let line = addr.line();
        self.tick += 1;
        let tick = self.tick;
        if let Some(i) = self.find(line) {
            self.meta[i] = (self.meta[i] & (DIRTY | DDIO)) | (tick << TICK_SHIFT);
            self.hits += 1;
            return Some(Self::state_of(self.meta[i]));
        }
        self.misses += 1;
        None
    }

    /// Looks up without disturbing recency or statistics (snoop from another
    /// agent).
    pub fn peek(&self, addr: PhysAddr) -> Option<LineState> {
        self.find(addr.line()).map(|i| Self::state_of(self.meta[i]))
    }

    /// Inserts (or upgrades) the line containing `addr`.
    ///
    /// `ddio` restricts replacement to the DDIO way-partition, mirroring how
    /// device writes cannot occupy the whole cache. Returns eviction
    /// information so the caller can account the writeback.
    pub fn insert(&mut self, addr: PhysAddr, state: LineState, ddio: bool) -> Evicted {
        let line = addr.line();
        self.tick += 1;
        let tick = self.tick;
        let fresh = if state == LineState::Modified {
            DIRTY
        } else {
            0
        } | if ddio { DDIO } else { 0 }
            | (tick << TICK_SHIFT);

        // One pass over the resident prefix gathers everything a decision
        // needs: the tag match, the partition occupancy, and the LRU victim
        // of both the whole set and the DDIO partition. Last-use ticks are
        // unique — every touch consumes a fresh tick — so the victims are
        // deterministic regardless of slot order.
        let range = self.resident_range(line);
        let resident = range.len();
        let mut ddio_resident = 0usize;
        let mut lru: Option<usize> = None;
        let mut ddio_lru: Option<usize> = None;
        for i in range {
            if self.tags[i] == line {
                // Upgrades stick; a Modified line never silently becomes
                // Shared.
                self.meta[i] = fresh | (self.meta[i] & DIRTY);
                return Evicted::None;
            }
            if lru.is_none_or(|b| self.meta[i] >> TICK_SHIFT < self.meta[b] >> TICK_SHIFT) {
                lru = Some(i);
            }
            if self.meta[i] & DDIO != 0 {
                ddio_resident += 1;
                if ddio_lru.is_none_or(|b| self.meta[i] >> TICK_SHIFT < self.meta[b] >> TICK_SHIFT)
                {
                    ddio_lru = Some(i);
                }
            }
        }

        // Non-DDIO fills may use every way.
        let (limit, partition_len) = if ddio {
            (self.cfg.ddio_ways, ddio_resident)
        } else {
            (self.cfg.ways, resident)
        };

        let (slot, evicted) = if partition_len >= limit || resident >= self.cfg.ways {
            // Evict the LRU line of the relevant partition (or of the whole
            // set if the set itself is full).
            let victim = if partition_len >= limit && ddio {
                ddio_lru
            } else {
                lru
            }
            .expect("partition is non-empty when full");
            let evicted = if self.meta[victim] & DIRTY != 0 {
                Evicted::Dirty(self.tags[victim])
            } else {
                Evicted::Clean
            };
            (victim, evicted)
        } else {
            // Grow the resident prefix by one slot.
            let set = self.set_of(line);
            self.lens[set] += 1;
            (set * self.cfg.ways + resident, Evicted::None)
        };

        self.tags[slot] = line;
        self.meta[slot] = fresh;
        evicted
    }

    /// Removes the line containing `addr` if present, returning its state.
    /// The caller decides whether a `Modified` line's contents matter (a full
    /// DMA overwrite drops them; an eviction writes them back).
    pub fn invalidate(&mut self, addr: PhysAddr) -> Option<LineState> {
        let line = addr.line();
        let i = self.find(line)?;
        let state = Self::state_of(self.meta[i]);
        // Swap-remove within the set to keep the resident prefix dense.
        let set = self.set_of(line);
        let last = set * self.cfg.ways + self.lens[set] as usize - 1;
        self.tags[i] = self.tags[last];
        self.meta[i] = self.meta[last];
        self.lens[set] -= 1;
        Some(state)
    }

    /// Downgrades a `Modified` line to `Shared` (after a snoop writeback).
    /// Returns `true` if the line was present.
    pub fn downgrade(&mut self, addr: PhysAddr) -> bool {
        match self.find(addr.line()) {
            Some(i) => {
                self.meta[i] &= !DIRTY;
                true
            }
            None => false,
        }
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of resident lines (for tests and diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Drops every line, as after `wbinvd`. Dirty data is discarded; tests
    /// use this to construct cold-cache scenarios. Set storage is retained.
    pub fn flush_all(&mut self) {
        self.lens.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    fn tiny() -> Llc {
        // 4 sets x 4 ways x 64 B = 1 KiB, 2 DDIO ways.
        Llc::new(LlcConfig {
            capacity_bytes: 1024,
            ways: 4,
            ddio_ways: 2,
        })
    }

    fn addr_for_set(set: u64, tag_round: u64) -> PhysAddr {
        // 4 sets in `tiny`; line = set + 4 * tag_round.
        PhysAddr((set + 4 * tag_round) * LINE_BYTES)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let a = PhysAddr(0);
        assert_eq!(c.probe(a), None);
        c.insert(a, LineState::Shared, false);
        assert_eq!(c.probe(a), Some(LineState::Shared));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_in_full_set() {
        let mut c = tiny();
        for round in 0..4 {
            assert_eq!(
                c.insert(addr_for_set(0, round), LineState::Shared, false),
                Evicted::None
            );
        }
        // Touch rounds 1..4 so round 0 is LRU.
        for round in 1..4 {
            c.probe(addr_for_set(0, round));
        }
        assert_eq!(
            c.insert(addr_for_set(0, 9), LineState::Shared, false),
            Evicted::Clean
        );
        assert_eq!(c.peek(addr_for_set(0, 0)), None, "LRU line evicted");
        assert!(c.peek(addr_for_set(0, 1)).is_some());
    }

    #[test]
    fn dirty_eviction_reports_victim() {
        let mut c = tiny();
        for round in 0..4 {
            c.insert(addr_for_set(1, round), LineState::Modified, false);
        }
        match c.insert(addr_for_set(1, 7), LineState::Shared, false) {
            Evicted::Dirty(line) => assert_eq!(line, addr_for_set(1, 0).line()),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn ddio_confined_to_partition() {
        let mut c = tiny();
        // Fill the DDIO partition (2 ways) of set 2.
        c.insert(addr_for_set(2, 0), LineState::Modified, true);
        c.insert(addr_for_set(2, 1), LineState::Modified, true);
        // A third DDIO insert must evict a DDIO line even though the set
        // still has free ways.
        let ev = c.insert(addr_for_set(2, 2), LineState::Modified, true);
        assert!(matches!(ev, Evicted::Dirty(_)), "got {ev:?}");
        assert_eq!(c.resident_lines(), 2);
        // Non-DDIO fills can still use the remaining ways.
        assert_eq!(
            c.insert(addr_for_set(2, 3), LineState::Shared, false),
            Evicted::None
        );
        assert_eq!(
            c.insert(addr_for_set(2, 4), LineState::Shared, false),
            Evicted::None
        );
    }

    #[test]
    fn upgrade_sticks() {
        let mut c = tiny();
        let a = PhysAddr(0);
        c.insert(a, LineState::Shared, false);
        c.insert(a, LineState::Modified, false);
        assert_eq!(c.peek(a), Some(LineState::Modified));
        // Re-inserting as Shared must not lose the dirty bit.
        c.insert(a, LineState::Shared, false);
        assert_eq!(c.peek(a), Some(LineState::Modified));
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = tiny();
        let a = PhysAddr(128);
        c.insert(a, LineState::Modified, false);
        assert!(c.downgrade(a));
        assert_eq!(c.peek(a), Some(LineState::Shared));
        assert_eq!(c.invalidate(a), Some(LineState::Shared));
        assert_eq!(c.invalidate(a), None);
        assert!(!c.downgrade(a));
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = tiny();
        c.insert(PhysAddr(0), LineState::Shared, false);
        let h = c.hits();
        c.peek(PhysAddr(0));
        assert_eq!(c.hits(), h);
    }

    #[test]
    fn flush_all_empties() {
        let mut c = tiny();
        c.insert(PhysAddr(0), LineState::Modified, false);
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.peek(PhysAddr(0)), None);
    }

    #[test]
    fn broadwell_geometry() {
        let cfg = LlcConfig::broadwell_14c();
        assert_eq!(cfg.sets(), 35 * 1024 * 1024 / 64 / 20);
        let _ = Llc::new(cfg);
    }

    #[test]
    #[should_panic(expected = "DDIO ways cannot exceed")]
    fn bad_ddio_ways() {
        Llc::new(LlcConfig {
            capacity_bytes: 1024,
            ways: 2,
            ddio_ways: 3,
        });
    }

    #[test]
    fn prop_occupancy_never_exceeds_ways() {
        let mut r = SimRng::seed(0xcac4e);
        for _ in 0..16 {
            let ops = 1 + r.below(299) as usize;
            let mut c = tiny();
            for _ in 0..ops {
                let line = r.below(64);
                let ddio = r.chance(0.5);
                c.insert(PhysAddr(line * LINE_BYTES), LineState::Shared, ddio);
            }
            // No set may exceed associativity; checked via total residency per set.
            for set in 0..4u64 {
                let count = (0..64u64)
                    .filter(|l| l % 4 == set)
                    .filter(|l| c.peek(PhysAddr(l * LINE_BYTES)).is_some())
                    .count();
                assert!(count <= 4, "set {} holds {}", set, count);
            }
        }
    }

    #[test]
    fn prop_probe_after_insert_hits() {
        let mut r = SimRng::seed(0xcac4f);
        for _ in 0..8 {
            let n = 1 + r.below(49) as usize;
            let lines: Vec<u64> = (0..n).map(|_| r.below(1_000_000)).collect();
            let mut c = Llc::new(LlcConfig::broadwell_14c());
            for &l in &lines {
                c.insert(PhysAddr(l * LINE_BYTES), LineState::Shared, false);
            }
            // With a 28k-set cache and <50 distinct lines, nothing can have
            // been evicted: every line must still be resident.
            for &l in &lines {
                assert!(c.peek(PhysAddr(l * LINE_BYTES)).is_some());
            }
        }
    }
}
