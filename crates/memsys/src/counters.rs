//! Snapshot counters for the quantities the paper plots.

use crate::topology::NodeId;

/// A point-in-time snapshot of memory-system traffic since the last reset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Counters {
    /// Per-node DRAM read bytes.
    pub dram_reads: Vec<u64>,
    /// Per-node DRAM write bytes.
    pub dram_writes: Vec<u64>,
    /// Total interconnect bytes (all directions).
    pub interconnect_bytes: u64,
    /// LLC hits across all sockets.
    pub llc_hits: u64,
    /// LLC misses across all sockets.
    pub llc_misses: u64,
}

impl Counters {
    /// DRAM read bytes on `node`.
    pub fn dram_read_bytes(&self, node: NodeId) -> u64 {
        self.dram_reads[node.0]
    }

    /// DRAM write bytes on `node`.
    pub fn dram_write_bytes(&self, node: NodeId) -> u64 {
        self.dram_writes[node.0]
    }

    /// Total DRAM traffic (reads + writes) across every node — the
    /// "memory bandwidth" quantity of Figures 6–8 and 10–12 before dividing
    /// by the measurement window.
    pub fn total_dram_bytes(&self) -> u64 {
        self.dram_reads.iter().sum::<u64>() + self.dram_writes.iter().sum::<u64>()
    }
}
