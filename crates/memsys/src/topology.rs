//! NUMA topology: nodes, cores, and the physical address map.

use std::fmt;

/// Identifies a NUMA node (socket). The paper's testbed has two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A physical memory address.
///
/// The address space is striped by node: node `n` owns the range
/// `[n << NODE_SHIFT, (n + 1) << NODE_SHIFT)`, so the home node of an address
/// is recoverable without a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

/// Bits of address space per node (1 TiB).
pub const NODE_SHIFT: u32 = 40;
/// Cache line size in bytes; everything in the model is line-granular.
pub const LINE_BYTES: u64 = 64;

impl PhysAddr {
    /// The home NUMA node of this address.
    pub fn home(self) -> NodeId {
        NodeId((self.0 >> NODE_SHIFT) as usize)
    }

    /// The address of the cache line containing this address.
    pub fn line(self) -> u64 {
        self.0 / LINE_BYTES
    }

    /// Byte offset within its cache line.
    pub fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// This address advanced by `off` bytes.
    pub fn offset(self, off: u64) -> PhysAddr {
        PhysAddr(self.0 + off)
    }

    /// Number of cache lines an access of `len` bytes starting here touches.
    pub fn lines_spanned(self, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = self.line();
        let last = PhysAddr(self.0 + len - 1).line();
        last - first + 1
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}@{}", self.0, self.home())
    }
}

/// Static description of the machine's NUMA layout.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: usize,
    cores_per_node: usize,
}

impl Topology {
    /// Creates a topology with `nodes` sockets of `cores_per_node` cores.
    ///
    /// # Panics
    /// Panics if either count is zero or if `nodes` exceeds the address-map
    /// capacity.
    pub fn new(nodes: usize, cores_per_node: usize) -> Self {
        assert!(nodes > 0, "at least one node required");
        assert!(cores_per_node > 0, "at least one core per node required");
        assert!(nodes < 1 << 8, "too many nodes for the address map");
        Topology {
            nodes,
            cores_per_node,
        }
    }

    /// Number of NUMA nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Total cores in the machine.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// The node that owns global core index `core`.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn node_of_core(&self, core: usize) -> NodeId {
        assert!(core < self.total_cores(), "core {core} out of range");
        NodeId(core / self.cores_per_node)
    }

    /// Global core indices belonging to `node`.
    pub fn cores_of(&self, node: NodeId) -> std::ops::Range<usize> {
        let start = node.0 * self.cores_per_node;
        start..start + self.cores_per_node
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    #[test]
    fn address_home_striping() {
        assert_eq!(PhysAddr(0).home(), NodeId(0));
        assert_eq!(PhysAddr(1 << NODE_SHIFT).home(), NodeId(1));
        assert_eq!(PhysAddr((1 << NODE_SHIFT) + 12345).home(), NodeId(1));
    }

    #[test]
    fn line_math() {
        assert_eq!(PhysAddr(0).line(), 0);
        assert_eq!(PhysAddr(63).line(), 0);
        assert_eq!(PhysAddr(64).line(), 1);
        assert_eq!(PhysAddr(65).line_offset(), 1);
    }

    #[test]
    fn lines_spanned_edges() {
        assert_eq!(PhysAddr(0).lines_spanned(0), 0);
        assert_eq!(PhysAddr(0).lines_spanned(1), 1);
        assert_eq!(PhysAddr(0).lines_spanned(64), 1);
        assert_eq!(PhysAddr(0).lines_spanned(65), 2);
        assert_eq!(PhysAddr(60).lines_spanned(8), 2);
        assert_eq!(PhysAddr(0).lines_spanned(1500), 24);
    }

    #[test]
    fn topology_core_mapping() {
        let t = Topology::new(2, 14);
        assert_eq!(t.total_cores(), 28);
        assert_eq!(t.node_of_core(0), NodeId(0));
        assert_eq!(t.node_of_core(13), NodeId(0));
        assert_eq!(t.node_of_core(14), NodeId(1));
        assert_eq!(t.cores_of(NodeId(1)), 14..28);
        assert_eq!(t.node_ids().count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_out_of_range() {
        Topology::new(2, 2).node_of_core(4);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        Topology::new(0, 1);
    }

    #[test]
    fn prop_lines_spanned_matches_naive() {
        let mut r = SimRng::seed(0x7090);
        for _ in 0..256 {
            let addr = r.below(10_000);
            let len = r.below(10_000);
            let a = PhysAddr(addr);
            let naive = if len == 0 {
                0
            } else {
                ((addr + len - 1) / LINE_BYTES) - (addr / LINE_BYTES) + 1
            };
            assert_eq!(a.lines_spanned(len), naive);
        }
    }

    #[test]
    fn prop_offset_preserves_home() {
        let mut r = SimRng::seed(0x7091);
        for _ in 0..256 {
            let node = r.below(4) as usize;
            let off = r.below(1 << 30);
            let base = PhysAddr((node as u64) << NODE_SHIFT);
            assert_eq!(base.offset(off).home(), NodeId(node));
        }
    }
}
