//! The memory-system façade: every CPU access and device DMA goes through
//! [`MemSystem`], which accounts cache state, DRAM/interconnect bandwidth,
//! and returns how long the access stalls the initiator.
//!
//! # Uncontended-stall memoization
//!
//! The stall returned for a DMA or CPU access decomposes into (a) state
//! transitions — LLC probes/inserts/invalidations, byte counters, link
//! busy-horizon advances — which always execute, and (b) arithmetic that is
//! a pure function of `(initiator node, home node, access kind, line
//! classification)` *whenever the touched links are idle*. A small
//! generation-stamped table ([`StallMemo`]) caches (b), turning the common
//! steady-state case (links drained between packets) into a single hash
//! lookup instead of several `u128` bandwidth divisions. Lookups are gated
//! on link idleness (`queue_delay == 0`), so congestion always takes the
//! exact slow path; the generation is bumped whenever DDIO/LLC configuration
//! changes. In debug builds every replayed reservation re-checks its
//! serialization time against the uncached formula (see
//! `BwLink::reserve_precomputed`), so the memo cannot silently diverge.

use simcore::{Dur, FxHashMap, Time};

use crate::alloc::PhysAllocator;
use crate::cache::{Evicted, LineState, Llc, LlcConfig};
use crate::counters::Counters;
use crate::dram::{DramConfig, DramGroup};
use crate::interconnect::{Interconnect, InterconnectConfig};
use crate::topology::{NodeId, PhysAddr, Topology, LINE_BYTES};

/// How an access overlaps with other work, which controls how much of the
/// miss latency is *exposed* to the initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Dependent access (pointer chase, descriptor poll): the full miss
    /// latency stalls the initiator. The paper's ~80 ns completion-entry
    /// read (§5.1.1) is this kind.
    Pointer,
    /// Sequential bulk access (payload copy, STREAM): hardware prefetchers
    /// and DMA pipelining hide most of the latency; only bandwidth and a
    /// small latency fraction are exposed.
    Stream,
}

/// Full machine memory configuration.
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// NUMA layout.
    pub topology: Topology,
    /// Per-socket LLC geometry.
    pub llc: LlcConfig,
    /// Per-node DRAM channels.
    pub dram: DramConfig,
    /// Socket interconnect.
    pub interconnect: InterconnectConfig,
    /// Simulated memory per node.
    pub bytes_per_node: u64,
    /// Whether Data Direct I/O is enabled (Figure 9's `nd` configs turn it
    /// off).
    pub ddio: bool,
    /// LLC hit latency (L3 load-to-use).
    pub llc_hit_latency: Dur,
    /// Effective streaming bandwidth out of the LLC, bytes/second.
    pub llc_bytes_per_sec: u64,
    /// Cross-socket snoop penalty for cache-to-cache transfers.
    pub snoop_latency: Dur,
    /// Fraction of miss latency exposed on [`AccessKind::Stream`] accesses.
    pub stream_overlap: f64,
    /// Maximum streaming bandwidth a single thread can extract
    /// (latency × miss-parallelism bound: ~10 line-fill buffers ÷ ~100 ns
    /// round trip ≈ 6-9 GB/s on these parts). Shared-resource congestion
    /// can push a thread below this; it can never exceed it.
    pub single_thread_stream_bps: u64,
}

impl MemConfig {
    /// The paper's networking testbed (§5): 2× 14-core Broadwell, 4 DDR4
    /// DIMMs per socket, two 9.6 GT/s QPI links.
    pub fn dual_socket_broadwell() -> Self {
        MemConfig {
            topology: Topology::new(2, 14),
            llc: LlcConfig::broadwell_14c(),
            dram: DramConfig::ddr4_broadwell(),
            interconnect: InterconnectConfig::qpi_broadwell_2links(),
            bytes_per_node: 8 << 30,
            ddio: true,
            llc_hit_latency: Dur::from_ns(18),
            llc_bytes_per_sec: 150_000_000_000,
            snoop_latency: Dur::from_ns(30),
            stream_overlap: 0.45,
            single_thread_stream_bps: 8_000_000_000,
        }
    }

    /// The paper's NVMe testbed (§5.4): 2× 24-core Skylake, 6 DDR4 channels
    /// per socket, two 10.4 GT/s UPI links.
    pub fn dual_socket_skylake() -> Self {
        MemConfig {
            topology: Topology::new(2, 24),
            llc: LlcConfig {
                capacity_bytes: 33 * 1024 * 1024,
                ways: 11,
                ddio_ways: 2,
            },
            dram: DramConfig::ddr4_skylake(),
            interconnect: InterconnectConfig::upi_skylake_2links(),
            bytes_per_node: 8 << 30,
            ddio: true,
            llc_hit_latency: Dur::from_ns(20),
            llc_bytes_per_sec: 170_000_000_000,
            snoop_latency: Dur::from_ns(32),
            stream_overlap: 0.45,
            single_thread_stream_bps: 9_000_000_000,
        }
    }
}

/// Memo-key path discriminants (which formula produced the entry).
const MEMO_DMA_WRITE_DDIO: u8 = 0;
const MEMO_DMA_WRITE_DRAM: u8 = 1;
const MEMO_DMA_READ_LOCAL: u8 = 2;
const MEMO_DMA_READ_REMOTE: u8 = 3;
const MEMO_CPU_PTR: u8 = 4;
const MEMO_CPU_STREAM: u8 = 5;

/// A memoized uncontended access: the serialization times to replay on the
/// idle links plus the exposed stall to return.
#[derive(Debug, Clone, Copy)]
struct MemoEntry {
    /// Generation at insert time; stale entries are ignored on lookup.
    gen: u64,
    /// DRAM-link serialization time for the access's DRAM bytes.
    d_xfer: Dur,
    /// Interconnect serialization time (`ZERO` when nothing crosses).
    q_xfer: Dur,
    /// The stall returned to the initiator.
    exposed: Dur,
}

/// Small generation-stamped table of uncontended stall computations.
///
/// Keys pack `(path, node a, node b, line classification)` into a `u64`;
/// invalidation is lazy — bumping the generation orphans every existing
/// entry without touching the map.
#[derive(Debug, Default)]
struct StallMemo {
    gen: u64,
    entries: FxHashMap<u64, MemoEntry>,
    hits: u64,
    misses: u64,
}

impl StallMemo {
    /// Bound on live + orphaned entries; crossing it clears the table (the
    /// working set of distinct access shapes is far smaller).
    const MAX_ENTRIES: usize = 4096;

    fn key(path: u8, a: usize, b: usize, n: u64) -> u64 {
        debug_assert!(a < 256 && b < 256 && n < 1 << 40);
        (path as u64) << 56 | (a as u64) << 48 | (b as u64) << 40 | n
    }

    fn get(&mut self, key: u64) -> Option<MemoEntry> {
        match self.entries.get(&key) {
            Some(e) if e.gen == self.gen => {
                self.hits += 1;
                Some(*e)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    fn put(&mut self, key: u64, d_xfer: Dur, q_xfer: Dur, exposed: Dur) {
        if self.entries.len() >= Self::MAX_ENTRIES {
            self.entries.clear();
        }
        self.entries.insert(
            key,
            MemoEntry {
                gen: self.gen,
                d_xfer,
                q_xfer,
                exposed,
            },
        );
    }

    fn invalidate(&mut self) {
        self.gen = self.gen.wrapping_add(1);
    }
}

/// The machine's memory system: LLCs, DRAM, interconnect, and allocator.
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemConfig,
    llcs: Vec<Llc>,
    dram: Vec<DramGroup>,
    qpi: Interconnect,
    alloc: PhysAllocator,
    memo: StallMemo,
}

impl MemSystem {
    /// Builds the memory system described by `cfg`.
    pub fn new(cfg: MemConfig) -> Self {
        let nodes = cfg.topology.nodes();
        let llcs = (0..nodes).map(|_| Llc::new(cfg.llc)).collect();
        let dram = (0..nodes).map(|n| DramGroup::new(n, cfg.dram)).collect();
        let qpi = Interconnect::new(nodes, cfg.interconnect);
        let alloc = PhysAllocator::new(nodes, cfg.bytes_per_node);
        MemSystem {
            cfg,
            llcs,
            dram,
            qpi,
            alloc,
            memo: StallMemo::default(),
        }
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        &self.cfg.topology
    }

    /// The active configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Enables or disables DDIO (Figure 9's `llnd` configuration).
    /// Invalidates the stall memo: cached DMA-write shapes chose their
    /// formula under the old setting.
    pub fn set_ddio(&mut self, on: bool) {
        self.cfg.ddio = on;
        self.memo.invalidate();
    }

    /// `(hits, misses)` of the uncontended-stall memo since construction
    /// (diagnostics and tests).
    pub fn memo_stats(&self) -> (u64, u64) {
        (self.memo.hits, self.memo.misses)
    }

    /// Whether DDIO is active.
    pub fn ddio(&self) -> bool {
        self.cfg.ddio
    }

    /// Allocates `bytes` of node-local memory.
    pub fn alloc(&mut self, node: NodeId, bytes: u64) -> PhysAddr {
        self.alloc.alloc(node, bytes)
    }

    /// A CPU on `node` reads `len` bytes at `addr`. Returns the stall.
    pub fn cpu_read(
        &mut self,
        now: Time,
        node: NodeId,
        addr: PhysAddr,
        len: u64,
        kind: AccessKind,
    ) -> Dur {
        self.cpu_access(now, node, addr, len, kind, false)
    }

    /// A CPU on `node` writes `len` bytes at `addr`. Returns the stall.
    ///
    /// Writes allocate (read-for-ownership) and leave lines `Modified` in the
    /// local LLC; DRAM sees the traffic later, on eviction.
    pub fn cpu_write(
        &mut self,
        now: Time,
        node: NodeId,
        addr: PhysAddr,
        len: u64,
        kind: AccessKind,
    ) -> Dur {
        self.cpu_access(now, node, addr, len, kind, true)
    }

    fn cpu_access(
        &mut self,
        now: Time,
        node: NodeId,
        addr: PhysAddr,
        len: u64,
        kind: AccessKind,
        write: bool,
    ) -> Dur {
        if len == 0 {
            return Dur::ZERO;
        }
        assert!(len <= 8 << 20, "single access too large: {len}");
        let home = addr.home();
        let lines = addr.lines_spanned(len);
        let mut hit_lines = 0u64;
        let mut miss_lines = 0u64;
        let mut c2c_lines = 0u64;
        let mut wb = WritebackAcc::default();

        for i in 0..lines {
            let a = PhysAddr(addr.line() * LINE_BYTES + i * LINE_BYTES);
            let local_state = self.llcs[node.0].probe(a);
            match local_state {
                Some(_) => {
                    hit_lines += 1;
                    if write {
                        // Upgrade to Modified; invalidate peers' Shared copies.
                        self.llcs[node.0].insert(a, LineState::Modified, false);
                        self.invalidate_peers(a, node, &mut wb, false);
                    }
                }
                None => {
                    // Check peers for a dirty copy (cache-to-cache transfer).
                    let mut served_c2c = false;
                    for peer in 0..self.llcs.len() {
                        if peer == node.0 {
                            continue;
                        }
                        if let Some(LineState::Modified) = self.llcs[peer].peek(a) {
                            // Implicit writeback to home + transfer to requester.
                            wb.add(home, 1);
                            if write {
                                self.llcs[peer].invalidate(a);
                            } else {
                                self.llcs[peer].downgrade(a);
                            }
                            c2c_lines += 1;
                            served_c2c = true;
                            break;
                        }
                    }
                    if !served_c2c {
                        miss_lines += 1;
                        if write {
                            // Drop any Shared peer copies.
                            self.invalidate_peers(a, node, &mut wb, false);
                        }
                    }
                    let state = if write {
                        LineState::Modified
                    } else {
                        LineState::Shared
                    };
                    match self.llcs[node.0].insert(a, state, false) {
                        Evicted::Dirty(victim_line) => {
                            let victim_home = PhysAddr(victim_line * LINE_BYTES).home();
                            wb.add(victim_home, 1);
                        }
                        Evicted::Clean | Evicted::None => {}
                    }
                }
            }
        }

        // Bandwidth accounting. Writebacks flush first so the memoized
        // early-return below still performs them; this is order-equivalent to
        // flushing last because writebacks touch only DRAM *write* links and
        // outbound (`node -> victim`) interconnect directions, disjoint from
        // the miss path's read link and inbound (`home -> node`) direction.
        let miss_bytes = miss_lines * LINE_BYTES;
        let c2c_bytes = c2c_lines * LINE_BYTES;
        let idle = miss_bytes == 0
            || (self.dram[home.0].read_queue_delay(now) == Dur::ZERO
                && (home == node || self.qpi.queue_delay(now, home, node) == Dur::ZERO));
        self.flush_writebacks(now, node, &wb);
        // Given the walk's classification, the stall arithmetic is pure when
        // the links are idle — except for cache-to-cache transfers, whose
        // peer snoop loop stays on the slow path.
        let memo_key = if c2c_lines == 0 && idle {
            let path = match kind {
                AccessKind::Pointer => MEMO_CPU_PTR,
                AccessKind::Stream => MEMO_CPU_STREAM,
            };
            let key = StallMemo::key(path, node.0, home.0, hit_lines << 20 | miss_lines);
            if let Some(e) = self.memo.get(key) {
                if miss_bytes > 0 {
                    self.dram[home.0].read_precomputed(now, miss_bytes, e.d_xfer);
                    if home != node {
                        self.qpi
                            .transfer_precomputed(now, home, node, miss_bytes, e.q_xfer);
                    }
                }
                return e.exposed;
            }
            Some(key)
        } else {
            None
        };
        let mut done = now;
        let mut fixed = Dur::ZERO;
        if miss_bytes > 0 {
            // Serial DRAM-then-interconnect path. Every hop is reserved at
            // `now` and the durations are summed: reserving at each hop's
            // own (future) start time would let one congested chain push a
            // link's FIFO horizon ahead of near-term traffic and destabilize
            // the whole fluid model.
            let d_dur = self.dram[home.0].read(now, miss_bytes).since(now);
            fixed = fixed.max(self.cfg.dram.latency);
            let total = if home != node {
                let q_dur = self.qpi.transfer(now, home, node, miss_bytes).since(now);
                fixed = fixed.max(self.cfg.dram.latency + self.qpi.hop_latency());
                d_dur + q_dur
            } else {
                d_dur
            };
            done = done.max(now + total);
        }
        if c2c_bytes > 0 {
            // Dirty data is forwarded peer -> requester (directory-assisted,
            // one interconnect crossing — charged by the transfer below —
            // plus the peer's snoop response time); the implicit writeback
            // hits home DRAM.
            let snoop = self.cfg.snoop_latency;
            for peer in 0..self.llcs.len() {
                if peer != node.0 {
                    let q_dur = self
                        .qpi
                        .transfer(now, NodeId(peer), node, c2c_bytes)
                        .since(now);
                    done = done.max(now + snoop + q_dur);
                    break;
                }
            }
            fixed = fixed.max(snoop);
        }

        let hit_cost = if hit_lines > 0 {
            self.cfg.llc_hit_latency
                + Dur::for_bytes(hit_lines * LINE_BYTES, self.cfg.llc_bytes_per_sec)
        } else {
            Dur::ZERO
        };
        let raw = done.since(now);
        let exposed = match kind {
            AccessKind::Pointer => raw,
            AccessKind::Stream => {
                let hidden = fixed * (1.0 - self.cfg.stream_overlap);
                raw.saturating_sub(hidden)
            }
        };
        let result = hit_cost + exposed;
        if let Some(key) = memo_key {
            let d_xfer = Dur::for_bytes(miss_bytes, self.cfg.dram.bytes_per_sec);
            let q_xfer = if home != node {
                Dur::for_bytes(miss_bytes, self.cfg.interconnect.bytes_per_sec)
            } else {
                Dur::ZERO
            };
            self.memo.put(key, d_xfer, q_xfer, result);
        }
        result
    }

    /// Bulk non-allocating CPU access (the STREAM antagonist): consumes DRAM
    /// and interconnect bandwidth without touching the LLC model. Returns the
    /// stall, which self-limits the antagonist under congestion.
    pub fn cpu_stream_through(
        &mut self,
        now: Time,
        node: NodeId,
        target: NodeId,
        len: u64,
        write: bool,
    ) -> Dur {
        let mut done = if write {
            self.dram[target.0].write(now, len)
        } else {
            self.dram[target.0].read(now, len)
        };
        if target != node {
            let (from, to) = if write {
                (node, target)
            } else {
                (target, node)
            };
            done = done.max(self.qpi.transfer(now, from, to, len));
        }
        let raw = done.since(now);
        let hidden = self.cfg.dram.latency * (1.0 - self.cfg.stream_overlap);
        let floor = Dur::for_bytes(len, self.cfg.single_thread_stream_bps);
        raw.saturating_sub(hidden).max(floor)
    }

    /// A device whose PCIe endpoint attaches to `dev_node` DMA-reads `len`
    /// bytes at `addr` (packet transmission, NVMe write-out). Returns the
    /// memory-side stall of the DMA engine.
    ///
    /// DMA reads never allocate into the LLC. Remote reads probe the home
    /// LLC and DRAM in parallel: the data comes from the LLC when present
    /// (no invalidation), but home-DRAM bandwidth is consumed regardless —
    /// the paper's explanation for Figure 7's remote memory traffic.
    pub fn dma_read(&mut self, now: Time, dev_node: NodeId, addr: PhysAddr, len: u64) -> Dur {
        if len == 0 {
            return Dur::ZERO;
        }
        let home = addr.home();
        let local = dev_node == home;
        let lines = addr.lines_spanned(len);
        let bytes = lines * LINE_BYTES;

        if local {
            // DDIO serves local DMA reads from the LLC when the data is
            // there; only misses touch DRAM.
            let mut hit_lines = 0u64;
            for i in 0..lines {
                let a = PhysAddr(addr.line() * LINE_BYTES + i * LINE_BYTES);
                if self.llcs[home.0].peek(a).is_some() {
                    hit_lines += 1;
                }
            }
            let miss_lines = lines - hit_lines;
            let miss_bytes = miss_lines * LINE_BYTES;
            let idle = miss_lines == 0 || self.dram[home.0].read_queue_delay(now) == Dur::ZERO;
            // The packed key holds two 20-bit line counts; larger accesses
            // (> 64 MB) just skip the memo.
            let memoizable = idle && lines < 1 << 20;
            let key = StallMemo::key(MEMO_DMA_READ_LOCAL, home.0, 0, hit_lines << 20 | miss_lines);
            if memoizable {
                if let Some(e) = self.memo.get(key) {
                    if miss_bytes > 0 {
                        self.dram[home.0].read_precomputed(now, miss_bytes, e.d_xfer);
                    }
                    return e.exposed;
                }
            }
            let mut done = now;
            let mut fixed = Dur::ZERO;
            if miss_lines > 0 {
                done = done.max(self.dram[home.0].read(now, miss_bytes));
                fixed = fixed.max(self.cfg.dram.latency);
            }
            if hit_lines > 0 {
                fixed = fixed.max(self.cfg.llc_hit_latency);
            }
            let raw = done.since(now);
            let exposed = raw.saturating_sub(fixed * (1.0 - self.cfg.stream_overlap));
            if memoizable {
                let d_xfer = Dur::for_bytes(miss_bytes, self.cfg.dram.bytes_per_sec);
                self.memo.put(key, d_xfer, Dur::ZERO, exposed);
            }
            exposed
        } else {
            // Parallel probe: DRAM read bandwidth for the full payload, LLC
            // data used when present (no invalidation, no downgrade). The
            // data then crosses the interconnect to the device's socket.
            // Both hops reserved at `now`, durations summed (see cpu_access).
            // Because the full payload is charged whether or not the home
            // LLC holds it, the stall is independent of cache content — the
            // per-line walk is skipped entirely (`peek` is side-effect-free).
            let idle = self.dram[home.0].read_queue_delay(now) == Dur::ZERO
                && self.qpi.queue_delay(now, home, dev_node) == Dur::ZERO;
            let key = StallMemo::key(MEMO_DMA_READ_REMOTE, home.0, dev_node.0, lines);
            if idle {
                if let Some(e) = self.memo.get(key) {
                    self.dram[home.0].read_precomputed(now, bytes, e.d_xfer);
                    self.qpi
                        .transfer_precomputed(now, home, dev_node, bytes, e.q_xfer);
                    return e.exposed;
                }
            }
            let d_dur = self.dram[home.0].read(now, bytes).since(now);
            let q_dur = self.qpi.transfer(now, home, dev_node, bytes).since(now);
            let raw = d_dur + q_dur;
            let fixed = self.cfg.dram.latency + self.qpi.hop_latency();
            let exposed = raw.saturating_sub(fixed * (1.0 - self.cfg.stream_overlap));
            if idle {
                let d_xfer = Dur::for_bytes(bytes, self.cfg.dram.bytes_per_sec);
                let q_xfer = Dur::for_bytes(bytes, self.cfg.interconnect.bytes_per_sec);
                self.memo.put(key, d_xfer, q_xfer, exposed);
            }
            exposed
        }
    }

    /// A device attached to `dev_node` DMA-writes `len` bytes at `addr`
    /// (packet reception, completion entries, NVMe read returns). Returns
    /// the memory-side stall of the DMA engine.
    ///
    /// Local + DDIO: allocates into the local LLC's DDIO ways, no DRAM
    /// traffic. Otherwise: invalidates cached copies and writes the home
    /// DRAM across the interconnect (§2.3: "L will have to be invalidated
    /// before the NIC is able to DMA-write it").
    pub fn dma_write(&mut self, now: Time, dev_node: NodeId, addr: PhysAddr, len: u64) -> Dur {
        if len == 0 {
            return Dur::ZERO;
        }
        let home = addr.home();
        let local = dev_node == home;
        let lines = addr.lines_spanned(len);
        let bytes = lines * LINE_BYTES;

        if local && self.cfg.ddio {
            let mut wb = WritebackAcc::default();
            for i in 0..lines {
                let a = PhysAddr(addr.line() * LINE_BYTES + i * LINE_BYTES);
                // Peers lose their copies (full overwrite: dirty data is
                // simply superseded).
                self.invalidate_all_peers(a, home);
                match self.llcs[home.0].insert(a, LineState::Modified, true) {
                    Evicted::Dirty(victim) => {
                        wb.add(PhysAddr(victim * LINE_BYTES).home(), 1);
                    }
                    Evicted::Clean | Evicted::None => {}
                }
            }
            self.flush_writebacks(now, home, &wb);
            // The stall is pure in `lines` (no bandwidth server on this
            // path), so the memo needs no idleness gate.
            let key = StallMemo::key(MEMO_DMA_WRITE_DDIO, home.0, 0, lines);
            if let Some(e) = self.memo.get(key) {
                return e.exposed;
            }
            let raw = Dur::for_bytes(bytes, self.cfg.llc_bytes_per_sec);
            let fixed = self.cfg.llc_hit_latency;
            let exposed = raw.saturating_sub(fixed * (1.0 - self.cfg.stream_overlap));
            self.memo.put(key, Dur::ZERO, Dur::ZERO, exposed);
            exposed
        } else {
            for i in 0..lines {
                let a = PhysAddr(addr.line() * LINE_BYTES + i * LINE_BYTES);
                for llc in &mut self.llcs {
                    llc.invalidate(a);
                }
            }
            let idle = self.dram[home.0].write_queue_delay(now) == Dur::ZERO
                && (local || self.qpi.queue_delay(now, dev_node, home) == Dur::ZERO);
            let key = StallMemo::key(MEMO_DMA_WRITE_DRAM, dev_node.0, home.0, lines);
            if idle {
                if let Some(e) = self.memo.get(key) {
                    if !local {
                        self.qpi
                            .transfer_precomputed(now, dev_node, home, bytes, e.q_xfer);
                    }
                    self.dram[home.0].write_precomputed(now, bytes, e.d_xfer);
                    return e.exposed;
                }
            }
            // The write crosses the interconnect first (for a remote home),
            // then drains into the home DRAM. Hops reserved at `now`,
            // durations summed (see cpu_access).
            let mut fixed = Dur::ZERO;
            let q_dur = if local {
                Dur::ZERO
            } else {
                fixed = fixed.max(self.qpi.hop_latency());
                self.qpi.transfer(now, dev_node, home, bytes).since(now)
            };
            let d_dur = self.dram[home.0].write(now, bytes).since(now);
            fixed += self.cfg.dram.latency;
            let raw = q_dur + d_dur;
            let exposed = raw.saturating_sub(fixed * (1.0 - self.cfg.stream_overlap));
            if idle {
                let q_xfer = if local {
                    Dur::ZERO
                } else {
                    Dur::for_bytes(bytes, self.cfg.interconnect.bytes_per_sec)
                };
                let d_xfer = Dur::for_bytes(bytes, self.cfg.dram.bytes_per_sec);
                self.memo.put(key, d_xfer, q_xfer, exposed);
            }
            exposed
        }
    }

    /// Extra latency a CPU-initiated MMIO (doorbell) pays when the device
    /// hangs off a different socket than the issuing core.
    pub fn mmio_extra_hops(&self, core_node: NodeId, dev_node: NodeId) -> Dur {
        if core_node == dev_node {
            Dur::ZERO
        } else {
            self.qpi.hop_latency()
        }
    }

    /// Extra latency an interrupt pays to reach a core on another socket.
    pub fn interrupt_extra_hops(&self, dev_node: NodeId, core_node: NodeId) -> Dur {
        self.mmio_extra_hops(core_node, dev_node)
    }

    /// Queueing delay currently present in the `from → to` interconnect
    /// direction (diagnostic).
    pub fn interconnect_queue_delay(&self, now: Time, from: NodeId, to: NodeId) -> Dur {
        self.qpi.queue_delay(now, from, to)
    }

    /// A traffic snapshot since the last [`reset_counters`](Self::reset_counters).
    pub fn counters(&self) -> Counters {
        Counters {
            dram_reads: self.dram.iter().map(DramGroup::read_bytes).collect(),
            dram_writes: self.dram.iter().map(DramGroup::write_bytes).collect(),
            interconnect_bytes: self.qpi.total_bytes(),
            llc_hits: self.llcs.iter().map(Llc::hits).sum(),
            llc_misses: self.llcs.iter().map(Llc::misses).sum(),
        }
    }

    /// Publishes the memory system's traffic counters into a per-run
    /// metric snapshot.
    pub fn publish_metrics(&self, s: &mut telemetry::Snapshot) {
        let c = self.counters();
        s.push(
            "mem.dram_bytes",
            c.dram_reads.iter().sum::<u64>() + c.dram_writes.iter().sum::<u64>(),
        );
        s.push("mem.interconnect_bytes", c.interconnect_bytes);
        s.push("mem.llc_hits", c.llc_hits);
        s.push("mem.llc_misses", c.llc_misses);
        let (hits, misses) = self.memo_stats();
        s.push("mem.stall_memo_hits", hits);
        s.push("mem.stall_memo_misses", misses);
    }

    /// Resets traffic counters at a measurement-window boundary.
    pub fn reset_counters(&mut self) {
        for d in &mut self.dram {
            d.reset_counters();
        }
        self.qpi.reset_counters();
    }

    /// The coherence state of the line containing `addr` in `node`'s LLC,
    /// if cached (diagnostics and invariant tests).
    pub fn peek_line(&self, node: NodeId, addr: PhysAddr) -> Option<crate::cache::LineState> {
        self.llcs[node.0].peek(addr)
    }

    /// Drops all cached lines (cold-start for tests). Also invalidates the
    /// stall memo (conservative: the memoized formulas are classification-
    /// keyed and LLC-content-independent, but a cache reconfiguration event
    /// should never be able to replay stale arithmetic).
    pub fn flush_caches(&mut self) {
        for llc in &mut self.llcs {
            llc.flush_all();
        }
        self.memo.invalidate();
    }

    fn invalidate_peers(
        &mut self,
        a: PhysAddr,
        keep: NodeId,
        wb: &mut WritebackAcc,
        writeback_dirty: bool,
    ) {
        for (i, llc) in self.llcs.iter_mut().enumerate() {
            if i == keep.0 {
                continue;
            }
            if let Some(LineState::Modified) = llc.invalidate(a) {
                if writeback_dirty {
                    wb.add(a.home(), 1);
                }
            }
        }
    }

    fn invalidate_all_peers(&mut self, a: PhysAddr, keep: NodeId) {
        for (i, llc) in self.llcs.iter_mut().enumerate() {
            if i != keep.0 {
                llc.invalidate(a);
            }
        }
    }

    fn flush_writebacks(&mut self, now: Time, from: NodeId, wb: &WritebackAcc) {
        for (node, lines) in wb.per_node.iter().enumerate() {
            if *lines > 0 {
                let bytes = lines * LINE_BYTES;
                self.dram[node].write(now, bytes);
                if node != from.0 {
                    self.qpi.transfer(now, from, NodeId(node), bytes);
                }
            }
        }
    }
}

#[derive(Debug, Default)]
struct WritebackAcc {
    per_node: Vec<u64>,
}

impl WritebackAcc {
    fn add(&mut self, node: NodeId, lines: u64) {
        if self.per_node.len() <= node.0 {
            self.per_node.resize(node.0 + 1, 0);
        }
        self.per_node[node.0] += lines;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemSystem {
        MemSystem::new(MemConfig::dual_socket_broadwell())
    }

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    #[test]
    fn local_ddio_write_avoids_dram() {
        let mut m = mem();
        let buf = m.alloc(N0, 4096);
        m.dma_write(Time::ZERO, N0, buf, 1500);
        let c = m.counters();
        assert_eq!(c.dram_write_bytes(N0), 0, "DDIO write must stay in LLC");
        assert_eq!(c.interconnect_bytes, 0);
    }

    #[test]
    fn remote_dma_write_hits_dram_and_qpi() {
        let mut m = mem();
        let buf = m.alloc(N0, 4096);
        m.dma_write(Time::ZERO, N1, buf, 1500);
        let c = m.counters();
        assert!(c.dram_write_bytes(N0) >= 1500);
        assert!(c.interconnect_bytes >= 1500);
    }

    #[test]
    fn ddio_off_local_write_goes_to_dram() {
        let mut m = mem();
        m.set_ddio(false);
        let buf = m.alloc(N0, 4096);
        m.dma_write(Time::ZERO, N0, buf, 1500);
        assert!(m.counters().dram_write_bytes(N0) >= 1500);
    }

    #[test]
    fn cpu_read_after_local_ddio_write_hits_llc() {
        let mut m = mem();
        let buf = m.alloc(N0, 4096);
        m.dma_write(Time::ZERO, N0, buf, 1500);
        m.reset_counters();
        let stall = m.cpu_read(Time::ZERO, N0, buf, 1500, AccessKind::Stream);
        assert_eq!(m.counters().total_dram_bytes(), 0, "all hits");
        assert!(stall < Dur::from_ns(60), "LLC-speed copy, got {stall}");
    }

    #[test]
    fn cpu_read_after_remote_dma_write_misses_to_dram() {
        let mut m = mem();
        let buf = m.alloc(N0, 4096);
        // Device on node 1 writes node 0's buffer: no DDIO, data in DRAM.
        m.dma_write(Time::ZERO, N1, buf, 1500);
        m.reset_counters();
        let stall = m.cpu_read(Time::ZERO, N0, buf, 1500, AccessKind::Stream);
        assert!(m.counters().dram_read_bytes(N0) >= 1500);
        assert!(stall > Dur::from_ns(30), "must stall on DRAM, got {stall}");
    }

    #[test]
    fn remote_dma_read_consumes_dram_despite_llc_hit() {
        // Figure 7's observation: remote Tx memory bandwidth equals the
        // throughput — DRAM is probed in parallel even on LLC hits.
        let mut m = mem();
        let buf = m.alloc(N0, 65536);
        // CPU writes the payload: lines are Modified in LLC0.
        m.cpu_write(Time::ZERO, N0, buf, 4096, AccessKind::Stream);
        m.reset_counters();
        m.dma_read(Time::ZERO, N1, buf, 4096);
        let c = m.counters();
        assert!(
            c.dram_read_bytes(N0) >= 4096,
            "parallel probe consumes DRAM"
        );
        // ... and the line must NOT have been invalidated.
        m.reset_counters();
        let stall = m.cpu_read(Time::ZERO, N0, buf, 4096, AccessKind::Stream);
        assert_eq!(m.counters().total_dram_bytes(), 0, "line still cached");
        assert!(stall < Dur::from_ns(100));
    }

    #[test]
    fn local_dma_read_of_cached_data_avoids_dram() {
        let mut m = mem();
        let buf = m.alloc(N0, 65536);
        m.cpu_write(Time::ZERO, N0, buf, 4096, AccessKind::Stream);
        m.reset_counters();
        m.dma_read(Time::ZERO, N0, buf, 4096);
        assert_eq!(m.counters().dram_read_bytes(N0), 0);
    }

    #[test]
    fn remote_dma_write_invalidates_cached_line() {
        let mut m = mem();
        let buf = m.alloc(N0, 4096);
        m.cpu_write(Time::ZERO, N0, buf, 64, AccessKind::Pointer);
        m.dma_write(Time::ZERO, N1, buf, 64);
        m.reset_counters();
        // Next CPU read must go to DRAM.
        m.cpu_read(Time::ZERO, N0, buf, 64, AccessKind::Pointer);
        assert!(m.counters().dram_read_bytes(N0) >= 64);
    }

    #[test]
    fn pointer_read_exposes_more_latency_than_stream() {
        let mut m = mem();
        let a = m.alloc(N0, 1 << 20);
        let b = m.alloc(N0, 1 << 20);
        let p = m.cpu_read(Time::ZERO, N0, a, 64, AccessKind::Pointer);
        let s = m.cpu_read(Time::ZERO, N0, b, 64, AccessKind::Stream);
        assert!(p > s, "pointer {p} vs stream {s}");
    }

    #[test]
    fn remote_cpu_read_crosses_qpi() {
        let mut m = mem();
        let buf = m.alloc(N1, 4096);
        let stall = m.cpu_read(Time::ZERO, N0, buf, 64, AccessKind::Pointer);
        let c = m.counters();
        assert!(c.interconnect_bytes >= 64);
        assert!(c.dram_read_bytes(N1) >= 64);
        // Remote miss must cost more than a local one.
        let local = m.alloc(N0, 4096);
        let local_stall = m.cpu_read(Time::ZERO, N0, local, 64, AccessKind::Pointer);
        assert!(stall > local_stall);
    }

    #[test]
    fn dirty_line_migrates_between_sockets() {
        let mut m = mem();
        let buf = m.alloc(N0, 4096);
        m.cpu_write(Time::ZERO, N0, buf, 64, AccessKind::Pointer);
        m.reset_counters();
        // Node 1 reads the dirty line: cache-to-cache, writeback to home.
        m.cpu_read(Time::ZERO, N1, buf, 64, AccessKind::Pointer);
        let c = m.counters();
        assert!(c.dram_write_bytes(N0) >= 64, "implicit writeback");
        // Both sockets now share it; a re-read on node 0 hits.
        m.reset_counters();
        m.cpu_read(Time::ZERO, N0, buf, 64, AccessKind::Pointer);
        assert_eq!(m.counters().total_dram_bytes(), 0);
    }

    #[test]
    fn stream_through_consumes_bandwidth_without_caching() {
        let mut m = mem();
        let stall = m.cpu_stream_through(Time::ZERO, N0, N1, 1 << 20, false);
        let c = m.counters();
        assert!(c.dram_read_bytes(N1) >= 1 << 20);
        assert!(c.interconnect_bytes >= 1 << 20);
        assert!(
            stall > Dur::from_us(20),
            "1 MiB over QPI takes a while: {stall}"
        );
    }

    #[test]
    fn congested_qpi_slows_remote_dma() {
        let mut m = mem();
        let buf = m.alloc(N0, 1 << 20);
        let quiet = m.dma_write(Time::ZERO, N1, buf, 1500);
        // Saturate the device->home direction (node1 -> node0) with ~1 ms of
        // writes from a STREAM-like antagonist on node 1 targeting node 0.
        m.cpu_stream_through(Time::ZERO, N1, N0, 38_400_000, true);
        let buf2 = m.alloc(N0, 1 << 20);
        let congested = m.dma_write(Time::ZERO, N1, buf2, 1500);
        assert!(
            congested > quiet * 10,
            "congestion must slow remote DMA: quiet={quiet} congested={congested}"
        );
    }

    #[test]
    fn mmio_and_interrupt_hops() {
        let m = mem();
        assert_eq!(m.mmio_extra_hops(N0, N0), Dur::ZERO);
        assert!(m.mmio_extra_hops(N0, N1) > Dur::ZERO);
        assert_eq!(m.interrupt_extra_hops(N1, N0), m.mmio_extra_hops(N0, N1));
    }

    #[test]
    fn counters_reset() {
        let mut m = mem();
        let buf = m.alloc(N0, 4096);
        m.dma_write(Time::ZERO, N1, buf, 1500);
        assert!(m.counters().total_dram_bytes() > 0);
        m.reset_counters();
        assert_eq!(m.counters().total_dram_bytes(), 0);
        assert_eq!(m.counters().interconnect_bytes, 0);
    }

    #[test]
    fn memoized_dma_write_stall_matches_fresh() {
        // A replayed access served from the memo must return bit-identical
        // stalls to a fresh system computing the same access uncached, for
        // both DDIO-local and remote (DRAM) paths, DDIO on and off.
        for ddio in [true, false] {
            for dev in [N0, N1] {
                for len in [64u64, 1448, 65536] {
                    let mut warm = mem();
                    warm.set_ddio(ddio);
                    let wb = warm.alloc(N0, 1 << 20);
                    warm.dma_write(Time::ZERO, dev, wb, len);
                    let memoized =
                        warm.dma_write(Time::from_ms(5), dev, wb.offset(256 * 1024), len);
                    let mut cold = mem();
                    cold.set_ddio(ddio);
                    let cb = cold.alloc(N0, 1 << 20);
                    let fresh = cold.dma_write(Time::from_ms(5), dev, cb.offset(256 * 1024), len);
                    assert_eq!(memoized, fresh, "ddio={ddio} dev={dev} len={len}");
                    let (hits, _) = warm.memo_stats();
                    assert!(hits >= 1, "second write must be served from the memo");
                }
            }
        }
    }

    #[test]
    fn memoized_dma_read_stall_matches_fresh() {
        for dev in [N0, N1] {
            for len in [64u64, 1448, 65536] {
                let mut warm = mem();
                let wb = warm.alloc(N0, 1 << 20);
                warm.dma_read(Time::ZERO, dev, wb, len);
                let memoized = warm.dma_read(Time::from_ms(5), dev, wb.offset(256 * 1024), len);
                let mut cold = mem();
                let cb = cold.alloc(N0, 1 << 20);
                let fresh = cold.dma_read(Time::from_ms(5), dev, cb.offset(256 * 1024), len);
                assert_eq!(memoized, fresh, "dev={dev} len={len}");
                let (hits, _) = warm.memo_stats();
                assert!(hits >= 1, "second read must be served from the memo");
            }
        }
    }

    #[test]
    fn memoized_cpu_stall_matches_fresh() {
        for kind in [AccessKind::Pointer, AccessKind::Stream] {
            for target in [N0, N1] {
                let mut warm = mem();
                let wb = warm.alloc(target, 1 << 20);
                warm.cpu_read(Time::ZERO, N0, wb, 4096, kind);
                let memoized =
                    warm.cpu_read(Time::from_ms(5), N0, wb.offset(256 * 1024), 4096, kind);
                let mut cold = mem();
                let cb = cold.alloc(target, 1 << 20);
                let fresh = cold.cpu_read(Time::from_ms(5), N0, cb.offset(256 * 1024), 4096, kind);
                assert_eq!(memoized, fresh, "kind={kind:?} target={target}");
                let (hits, _) = warm.memo_stats();
                assert!(hits >= 1, "second miss-pattern read must hit the memo");
            }
        }
    }

    #[test]
    fn memo_replay_still_consumes_bandwidth() {
        // A memo hit must perform the same byte accounting as the slow path:
        // counters and link meters advance identically.
        let mut m = mem();
        let b = m.alloc(N0, 1 << 20);
        m.dma_write(Time::ZERO, N1, b, 1448);
        let before = m.counters();
        m.dma_write(Time::from_ms(5), N1, b.offset(4096), 1448);
        let (hits, _) = m.memo_stats();
        assert!(hits >= 1);
        let after = m.counters();
        assert_eq!(
            after.dram_write_bytes(N0) - before.dram_write_bytes(N0),
            1472,
            "memo replay must bump DRAM write bytes (23 lines)"
        );
        assert_eq!(
            after.interconnect_bytes - before.interconnect_bytes,
            1472,
            "memo replay must bump interconnect bytes"
        );
    }

    #[test]
    fn memo_bypassed_under_congestion() {
        // With the home write link saturated, the idleness gate must route
        // the access down the exact queueing path, not the memo.
        let mut m = mem();
        let b = m.alloc(N0, 1 << 20);
        let quiet = m.dma_write(Time::ZERO, N1, b, 1448);
        m.cpu_stream_through(Time::from_ms(5), N1, N0, 38_400_000, true);
        let congested = m.dma_write(Time::from_ms(5), N1, b.offset(4096), 1448);
        assert!(
            congested > quiet * 10,
            "congestion must still be modeled exactly: quiet={quiet} congested={congested}"
        );
    }

    #[test]
    fn memo_generation_invalidates_entries() {
        let mut memo = StallMemo::default();
        let k = StallMemo::key(MEMO_DMA_WRITE_DRAM, 1, 0, 23);
        memo.put(k, Dur::from_ns(10), Dur::from_ns(20), Dur::from_ns(30));
        assert!(memo.get(k).is_some());
        memo.invalidate();
        assert!(memo.get(k).is_none(), "stale generation must not be served");
        memo.put(k, Dur::from_ns(1), Dur::from_ns(2), Dur::from_ns(3));
        assert_eq!(memo.get(k).expect("restamped").exposed, Dur::from_ns(3));
    }

    #[test]
    fn zero_length_accesses_free() {
        let mut m = mem();
        let buf = m.alloc(N0, 64);
        assert_eq!(
            m.cpu_read(Time::ZERO, N0, buf, 0, AccessKind::Pointer),
            Dur::ZERO
        );
        assert_eq!(m.dma_write(Time::ZERO, N0, buf, 0), Dur::ZERO);
        assert_eq!(m.dma_read(Time::ZERO, N0, buf, 0), Dur::ZERO);
    }
}
