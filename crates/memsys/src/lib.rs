//! NUMA memory-system substrate for the IOctopus reproduction.
//!
//! Models the part of the machine where NUDMA effects (the paper's §2.2)
//! actually live:
//!
//! * a multi-socket **topology** with per-node DRAM and cores ([`topology`]),
//! * per-socket **last-level caches** with a DDIO way-partition ([`cache`]),
//! * the **QPI/UPI interconnect** as per-direction bandwidth servers
//!   ([`interconnect`]),
//! * per-node **DRAM channel groups** ([`dram`]),
//! * a **NUMA-aware physical allocator** ([`alloc`]), and
//! * the [`MemSystem`] façade that CPU cores and PCIe devices access memory
//!   through. Every CPU load/store and every device DMA goes through this
//!   façade, which accounts cache state, DRAM and interconnect bandwidth, and
//!   returns the access stall time.
//!
//! The DDIO rules implemented here are the ones the paper observes on real
//! hardware (§2.2, §5.1.1):
//!
//! * local DMA **writes** allocate into a bounded subset of the LLC ways and
//!   never touch DRAM;
//! * remote DMA **writes** invalidate cached copies and go to the home DRAM
//!   over the interconnect;
//! * remote DMA **reads** probe the home LLC and DRAM *in parallel* — data is
//!   served from the LLC without invalidation when present, but DRAM
//!   bandwidth is consumed regardless (this is the paper's footnote-5
//!   hypothesis, and it is what makes remote-Tx memory bandwidth equal the
//!   network throughput in Figure 7).
//!
//! # Example
//!
//! ```
//! use memsys::{MemConfig, MemSystem, NodeId, AccessKind};
//! use simcore::Time;
//!
//! let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
//! let buf = mem.alloc(NodeId(0), 4096);
//! // A device attached to node 1 DMA-writes a remote buffer: DRAM traffic.
//! mem.dma_write(Time::ZERO, NodeId(1), buf, 1500);
//! assert!(mem.counters().dram_write_bytes(NodeId(0)) > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod cache;
pub mod counters;
pub mod dram;
pub mod interconnect;
pub mod system;
pub mod topology;

pub use alloc::PhysAllocator;
pub use cache::{Llc, LlcConfig};
pub use counters::Counters;
pub use system::{AccessKind, MemConfig, MemSystem};
pub use topology::{NodeId, PhysAddr, Topology};
