//! NUMA-aware physical allocation.
//!
//! Kernels satisfy allocations from the node the caller asks for (§2.1:
//! "by satisfying application memory allocations from within the memory
//! modules of the node that runs them"). The simulator mirrors that with a
//! per-node bump allocator over the striped address map; buffers never move,
//! so the home node of any address is implied by its range.

use crate::topology::{NodeId, PhysAddr, LINE_BYTES, NODE_SHIFT};

/// Per-node bump allocator.
#[derive(Debug, Clone)]
pub struct PhysAllocator {
    next: Vec<u64>,
    limit: u64,
}

impl PhysAllocator {
    /// Creates an allocator for `nodes` nodes, each owning `bytes_per_node`
    /// of memory.
    ///
    /// # Panics
    /// Panics if `bytes_per_node` exceeds the per-node address window.
    pub fn new(nodes: usize, bytes_per_node: u64) -> Self {
        assert!(
            bytes_per_node <= 1 << NODE_SHIFT,
            "node memory exceeds the address window"
        );
        PhysAllocator {
            next: vec![0; nodes],
            limit: bytes_per_node,
        }
    }

    /// Allocates `bytes` on `node`, line-aligned.
    ///
    /// # Panics
    /// Panics if the node is unknown or out of memory (experiments size their
    /// footprints well under node capacity; running out indicates a harness
    /// bug, not a recoverable condition).
    pub fn alloc(&mut self, node: NodeId, bytes: u64) -> PhysAddr {
        let n = node.0;
        assert!(n < self.next.len(), "unknown node {node}");
        let aligned = self.next[n].div_ceil(LINE_BYTES) * LINE_BYTES;
        let end = aligned
            .checked_add(bytes)
            .expect("allocation size overflow");
        assert!(
            end <= self.limit,
            "node {node} out of simulated memory ({end} > {})",
            self.limit
        );
        self.next[n] = end;
        PhysAddr(((n as u64) << NODE_SHIFT) + aligned)
    }

    /// Bytes currently allocated on `node`.
    pub fn used(&self, node: NodeId) -> u64 {
        self.next[node.0]
    }

    /// Per-node capacity.
    pub fn capacity(&self) -> u64 {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    #[test]
    fn allocations_live_on_their_node() {
        let mut a = PhysAllocator::new(2, 1 << 30);
        assert_eq!(a.alloc(NodeId(0), 100).home(), NodeId(0));
        assert_eq!(a.alloc(NodeId(1), 100).home(), NodeId(1));
    }

    #[test]
    fn allocations_are_line_aligned_and_disjoint() {
        let mut a = PhysAllocator::new(1, 1 << 20);
        let x = a.alloc(NodeId(0), 10);
        let y = a.alloc(NodeId(0), 10);
        assert_eq!(x.0 % LINE_BYTES, 0);
        assert_eq!(y.0 % LINE_BYTES, 0);
        assert!(y.0 >= x.0 + 10);
        assert_eq!(a.used(NodeId(0)), y.0 - ((0u64) << NODE_SHIFT) + 10);
    }

    #[test]
    #[should_panic(expected = "out of simulated memory")]
    fn exhaustion_panics() {
        let mut a = PhysAllocator::new(1, 128);
        a.alloc(NodeId(0), 64);
        a.alloc(NodeId(0), 65);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_node_panics() {
        PhysAllocator::new(1, 128).alloc(NodeId(3), 1);
    }

    #[test]
    fn prop_no_overlap() {
        let mut r = SimRng::seed(0xa110c);
        for _ in 0..16 {
            let count = 1 + r.below(99) as usize;
            let mut a = PhysAllocator::new(1, 1 << 24);
            let mut ranges: Vec<(u64, u64)> = Vec::new();
            for _ in 0..count {
                let s = 1 + r.below(9_999);
                let p = a.alloc(NodeId(0), s);
                for &(lo, hi) in &ranges {
                    assert!(p.0 + s <= lo || p.0 >= hi, "overlap");
                }
                ranges.push((p.0, p.0 + s));
            }
        }
    }
}
