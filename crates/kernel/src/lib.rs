//! OS-kernel substrate for the IOctopus reproduction.
//!
//! Models the parts of Linux the paper's mechanism lives in:
//!
//! * [`params`] — the CPU cost model (syscall, per-packet stack, copy
//!   bandwidth…) with each constant tied to the paper observation it
//!   reflects,
//! * [`cores`] — per-core busy-time accounting (cores are serial resources;
//!   single-core experiments serialize app work and softirq on one core
//!   exactly as §5.1.1 does),
//! * [`sched`] — threads, affinity, and `sched_setaffinity` migration
//!   (Figure 14's trigger),
//! * [`socket`] — sockets bound to flows, with receive queues, blocked-
//!   reader wakeups, and out-of-order detection,
//! * [`pools`] — NUMA-local Rx buffer and Tx kernel-buffer pools ("the
//!   driver can guarantee that these buffers do not span NUMA nodes by
//!   allocating them appropriately", §3.3),
//! * [`netdev`] — network interfaces and the two driver models: `Standard`
//!   (one netdev per PF, Figure 5a/b) and `OctoTeam` (the paper's team-
//!   driver mode: one netdev over all PFs, §4.2),
//! * [`host`] — the full host: syscall entry points (`send`/`recv`), NAPI
//!   interrupt handling, XPS transmit-queue selection with the `ooo_okay`
//!   out-of-order guard, ARFS steering callbacks, and the IOctoRFS updates
//!   the octoNIC driver applies on process migration.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cores;
pub mod host;
pub mod netdev;
pub mod params;
pub mod pools;
pub mod sched;
pub mod socket;

pub use cores::Cores;
pub use host::{Host, HostConfig, HostOut, HostRobustness, RecvOutcome, SendOutcome};
pub use netdev::{DriverModel, NetdevId};
pub use params::CpuCosts;
pub use sched::ThreadId;
pub use socket::SockId;
