//! The CPU cost model.
//!
//! Every constant is a *software* cost (cycles spent executing kernel or
//! libc code); *memory* costs (cache misses, DRAM, QPI) are charged
//! separately and mechanistically by [`memsys`]. The defaults are calibrated
//! so that the absolute throughputs land near the paper's Broadwell numbers
//! (§5.1.1: single-core TCP Rx ≈ 22 Gb/s, Tx(TSO) ≈ 47 Gb/s, pktgen ≈
//! 4.1 Mpps for the local configuration) — see `ioctopus::params` for the
//! calibration experiments.

use simcore::Dur;

/// Per-operation CPU costs of the simulated kernel.
#[derive(Debug, Clone, Copy)]
pub struct CpuCosts {
    /// User↔kernel crossing (syscall entry + exit).
    pub syscall: Dur,
    /// Socket-layer bookkeeping per send/recv call.
    pub per_msg_stack: Dur,
    /// IP/TCP processing per packet on the receive (softirq) side.
    pub per_pkt_stack: Dur,
    /// Interrupt entry + NAPI scheduling.
    pub irq_entry: Dur,
    /// Waking a blocked thread (enqueue + context switch once the core is
    /// free).
    pub wake_latency: Dur,
    /// CPU-visible cost of a posted doorbell MMIO write (the write itself is
    /// posted; this is the store + write-combining flush cost, which does
    /// NOT grow when the device is remote — §5.1.1's pktgen delta is the
    /// completion-entry *read*, not the doorbell).
    pub doorbell: Dur,
    /// Driver work to build/post one descriptor (excluding the memory
    /// write, charged via `memsys`).
    pub per_desc: Dur,
    /// Completion handling per Tx completion (free skb, account).
    pub per_tx_completion: Dur,
    /// Instruction-issue-bound copy bandwidth of `copy_to/from_user`
    /// (bytes/second); cache stalls add on top via `memsys`.
    pub memcpy_bytes_per_sec: u64,
    /// pktgen's per-packet loop cost (it rewrites the same packet header,
    /// no socket or copy work — §5.1.1: "repeatedly transmits the same IP
    /// packet without touching any data").
    pub pktgen_loop: Dur,
}

impl CpuCosts {
    /// Calibrated for the paper's 2.0 GHz Broadwell cores running Linux
    /// 4.14.
    pub fn broadwell_linux414() -> Self {
        CpuCosts {
            syscall: Dur::from_ns(180),
            per_msg_stack: Dur::from_ns(170),
            per_pkt_stack: Dur::from_ns(230),
            irq_entry: Dur::from_ns(600),
            wake_latency: Dur::from_ns(900),
            doorbell: Dur::from_ns(60),
            per_desc: Dur::from_ns(45),
            per_tx_completion: Dur::from_ns(60),
            memcpy_bytes_per_sec: 8_000_000_000,
            pktgen_loop: Dur::from_ns(110),
        }
    }

    /// Time the copy loop itself needs for `len` bytes (stalls excluded).
    pub fn memcpy_issue(&self, len: u64) -> Dur {
        Dur::for_bytes(len, self.memcpy_bytes_per_sec)
    }
}

impl Default for CpuCosts {
    fn default() -> Self {
        Self::broadwell_linux414()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcpy_issue_scales_linearly() {
        let c = CpuCosts::default();
        let one = c.memcpy_issue(1_000);
        let ten = c.memcpy_issue(10_000);
        assert_eq!(ten.as_ps(), one.as_ps() * 10);
    }

    #[test]
    fn broadwell_costs_are_sub_microsecond() {
        let c = CpuCosts::broadwell_linux414();
        assert!(c.syscall < Dur::from_us(1));
        assert!(c.per_pkt_stack < Dur::from_us(1));
        assert!(c.memcpy_issue(1448) < Dur::from_us(1));
    }
}
