//! Threads and placement.
//!
//! The experiments pin each thread to a core and occasionally migrate it
//! with `sched_setaffinity` (§5.3). The scheduler therefore tracks the
//! thread→core assignment and exposes migration; time-sharing is not
//! modeled because no experiment oversubscribes a core.

use memsys::{NodeId, Topology};

/// Identifies a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Thread {
    core: usize,
    migrations: u64,
}

/// The thread registry.
#[derive(Debug)]
pub struct Sched {
    topo: Topology,
    threads: Vec<Thread>,
}

impl Sched {
    /// Creates an empty registry over `topo`.
    pub fn new(topo: Topology) -> Self {
        Sched {
            topo,
            threads: Vec::new(),
        }
    }

    /// Spawns a thread pinned to `core`.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn spawn(&mut self, core: usize) -> ThreadId {
        assert!(core < self.topo.total_cores(), "core {core} out of range");
        let id = ThreadId(self.threads.len());
        self.threads.push(Thread {
            core,
            migrations: 0,
        });
        id
    }

    /// The core `t` currently runs on.
    pub fn core_of(&self, t: ThreadId) -> usize {
        self.thread(t).core
    }

    /// The NUMA node `t` currently runs on.
    pub fn node_of(&self, t: ThreadId) -> NodeId {
        self.topo.node_of_core(self.thread(t).core)
    }

    /// `sched_setaffinity`: moves `t` to `core`. Returns the previous core.
    pub fn migrate(&mut self, t: ThreadId, core: usize) -> usize {
        assert!(core < self.topo.total_cores(), "core {core} out of range");
        let th = self.thread_mut(t);
        let old = th.core;
        if old != core {
            th.core = core;
            th.migrations += 1;
        }
        old
    }

    /// How many times `t` has migrated.
    pub fn migrations(&self, t: ThreadId) -> u64 {
        self.thread(t).migrations
    }

    /// Number of registered threads.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Whether no threads exist yet.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    fn thread(&self, t: ThreadId) -> &Thread {
        self.threads
            .get(t.0)
            .unwrap_or_else(|| panic!("unknown {t}"))
    }

    fn thread_mut(&mut self, t: ThreadId) -> &mut Thread {
        self.threads
            .get_mut(t.0)
            .unwrap_or_else(|| panic!("unknown {t}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Sched {
        Sched::new(Topology::new(2, 14))
    }

    #[test]
    fn spawn_and_place() {
        let mut s = sched();
        let t = s.spawn(3);
        assert_eq!(s.core_of(t), 3);
        assert_eq!(s.node_of(t), NodeId(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn migrate_across_sockets() {
        let mut s = sched();
        let t = s.spawn(0);
        let old = s.migrate(t, 14);
        assert_eq!(old, 0);
        assert_eq!(s.node_of(t), NodeId(1));
        assert_eq!(s.migrations(t), 1);
    }

    #[test]
    fn migrate_to_same_core_is_noop() {
        let mut s = sched();
        let t = s.spawn(5);
        s.migrate(t, 5);
        assert_eq!(s.migrations(t), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_rejected() {
        sched().spawn(99);
    }
}
