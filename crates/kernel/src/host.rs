//! The simulated host: syscalls, NAPI, XPS, ARFS callbacks, drivers.
//!
//! [`Host`] owns the memory system, the PCIe fabric, the NIC, the cores and
//! the socket table, and exposes the operations the workloads and the
//! experiment event loop drive:
//!
//! * [`Host::send`] / [`Host::recv`] — the application data path, charging
//!   syscall, copy, and descriptor costs on the caller's core and issuing
//!   doorbells;
//! * [`Host::wire_arrival`] — a packet arriving from the peer, steered by
//!   the NIC (MPFS → ARFS → RSS) and DMA'd into a posted buffer;
//! * [`Host::irq`] — NAPI: drains completion queues, delivers segments to
//!   sockets, refills Rx rings, frees Tx buffers, wakes blocked threads,
//!   and applies deferred steering updates once the old queue is drained
//!   (the paper's out-of-order guard, §2.3/§4.2);
//! * [`Host::migrate_thread`] — `sched_setaffinity`, which triggers the
//!   ARFS callback chain that, under the `OctoTeam` driver, reprograms
//!   IOctoRFS so the flow follows the process to the local PF (§5.3).

use std::collections::VecDeque;

use memsys::{AccessKind, MemSystem, NodeId, PhysAddr};
use nic::desc::TxFragment;
use nic::desc::{CQE_BYTES, DESC_BYTES};
use nic::{FlowTuple, MacAddr, Nic, QueueConfig, QueueId, RxDesc, RxOutcome, TxDesc, TxOutcome};
use pcie::{PcieFabric, PfId};
use simcore::{Audit, Dur, FaultKind, FxHashMap, OutBuf, Time};
use telemetry::trace::{Domain, TraceKind};
use telemetry::{Snapshot, TraceRing};

use crate::cores::Cores;
use crate::netdev::{DriverModel, Netdev, NetdevId};
use crate::params::CpuCosts;
use crate::pools::BufPool;
use crate::sched::{Sched, ThreadId};
use crate::socket::{RxSegment, SockId, Socket, SocketTable};

/// Host-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct HostConfig {
    /// CPU cost model.
    pub costs: CpuCosts,
    /// Driver managing the NIC.
    pub driver: DriverModel,
    /// Rx buffers allocated per queue.
    pub rx_buffers_per_queue: usize,
    /// Size of each Rx buffer (≥ MTU).
    pub rx_buf_bytes: u64,
    /// Tx kernel buffers per node.
    pub tx_bufs_per_node: usize,
    /// Size of each Tx kernel buffer (one TSO aggregate).
    pub tx_buf_bytes: u64,
    /// Socket send-buffer limit (bytes in flight to the NIC).
    pub sndbuf_bytes: u64,
    /// Per-socket user buffer size.
    pub user_buf_bytes: u64,
    /// §2.4 ablation: allocate ring/CQ memory on the *device's* node instead
    /// of the queue's CPU node ("a response ring is allocated locally to the
    /// device and remotely to the CPU").
    pub rings_device_local: bool,
    /// Driver watchdog: completions visible in host memory at least this
    /// long without being reaped mean an interrupt was lost; the queue is
    /// polled directly. Must comfortably exceed the NIC's `irq_delay`.
    pub watchdog_timeout: Dur,
    /// Maximum doorbell re-rings per stuck Tx queue before the watchdog
    /// gives up (descriptors then sit until the application tears down).
    pub tx_retry_limit: u32,
    /// Base backoff between doorbell retries; doubled per attempt.
    pub tx_retry_backoff: Dur,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            costs: CpuCosts::default(),
            driver: DriverModel::Standard,
            rx_buffers_per_queue: 512,
            rx_buf_bytes: 2048,
            tx_bufs_per_node: 256,
            tx_buf_bytes: 64 * 1024,
            sndbuf_bytes: 4 << 20,
            user_buf_bytes: 1 << 20,
            rings_device_local: false,
            watchdog_timeout: Dur::from_us(100),
            tx_retry_limit: 5,
            tx_retry_backoff: Dur::from_us(20),
        }
    }
}

/// Robustness counters: what the driver absorbed and recovered from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostRobustness {
    /// Tx completions reaped with error status (PF failed / link down).
    pub tx_error_completions: u64,
    /// Queues the watchdog polled because completions sat unreaped past
    /// the timeout (lost interrupts).
    pub watchdog_irq_recoveries: u64,
    /// Doorbell MMIO writes dropped by a dead link.
    pub doorbells_lost: u64,
    /// Doorbell re-rings issued by the watchdog.
    pub doorbell_retries: u64,
    /// Fault events applied via [`Host::apply_fault`].
    pub faults_applied: u64,
    /// Steering re-install passes that reached every queue's control path
    /// (flows pulled home after PF recovery).
    pub steering_reinstalls: u64,
    /// Steering re-install attempts retried by the watchdog because a
    /// queue's control path was dead when the PF came back.
    pub steering_reinstall_retries: u64,
    /// Completions fenced by the epoch check: they were in flight across a
    /// surprise removal / re-enumeration, so they were counted and their
    /// resources recycled, but never delivered.
    pub fenced_completions: u64,
    /// Interrupts discarded because their epoch stamp predated the queue
    /// PF's current epoch (the device that raised them is gone).
    pub fenced_irqs: u64,
    /// Completed quiesce/drain/rebind reconfiguration sequences (one per
    /// presence transition in either direction).
    pub reconfigs: u64,
    /// Transitions into legacy NUDMA mode: a surprise removal left exactly
    /// one live PF, so every flow crosses the socket interconnect.
    pub nudma_entries: u64,
    /// Transitions back to uniform IOctopus mode: a re-enumeration restored
    /// a second live PF and steering was pulled home.
    pub nudma_exits: u64,
}

/// Per-queue doorbell-retry state (bounded exponential backoff).
#[derive(Debug, Clone, Copy, Default)]
struct RetryState {
    retries: u32,
    next_at: Time,
}

/// Events the host hands back to the experiment loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostOut {
    /// A wire packet left for the peer; arrives there at `at`.
    PacketToPeer {
        /// Arrival time at the peer NIC.
        at: Time,
        /// Flow (server→client direction).
        flow: FlowTuple,
        /// Payload bytes.
        bytes: u64,
    },
    /// An MSI-X interrupt will invoke [`Host::irq`] for `queue` at `at`.
    Irq {
        /// Delivery time.
        at: Time,
        /// Queue to service.
        queue: QueueId,
        /// Device epoch of the queue's PF when the interrupt was raised.
        /// [`Host::irq_stamped`] discards the interrupt if the PF has been
        /// surprise-removed or re-enumerated since (a stale epoch).
        epoch: u64,
    },
    /// A blocked thread becomes runnable at `at`.
    Wake {
        /// Wake time.
        at: Time,
        /// The thread to resume.
        thread: ThreadId,
    },
}

/// Result of [`Host::send`]. Follow-up events (wire packets, interrupts)
/// are appended to the `OutBuf` the caller passed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Data queued to the NIC.
    Sent {
        /// When the sending core finished the syscall.
        done_at: Time,
    },
    /// Send buffer / ring / kernel-buffer pressure: the caller blocks and is
    /// woken by a Tx completion.
    WouldBlock,
}

/// Result of [`Host::recv`].
#[derive(Debug, Clone)]
pub enum RecvOutcome {
    /// Data copied to the user buffer.
    Data {
        /// When the syscall returned.
        done_at: Time,
        /// Bytes delivered.
        bytes: u64,
    },
    /// Nothing buffered: the caller blocks and is woken by NAPI delivery.
    WouldBlock,
}

/// The simulated server host.
#[derive(Debug)]
pub struct Host {
    /// Memory system (public: harnesses read counters).
    pub mem: MemSystem,
    /// PCIe fabric.
    pub fabric: PcieFabric,
    /// The NIC.
    pub nic: Nic,
    /// Cores (public: harnesses read utilization).
    pub cores: Cores,
    /// Thread registry.
    pub sched: Sched,
    cfg: HostConfig,
    sockets: SocketTable,
    netdevs: Vec<Netdev>,
    /// The NIC's endpoints in PF-index order (as passed to [`Host::new`]).
    pfs: Vec<PfId>,
    /// Which PF each queue rides (cached from the NIC).
    queue_pf: Vec<PfId>,
    queue_node: Vec<NodeId>,
    queue_irq_core: Vec<usize>,
    rx_pools: Vec<BufPool>,
    tx_pools: Vec<BufPool>,
    /// Per-queue FIFO of in-flight Tx buffers: `(kernel buffer to recycle —
    /// `None` for zero-copy sendfile pages, socket, bytes)`.
    tx_pending: Vec<VecDeque<(Option<PhysAddr>, SockId, u64)>>,
    /// Sockets whose steering should move to a new queue once their old
    /// queue drains: old queue → (socket, desired queue).
    pending_steer: FxHashMap<QueueId, Vec<(SockId, QueueId)>>,
    rx_no_socket_drops: u64,
    tx_retry: Vec<RetryState>,
    /// Bounded-backoff state for re-installing steering after PF recovery
    /// found a dead control path (see [`Host::watchdog`]).
    steer_retry: RetryState,
    steer_pending: bool,
    break_recovery: bool,
    break_readd: bool,
    robust: HostRobustness,
    /// Recycled scratch for NIC Tx doorbells so ringing one never
    /// allocates in steady state (the NIC clears it on entry).
    tx_scratch: TxOutcome,
    /// Kernel-domain sim-time tracer (IRQ delivery, reconfiguration
    /// phases), `None` unless enabled.
    tracer: Option<TraceRing>,
}

impl Host {
    /// Builds the host over an assembled machine. `pfs` are the NIC's
    /// endpoints in PF-index order.
    pub fn new(
        mut mem: MemSystem,
        fabric: PcieFabric,
        mut nic: Nic,
        pfs: &[PfId],
        cfg: HostConfig,
    ) -> Self {
        let topo = mem.topology().clone();
        let total_cores = topo.total_cores();
        let cores = Cores::new(total_cores);
        let sched = Sched::new(topo.clone());

        let mut netdevs = Vec::new();
        let mut queue_pf = Vec::new();
        let mut queue_node = Vec::new();
        let mut queue_irq_core = Vec::new();
        let mut rx_pools = Vec::new();

        let pf_nodes: FxHashMap<PfId, NodeId> = pfs
            .iter()
            .map(|&pf| {
                let node = fabric.node_of(pf).expect("PF attached to the fabric");
                (pf, node)
            })
            .collect();
        let fabric_node_of = |pf: PfId| pf_nodes[&pf];
        let make_queue = |nic: &mut Nic,
                          mem: &mut MemSystem,
                          pf: PfId,
                          core: usize,
                          node: NodeId,
                          queue_pf: &mut Vec<PfId>,
                          queue_node: &mut Vec<NodeId>,
                          queue_irq_core: &mut Vec<usize>,
                          rx_pools: &mut Vec<BufPool>|
         -> QueueId {
            let entries = nic.config().ring_entries as u64;
            // §2.4's ablation moves only the *response* (completion) rings
            // next to the device's I/O controller; request rings stay with
            // the CPU ("a response ring ... allocated locally to the device
            // and remotely to the CPU").
            let cq_node = if cfg.rings_device_local {
                fabric_node_of(pf)
            } else {
                node
            };
            let tx = mem.alloc(node, DESC_BYTES * entries);
            let txc = mem.alloc(cq_node, CQE_BYTES * entries * 4);
            let rx = mem.alloc(node, DESC_BYTES * entries);
            let rxc = mem.alloc(cq_node, CQE_BYTES * entries * 4);
            let q = nic.attach_queue(
                QueueConfig {
                    pf,
                    irq_core: core,
                    node,
                },
                tx,
                txc,
                rx,
                rxc,
            );
            queue_pf.push(pf);
            queue_node.push(node);
            queue_irq_core.push(core);
            let mut pool = BufPool::new(mem, node, cfg.rx_buf_bytes, cfg.rx_buffers_per_queue);
            // Fill the ring from the pool.
            while let Some(buf) = pool.take() {
                if nic
                    .post_rx(
                        q,
                        RxDesc {
                            addr: buf,
                            len: cfg.rx_buf_bytes,
                        },
                    )
                    .is_none()
                {
                    pool.put(buf);
                    break;
                }
            }
            rx_pools.push(pool);
            q
        };

        match cfg.driver {
            DriverModel::Standard => {
                // One netdev per PF; each netdev gets a queue on every core.
                for (i, &pf) in pfs.iter().enumerate() {
                    let mac = MacAddr::local_admin(i as u64);
                    nic.mpfs_mut().register_mac(mac, pf);
                    let queue_by_core = (0..total_cores)
                        .map(|core| {
                            make_queue(
                                &mut nic,
                                &mut mem,
                                pf,
                                core,
                                topo.node_of_core(core),
                                &mut queue_pf,
                                &mut queue_node,
                                &mut queue_irq_core,
                                &mut rx_pools,
                            )
                        })
                        .collect();
                    netdevs.push(Netdev { mac, queue_by_core });
                }
            }
            DriverModel::OctoTeam => {
                // One netdev over all PFs; core i's queue rides the PF local
                // to core i's node (§4.2 "Transmit").
                let mac = MacAddr::local_admin(0x0C70);
                nic.mpfs_mut().register_mac(mac, pfs[0]);
                let queue_by_core = (0..total_cores)
                    .map(|core| {
                        let node = topo.node_of_core(core);
                        let pf = pfs[node.0.min(pfs.len() - 1)];
                        make_queue(
                            &mut nic,
                            &mut mem,
                            pf,
                            core,
                            node,
                            &mut queue_pf,
                            &mut queue_node,
                            &mut queue_irq_core,
                            &mut rx_pools,
                        )
                    })
                    .collect();
                netdevs.push(Netdev { mac, queue_by_core });
            }
        }

        let tx_pools = (0..topo.nodes())
            .map(|n| BufPool::new(&mut mem, NodeId(n), cfg.tx_buf_bytes, cfg.tx_bufs_per_node))
            .collect();
        let n_queues = queue_pf.len();

        Host {
            mem,
            fabric,
            nic,
            cores,
            sched,
            cfg,
            sockets: SocketTable::new(),
            netdevs,
            pfs: pfs.to_vec(),
            queue_pf,
            queue_node,
            queue_irq_core,
            rx_pools,
            tx_pools,
            tx_pending: (0..n_queues).map(|_| VecDeque::new()).collect(),
            pending_steer: FxHashMap::default(),
            rx_no_socket_drops: 0,
            tx_retry: vec![RetryState::default(); n_queues],
            steer_retry: RetryState::default(),
            steer_pending: false,
            break_recovery: false,
            break_readd: false,
            robust: HostRobustness::default(),
            tx_scratch: TxOutcome::default(),
            tracer: None,
        }
    }

    /// Enables kernel-domain tracing (IRQ deliveries, reconfiguration
    /// phase transitions) into a pre-sized ring of `cap` records. Off by
    /// default; the record path is one branch when disabled.
    pub fn enable_tracing(&mut self, cap: usize) {
        self.tracer = Some(TraceRing::new(Domain::Kernel, cap));
    }

    /// Takes the kernel tracer ring for harvest, disabling tracing.
    pub fn take_trace(&mut self) -> Option<TraceRing> {
        self.tracer.take()
    }

    /// Publishes the host's robustness counters — and the NIC's device
    /// counters — into a per-run metric snapshot.
    pub fn publish_metrics(&self, s: &mut Snapshot) {
        let r = self.robust;
        s.push("kernel.tx_error_completions", r.tx_error_completions);
        s.push("kernel.watchdog_irq_recoveries", r.watchdog_irq_recoveries);
        s.push("kernel.doorbells_lost", r.doorbells_lost);
        s.push("kernel.doorbell_retries", r.doorbell_retries);
        s.push("kernel.faults_applied", r.faults_applied);
        s.push("kernel.steering_reinstalls", r.steering_reinstalls);
        s.push(
            "kernel.steering_reinstall_retries",
            r.steering_reinstall_retries,
        );
        s.push("kernel.fenced_completions", r.fenced_completions);
        s.push("kernel.fenced_irqs", r.fenced_irqs);
        s.push("kernel.reconfigs", r.reconfigs);
        s.push("kernel.nudma_entries", r.nudma_entries);
        s.push("kernel.nudma_exits", r.nudma_exits);
        s.push("kernel.rx_no_socket_drops", self.rx_no_socket_drops);
        self.nic.publish_metrics(s);
    }

    /// Records one reconfiguration phase transition (no-op when tracing
    /// is off). `phase`: 0 quiesce / 1 drain / 2 rebind; `mode`: 0
    /// uniform IOctopus / 1 legacy NUDMA.
    #[inline]
    fn note_reconfig_phase(&mut self, now: Time, pf: PfId, phase: u64, epoch: u64, mode: u64) {
        if let Some(tr) = &mut self.tracer {
            tr.push(
                now,
                TraceKind::ReconfigPhase,
                pf.0 as u64,
                phase,
                epoch,
                mode,
            );
        }
    }

    /// The host configuration.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// Interfaces on this host.
    pub fn netdev_count(&self) -> usize {
        self.netdevs.len()
    }

    /// The MAC of `nd`.
    pub fn netdev_mac(&self, nd: NetdevId) -> MacAddr {
        self.netdevs[nd.0].mac
    }

    /// Spawns a thread pinned to `core`.
    pub fn spawn_thread(&mut self, core: usize) -> ThreadId {
        self.sched.spawn(core)
    }

    /// Opens a socket owned by `thread`, bound to inbound flow `flow` on
    /// interface `nd`, and installs initial steering so the flow is serviced
    /// by the owner's queue.
    pub fn open_socket(
        &mut self,
        now: Time,
        thread: ThreadId,
        flow: FlowTuple,
        nd: NetdevId,
    ) -> SockId {
        let core = self.sched.core_of(thread);
        let node = self.sched.node_of(thread);
        let user_buf = self.mem.alloc(node, self.cfg.user_buf_bytes);
        let sock = Socket {
            flow,
            owner: thread,
            netdev: nd,
            rx_q: VecDeque::new(),
            rx_waiting: false,
            tx_waiting: false,
            tx_inflight: 0,
            last_tx_queue: None,
            next_seq: 0,
            ooo_count: 0,
            rx_bytes: 0,
            tx_bytes: 0,
            user_buf,
        };
        let id = self.sockets.insert(sock);
        let q = self.netdevs[nd.0].queue_for_core(core);
        self.install_steering(now, id, q);
        id
    }

    /// Shared access to a socket (harness inspection).
    pub fn socket(&self, id: SockId) -> &Socket {
        self.sockets.get(id)
    }

    /// Packets dropped because no socket matched their flow.
    pub fn rx_no_socket_drops(&self) -> u64 {
        self.rx_no_socket_drops
    }

    /// `sched_setaffinity`: moves `thread` to `core` and queues steering
    /// updates for its sockets (applied once their old queues drain).
    pub fn migrate_thread(&mut self, _now: Time, thread: ThreadId, core: usize) {
        let old_core = self.sched.migrate(thread, core);
        if old_core == core {
            return;
        }
        let socks: Vec<SockId> = self
            .sockets
            .ids()
            .filter(|s| self.sockets.get(*s).owner == thread)
            .collect();
        for s in socks {
            let nd = self.sockets.get(s).netdev;
            let old_q = self.netdevs[nd.0].queue_for_core(old_core);
            let new_q = self.netdevs[nd.0].queue_for_core(core);
            if old_q != new_q {
                self.pending_steer
                    .entry(old_q)
                    .or_default()
                    .push((s, new_q));
            }
        }
    }

    /// Application `send(2)`: copies `bytes` from the socket's user buffer
    /// into kernel buffers, posts descriptors via XPS, and rings the
    /// doorbell. Follow-up events are appended to `out`.
    pub fn send(
        &mut self,
        now: Time,
        sock: SockId,
        bytes: u64,
        out: &mut OutBuf<HostOut>,
    ) -> SendOutcome {
        let src = self.sockets.get(sock).user_buf;
        self.send_from(now, sock, bytes, src, out)
    }

    /// Like [`send`](Self::send) but copying from an arbitrary source
    /// buffer (e.g. a key-value store's value region), so the copy's cache
    /// locality reflects where the application's data actually lives.
    pub fn send_from(
        &mut self,
        now: Time,
        sock: SockId,
        bytes: u64,
        src: PhysAddr,
        out: &mut OutBuf<HostOut>,
    ) -> SendOutcome {
        let costs = self.cfg.costs;
        let (node, core, flow_out, netdev) = {
            let s = self.sockets.get(sock);
            (
                self.sched.node_of(s.owner),
                self.sched.core_of(s.owner),
                s.flow.reversed(),
                s.netdev,
            )
        };
        // Back-pressure checks before doing any work.
        if self.sockets.get(sock).tx_inflight + bytes > self.cfg.sndbuf_bytes {
            self.sockets.get_mut(sock).tx_waiting = true;
            return SendOutcome::WouldBlock;
        }
        let q = self.choose_tx_queue(sock, core, netdev);
        let chunk_cap = self.cfg.tx_buf_bytes;
        let n_chunks = bytes.div_ceil(chunk_cap) as usize;
        if self.nic.tx_backlog(q) + n_chunks > self.nic.config().ring_entries
            || self.tx_pools[node.0].available() < n_chunks
        {
            self.sockets.get_mut(sock).tx_waiting = true;
            return SendOutcome::WouldBlock;
        }

        let mss = self.nic.config().mss;
        // All memory-system reservations use the syscall's event time `now`:
        // reserving at chained future times would push shared FIFO horizons
        // ahead of concurrent senders and destabilize the fluid model (the
        // same rule the NIC follows; see nic::device::Nic::tx_doorbell).
        let mut t = self
            .cores
            .run(core, now, costs.syscall + costs.per_msg_stack);
        let mut left = bytes;
        while left > 0 {
            let chunk = left.min(chunk_cap);
            left -= chunk;
            let kbuf = self.tx_pools[node.0].take().expect("checked above");
            // copy_from_user: issue-bound loop plus cache stalls.
            let issue = costs.memcpy_issue(chunk);
            let rt = Self::rclock(now, t);
            let r = self.mem.cpu_read(
                rt,
                node,
                src,
                chunk.min(self.cfg.user_buf_bytes),
                AccessKind::Stream,
            );
            let w = self
                .mem
                .cpu_write(rt, node, kbuf, chunk, AccessKind::Stream);
            t = self.cores.run(core, t, issue + r + w);
            // Build + post the descriptor.
            t = self.cores.run(core, t, costs.per_desc);
            let desc = TxDesc::simple(kbuf, chunk, flow_out, chunk > mss);
            let slot = self.nic.post_tx(q, desc).expect("backlog checked above");
            let dw = self.mem.cpu_write(
                Self::rclock(now, t),
                node,
                slot,
                DESC_BYTES,
                AccessKind::Pointer,
            );
            t = self.cores.run(core, t, dw);
            self.tx_pending[q.0].push_back((Some(kbuf), sock, chunk));
        }
        {
            let s = self.sockets.get_mut(sock);
            s.tx_inflight += bytes;
            s.tx_bytes += bytes;
        }
        // Doorbell (posted MMIO).
        t = self.cores.run(core, t, costs.doorbell);
        self.ring_doorbell(t, now, node, q, out);
        SendOutcome::Sent { done_at: t }
    }

    /// `sendfile(2)`-style zero-copy transmit: the payload comes straight
    /// from page-cache pages, which may live on **either** NUMA node (the
    /// §3.3 corner case: "a single packet spans pages from different NUMA
    /// nodes ... E.g., when using sendfile()"). No copy is performed; the
    /// driver posts scatter-gather descriptors. Under the `OctoTeam` driver
    /// each fragment carries an **IOctoSG** PF hint so the device fetches it
    /// through the endpoint local to the fragment's node; the standard
    /// driver has no such hint and every fragment rides the queue's PF.
    pub fn sendfile(
        &mut self,
        now: Time,
        sock: SockId,
        pages: &[(PhysAddr, u64)],
        out: &mut OutBuf<HostOut>,
    ) -> SendOutcome {
        let costs = self.cfg.costs;
        let (node, core, flow_out, netdev) = {
            let s = self.sockets.get(sock);
            (
                self.sched.node_of(s.owner),
                self.sched.core_of(s.owner),
                s.flow.reversed(),
                s.netdev,
            )
        };
        let total: u64 = pages.iter().map(|(_, l)| l).sum();
        if self.sockets.get(sock).tx_inflight + total > self.cfg.sndbuf_bytes {
            self.sockets.get_mut(sock).tx_waiting = true;
            return SendOutcome::WouldBlock;
        }
        let q = self.choose_tx_queue(sock, core, netdev);
        // Chunk page runs into TSO-sized descriptors.
        let mut descs: Vec<Vec<TxFragment>> = Vec::new();
        let mut cur: Vec<TxFragment> = Vec::new();
        let mut cur_len = 0u64;
        for &(addr, len) in pages {
            let hint = if self.cfg.driver == DriverModel::OctoTeam {
                // IOctoSG: fetch through the PF local to the page.
                self.pf_on_node(addr.home())
            } else {
                None
            };
            cur.push(TxFragment {
                addr,
                len,
                pf_hint: hint,
            });
            cur_len += len;
            if cur_len >= self.cfg.tx_buf_bytes {
                descs.push(std::mem::take(&mut cur));
                cur_len = 0;
            }
        }
        if !cur.is_empty() {
            descs.push(cur);
        }
        if self.nic.tx_backlog(q) + descs.len() > self.nic.config().ring_entries {
            self.sockets.get_mut(sock).tx_waiting = true;
            return SendOutcome::WouldBlock;
        }
        let mss = self.nic.config().mss;
        let mut t = self
            .cores
            .run(core, now, costs.syscall + costs.per_msg_stack);
        for frags in descs {
            let len: u64 = frags.iter().map(|f| f.len).sum();
            let desc = TxDesc {
                fragments: frags.into(),
                flow: flow_out,
                len,
                tso: len > mss,
            };
            t = self.cores.run(core, t, costs.per_desc);
            let slot = self.nic.post_tx(q, desc).expect("backlog checked above");
            let dw = self.mem.cpu_write(
                Self::rclock(now, t),
                node,
                slot,
                DESC_BYTES,
                AccessKind::Pointer,
            );
            t = self.cores.run(core, t, dw);
            self.tx_pending[q.0].push_back((None, sock, len));
        }
        {
            let s = self.sockets.get_mut(sock);
            s.tx_inflight += total;
            s.tx_bytes += total;
        }
        t = self.cores.run(core, t, costs.doorbell);
        self.ring_doorbell(t, now, node, q, out);
        SendOutcome::Sent { done_at: t }
    }

    /// Rings `q`'s doorbell at `t` (posted MMIO) and appends the NIC's
    /// transmit outcome to `out` as host events. A `None` MMIO cost means
    /// the link under the PF is down: the write vanishes, the posted
    /// descriptors stay in the ring, and [`Host::watchdog`] re-rings once
    /// the link returns.
    fn ring_doorbell(
        &mut self,
        t: Time,
        now: Time,
        node: NodeId,
        q: QueueId,
        out: &mut OutBuf<HostOut>,
    ) {
        let Some(mmio) = self
            .fabric
            .mmio_write(t, node, self.queue_pf[q.0], &self.mem)
        else {
            self.robust.doorbells_lost += 1;
            return;
        };
        self.nic.tx_doorbell(
            t + mmio,
            now,
            q,
            &mut self.fabric,
            &mut self.mem,
            &mut self.tx_scratch,
        );
        for &(at, flow, b) in &self.tx_scratch.packets {
            out.push(HostOut::PacketToPeer { at, flow, bytes: b });
        }
        if let Some((at, _core)) = self.tx_scratch.irq {
            let epoch = self.nic.pf_epoch(self.queue_pf[q.0]);
            out.push(HostOut::Irq {
                at,
                queue: q,
                epoch,
            });
        }
    }

    /// The first NIC PF attached to `node`, if any.
    fn pf_on_node(&self, node: NodeId) -> Option<PfId> {
        self.queue_pf
            .iter()
            .copied()
            .find(|pf| self.fabric.node_of(*pf) == Some(node))
    }

    /// Application `recv(2)`: copies buffered segments into the user buffer,
    /// recycling kernel buffers to their queue pools and refilling rings.
    pub fn recv(&mut self, now: Time, sock: SockId, max: u64) -> RecvOutcome {
        let costs = self.cfg.costs;
        let (node, core, user_buf) = {
            let s = self.sockets.get(sock);
            (
                self.sched.node_of(s.owner),
                self.sched.core_of(s.owner),
                s.user_buf,
            )
        };
        let mut t = self
            .cores
            .run(core, now, costs.syscall + costs.per_msg_stack);
        if self.sockets.get(sock).rx_q.is_empty() {
            self.sockets.get_mut(sock).rx_waiting = true;
            return RecvOutcome::WouldBlock;
        }
        let mut got = 0u64;
        while got < max {
            let seg = match self.sockets.get_mut(sock).rx_q.pop_front() {
                Some(s) => s,
                None => break,
            };
            // copy_to_user (reservation clock bounded near the event time).
            let issue = costs.memcpy_issue(seg.bytes);
            let rt = Self::rclock(now, t);
            let r = self
                .mem
                .cpu_read(rt, node, seg.buf, seg.bytes, AccessKind::Stream);
            let w = self.mem.cpu_write(
                rt,
                node,
                user_buf,
                seg.bytes.min(self.cfg.user_buf_bytes),
                AccessKind::Stream,
            );
            t = self.cores.run(core, t, issue + r + w);
            got += seg.bytes;
            // Recycle the buffer and opportunistically refill the ring.
            self.rx_pools[seg.queue.0].put(seg.buf);
            t = self.refill_rx(now, t, core, seg.queue);
        }
        self.sockets.get_mut(sock).rx_bytes += got;
        RecvOutcome::Data {
            done_at: t,
            bytes: got,
        }
    }

    /// A packet from the peer hits the server NIC at `now` (wire
    /// serialization already accounted by the caller via
    /// [`nic::wire::Wire::send_rx`]). Follow-up events are appended to
    /// `out`.
    pub fn wire_arrival(
        &mut self,
        now: Time,
        flow: FlowTuple,
        bytes: u64,
        seq: u64,
        out: &mut OutBuf<HostOut>,
    ) {
        let Some(sock) = self.sockets.by_flow(&flow) else {
            self.rx_no_socket_drops += 1;
            return;
        };
        let mac = self.netdevs[self.sockets.get(sock).netdev.0].mac;
        match self
            .nic
            .on_wire_packet(now, mac, flow, bytes, seq, &mut self.fabric, &mut self.mem)
        {
            RxOutcome::Delivered { queue, irq, .. } => {
                if let Some((at, _core)) = irq {
                    let epoch = self.nic.pf_epoch(self.queue_pf[queue.0]);
                    out.push(HostOut::Irq { at, queue, epoch });
                }
            }
            RxOutcome::DroppedNoBuffer { .. }
            | RxOutcome::DroppedPfDead { .. }
            | RxOutcome::DroppedLinkDown { .. }
            | RxOutcome::DroppedNoQueue { .. } => {}
        }
    }

    /// [`Host::irq`] behind the epoch fence: an interrupt stamped with an
    /// epoch older than the queue PF's current one was raised by a device
    /// instance that has since been surprise-removed or re-enumerated. It
    /// is counted and discarded without polling — any live completions on
    /// the queue raise their own (current-epoch) interrupts, and the
    /// watchdog's stale-landing check backstops the rest.
    pub fn irq_stamped(
        &mut self,
        now: Time,
        queue: QueueId,
        epoch: u64,
        out: &mut OutBuf<HostOut>,
    ) {
        if epoch < self.nic.pf_epoch(self.queue_pf[queue.0]) {
            self.robust.fenced_irqs += 1;
            return;
        }
        if let Some(tr) = &mut self.tracer {
            tr.push(
                now,
                TraceKind::IrqDelivered,
                queue.0 as u64,
                self.queue_irq_core[queue.0] as u64,
                epoch,
                0,
            );
        }
        self.irq(now, queue, out);
    }

    /// NAPI: services `queue`'s completion queues on its IRQ core.
    /// Follow-up events are appended to `out`.
    pub fn irq(&mut self, now: Time, queue: QueueId, out: &mut OutBuf<HostOut>) {
        let costs = self.cfg.costs;
        let core = self.queue_irq_core[queue.0];
        let node = self.queue_node[queue.0];
        // Current device epoch of this queue's PF: completions stamped
        // below it were in flight across a removal and must be fenced.
        let cur_epoch = self.nic.pf_epoch(self.queue_pf[queue.0]);
        let mut t = self.cores.run(core, now, costs.irq_entry);

        // Rx completions. NAPI paces itself with CQE *landings*: an entry
        // the device has not yet made visible (its DMA still queued behind
        // interconnect traffic) cannot be observed — this is how congested
        // DMA paths slow the receive path (Figures 11/12).
        let mut pending_landing: Option<Time> = None;
        loop {
            match self.nic.rx_landing(queue) {
                Some(landed) if landed <= t => {}
                Some(landed) => {
                    pending_landing = Some(landed);
                    break;
                }
                None => break,
            }
            let Some((cqe_addr, comp)) = self.nic.pop_rx_completion(queue) else {
                break;
            };
            // The paper's pivotal access: reading the CQE the device just
            // DMA-wrote. Local+DDIO = LLC hit; remote = DRAM miss (§5.1.1).
            // (Memory reserved at the interrupt's event time; see send.)
            let rt = Self::rclock(now, t);
            let cq_read = self
                .mem
                .cpu_read(rt, node, cqe_addr, CQE_BYTES, AccessKind::Pointer);
            let buf = comp.buffer.expect("rx completions carry buffers");
            if comp.epoch < cur_epoch {
                // The fence: this completion crossed a surprise removal /
                // re-enumeration. The CPU still read the CQE (that cost is
                // real), but the packet is counted and its buffer recycled
                // — never delivered to a socket.
                t = self.cores.run(core, t, cq_read);
                self.robust.fenced_completions += 1;
                self.rx_pools[queue.0].put(buf.addr);
                continue;
            }
            // Protocol processing starts with a dependent load of the
            // packet headers — an LLC hit under DDIO, a DRAM miss when the
            // device wrote the buffer remotely (§2.3's invalidated line L).
            let hdr_read = self
                .mem
                .cpu_read(rt, node, buf.addr, 64, AccessKind::Pointer);
            t = self
                .cores
                .run(core, t, cq_read + hdr_read + costs.per_pkt_stack);
            match self.sockets.by_flow(&comp.flow) {
                Some(sid) => {
                    let s = self.sockets.get_mut(sid);
                    s.note_seq(comp.seq);
                    s.rx_q.push_back(RxSegment {
                        buf: buf.addr,
                        bytes: comp.bytes,
                        queue,
                    });
                    if s.rx_waiting {
                        s.rx_waiting = false;
                        let owner = s.owner;
                        out.push(HostOut::Wake {
                            at: t + costs.wake_latency,
                            thread: owner,
                        });
                    }
                }
                None => {
                    self.rx_no_socket_drops += 1;
                    self.rx_pools[queue.0].put(buf.addr);
                }
            }
            t = self.refill_rx(now, t, core, queue);
        }

        // Tx completions, paced by landings like Rx.
        loop {
            match self.nic.tx_landing(queue) {
                Some(landed) if landed <= t => {}
                Some(landed) => {
                    pending_landing = Some(match pending_landing {
                        Some(p) => p.min(landed),
                        None => landed,
                    });
                    break;
                }
                None => break,
            }
            let Some((cqe_addr, comp)) = self.nic.pop_tx_completion(queue) else {
                break;
            };
            let cq_read = self.mem.cpu_read(
                Self::rclock(now, t),
                node,
                cqe_addr,
                CQE_BYTES,
                AccessKind::Pointer,
            );
            t = self.cores.run(core, t, cq_read + costs.per_tx_completion);
            if comp.epoch < cur_epoch {
                // Fenced: the producing device instance is gone. Resources
                // are still reclaimed below (the pool audit demands it) but
                // the completion is never interpreted — neither as success
                // nor as a driver-visible error.
                self.robust.fenced_completions += 1;
            } else if comp.error {
                // The NIC aborted this descriptor (its PF failed or the link
                // dropped): the payload never reached the wire. Resources are
                // still freed and the sender woken so it can retry on a live
                // queue — only the byte accounting treats it as untransmitted.
                self.robust.tx_error_completions += 1;
            }
            if let Some((kbuf, sid, bytes)) = self.tx_pending[queue.0].pop_front() {
                debug_assert_eq!(bytes, comp.bytes);
                if let Some(kbuf) = kbuf {
                    self.tx_pools[kbuf.home().0].put(kbuf);
                }
                let s = self.sockets.get_mut(sid);
                s.tx_inflight = s.tx_inflight.saturating_sub(bytes);
                if s.tx_waiting {
                    s.tx_waiting = false;
                    let owner = s.owner;
                    out.push(HostOut::Wake {
                        at: t + costs.wake_latency,
                        thread: owner,
                    });
                }
            }
        }

        if let Some(landed) = pending_landing {
            // Un-landed completions remain: poll again when the earliest one
            // becomes visible (plus the moderation delay, which restores
            // batching). The irq stays disarmed — the continuation is the
            // waker.
            let delay = self.nic.config().irq_delay;
            out.push(HostOut::Irq {
                at: (landed + delay).max(t),
                queue,
                epoch: cur_epoch,
            });
            return;
        }
        self.nic.rearm_irq(queue);
        if self.nic.rx_cq_depth(queue) == 0 {
            // Deferred steering: safe now that the old queue is fully
            // drained ("the actual update is delayed until the original
            // queue is drained ... to avoid out-of-order receives", §2.3).
            if let Some(moves) = self.pending_steer.remove(&queue) {
                for (sock, new_q) in moves {
                    self.install_steering(t, sock, new_q);
                }
            }
        } else {
            // Completions raced in while we processed: poll again.
            out.push(HostOut::Irq {
                at: t,
                queue,
                epoch: cur_epoch,
            });
        }
    }

    /// One pktgen burst (§5.1.1 "Single-core packet throughput"): the
    /// in-kernel generator posts `burst` descriptors that all point at the
    /// same `pkt_bytes`-byte packet, rings the doorbell, then reaps the
    /// completions in polling mode (pktgen does not use sockets or copies:
    /// "repeatedly transmits the same IP packet without touching any data").
    ///
    /// Returns the time the core finished the round; wire-packet events
    /// are appended to `out`.
    #[allow(clippy::too_many_arguments)]
    pub fn pktgen_round(
        &mut self,
        now: Time,
        core: usize,
        nd: NetdevId,
        flow: FlowTuple,
        pkt_buf: PhysAddr,
        pkt_bytes: u64,
        burst: usize,
        out: &mut OutBuf<HostOut>,
    ) -> Time {
        let costs = self.cfg.costs;
        let node = self.mem.topology().node_of_core(core);
        let q = self.netdevs[nd.0].queue_for_core(core);
        let mut t = now;
        for _ in 0..burst {
            let desc = TxDesc::simple(pkt_buf, pkt_bytes, flow, false);
            let Some(slot) = self.nic.post_tx(q, desc) else {
                break;
            };
            let dw = self
                .mem
                .cpu_write(now, node, slot, DESC_BYTES, AccessKind::Pointer);
            t = self.cores.run(core, t, costs.pktgen_loop + dw);
        }
        t = self.cores.run(core, t, costs.doorbell);
        match self
            .fabric
            .mmio_write(t, node, self.queue_pf[q.0], &self.mem)
        {
            Some(mmio) => {
                self.nic.tx_doorbell(
                    t + mmio,
                    now,
                    q,
                    &mut self.fabric,
                    &mut self.mem,
                    &mut self.tx_scratch,
                );
                for &(at, f, b) in &self.tx_scratch.packets {
                    out.push(HostOut::PacketToPeer {
                        at,
                        flow: f,
                        bytes: b,
                    });
                }
            }
            None => {
                self.robust.doorbells_lost += 1;
            }
        }
        // Polling-mode reaping: read each completion entry that has already
        // landed. This is the access whose locality the paper pinpoints —
        // "reading this entry from memory costs about 80 ns, which is
        // essentially the delta between the per-packet costs of ioct/local
        // and remote". Entries still in flight are left for a later round:
        // pktgen overlaps posting and reaping across bursts, so the CPU
        // never idles waiting for the NIC pipeline.
        loop {
            match self.nic.tx_landing(q) {
                Some(landed) if landed <= t => {}
                _ => break,
            }
            let Some((cqe_addr, _comp)) = self.nic.pop_tx_completion(q) else {
                break;
            };
            let r = self.mem.cpu_read(
                Self::rclock(now, t),
                node,
                cqe_addr,
                CQE_BYTES,
                AccessKind::Pointer,
            );
            t = self.cores.run(core, t, r + costs.per_tx_completion);
        }
        self.nic.rearm_irq(q);
        t
    }

    /// Per-socket out-of-order count (Figure 14 asserts zero for the
    /// octoNIC).
    pub fn ooo_count(&self, sock: SockId) -> u64 {
        self.sockets.get(sock).ooo_count
    }

    /// Robustness counters: what the driver absorbed and recovered from.
    pub fn robustness(&self) -> HostRobustness {
        self.robust
    }

    /// Runs every conservation check this host can see — its buffer pools
    /// and socket table, then the NIC's and the fabric's own audits — into
    /// `a`. Cheap enough for quiesce points; debug builds can afford it
    /// per event step.
    pub fn audit(&self, a: &mut Audit) {
        // Rx buffer conservation, per queue: every buffer the pool ever
        // owned is free in the pool, posted in the ring, parked in an
        // unreaped CQE, queued on a socket, or written off as lost to a
        // mid-DMA link drop. Anything else is a leak (or a double count).
        let n_queues = self.queue_pf.len();
        let mut sock_held = vec![0usize; n_queues];
        let mut pending_by_sock = vec![0u64; self.sockets.len()];
        for s in self.sockets.ids() {
            for seg in &self.sockets.get(s).rx_q {
                if seg.queue.0 < n_queues {
                    sock_held[seg.queue.0] += 1;
                }
            }
        }
        for pend in &self.tx_pending {
            for &(_, sid, bytes) in pend {
                pending_by_sock[sid.0] += bytes;
            }
        }
        for (qi, &held) in sock_held.iter().enumerate() {
            let q = QueueId(qi);
            let pool = &self.rx_pools[qi];
            let have = pool.available()
                + self.nic.rx_buffers_available(q)
                + self.nic.rx_cq_held_buffers(q)
                + held;
            let expect = pool
                .capacity()
                .saturating_sub(self.nic.rx_bufs_lost(q) as usize);
            a.check("kernel", "rx-pool-conservation", have == expect, || {
                format!(
                    "queue {qi}: pool {} + ring {} + cq {} + sockets {} = {have}, \
                     expected capacity {} - lost {} = {expect}",
                    pool.available(),
                    self.nic.rx_buffers_available(q),
                    self.nic.rx_cq_held_buffers(q),
                    held,
                    pool.capacity(),
                    self.nic.rx_bufs_lost(q),
                )
            });
        }
        // Tx kernel-buffer conservation, per node: a buffer is either free
        // in its pool or referenced by an in-flight descriptor entry
        // (zero-copy sendfile entries reference page-cache pages instead
        // and hold no pool buffer).
        let mut pending_bufs = vec![0usize; self.tx_pools.len()];
        for pend in &self.tx_pending {
            for (kbuf, _, _) in pend {
                if let Some(kbuf) = kbuf {
                    pending_bufs[kbuf.home().0] += 1;
                }
            }
        }
        for (n, pool) in self.tx_pools.iter().enumerate() {
            let have = pool.available() + pending_bufs[n];
            a.check(
                "kernel",
                "tx-pool-conservation",
                have == pool.capacity(),
                || {
                    format!(
                        "node {n}: pool {} + in-flight {} != capacity {}",
                        pool.available(),
                        pending_bufs[n],
                        pool.capacity()
                    )
                },
            );
        }
        // Socket accounting: bytes still queued toward the NIC for a socket
        // can never exceed what the socket believes is in flight. (The
        // reverse can legally happen: completion-queue overflow coalesces
        // CQEs, stranding `tx_inflight` high until teardown.)
        for s in self.sockets.ids() {
            let pending = pending_by_sock[s.0];
            let inflight = self.sockets.get(s).tx_inflight;
            a.check("kernel", "socket-tx-inflight", pending <= inflight, || {
                format!("socket {}: pending {pending} > tx_inflight {inflight}", s.0)
            });
        }
        self.nic.audit(a);
        self.fabric.audit(a);
    }

    /// Driver watchdog, invoked periodically by the experiment loop — the
    /// simulation analogue of `ndo_tx_timeout` plus NAPI's deferred re-poll.
    /// Two hazards are detected:
    ///
    /// * completions that became visible in host memory more than
    ///   `watchdog_timeout` ago and were never reaped — their MSI-X was
    ///   lost; the queue is polled immediately;
    /// * Tx descriptors whose doorbell MMIO vanished into a dead link (the
    ///   ring holds descriptors but no completion is in flight): the
    ///   doorbell is re-rung with bounded exponential backoff.
    pub fn watchdog(&mut self, now: Time, out: &mut OutBuf<HostOut>) {
        let timeout = self.cfg.watchdog_timeout;
        let stale = |l: Option<Time>| matches!(l, Some(l) if l + timeout <= now);
        // Steering re-install left pending by a PF recovery whose control
        // path was dead: retry with the same bounded exponential backoff
        // the doorbell path uses (shared limit/base keeps the recovery
        // policy in one knob pair).
        if self.steer_pending
            && now >= self.steer_retry.next_at
            && self.steer_retry.retries < self.cfg.tx_retry_limit
        {
            let st = self.steer_retry;
            self.steer_retry = RetryState {
                retries: st.retries + 1,
                next_at: now + self.cfg.tx_retry_backoff * (1u64 << st.retries.min(10)),
            };
            self.robust.steering_reinstall_retries += 1;
            if self.reinstall_steering(now) {
                self.steer_pending = false;
            }
        }
        for qi in 0..self.queue_pf.len() {
            let q = QueueId(qi);
            if stale(self.nic.rx_landing(q)) || stale(self.nic.tx_landing(q)) {
                self.robust.watchdog_irq_recoveries += 1;
                let epoch = self.nic.pf_epoch(self.queue_pf[qi]);
                out.push(HostOut::Irq {
                    at: now,
                    queue: q,
                    epoch,
                });
                continue;
            }
            let stuck = self.nic.tx_backlog(q) > 0
                && self.nic.tx_landing(q).is_none()
                && self.nic.pf_alive(self.queue_pf[qi]);
            if !stuck {
                self.tx_retry[qi] = RetryState::default();
                continue;
            }
            let st = self.tx_retry[qi];
            if st.retries >= self.cfg.tx_retry_limit || now < st.next_at {
                continue;
            }
            self.tx_retry[qi] = RetryState {
                retries: st.retries + 1,
                next_at: now + self.cfg.tx_retry_backoff * (1u64 << st.retries.min(10)),
            };
            self.robust.doorbell_retries += 1;
            let node = self.queue_node[qi];
            self.ring_doorbell(now, now, node, q, out);
        }
    }

    /// Applies one fault-plan event to this host's I/O complex. Link faults
    /// go to the PCIe fabric; PF faults go to the NIC, with the driver-side
    /// recovery work (steering reinstall, doorbell retry budgets) done here.
    /// Hotplug events run the three-phase quiesce/drain/rebind sequence,
    /// which can wake senders whose fenced buffers were reclaimed —
    /// follow-up events are appended to `out`.
    pub fn apply_fault(&mut self, now: Time, pf: PfId, kind: FaultKind, out: &mut OutBuf<HostOut>) {
        self.robust.faults_applied += 1;
        match kind {
            FaultKind::LinkDown | FaultKind::LinkDegrade { .. } => {
                self.fabric.apply_link_fault(now, pf, kind);
            }
            FaultKind::LinkRecover => {
                self.fabric.apply_link_fault(now, pf, kind);
                // Doorbells stuck behind the dead link get a fresh retry
                // budget now that MMIO reaches the device again.
                for st in &mut self.tx_retry {
                    *st = RetryState::default();
                }
            }
            FaultKind::PfFail => {
                if self.break_recovery {
                    // Test-only sabotage (see `debug_break_recovery`): the
                    // teardown path "frees" one Tx kernel buffer on the
                    // failed PF's node without returning it to its pool.
                    if let Some(qi) = self.queue_pf.iter().position(|&p| p == pf) {
                        let node = self.queue_node[qi];
                        let _ = self.tx_pools[node.0].take();
                    }
                }
                self.nic.fail_pf(now, pf);
            }
            FaultKind::PfRecover => {
                self.nic.recover_pf(pf);
                for st in &mut self.tx_retry {
                    *st = RetryState::default();
                }
                if self.reinstall_steering(now) {
                    self.steer_pending = false;
                } else {
                    // Some queue's control path was dead (its link is still
                    // down): the affected flows stay on the failover
                    // survivor and the watchdog retries with backoff.
                    self.steer_pending = true;
                    self.steer_retry = RetryState::default();
                }
            }
            FaultKind::IrqLoss => self.nic.inject_irq_loss(pf),
            FaultKind::MediaFault { .. } => {
                // Media faults target drives; a NIC-only host absorbs them
                // (the fault still counts as applied, mirroring hardware
                // that latches an AER it has no handler for).
            }
            FaultKind::SurpriseRemove => {
                let was_alive = self.nic.pf_alive(pf);
                // Phase 1 — quiesce: the endpoint vanishes from the fabric
                // (in-flight transactions are dropped and counted there),
                // the NIC resets the function — flushing its Tx backlog as
                // error completions stamped with the *dying* epoch — and
                // only then does the driver advance its epoch mirror,
                // fencing everything stamped before this instant.
                self.fabric.apply_link_fault(now, pf, kind);
                self.nic.fail_pf(now, pf);
                let old_epoch = self.nic.pf_epoch(pf);
                if let Some(e) = self.fabric.epoch(pf) {
                    self.nic.set_pf_epoch(pf, e);
                }
                if self.nic.pf_epoch(pf) > old_epoch {
                    let epoch = self.nic.pf_epoch(pf);
                    let mode = (self.live_pf_count() == 1) as u64;
                    self.note_reconfig_phase(now, pf, 0, epoch, mode);
                    // Phase 2 — drain: reap everything already visible on
                    // the removed PF's queues through the fence. Entries
                    // whose DMA has not landed yet stay put; they hit the
                    // same fence in `irq` as late completions.
                    self.note_reconfig_phase(now, pf, 1, epoch, mode);
                    self.drain_fenced(now, pf, out);
                    // Phase 3 — rebind: MPFS default + per-flow fallback
                    // (inside `fail_pf`) already steer Rx through the
                    // survivors, and XPS failover moves Tx on the next
                    // send. One live PF left means every flow now crosses
                    // the interconnect: legacy NUDMA mode, degraded but
                    // alive.
                    self.note_reconfig_phase(now, pf, 2, epoch, mode);
                    self.robust.reconfigs += 1;
                    if was_alive && self.live_pf_count() == 1 {
                        self.robust.nudma_entries += 1;
                    }
                }
            }
            FaultKind::Reenumerate => {
                let was_nudma = !self.nic.pf_alive(pf) && self.live_pf_count() == 1;
                // Quiesce: slot power-up bumps the fabric epoch again (and
                // stalls the retrained links), so stragglers from the
                // removed instance stay fenced.
                self.fabric.apply_link_fault(now, pf, kind);
                let old_epoch = self.nic.pf_epoch(pf);
                if let Some(e) = self.fabric.epoch(pf) {
                    self.nic.set_pf_epoch(pf, e);
                }
                let advanced = self.nic.pf_epoch(pf) > old_epoch;
                if advanced {
                    let epoch = self.nic.pf_epoch(pf);
                    self.note_reconfig_phase(now, pf, 0, epoch, was_nudma as u64);
                    // Drain: late completions that landed during the
                    // outage window.
                    self.note_reconfig_phase(now, pf, 1, epoch, was_nudma as u64);
                    self.drain_fenced(now, pf, out);
                }
                // Rebind: revive the function and pull steering home —
                // restoring uniform IOctopus mode — exactly as PF recovery
                // does, including the dead-control-path retry.
                self.nic.recover_pf(pf);
                for st in &mut self.tx_retry {
                    *st = RetryState::default();
                }
                if self.reinstall_steering(now) {
                    self.steer_pending = false;
                } else {
                    self.steer_pending = true;
                    self.steer_retry = RetryState::default();
                }
                if advanced {
                    let epoch = self.nic.pf_epoch(pf);
                    let mode = (self.live_pf_count() == 1) as u64;
                    self.note_reconfig_phase(now, pf, 2, epoch, mode);
                    self.robust.reconfigs += 1;
                    if was_nudma && self.live_pf_count() > 1 {
                        self.robust.nudma_exits += 1;
                    }
                    if self.break_readd {
                        // Test-only sabotage (see `debug_break_readd`): the
                        // rebind path drops one free Tx kernel buffer on the
                        // re-added PF's home node while re-initializing its
                        // rings.
                        if let Some(qi) = self.queue_pf.iter().position(|&p| p == pf) {
                            let node = self.queue_node[qi];
                            let _ = self.tx_pools[node.0].take();
                        }
                    }
                }
            }
        }
    }

    /// Live (not failed / not removed) PFs on this host's NIC.
    fn live_pf_count(&self) -> usize {
        self.pfs.iter().filter(|&&p| self.nic.pf_alive(p)).count()
    }

    /// Phase-2 drain of an epoch fence: reaps every completion already
    /// visible on `pf`'s queues and fences it — counted, resources
    /// recycled, nothing delivered. All of them are stale by construction:
    /// the epoch advanced immediately before this runs, and no
    /// current-epoch completion can exist yet. Un-landed entries are left
    /// in place for the late-completion fence in [`Host::irq`].
    fn drain_fenced(&mut self, now: Time, pf: PfId, out: &mut OutBuf<HostOut>) {
        for qi in 0..self.queue_pf.len() {
            if self.queue_pf[qi] != pf {
                continue;
            }
            let q = QueueId(qi);
            while matches!(self.nic.rx_landing(q), Some(l) if l <= now) {
                let Some((_cqe, comp)) = self.nic.pop_rx_completion(q) else {
                    break;
                };
                self.robust.fenced_completions += 1;
                if let Some(buf) = comp.buffer {
                    self.rx_pools[qi].put(buf.addr);
                }
            }
            while matches!(self.nic.tx_landing(q), Some(l) if l <= now) {
                if self.nic.pop_tx_completion(q).is_none() {
                    break;
                }
                self.robust.fenced_completions += 1;
                self.release_tx_entry(now, qi, out);
            }
        }
    }

    /// Releases the oldest in-flight Tx entry of queue `qi`: the kernel
    /// buffer returns to its node pool, the socket's in-flight accounting
    /// shrinks, and a blocked sender is woken. Shared by the fence paths;
    /// the payload is *not* treated as transmitted.
    fn release_tx_entry(&mut self, now: Time, qi: usize, out: &mut OutBuf<HostOut>) {
        if let Some((kbuf, sid, bytes)) = self.tx_pending[qi].pop_front() {
            if let Some(kbuf) = kbuf {
                self.tx_pools[kbuf.home().0].put(kbuf);
            }
            let s = self.sockets.get_mut(sid);
            s.tx_inflight = s.tx_inflight.saturating_sub(bytes);
            if s.tx_waiting {
                s.tx_waiting = false;
                let owner = s.owner;
                out.push(HostOut::Wake {
                    at: now + self.cfg.costs.wake_latency,
                    thread: owner,
                });
            }
        }
    }

    /// Arms a test-only fault in the driver's own recovery path: the next
    /// PF failure silently leaks one Tx kernel buffer from the failed PF's
    /// node pool, modeling a teardown handler that loses track of a
    /// buffer. Exists so the audit layer's pool-conservation check can be
    /// shown to catch a real recovery bug (and the campaign shrinker to
    /// minimize the schedule that exposes it). Never set outside
    /// tests/harnesses.
    #[doc(hidden)]
    pub fn debug_break_recovery(&mut self) {
        self.break_recovery = true;
    }

    /// Arms a test-only bug in the *hotplug rebind* path: every completed
    /// re-enumeration (epoch actually advanced, i.e. a real remove→re-add
    /// cycle) leaks one Tx kernel buffer from the re-added PF's home-node
    /// pool, modeling a ring re-init that drops a free descriptor. Because
    /// the leak only fires when the epoch advanced, the minimal schedule
    /// that exposes it is exactly a `SurpriseRemove` followed by a
    /// `Reenumerate` on the same PF — which is what the campaign shrinker
    /// must converge to. Never set outside tests/harnesses.
    #[doc(hidden)]
    pub fn debug_break_readd(&mut self) {
        self.break_readd = true;
    }

    /// After a PF returns, re-install every socket's steering at its owner's
    /// current queue, pulling flows back off the failover survivor onto
    /// their home PFs (the driver half of recovery; the firmware half is the
    /// MPFS default-PF restore inside [`Nic::recover_pf`]). Each install is
    /// a control-path MMIO write to the queue's PF; a dead link eats it, in
    /// which case that flow stays on the survivor and this returns `false`
    /// so the caller schedules a retry. Idempotent, so a retry simply
    /// re-runs the whole pass.
    fn reinstall_steering(&mut self, now: Time) -> bool {
        let socks: Vec<SockId> = self.sockets.ids().collect();
        let mut all_ok = true;
        for s in socks {
            let (core, nd) = {
                let sk = self.sockets.get(s);
                (self.sched.core_of(sk.owner), sk.netdev)
            };
            let q = self.netdevs[nd.0].queue_for_core(core);
            let (pf, node) = (self.queue_pf[q.0], self.queue_node[q.0]);
            if self.fabric.mmio_write(now, node, pf, &self.mem).is_none() {
                all_ok = false;
                continue;
            }
            self.install_steering(now, s, q);
        }
        if all_ok {
            self.robust.steering_reinstalls += 1;
        }
        all_ok
    }

    /// The reservation clock for memory accesses inside a handler: tracks
    /// the core's chain time so a batch's accesses spread realistically, but
    /// stays within a bounded window of the dispatching event's time so
    /// shared FIFO horizons can never run away from simulated time.
    fn rclock(now: Time, t: Time) -> Time {
        t.min(now + simcore::Dur::from_us(100)).max(now)
    }

    /// Installs ARFS (+ IOctoRFS under the team driver) so `flow` is
    /// serviced by `q`.
    fn install_steering(&mut self, now: Time, sock: SockId, q: QueueId) {
        let flow = self.sockets.get(sock).flow;
        let pf = self.queue_pf[q.0];
        match self.cfg.driver {
            DriverModel::Standard => {
                // ARFS can move the flow between queues of the SAME PF only;
                // the PF (and thus any NUDMA) is fixed at socket creation.
                let nd = self.sockets.get(sock).netdev;
                let nd_pf = self.queue_pf[self.netdevs[nd.0].queue_by_core[0].0];
                if pf == nd_pf {
                    self.nic.arfs_install(now, pf, flow, q);
                }
            }
            DriverModel::OctoTeam => {
                // IOctoRFS: the flow follows the process to the local PF.
                self.nic.mpfs_mut().install_flow(flow, pf);
                self.nic.arfs_install(now, pf, flow, q);
            }
        }
    }

    /// XPS queue choice with the out-of-order guard: keep using the old
    /// queue until it has no outstanding packets (§4.2 "Transmit",
    /// `ooo_okay`).
    fn choose_tx_queue(&mut self, sock: SockId, core: usize, nd: NetdevId) -> QueueId {
        let mut desired = self.netdevs[nd.0].queue_for_core(core);
        if !self.nic.pf_alive(self.queue_pf[desired.0]) {
            // Tx failover: the home queue's PF is dead — pick the first live
            // queue on this netdev instead (first match keeps the choice
            // deterministic). The standard driver usually has none, since a
            // netdev's queues all ride one PF; `desired` then stays put and
            // the doorbell path errors the descriptors out.
            if let Some(&alt) = self.netdevs[nd.0]
                .queue_by_core
                .iter()
                .find(|qq| self.nic.pf_alive(self.queue_pf[qq.0]))
            {
                desired = alt;
            }
        }
        let last = self.sockets.get(sock).last_tx_queue;
        let q = match last {
            Some(old) if old != desired => {
                // The out-of-order guard never sticks to a dead PF's queue:
                // its backlog can only drain as error completions.
                if self.nic.pf_alive(self.queue_pf[old.0])
                    && (self.nic.tx_backlog(old) > 0 || !self.tx_pending[old.0].is_empty())
                {
                    old
                } else {
                    desired
                }
            }
            _ => desired,
        };
        self.sockets.get_mut(sock).last_tx_queue = Some(q);
        q
    }

    fn refill_rx(&mut self, now: Time, t: Time, core: usize, queue: QueueId) -> Time {
        let mut t = t;
        if let Some(buf) = self.rx_pools[queue.0].take() {
            let len = self.cfg.rx_buf_bytes;
            match self.nic.post_rx(queue, RxDesc { addr: buf, len }) {
                Some(slot) => {
                    let node = self.queue_node[queue.0];
                    let w = self.mem.cpu_write(
                        Self::rclock(now, t),
                        node,
                        slot,
                        DESC_BYTES,
                        AccessKind::Pointer,
                    );
                    t = self.cores.run(core, t, self.cfg.costs.per_desc + w);
                }
                None => self.rx_pools[queue.0].put(buf),
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::MemConfig;
    use nic::NicConfig;
    use pcie::{Bifurcation, FabricConfig, PcieGen};

    fn build(driver: DriverModel) -> (Host, Vec<PfId>) {
        let mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let mut fabric = PcieFabric::new(FabricConfig::default());
        let pfs = fabric.add_bifurcated(&Bifurcation::x8x8_dual_socket(PcieGen::Gen3));
        let nic_cfg = match driver {
            DriverModel::Standard => NicConfig::standard_100g(),
            DriverModel::OctoTeam => NicConfig::octonic_100g(),
        };
        let nic = Nic::new(nic_cfg, pfs.len(), pfs[0]);
        let host = Host::new(
            mem,
            fabric,
            nic,
            &pfs,
            HostConfig {
                driver,
                ..HostConfig::default()
            },
        );
        (host, pfs)
    }

    fn client_flow(port: u16) -> FlowTuple {
        FlowTuple::tcp(0x0A00_0001, port, 0x0A00_0002, 5001)
    }

    // Collect-into-Vec wrappers so assertions keep their original shape.
    fn wire(host: &mut Host, at: Time, flow: FlowTuple, bytes: u64, seq: u64) -> Vec<HostOut> {
        let mut out = OutBuf::new();
        host.wire_arrival(at, flow, bytes, seq, &mut out);
        out.drain().collect()
    }

    fn irq(host: &mut Host, at: Time, q: QueueId) -> Vec<HostOut> {
        let mut out = OutBuf::new();
        host.irq(at, q, &mut out);
        out.drain().collect()
    }

    fn watchdog(host: &mut Host, at: Time) -> Vec<HostOut> {
        let mut out = OutBuf::new();
        host.watchdog(at, &mut out);
        out.drain().collect()
    }

    fn fault(host: &mut Host, at: Time, pf: PfId, kind: FaultKind) -> Vec<HostOut> {
        let mut out = OutBuf::new();
        host.apply_fault(at, pf, kind, &mut out);
        out.drain().collect()
    }

    fn send(host: &mut Host, at: Time, sock: SockId, bytes: u64) -> (SendOutcome, Vec<HostOut>) {
        let mut out = OutBuf::new();
        let r = host.send(at, sock, bytes, &mut out);
        (r, out.drain().collect())
    }

    #[test]
    fn standard_driver_builds_netdev_per_pf() {
        let (host, pfs) = build(DriverModel::Standard);
        assert_eq!(host.netdev_count(), pfs.len());
    }

    #[test]
    fn octo_driver_builds_single_netdev() {
        let (host, _) = build(DriverModel::OctoTeam);
        assert_eq!(host.netdev_count(), 1);
    }

    #[test]
    fn octo_queues_ride_local_pfs() {
        let (host, pfs) = build(DriverModel::OctoTeam);
        let nd = &host.netdevs[0];
        // Core 0 (node 0) -> PF0; core 14 (node 1) -> PF1.
        assert_eq!(host.queue_pf[nd.queue_for_core(0).0], pfs[0]);
        assert_eq!(host.queue_pf[nd.queue_for_core(14).0], pfs[1]);
    }

    #[test]
    fn rx_path_delivers_to_blocked_reader() {
        let (mut host, _) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(1000);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        // Reader blocks first.
        assert!(matches!(
            host.recv(Time::ZERO, sock, 65536),
            RecvOutcome::WouldBlock
        ));
        // Packet arrives.
        let outs = wire(&mut host, Time::from_us(5), flow, 1448, 0);
        let got_irq = outs
            .iter()
            .find_map(|o| match o {
                HostOut::Irq { at, queue, .. } => Some((*at, *queue)),
                _ => None,
            })
            .expect("irq scheduled");
        let outs = irq(&mut host, got_irq.0, got_irq.1);
        let wake = outs
            .iter()
            .find_map(|o| match o {
                HostOut::Wake { at, thread } => Some((*at, *thread)),
                _ => None,
            })
            .expect("reader woken");
        assert_eq!(wake.1, th);
        // Reader resumes and gets the data.
        match host.recv(wake.0, sock, 65536) {
            RecvOutcome::Data { bytes, .. } => assert_eq!(bytes, 1448),
            other => panic!("{other:?}"),
        }
        assert_eq!(host.socket(sock).rx_bytes, 1448);
        assert_eq!(host.ooo_count(sock), 0);
    }

    #[test]
    fn tx_path_emits_wire_packets() {
        let (mut host, _) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(1001);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        let (r, outs) = send(&mut host, Time::ZERO, sock, 64 * 1024);
        assert!(matches!(r, SendOutcome::Sent { .. }), "{r:?}");
        let pkts: Vec<_> = outs
            .iter()
            .filter(|o| matches!(o, HostOut::PacketToPeer { .. }))
            .collect();
        // 64 KiB TSO aggregate → ceil(65536/1460) MTU segments.
        assert!(pkts.len() > 40, "got {} packets", pkts.len());
        assert_eq!(host.socket(sock).tx_bytes, 64 * 1024);
    }

    #[test]
    fn tx_inflight_released_by_completion_irq() {
        let (mut host, _) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(1002);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        let (r, outs) = send(&mut host, Time::ZERO, sock, 1000);
        assert!(matches!(r, SendOutcome::Sent { .. }), "{r:?}");
        assert_eq!(host.socket(sock).tx_inflight, 1000);
        let (at, q) = outs
            .iter()
            .find_map(|o| match o {
                HostOut::Irq { at, queue, .. } => Some((*at, *queue)),
                _ => None,
            })
            .expect("tx completion irq");
        irq(&mut host, at, q);
        assert_eq!(host.socket(sock).tx_inflight, 0);
    }

    #[test]
    fn sndbuf_backpressure_blocks() {
        let (mut host, _) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(1003);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        let mut t = Time::ZERO;
        let mut blocked = false;
        for _ in 0..200 {
            match send(&mut host, t, sock, 64 * 1024).0 {
                SendOutcome::Sent { done_at } => t = done_at,
                SendOutcome::WouldBlock => {
                    blocked = true;
                    break;
                }
            }
        }
        assert!(
            blocked,
            "4 MiB sndbuf must backpressure without completions"
        );
    }

    #[test]
    fn migration_moves_steering_under_octo() {
        let (mut host, pfs) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(1004);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        // Initially the flow is bound to PF0 (node 0).
        let mac = host.netdev_mac(NetdevId(0));
        assert_eq!(host.nic.mpfs().steer(mac, &flow), pfs[0]);
        // Migrate to a node-1 core; steering is deferred until the old
        // queue drains, which happens at the next irq of the old queue.
        host.migrate_thread(Time::from_ms(1), th, 14);
        let old_q = host.netdevs[0].queue_for_core(0);
        irq(&mut host, Time::from_ms(1), old_q);
        assert_eq!(host.nic.mpfs().steer(mac, &flow), pfs[1], "IOctoRFS moved");
        // Packets now land on the node-1 queue and the thread still gets
        // them, in order.
        let outs = wire(&mut host, Time::from_ms(2), flow, 1448, 0);
        assert!(!outs.is_empty());
        let (at, q) = outs
            .iter()
            .find_map(|o| match o {
                HostOut::Irq { at, queue, .. } => Some((*at, *queue)),
                _ => None,
            })
            .unwrap();
        assert_eq!(q, host.netdevs[0].queue_for_core(14));
        irq(&mut host, at, q);
        assert_eq!(host.ooo_count(sock), 0);
    }

    #[test]
    fn migration_cannot_move_pf_under_standard_driver() {
        let (mut host, pfs) = build(DriverModel::Standard);
        let th = host.spawn_thread(0);
        let flow = client_flow(1005);
        // Socket on netdev 0 (PF0).
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        let mac = host.netdev_mac(NetdevId(0));
        host.migrate_thread(Time::from_ms(1), th, 14);
        let old_q = host.netdevs[0].queue_for_core(0);
        irq(&mut host, Time::from_ms(1), old_q);
        // MAC-based steering still sends everything to PF0: NUDMA persists.
        assert_eq!(host.nic.mpfs().steer(mac, &flow), pfs[0]);
        let _ = sock;
    }

    #[test]
    fn xps_switches_queue_after_drain_only() {
        let (mut host, _) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(1006);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        let (r, outs) = send(&mut host, Time::ZERO, sock, 1000);
        assert!(matches!(r, SendOutcome::Sent { .. }), "{r:?}");
        let q0 = host.netdevs[0].queue_for_core(0);
        assert_eq!(host.socket(sock).last_tx_queue, Some(q0));
        host.migrate_thread(Time::from_us(1), th, 14);
        // Old queue still has an un-completed packet: XPS must stick.
        match send(&mut host, Time::from_us(2), sock, 1000).0 {
            SendOutcome::Sent { .. } => {}
            o => panic!("{o:?}"),
        }
        assert_eq!(host.socket(sock).last_tx_queue, Some(q0), "ooo guard");
        // Complete outstanding packets.
        for o in &outs {
            if let HostOut::Irq { at, queue, .. } = o {
                irq(&mut host, *at, *queue);
            }
        }
        // Drain the second send's completion too.
        irq(&mut host, Time::from_ms(1), q0);
        match send(&mut host, Time::from_ms(2), sock, 1000).0 {
            SendOutcome::Sent { .. } => {}
            o => panic!("{o:?}"),
        }
        let q14 = host.netdevs[0].queue_for_core(14);
        assert_eq!(host.socket(sock).last_tx_queue, Some(q14), "switched");
    }

    #[test]
    fn unknown_flow_dropped() {
        let (mut host, _) = build(DriverModel::OctoTeam);
        let outs = wire(&mut host, Time::ZERO, client_flow(9999), 100, 0);
        assert!(outs.is_empty());
        assert_eq!(host.rx_no_socket_drops(), 1);
    }

    #[test]
    fn rx_buffers_recycle_forever() {
        let (mut host, _) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(1007);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        let mut t = Time::ZERO;
        // 3x the pool size worth of packets, consumed as we go.
        for seq in 0..1536u64 {
            t += Dur::from_us(2);
            let outs = wire(&mut host, t, flow, 1448, seq);
            for o in outs {
                if let HostOut::Irq { at, queue, .. } = o {
                    irq(&mut host, at, queue);
                }
            }
            match host.recv(t + Dur::from_us(1), sock, 1 << 20) {
                RecvOutcome::Data { .. } | RecvOutcome::WouldBlock => {}
            }
        }
        assert_eq!(
            host.socket(sock).rx_bytes + 1448,
            1448 * 1536 + 1448 - host.nic.rx_dropped() * 1448,
            "no unexpected loss beyond drop accounting"
        );
        assert_eq!(host.nic.rx_dropped(), 0, "recycling keeps rings stocked");
        assert_eq!(host.ooo_count(sock), 0);
    }

    #[test]
    fn pf_fail_over_and_recovery_move_steering() {
        let (mut host, pfs) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(3000);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        let mac = host.netdev_mac(NetdevId(0));
        assert_eq!(host.nic.mpfs().steer(mac, &flow), pfs[0]);

        fault(&mut host, Time::from_ms(1), pfs[0], FaultKind::PfFail);
        assert_eq!(host.nic.mpfs().steer(mac, &flow), pfs[1], "failed over");
        // Traffic keeps flowing through the survivor.
        let outs = wire(&mut host, Time::from_ms(2), flow, 1448, 0);
        let (at, q) = outs
            .iter()
            .find_map(|o| match o {
                HostOut::Irq { at, queue, .. } => Some((*at, *queue)),
                _ => None,
            })
            .expect("delivered via surviving PF");
        assert_eq!(host.queue_pf[q.0], pfs[1]);
        irq(&mut host, at, q);
        match host.recv(at + Dur::from_us(50), sock, 1 << 20) {
            RecvOutcome::Data { bytes, .. } => assert_eq!(bytes, 1448),
            o => panic!("{o:?}"),
        }

        fault(&mut host, Time::from_ms(3), pfs[0], FaultKind::PfRecover);
        assert_eq!(host.nic.mpfs().steer(mac, &flow), pfs[0], "pulled home");
        assert_eq!(host.robustness().faults_applied, 2);
    }

    #[test]
    fn lost_irq_recovered_by_watchdog() {
        let (mut host, pfs) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(3001);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        fault(&mut host, Time::from_us(1), pfs[0], FaultKind::IrqLoss);
        let outs = wire(&mut host, Time::from_us(5), flow, 1448, 0);
        assert!(
            !outs.iter().any(|o| matches!(o, HostOut::Irq { .. })),
            "the MSI-X was swallowed"
        );
        // Nothing delivered yet; the watchdog notices the stale landing.
        let wd_at = Time::from_us(5) + host.config().watchdog_timeout + Dur::from_us(50);
        let outs = watchdog(&mut host, wd_at);
        let (at, q) = outs
            .iter()
            .find_map(|o| match o {
                HostOut::Irq { at, queue, .. } => Some((*at, *queue)),
                _ => None,
            })
            .expect("watchdog polls the silent queue");
        irq(&mut host, at, q);
        match host.recv(at + Dur::from_us(50), sock, 1 << 20) {
            RecvOutcome::Data { bytes, .. } => assert_eq!(bytes, 1448),
            o => panic!("{o:?}"),
        }
        assert_eq!(host.robustness().watchdog_irq_recoveries, 1);
    }

    #[test]
    fn lost_doorbell_re_rung_after_link_recovers() {
        let (mut host, pfs) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(3002);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        fault(&mut host, Time::from_us(1), pfs[0], FaultKind::LinkDown);
        let (r, outs) = send(&mut host, Time::from_us(2), sock, 2000);
        assert!(matches!(r, SendOutcome::Sent { .. }), "{r:?}");
        assert!(outs.is_empty(), "doorbell vanished into the dead link");
        assert_eq!(host.robustness().doorbells_lost, 1);
        // While the link is down the watchdog's retry also fails…
        let outs = watchdog(&mut host, Time::from_us(100));
        assert!(outs.is_empty());
        assert_eq!(host.robustness().doorbells_lost, 2);
        // …but after retraining, the re-rung doorbell transmits.
        fault(&mut host, Time::from_ms(1), pfs[0], FaultKind::LinkRecover);
        let outs = watchdog(&mut host, Time::from_ms(2));
        assert!(
            outs.iter()
                .any(|o| matches!(o, HostOut::PacketToPeer { .. })),
            "descriptors finally reach the wire"
        );
        assert!(host.robustness().doorbell_retries >= 2);
    }

    #[test]
    fn dead_pf_tx_errors_out_and_releases_sender() {
        // Standard driver on a dead PF has nowhere to fail over to: the
        // descriptors come back as error completions and the socket's
        // in-flight accounting drains instead of wedging.
        let (mut host, pfs) = build(DriverModel::Standard);
        let th = host.spawn_thread(0);
        let flow = client_flow(3003);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        fault(&mut host, Time::from_us(1), pfs[0], FaultKind::PfFail);
        let (r, outs) = send(&mut host, Time::from_us(2), sock, 2000);
        assert!(matches!(r, SendOutcome::Sent { .. }), "{r:?}");
        assert!(
            !outs
                .iter()
                .any(|o| matches!(o, HostOut::PacketToPeer { .. })),
            "nothing reaches the wire through a dead PF"
        );
        assert_eq!(host.socket(sock).tx_inflight, 2000);
        // The error completions land immediately; the watchdog polls them.
        let wd_at = Time::from_us(2) + host.config().watchdog_timeout + Dur::from_us(50);
        for o in watchdog(&mut host, wd_at) {
            if let HostOut::Irq { at, queue, .. } = o {
                irq(&mut host, at, queue);
            }
        }
        assert_eq!(host.socket(sock).tx_inflight, 0, "sender released");
        assert!(host.robustness().tx_error_completions >= 1);
    }

    #[test]
    fn remote_socket_rx_is_slower_than_local() {
        // The end-to-end NUDMA effect through the whole kernel path: same
        // workload, thread on node 0 vs node 1, standard driver, netdev 0
        // (PF0 on node 0).
        let elapsed = |core: usize| -> Dur {
            let (mut host, _) = build(DriverModel::Standard);
            let th = host.spawn_thread(core);
            let flow = client_flow(2000);
            let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
            let mut t = Time::ZERO;
            let mut app_time = Dur::ZERO;
            for seq in 0..64u64 {
                t += Dur::from_us(3);
                let outs = wire(&mut host, t, flow, 1448, seq);
                for o in outs {
                    if let HostOut::Irq { at, queue, .. } = o {
                        irq(&mut host, at, queue);
                    }
                }
                if let RecvOutcome::Data { done_at, .. } =
                    host.recv(t + Dur::from_us(1), sock, 1 << 20)
                {
                    app_time += done_at.since(t + Dur::from_us(1));
                }
            }
            app_time
        };
        let local = elapsed(0);
        let remote = elapsed(14);
        assert!(
            remote > local,
            "remote kernel path must cost more: local={local} remote={remote}"
        );
    }

    #[test]
    fn audit_stays_clean_through_traffic_and_faults() {
        let (mut host, pfs) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(4000);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        let mut t = Time::ZERO;
        for seq in 0..32u64 {
            t += Dur::from_us(3);
            if seq == 10 {
                fault(&mut host, t, pfs[0], FaultKind::PfFail);
            }
            if seq == 20 {
                fault(&mut host, t, pfs[0], FaultKind::PfRecover);
            }
            for o in wire(&mut host, t, flow, 1448, seq) {
                if let HostOut::Irq { at, queue, .. } = o {
                    irq(&mut host, at, queue);
                }
            }
            send(&mut host, t, sock, 4096);
            host.recv(t + Dur::from_us(1), sock, 1 << 20);
            let mut a = Audit::new();
            host.audit(&mut a);
            assert!(a.ok(), "step {seq}: {:?}", a.violations());
        }
        // Drain in-flight Tx so the pools settle, then audit once more.
        for qi in 0..host.queue_pf.len() {
            irq(&mut host, t + Dur::from_ms(1), QueueId(qi));
        }
        let mut a = Audit::new();
        host.audit(&mut a);
        assert!(a.ok(), "{:?}", a.violations());
        assert!(a.checks() > 0);
    }

    #[test]
    fn sabotaged_failover_trips_the_pool_audit() {
        let (mut host, pfs) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let _sock = host.open_socket(Time::ZERO, th, client_flow(4001), NetdevId(0));
        let mut a = Audit::new();
        host.audit(&mut a);
        assert!(a.ok(), "clean before sabotage: {:?}", a.violations());
        host.debug_break_recovery();
        fault(&mut host, Time::from_ms(1), pfs[0], FaultKind::PfFail);
        let mut a = Audit::new();
        host.audit(&mut a);
        assert!(!a.ok(), "the leaked buffer must be caught");
        assert!(
            a.violations()
                .iter()
                .any(|v| v.check == "tx-pool-conservation"),
            "{:?}",
            a.violations()
        );
    }

    #[test]
    fn media_fault_is_absorbed_by_a_nic_only_host() {
        let (mut host, pfs) = build(DriverModel::OctoTeam);
        fault(
            &mut host,
            Time::ZERO,
            pfs[0],
            FaultKind::MediaFault { errors: 3 },
        );
        assert_eq!(host.robustness().faults_applied, 1);
        let mut a = Audit::new();
        host.audit(&mut a);
        assert!(a.ok(), "{:?}", a.violations());
    }

    #[test]
    fn service_survives_total_pf_loss_then_readd() {
        // The acceptance scenario: PF0 is surprise-removed outright (total
        // loss of the function, not a transient link/PF fault). The host
        // transparently enters legacy NUDMA mode — every flow rides the
        // remote survivor — and on re-enumeration returns to uniform
        // IOctopus mode behind the same fence.
        let (mut host, pfs) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(5000);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        let mac = host.netdev_mac(NetdevId(0));
        assert_eq!(host.nic.mpfs().steer(mac, &flow), pfs[0]);

        fault(
            &mut host,
            Time::from_ms(1),
            pfs[0],
            FaultKind::SurpriseRemove,
        );
        assert_eq!(host.nic.pf_epoch(pfs[0]), 1, "epoch retired");
        assert!(!host.fabric.present(pfs[0]), "endpoint gone");
        assert_eq!(host.robustness().reconfigs, 1);
        assert_eq!(host.robustness().nudma_entries, 1, "legacy NUDMA mode");

        // Service stays alive through the survivor: Rx delivers end to end.
        assert_eq!(host.nic.mpfs().steer(mac, &flow), pfs[1]);
        let outs = wire(&mut host, Time::from_ms(2), flow, 1448, 0);
        let (at, q) = outs
            .iter()
            .find_map(|o| match o {
                HostOut::Irq { at, queue, .. } => Some((*at, *queue)),
                _ => None,
            })
            .expect("delivered via the surviving PF");
        assert_eq!(host.queue_pf[q.0], pfs[1], "NUDMA: remote PF carries it");
        irq(&mut host, at, q);
        match host.recv(at + Dur::from_us(50), sock, 1 << 20) {
            RecvOutcome::Data { bytes, .. } => assert_eq!(bytes, 1448),
            o => panic!("{o:?}"),
        }
        // Tx keeps flowing too (XPS failover onto the survivor's queue).
        let (r, outs) = send(&mut host, Time::from_ms(3), sock, 2000);
        assert!(matches!(r, SendOutcome::Sent { .. }), "{r:?}");
        assert!(
            outs.iter()
                .any(|o| matches!(o, HostOut::PacketToPeer { .. })),
            "degraded-mode Tx reaches the wire"
        );

        // Re-add: fresh epoch, steering pulled home, uniform mode restored.
        fault(&mut host, Time::from_ms(4), pfs[0], FaultKind::Reenumerate);
        assert_eq!(host.nic.pf_epoch(pfs[0]), 2, "fresh epoch on re-add");
        assert!(host.fabric.present(pfs[0]));
        assert_eq!(host.robustness().reconfigs, 2);
        assert_eq!(host.robustness().nudma_exits, 1, "uniform mode restored");
        assert_eq!(host.nic.mpfs().steer(mac, &flow), pfs[0], "pulled home");
        // Past the retrain window, PF0 carries traffic again.
        let outs = wire(&mut host, Time::from_ms(6), flow, 1448, 1);
        let (at, q) = outs
            .iter()
            .find_map(|o| match o {
                HostOut::Irq { at, queue, .. } => Some((*at, *queue)),
                _ => None,
            })
            .expect("delivered via the re-added PF");
        assert_eq!(host.queue_pf[q.0], pfs[0]);
        irq(&mut host, at, q);
        match host.recv(at + Dur::from_us(50), sock, 1 << 20) {
            RecvOutcome::Data { bytes, .. } => assert_eq!(bytes, 1448),
            o => panic!("{o:?}"),
        }
        let mut a = Audit::new();
        host.audit(&mut a);
        assert!(a.ok(), "{:?}", a.violations());
    }

    #[test]
    fn surprise_remove_drains_inflight_tx_and_wakes_sender() {
        // Descriptors stranded in the ring by a dead doorbell are flushed
        // by the removal with the dying epoch; the drain phase fences them
        // — resources reclaimed, blocked sender woken, but none counted as
        // driver-visible Tx errors.
        let (mut host, pfs) = build(DriverModel::Standard);
        let th = host.spawn_thread(0);
        let flow = client_flow(5001);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        fault(&mut host, Time::from_us(1), pfs[0], FaultKind::LinkDown);
        let mut t = Time::from_us(2);
        let mut blocked = false;
        for _ in 0..200 {
            match send(&mut host, t, sock, 64 * 1024).0 {
                SendOutcome::Sent { done_at } => t = done_at,
                SendOutcome::WouldBlock => {
                    blocked = true;
                    break;
                }
            }
        }
        assert!(blocked, "sndbuf must fill against the dead doorbell");
        assert!(host.socket(sock).tx_inflight > 0);

        let outs = fault(
            &mut host,
            t + Dur::from_us(1),
            pfs[0],
            FaultKind::SurpriseRemove,
        );
        assert_eq!(host.socket(sock).tx_inflight, 0, "drained at quiesce");
        assert!(host.robustness().fenced_completions > 0);
        assert_eq!(
            host.robustness().tx_error_completions,
            0,
            "fenced, not errored"
        );
        assert!(
            outs.iter().any(|o| matches!(o, HostOut::Wake { .. })),
            "blocked sender released by the drain"
        );
        let mut a = Audit::new();
        host.audit(&mut a);
        assert!(
            a.ok(),
            "pool accounting survives the drain: {:?}",
            a.violations()
        );
    }

    #[test]
    fn late_completion_is_fenced_not_delivered() {
        // A packet's CQE DMA is still in flight when the PF vanishes: the
        // entry lands *after* the quiesce point and must be counted and
        // discarded — its buffer recycled, nothing reaching the socket.
        let (mut host, pfs) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(5002);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        let t0 = Time::from_us(5);
        let outs = wire(&mut host, t0, flow, 1448, 0);
        let (irq_at, q, stamped) = outs
            .iter()
            .find_map(|o| match o {
                HostOut::Irq { at, queue, epoch } => Some((*at, *queue, *epoch)),
                _ => None,
            })
            .expect("irq scheduled");
        assert_eq!(stamped, 0, "raised under the original epoch");
        // The removal lands between the DMA and its visibility: the drain
        // phase must leave the un-landed entry in place.
        fault(
            &mut host,
            t0 + Dur::from_ns(1),
            pfs[0],
            FaultKind::SurpriseRemove,
        );
        assert_eq!(host.nic.rx_cq_depth(q), 1, "late CQE still in flight");
        // The stale-stamped interrupt itself is fenced…
        let mut out = OutBuf::new();
        host.irq_stamped(irq_at, q, stamped, &mut out);
        assert_eq!(host.robustness().fenced_irqs, 1);
        assert_eq!(host.nic.rx_cq_depth(q), 1, "fenced irq never polled");
        // …and when the watchdog polls the queue, the completion is fenced
        // at the CQE level: counted, recycled, never delivered.
        let wd_at = irq_at + host.config().watchdog_timeout + Dur::from_us(50);
        for o in watchdog(&mut host, wd_at) {
            if let HostOut::Irq { at, queue, epoch } = o {
                host.irq_stamped(at, queue, epoch, &mut OutBuf::new());
            }
        }
        assert_eq!(host.nic.rx_cq_depth(q), 0, "reaped through the fence");
        assert!(host.robustness().fenced_completions >= 1);
        assert!(matches!(
            host.recv(wd_at + Dur::from_us(50), sock, 1 << 20),
            RecvOutcome::WouldBlock
        ));
        assert_eq!(host.socket(sock).rx_bytes, 0, "never delivered");
        let mut a = Audit::new();
        host.audit(&mut a);
        assert!(a.ok(), "{:?}", a.violations());
    }

    #[test]
    fn unpaired_reenumerate_is_harmless() {
        // Campaigns can fire a Reenumerate with no preceding removal: the
        // fabric treats it as idempotent, no epoch advances, and no live
        // completion may be fenced.
        let (mut host, pfs) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(5003);
        let sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        let outs = wire(&mut host, Time::from_us(5), flow, 1448, 0);
        fault(&mut host, Time::from_us(6), pfs[0], FaultKind::Reenumerate);
        assert_eq!(host.nic.pf_epoch(pfs[0]), 0, "no epoch churn");
        assert_eq!(host.robustness().reconfigs, 0);
        let (at, q) = outs
            .iter()
            .find_map(|o| match o {
                HostOut::Irq { at, queue, .. } => Some((*at, *queue)),
                _ => None,
            })
            .unwrap();
        irq(&mut host, at, q);
        match host.recv(at + Dur::from_us(50), sock, 1 << 20) {
            RecvOutcome::Data { bytes, .. } => assert_eq!(bytes, 1448),
            o => panic!("{o:?}"),
        }
        assert_eq!(host.robustness().fenced_completions, 0);
    }

    #[test]
    fn steering_reinstall_retries_until_control_path_returns() {
        let (mut host, pfs) = build(DriverModel::OctoTeam);
        let th = host.spawn_thread(0);
        let flow = client_flow(4002);
        let _sock = host.open_socket(Time::ZERO, th, flow, NetdevId(0));
        let mac = host.netdev_mac(NetdevId(0));
        // PF0 fails and its link goes down; the flow fails over to PF1.
        fault(&mut host, Time::from_us(1), pfs[0], FaultKind::LinkDown);
        fault(&mut host, Time::from_us(2), pfs[0], FaultKind::PfFail);
        assert_eq!(host.nic.mpfs().steer(mac, &flow), pfs[1]);
        // The PF recovers while its link is still down: the reinstall MMIO
        // vanishes, so the flow must stay on the survivor for now.
        fault(&mut host, Time::from_us(3), pfs[0], FaultKind::PfRecover);
        assert_eq!(
            host.nic.mpfs().steer(mac, &flow),
            pfs[1],
            "control path dead"
        );
        // Watchdog retry against the dead link also fails, with backoff.
        watchdog(&mut host, Time::from_us(50));
        assert_eq!(host.nic.mpfs().steer(mac, &flow), pfs[1]);
        assert_eq!(host.robustness().steering_reinstall_retries, 1);
        // Link retrains; the next retry past the backoff pulls the flow home.
        fault(&mut host, Time::from_ms(1), pfs[0], FaultKind::LinkRecover);
        watchdog(&mut host, Time::from_ms(2));
        assert_eq!(host.nic.mpfs().steer(mac, &flow), pfs[0], "pulled home");
        assert!(host.robustness().steering_reinstalls >= 1);
        let mut a = Audit::new();
        host.audit(&mut a);
        assert!(a.ok(), "{:?}", a.violations());
    }
}
