//! Sockets: the OS-side endpoint of a flow.

use std::collections::VecDeque;

use simcore::FxHashMap;

use memsys::PhysAddr;
use nic::{FlowTuple, QueueId};

use crate::netdev::NetdevId;
use crate::sched::ThreadId;

/// Identifies a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SockId(pub usize);

impl std::fmt::Display for SockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sock{}", self.0)
    }
}

/// A packet sitting in a socket's receive queue, not yet copied to the user.
#[derive(Debug, Clone, Copy)]
pub struct RxSegment {
    /// Kernel buffer holding the payload.
    pub buf: PhysAddr,
    /// Payload bytes.
    pub bytes: u64,
    /// The queue whose pool the buffer must return to.
    pub queue: QueueId,
}

/// One socket.
#[derive(Debug)]
pub struct Socket {
    /// The inbound (client→server) flow tuple this socket is bound to.
    pub flow: FlowTuple,
    /// Owning thread.
    pub owner: ThreadId,
    /// The interface the socket is bound to.
    pub netdev: NetdevId,
    /// Received, un-consumed segments.
    pub rx_q: VecDeque<RxSegment>,
    /// Reader currently blocked in `recv`.
    pub rx_waiting: bool,
    /// Writer currently blocked in `send` (ring or send-buffer full).
    pub tx_waiting: bool,
    /// Bytes posted to the NIC but not yet completion-acknowledged.
    pub tx_inflight: u64,
    /// The Tx queue the last transmission used (XPS state; changed only
    /// when it is safe w.r.t. packet ordering — the `ooo_okay` rule, §4.2).
    pub last_tx_queue: Option<QueueId>,
    /// Next expected Rx sequence number (out-of-order detection).
    pub next_seq: u64,
    /// Out-of-order receptions observed (Figure 14 asserts zero).
    pub ooo_count: u64,
    /// Total payload bytes received.
    pub rx_bytes: u64,
    /// Total payload bytes sent.
    pub tx_bytes: u64,
    /// A per-socket user-space buffer the app copies into/out of.
    pub user_buf: PhysAddr,
}

impl Socket {
    /// Records an arriving in-order/out-of-order segment.
    pub fn note_seq(&mut self, seq: u64) {
        if seq != self.next_seq {
            self.ooo_count += 1;
            // Resynchronize to the furthest point seen.
            self.next_seq = self.next_seq.max(seq + 1);
        } else {
            self.next_seq = seq + 1;
        }
    }
}

/// The socket table: allocation and flow lookup.
#[derive(Debug, Default)]
pub struct SocketTable {
    socks: Vec<Socket>,
    by_flow: FxHashMap<FlowTuple, SockId>,
}

impl SocketTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a socket; the flow must be unique.
    ///
    /// # Panics
    /// Panics if the flow is already bound.
    pub fn insert(&mut self, sock: Socket) -> SockId {
        let id = SockId(self.socks.len());
        let prev = self.by_flow.insert(sock.flow, id);
        assert!(prev.is_none(), "flow {} already bound", sock.flow);
        self.socks.push(sock);
        id
    }

    /// Looks up the socket bound to `flow`.
    pub fn by_flow(&self, flow: &FlowTuple) -> Option<SockId> {
        self.by_flow.get(flow).copied()
    }

    /// Shared access.
    pub fn get(&self, id: SockId) -> &Socket {
        self.socks
            .get(id.0)
            .unwrap_or_else(|| panic!("unknown {id}"))
    }

    /// Exclusive access.
    pub fn get_mut(&mut self, id: SockId) -> &mut Socket {
        self.socks
            .get_mut(id.0)
            .unwrap_or_else(|| panic!("unknown {id}"))
    }

    /// Number of sockets.
    pub fn len(&self) -> usize {
        self.socks.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.socks.is_empty()
    }

    /// Iterates over all socket ids.
    pub fn ids(&self) -> impl Iterator<Item = SockId> {
        (0..self.socks.len()).map(SockId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sock(flow: FlowTuple) -> Socket {
        Socket {
            flow,
            owner: ThreadId(0),
            netdev: NetdevId(0),
            rx_q: VecDeque::new(),
            rx_waiting: false,
            tx_waiting: false,
            tx_inflight: 0,
            last_tx_queue: None,
            next_seq: 0,
            ooo_count: 0,
            rx_bytes: 0,
            tx_bytes: 0,
            user_buf: PhysAddr(0),
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = SocketTable::new();
        let f = FlowTuple::tcp(1, 2, 3, 4);
        let id = t.insert(sock(f));
        assert_eq!(t.by_flow(&f), Some(id));
        assert_eq!(t.by_flow(&f.reversed()), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn duplicate_flow_rejected() {
        let mut t = SocketTable::new();
        let f = FlowTuple::tcp(1, 2, 3, 4);
        t.insert(sock(f));
        t.insert(sock(f));
    }

    #[test]
    fn seq_tracking_in_order() {
        let mut s = sock(FlowTuple::tcp(1, 2, 3, 4));
        for i in 0..10 {
            s.note_seq(i);
        }
        assert_eq!(s.ooo_count, 0);
        assert_eq!(s.next_seq, 10);
    }

    #[test]
    fn seq_tracking_detects_reorder() {
        let mut s = sock(FlowTuple::tcp(1, 2, 3, 4));
        s.note_seq(0);
        s.note_seq(2); // gap
        s.note_seq(1); // late
        assert_eq!(s.ooo_count, 2);
    }
}
