//! Network interfaces and the driver models.
//!
//! * [`DriverModel::Standard`] — the vendor driver as shipped: one netdevice
//!   per physical function, each with its own MAC and IP (Figure 5a/b).
//!   A socket is permanently stuck with its netdev's PF: "once a socket S
//!   is established, there is no generally applicable way to make the bytes
//!   that it streams flow through a different physical device" (§2.5).
//! * [`DriverModel::OctoTeam`] — the paper's implementation: the team
//!   driver in IOctopus mode aggregates all PFs into one netdevice with one
//!   MAC; each per-core queue rides the PF local to that core's socket
//!   (§4.2), and steering follows the process.

use nic::{MacAddr, QueueId};

/// Identifies a network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetdevId(pub usize);

impl std::fmt::Display for NetdevId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "eth{}", self.0)
    }
}

/// Which driver manages the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverModel {
    /// Vendor driver: one netdev per PF (standard firmware).
    Standard,
    /// Team driver in IOctopus mode: one netdev over all PFs (octoNIC
    /// firmware).
    OctoTeam,
}

/// One network interface.
#[derive(Debug, Clone)]
pub struct Netdev {
    /// Externally visible MAC.
    pub mac: MacAddr,
    /// XPS mapping: the Tx/Rx queue used when running on core `i`
    /// ("The Linux network stack maps each core C to a different Tx queue
    /// Q, such that Q's memory is allocated from C's node", §2.3).
    pub queue_by_core: Vec<QueueId>,
}

impl Netdev {
    /// The queue XPS selects for a thread running on `core`.
    pub fn queue_for_core(&self, core: usize) -> QueueId {
        self.queue_by_core[core]
    }

    /// Number of queues (== cores).
    pub fn queue_count(&self) -> usize {
        self.queue_by_core.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xps_maps_core_to_queue() {
        let nd = Netdev {
            mac: MacAddr::local_admin(0),
            queue_by_core: (0..4).map(QueueId).collect(),
        };
        assert_eq!(nd.queue_for_core(2), QueueId(2));
        assert_eq!(nd.queue_count(), 4);
    }

    #[test]
    #[should_panic]
    fn out_of_range_core_panics() {
        let nd = Netdev {
            mac: MacAddr::local_admin(0),
            queue_by_core: vec![QueueId(0)],
        };
        nd.queue_for_core(5);
    }
}
