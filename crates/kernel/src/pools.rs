//! NUMA-local buffer pools.
//!
//! Receive buffers are allocated per-queue on the queue's node (§2.3: "the
//! associated ring buffers and packet buffers are allocated locally");
//! transmit kernel buffers per node. Buffers recycle through free lists —
//! the recycling is what keeps them *cache-hot*, which is exactly where
//! DDIO pays off.

use memsys::{MemSystem, NodeId, PhysAddr};

/// A free list of equal-sized buffers on one node.
#[derive(Debug)]
pub struct BufPool {
    node: NodeId,
    buf_bytes: u64,
    free: Vec<PhysAddr>,
    total: usize,
}

impl BufPool {
    /// Allocates `count` buffers of `buf_bytes` each on `node`.
    pub fn new(mem: &mut MemSystem, node: NodeId, buf_bytes: u64, count: usize) -> Self {
        let free = (0..count).map(|_| mem.alloc(node, buf_bytes)).collect();
        BufPool {
            node,
            buf_bytes,
            free,
            total: count,
        }
    }

    /// Takes a buffer, if any remain.
    pub fn take(&mut self) -> Option<PhysAddr> {
        self.free.pop()
    }

    /// Returns a buffer to the pool.
    ///
    /// # Panics
    /// Panics if the pool would exceed its original size (double free).
    pub fn put(&mut self, buf: PhysAddr) {
        assert!(
            self.free.len() < self.total,
            "pool over-filled: double free?"
        );
        debug_assert_eq!(buf.home(), self.node, "buffer returned to wrong pool");
        self.free.push(buf);
    }

    /// Free buffers currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Pool capacity.
    pub fn capacity(&self) -> usize {
        self.total
    }

    /// Size of each buffer.
    pub fn buf_bytes(&self) -> u64 {
        self.buf_bytes
    }

    /// The node the buffers live on.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::MemConfig;

    fn mem() -> MemSystem {
        MemSystem::new(MemConfig::dual_socket_broadwell())
    }

    #[test]
    fn take_put_cycle() {
        let mut m = mem();
        let mut p = BufPool::new(&mut m, NodeId(0), 2048, 4);
        assert_eq!(p.available(), 4);
        let b = p.take().unwrap();
        assert_eq!(b.home(), NodeId(0));
        assert_eq!(p.available(), 3);
        p.put(b);
        assert_eq!(p.available(), 4);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut m = mem();
        let mut p = BufPool::new(&mut m, NodeId(1), 2048, 1);
        let b = p.take().unwrap();
        assert!(p.take().is_none());
        p.put(b);
        assert!(p.take().is_some());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn overfill_detected() {
        let mut m = mem();
        let extra = m.alloc(NodeId(0), 2048);
        let mut p = BufPool::new(&mut m, NodeId(0), 2048, 1);
        p.put(extra);
    }

    #[test]
    fn buffers_are_distinct() {
        let mut m = mem();
        let mut p = BufPool::new(&mut m, NodeId(0), 2048, 16);
        let mut seen = simcore::FxHashSet::default();
        while let Some(b) = p.take() {
            assert!(seen.insert(b.0), "duplicate buffer");
        }
        assert_eq!(seen.len(), 16);
    }
}
