//! Per-core time accounting.
//!
//! A core is a *serial* resource: application work, softirq processing, and
//! driver code that run on the same core queue behind each other. This is
//! what makes the single-core experiments CPU-bound, exactly as in §5.1.1
//! ("both process and OS networking activity run on a single core").

use simcore::stats::BusyMeter;
use simcore::{Dur, Time};

#[derive(Debug, Clone, Default)]
struct Core {
    busy_until: Time,
    meter: BusyMeter,
}

/// All cores of the machine.
#[derive(Debug)]
pub struct Cores {
    cores: Vec<Core>,
}

impl Cores {
    /// Creates `n` idle cores.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "at least one core");
        Cores {
            cores: vec![Core::default(); n],
        }
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether there are no cores (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Runs `work` on `core` starting no earlier than `now`; returns the
    /// completion time.
    pub fn run(&mut self, core: usize, now: Time, work: Dur) -> Time {
        let c = &mut self.cores[core];
        let start = now.max(c.busy_until);
        c.busy_until = start + work;
        c.meter.add_busy(work);
        c.busy_until
    }

    /// Accumulated busy time of `core` (profiling).
    pub fn busy_of(&self, core: usize) -> Dur {
        self.cores[core].meter.busy_time()
    }

    /// When `core` next becomes free.
    pub fn free_at(&self, core: usize) -> Time {
        self.cores[core].busy_until
    }

    /// Whether `core` is busy at `now`.
    pub fn is_busy(&self, core: usize, now: Time) -> bool {
        self.cores[core].busy_until > now
    }

    /// Utilization of `core` over `[from, to]` in fractional cores.
    pub fn utilization(&self, core: usize, from: Time, to: Time) -> f64 {
        self.cores[core].meter.utilization(from, to)
    }

    /// Aggregate utilization over a set of cores (the paper's "cpu util
    /// [cores]" axis).
    pub fn utilization_of(
        &self,
        cores: impl IntoIterator<Item = usize>,
        from: Time,
        to: Time,
    ) -> f64 {
        cores
            .into_iter()
            .map(|c| self.utilization(c, from, to))
            .sum()
    }

    /// Resets all busy meters (measurement-window start). Busy-until
    /// horizons persist: in-flight work still occupies the cores.
    pub fn reset_meters(&mut self) {
        for c in &mut self.cores {
            c.meter.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_serializes_on_one_core() {
        let mut c = Cores::new(2);
        let a = c.run(0, Time::ZERO, Dur::from_us(10));
        let b = c.run(0, Time::ZERO, Dur::from_us(5));
        assert_eq!(a, Time::from_us(10));
        assert_eq!(b, Time::from_us(15), "queued behind the first chunk");
    }

    #[test]
    fn cores_are_independent() {
        let mut c = Cores::new(2);
        c.run(0, Time::ZERO, Dur::from_us(10));
        let b = c.run(1, Time::ZERO, Dur::from_us(5));
        assert_eq!(b, Time::from_us(5));
    }

    #[test]
    fn idle_gaps_are_idle() {
        let mut c = Cores::new(1);
        c.run(0, Time::ZERO, Dur::from_us(1));
        let done = c.run(0, Time::from_us(10), Dur::from_us(1));
        assert_eq!(done, Time::from_us(11));
        // 2 us busy over 11 us window.
        let u = c.utilization(0, Time::ZERO, Time::from_us(11));
        assert!((u - 2.0 / 11.0).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn utilization_aggregates() {
        let mut c = Cores::new(3);
        c.run(0, Time::ZERO, Dur::from_us(10));
        c.run(1, Time::ZERO, Dur::from_us(10));
        let u = c.utilization_of(0..3, Time::ZERO, Time::from_us(10));
        assert!((u - 2.0).abs() < 1e-9);
    }

    #[test]
    fn busy_query() {
        let mut c = Cores::new(1);
        c.run(0, Time::ZERO, Dur::from_us(1));
        assert!(c.is_busy(0, Time::ZERO));
        assert!(!c.is_busy(0, Time::from_us(2)));
        assert_eq!(c.free_at(0), Time::from_us(1));
    }

    #[test]
    fn reset_preserves_backlog() {
        let mut c = Cores::new(1);
        c.run(0, Time::ZERO, Dur::from_ms(1));
        c.reset_meters();
        assert_eq!(c.utilization(0, Time::ZERO, Time::from_ms(1)), 0.0);
        assert_eq!(c.free_at(0), Time::from_ms(1), "backlog survives reset");
    }
}
