//! Figure 8: single-core pktgen packet throughput.

use ioctopus::config::Placement;
use ioctopus::experiments::pktgen;
use ioctopus::results::write_csv;

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Figure 8",
        "pktgen transmit throughput and memory bandwidth vs packet size",
    );
    println!(
        "{:>8} | {:>10} {:>10} {:>7} | {:>9} {:>9} | {:>10} {:>10}",
        "pkt", "ioct[Gb/s]", "rem[Gb/s]", "ratio", "ioctMpps", "remMpps", "ioct-mem", "rem-mem"
    );
    let mut delta_ns = 0.0;
    let mut rows = Vec::new();
    let points = ioctopus::sweep::sweep(vec![64u64, 128, 256, 512, 1024, 1500], |pkt| {
        let l = pktgen::run(Placement::Octopus, pkt, 6, false);
        let r = pktgen::run(Placement::Remote, pkt, 6, false);
        (pkt, l, r)
    });
    for (pkt, l, r) in points {
        rows.push(l.clone());
        rows.push(r.clone());
        if pkt == 64 {
            delta_ns = 1e9 / r.rate_per_sec - 1e9 / l.rate_per_sec;
        }
        println!(
            "{:>8} | {:>10.2} {:>10.2} {:>6.2}x | {:>9.2} {:>9.2} | {:>10.2} {:>10.2}",
            pkt,
            l.throughput_gbps,
            r.throughput_gbps,
            l.throughput_gbps / r.throughput_gbps,
            l.rate_per_sec / 1e6,
            r.rate_per_sec / 1e6,
            l.membw_gbps,
            r.membw_gbps,
        );
    }
    if let Some(p) = write_csv("fig08_pktgen", &rows) {
        println!("[csv] {}", p.display());
    }
    println!("\nper-packet delta @64B = {delta_ns:.0} ns (paper: ~80 ns, one completion-entry DRAM read)");
    println!("paper: ioct/local 1.30-1.39x remote; local membw ~0");
    println!("{}", bench::shape((40.0..160.0).contains(&delta_ns)));
    bench::footer(t0);
}
