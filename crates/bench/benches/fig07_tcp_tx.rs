//! Figure 7: single-core TCP STREAM transmit (TSO enabled).

use ioctopus::config::Placement;
use ioctopus::experiments::tcp_stream;
use ioctopus::results::write_csv;
use workloads::StreamConfig;

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Figure 7",
        "Single-core TCP stream transmit with TSO (throughput / memory bandwidth / CPU)",
    );
    println!(
        "{:>8} | {:>10} {:>10} {:>7} | {:>10} {:>10} {:>7}",
        "msg", "ioct[Gb/s]", "rem[Gb/s]", "ratio", "ioct-mem", "rem-mem", "rem-memx"
    );
    let mut last = None;
    let mut rows = Vec::new();
    let points = ioctopus::sweep::sweep(StreamConfig::paper_msg_sizes(), |msg| {
        let l = tcp_stream::run_tx(Placement::Octopus, msg, 8);
        let r = tcp_stream::run_tx(Placement::Remote, msg, 8);
        (msg, l, r)
    });
    for (msg, l, r) in points {
        println!(
            "{:>8} | {:>10.2} {:>10.2} {:>6.2}x | {:>10.2} {:>10.2} {:>6.2}x",
            msg,
            l.throughput_gbps,
            r.throughput_gbps,
            l.throughput_gbps / r.throughput_gbps,
            l.membw_gbps,
            r.membw_gbps,
            if r.throughput_gbps > 0.0 {
                r.membw_gbps / r.throughput_gbps
            } else {
                0.0
            },
        );
        rows.push(l.clone());
        rows.push(r.clone());
        last = Some((l, r));
    }
    if let Some(p) = write_csv("fig07_tcp_tx", &rows) {
        println!("[csv] {}", p.display());
    }
    if let Some((l, r)) = last {
        let comparable = (l.throughput_gbps / r.throughput_gbps - 1.0).abs() < 0.15;
        let memx = r.membw_gbps / r.throughput_gbps;
        println!("\npaper: throughputs comparable; remote membw ~= 1.0x its throughput; local ~0");
        println!("{}", bench::shape(comparable && (0.6..1.6).contains(&memx)));
    }
    bench::footer(t0);
}
