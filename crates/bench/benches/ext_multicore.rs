//! §5.1.1 multi-core throughput (described in the paper; figures omitted
//! there "due to space constraints" — regenerated here).

use ioctopus::config::Placement;
use ioctopus::experiments::multicore;

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "§5.1.1 multi-core",
        "netperf Rx instance per core: the bottleneck shifts from CPU to network",
    );
    println!(
        "{:>5} | {:>11} {:>11} {:>11} | {:>9} {:>9} {:>9}",
        "inst", "local[Gb/s]", "rem[Gb/s]", "octo[Gb/s]", "l-mem", "r-mem", "o-mem"
    );
    let mut last = (0.0, 0.0);
    let points = ioctopus::sweep::sweep(vec![1usize, 4, 8, 13], |n| {
        let l = multicore::run_rx(Placement::Local, n, 6);
        let r = multicore::run_rx(Placement::Remote, n, 6);
        let o = multicore::run_rx(Placement::Octopus, n, 6);
        (n, l, r, o)
    });
    for (n, l, r, o) in points {
        println!(
            "{:>5} | {:>11.1} {:>11.1} {:>11.1} | {:>9.1} {:>9.1} {:>9.1}",
            n,
            l.throughput_gbps,
            r.throughput_gbps,
            o.throughput_gbps,
            l.membw_gbps,
            r.membw_gbps,
            o.membw_gbps
        );
        last = (l.throughput_gbps, o.throughput_gbps);
    }
    println!("\npaper: both configurations sustain line rate; ioct/local now incurs");
    println!("       memory traffic (combined working set exceeds the LLC)");
    println!("bonus: the octoNIC aggregates BOTH x8 PFs — beyond single-PF line rate");
    println!("{}", bench::shape(last.0 > 45.0 && last.1 > 70.0));
    bench::footer(t0);
}
