//! Chaos campaign: generated fault schedules vs. the whole stack, every
//! run under the system-wide invariant audit.
//!
//! The full run expands one fixed campaign seed into 1000 deterministic
//! fault schedules and rotates them across the experiment families
//! (netperf Rx, TCP_RR, memcached, NVMe media); `--smoke` runs a 48-schedule
//! slice of the same campaign so CI finishes in seconds. Either way the
//! harness:
//!
//! * fails (non-zero exit) if any schedule records an invariant violation,
//!   after delta-debugging the offending schedule down to a minimal
//!   reproducer and writing it to `CHAOS_MIN_PLAN.json`;
//! * always runs the *sabotage self-test* — a driver whose PF-failure
//!   recovery deliberately leaks one Tx kernel buffer — to prove the audit
//!   catches real recovery bugs, and shrinks that failure to its minimal
//!   plan (expected: the single `PfFail`), recorded in the same artifact;
//! * writes the machine-readable `BENCH_6.json` at the workspace root
//!   (campaign totals, per-family breakdown, self-test verdict).

use std::time::Instant;

use ioctopus::experiments::chaos;
use ioctopus::perf;
use simcore::campaign::{plan_for, shrink};
use simcore::FaultPlan;

/// Fixed campaign seed: CI reruns are bit-identical, and any violation is
/// reproducible from `(SEED, index)` alone.
const SEED: u64 = 0x10c7_0b05;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn plan_json(plan: &FaultPlan) -> String {
    let evs: Vec<String> = plan
        .events()
        .iter()
        .map(|e| {
            format!(
                "{{\"at_ps\": {}, \"pf\": {}, \"kind\": \"{}\"}}",
                e.at.as_ps(),
                e.pf,
                json_escape(&format!("{:?}", e.kind))
            )
        })
        .collect();
    format!("[{}]", evs.join(", "))
}

fn repo_root() -> std::path::PathBuf {
    let mut root = std::env::current_dir().unwrap_or_default();
    while !root.join("Cargo.lock").exists() {
        if !root.pop() {
            return std::env::current_dir().unwrap_or_default();
        }
    }
    root
}

struct SelfTest {
    index: u64,
    original_events: usize,
    min_events: usize,
    min_plan: FaultPlan,
}

/// Hunts a sabotage schedule containing a PF failure, proves the audit
/// trips on it, and shrinks it to a minimal reproducer.
fn sabotage_self_test() -> SelfTest {
    let cfg = chaos::sabotage_config(SEED);
    let (plan, index) = (0..64)
        .map(|i| (plan_for(&cfg, i), i))
        .find(|(p, _)| chaos::sabotaged_run_trips_audit(p))
        .expect("no generated schedule tripped the sabotaged audit");
    let min = chaos::shrink_failing(&plan);
    assert!(
        chaos::sabotaged_run_trips_audit(&min),
        "minimized plan no longer reproduces"
    );
    assert!(
        min.len() <= 3,
        "sabotage reproducer should be tiny, got {} events",
        min.len()
    );
    SelfTest {
        index,
        original_events: plan.len(),
        min_events: min.len(),
        min_plan: min,
    }
}

fn write_min_plan(kind: &str, seed: u64, index: u64, plan: &FaultPlan, violations: &[String]) {
    let path = repo_root().join("CHAOS_MIN_PLAN.json");
    let viol: Vec<String> = violations
        .iter()
        .map(|v| format!("\"{}\"", json_escape(v)))
        .collect();
    let j = format!(
        "{{\n  \"kind\": \"{kind}\",\n  \"seed\": {seed},\n  \"schedule_index\": {index},\n  \
         \"events\": {},\n  \"plan\": {},\n  \"violations\": [{}]\n}}\n",
        plan.len(),
        plan_json(plan),
        viol.join(", ")
    );
    if std::fs::write(&path, j).is_ok() {
        println!("[json] {}", path.display());
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    smoke: bool,
    sum: &chaos::CampaignReport,
    per_family: &[(chaos::Family, u64, u64, u64)],
    st: &SelfTest,
    wall_s: f64,
) {
    let path = repo_root().join("BENCH_6.json");
    let fams: Vec<String> = per_family
        .iter()
        .map(|(f, n, events, recoveries)| {
            format!(
                "    {{\"family\": \"{f:?}\", \"schedules\": {n}, \"events\": {events}, \
                 \"recoveries\": {recoveries}}}"
            )
        })
        .collect();
    let viol: Vec<String> = sum
        .violations
        .iter()
        .map(|v| format!("\"{}\"", json_escape(v)))
        .collect();
    let j = format!(
        "{{\n  \"smoke\": {smoke},\n  \"seed\": {},\n  \"schedules\": {},\n  \"faults\": {},\n  \
         \"events\": {},\n  \"checks\": {},\n  \"recoveries\": {},\n  \"wall_s\": {:.3},\n  \
         \"violations\": [{}],\n  \"families\": [\n{}\n  ],\n  \"sabotage_self_test\": \
         {{\"caught\": true, \"schedule_index\": {}, \"original_events\": {}, \
         \"min_events\": {}, \"min_plan\": {}}}\n}}\n",
        sum.seed,
        sum.schedules,
        sum.faults,
        sum.events,
        sum.checks,
        sum.recoveries,
        wall_s,
        viol.join(", "),
        fams.join(",\n"),
        st.index,
        st.original_events,
        st.min_events,
        plan_json(&st.min_plan),
    );
    if std::fs::write(&path, j).is_ok() {
        println!("[json] {}", path.display());
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let count: u64 = if smoke { 48 } else { 1000 };
    let t0 = Instant::now();
    bench::header(
        "chaos_campaign",
        &format!("{count} generated fault schedules under the invariant audit (seed {SEED:#x})"),
    );

    let reports = chaos::run_reports(SEED, count);
    let sum = chaos::aggregate(SEED, &reports);

    println!(
        "{:>16} | {:>9} | {:>7} | {:>12} | {:>10} | {:>10}",
        "family", "schedules", "faults", "events", "checks", "recoveries"
    );
    let mut per_family = Vec::new();
    for fam in chaos::FAMILIES {
        let rs: Vec<_> = reports.iter().filter(|r| r.family == fam).collect();
        let (n, faults, events, checks, recoveries) =
            rs.iter()
                .fold((0u64, 0u64, 0u64, 0u64, 0u64), |(n, f, e, c, r), x| {
                    (
                        n + 1,
                        f + x.faults as u64,
                        e + x.events,
                        c + x.checks,
                        r + x.recoveries,
                    )
                });
        println!(
            "{:>16} | {n:>9} | {faults:>7} | {events:>12} | {checks:>10} | {recoveries:>10}",
            format!("{fam:?}")
        );
        per_family.push((fam, n, events, recoveries));
    }
    println!(
        "\ncampaign: {} schedules, {} faults, {} checks, {} violation(s)",
        sum.schedules,
        sum.faults,
        sum.checks,
        sum.violations.len()
    );

    // A real violation: minimize the first offending schedule before
    // failing, so CI uploads an actionable reproducer.
    if let Some(bad) = reports.iter().find(|r| !r.violations.is_empty()) {
        println!(
            "\nVIOLATIONS (first schedule = {:?}[{}]):",
            bad.family, bad.index
        );
        for v in &sum.violations {
            println!("  {v}");
        }
        let cfg = chaos::base_config(SEED);
        let plan = plan_for(&cfg, bad.index);
        let min = shrink(&plan, |p| {
            !chaos::run_plan(bad.family, bad.index, p)
                .violations
                .is_empty()
        });
        let min_report = chaos::run_plan(bad.family, bad.index, &min);
        println!(
            "minimized {} -> {} events; reproduce with seed {SEED:#x}, index {}",
            plan.len(),
            min.len(),
            bad.index
        );
        write_min_plan("violation", SEED, bad.index, &min, &min_report.violations);
    }

    // Always prove the audit catches a genuinely broken recovery path and
    // that the shrinker isolates it.
    let st = sabotage_self_test();
    println!(
        "\nsabotage self-test: leak caught at schedule {} and shrunk {} -> {} event(s)",
        st.index, st.original_events, st.min_events
    );
    if sum.ok() {
        write_min_plan("sabotage-self-test", SEED, st.index, &st.min_plan, &[]);
    }

    write_json(smoke, &sum, &per_family, &st, t0.elapsed().as_secs_f64());
    let _ = perf::events(); // footer drains the counters
    bench::footer(t0);
    assert!(
        sum.ok(),
        "{} invariant violation(s) — see CHAOS_MIN_PLAN.json",
        sum.violations.len()
    );
}
