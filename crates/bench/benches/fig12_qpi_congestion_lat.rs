//! Figure 12: 64-byte UDP latency co-located with STREAM pairs.

use ioctopus::config::Placement;
use ioctopus::experiments::congestion;
use ioctopus::results::write_csv;

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Figure 12",
        "sockperf 64B UDP latency while STREAM pairs congest the QPI",
    );
    println!(
        "{:>7} | {:>10} {:>10} | {:>10}",
        "pairs", "ioct[us]", "rem[us]", "ioct/rem"
    );
    let mut improvements = Vec::new();
    let mut rows = Vec::new();
    let points = ioctopus::sweep::sweep((1..=6).collect::<Vec<_>>(), |pairs| {
        let l = congestion::run_fig12(Placement::Octopus, pairs, 60);
        let r = congestion::run_fig12(Placement::Remote, pairs, 60);
        (pairs, l, r)
    });
    for (pairs, l, r) in points {
        improvements.push(l.mean_us / r.mean_us);
        rows.push(l.clone());
        rows.push(r.clone());
        println!(
            "{:>7} | {:>10.2} {:>10.2} | {:>10.2}",
            pairs,
            l.mean_us,
            r.mean_us,
            l.mean_us / r.mean_us
        );
    }
    if let Some(p) = write_csv("fig12_congestion_lat", &rows) {
        println!("[csv] {}", p.display());
    }
    let best = improvements.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "\npaper: ioct/local 10%-22% lower latency (0.90-0.78 of remote), remote grows with pairs"
    );
    println!("{}", bench::shape(best < 0.95));
    bench::footer(t0);
}
