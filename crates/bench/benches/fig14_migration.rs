//! Figure 14: per-PF throughput across a thread migration.

use ioctopus::experiments::migration;
use ioctopus::results::write_csv;

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Figure 14",
        "Per-PF throughput while netperf migrates CPU0 -> CPU1 at t=4.5 (time scaled 1000x)",
    );
    let points = ioctopus::sweep::sweep(vec![true, false], migration::run);
    for (octo, r) in [true, false].into_iter().zip(points) {
        println!("--- {} ---", r.config);
        println!("{:>9} {:>10} {:>10}", "t[s]", "PF0[Gb/s]", "PF1[Gb/s]");
        for s in r.samples.iter().step_by(10) {
            println!(
                "{:>9.2} {:>10.2} {:>10.2}",
                s.t_secs / 1000.0 * 1000.0,
                s.pf0_gbps,
                s.pf1_gbps
            );
        }
        if let Some(p) = write_csv(&format!("fig14_{}", r.config), &r.samples) {
            println!("[csv] {}", p.display());
        }
        let (b0, _) = migration::mean_rates(&r, 1.0, 4.0);
        let (a0, a1) = migration::mean_rates(&r, 6.0, 9.5);
        println!(
            "mean before: PF0={b0:.2} Gb/s; after: PF0={a0:.2} PF1={a1:.2}; ooo={} dropped={}",
            r.ooo_packets, r.dropped
        );
        if octo {
            println!(
                "{}",
                bench::shape(a1 > 5.0 && a0 < 1.0 && r.ooo_packets == 0 && r.dropped == 0)
            );
        } else {
            println!("{}", bench::shape(a1 < 1.0 && a0 < b0 * 0.95));
        }
        println!();
    }
    println!("paper: octoNIC moves traffic smoothly to PF1 (no loss/reorder); ethNIC stays on PF0 at remote-level throughput");
    bench::footer(t0);
}
