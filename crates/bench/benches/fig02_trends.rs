//! Figure 2: NIC vs CPU bandwidth trends (motivation, §2.6).

use ioctopus::experiments::trends;

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Figure 2",
        "The bandwidth of the NIC exceeds what a single CPU could use",
    );
    println!(
        "{:>6} {:>14} {:>12} {:>7} {:>16} {:>16}",
        "year", "single[Gb/s]", "dual[Gb/s]", "cores", "cpu@10G[Gb/s]", "cpu@513M[Gb/s]"
    );
    for p in trends::series() {
        println!(
            "{:>6} {:>14.0} {:>12.0} {:>7} {:>16.0} {:>16.1}",
            p.year,
            p.nic_single_gbps,
            p.nic_dual_gbps,
            p.cores,
            trends::cpu_gbps(&p, trends::OPTIMISTIC_PER_CORE_GBPS),
            trends::cpu_gbps(&p, trends::CLOUD_PER_CORE_GBPS),
        );
    }
    let (optimistic, cloud) = trends::final_year_gaps();
    println!("\nfinal-year gaps: dual-NIC/cpu@10G = {optimistic:.1}x (paper ~3.3x), dual-NIC/cpu@513M = {cloud:.0}x (paper ~32x)");
    println!(
        "{}",
        bench::shape((2.5..4.5).contains(&optimistic) && (25.0..40.0).contains(&cloud))
    );
    bench::footer(t0);
}
