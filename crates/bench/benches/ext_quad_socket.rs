//! Extension: IOctopus on a 4-socket machine.
//!
//! §3.2 sketches per-node bifurcation/risers for more than two sockets
//! ("e.g., a 32-lanes PCIe link width could be split into 2 or 4 PCIe
//! endpoints"); the substrate generalizes, so we quantify it: flows pinned
//! to each of four sockets, steered by IOctoRFS to per-node x4 endpoints,
//! vs everything through one endpoint.

use memsys::{MemConfig, MemSystem, NodeId, Topology};
use nic::{FlowTuple, MacAddr, Nic, NicConfig, QueueConfig, RxDesc, SteeringMode};
use pcie::{Bifurcation, FabricConfig, PcieFabric, PcieGen};
use simcore::Time;

fn run(octo: bool) -> (u64, u64) {
    let mut cfg = MemConfig::dual_socket_broadwell();
    cfg.topology = Topology::new(4, 8);
    let mut mem = MemSystem::new(cfg);
    let mut fab = PcieFabric::new(FabricConfig::default());
    let pfs = fab.add_bifurcated(&Bifurcation::per_node(PcieGen::Gen3, 4, 4));
    let mode = if octo {
        SteeringMode::FlowBased
    } else {
        SteeringMode::MacBased
    };
    let mut nic = Nic::new(
        if octo {
            NicConfig::octonic_100g()
        } else {
            NicConfig::standard_100g()
        },
        4,
        pfs[0],
    );
    let _ = mode;
    nic.mpfs_mut().register_mac(MacAddr::local_admin(0), pfs[0]);
    let mut queues = Vec::new();
    for n in 0..4 {
        let node = NodeId(n);
        let mk = |mem: &mut MemSystem| mem.alloc(node, 64 * 1024);
        let (tx, txc, rx, rxc) = (mk(&mut mem), mk(&mut mem), mk(&mut mem), mk(&mut mem));
        // Single-PF mode: every queue's DMA rides endpoint 0, so three of
        // the four nodes are remote. Octo mode: per-node endpoints.
        let pf = if octo { pfs[n] } else { pfs[0] };
        let q = nic.attach_queue(
            QueueConfig {
                pf,
                irq_core: n * 8,
                node,
            },
            tx,
            txc,
            rx,
            rxc,
        );
        for _ in 0..256 {
            let buf = mem.alloc(node, 2048);
            nic.post_rx(
                q,
                RxDesc {
                    addr: buf,
                    len: 2048,
                },
            )
            .unwrap();
        }
        queues.push(q);
    }
    // One flow per socket; octo steers each to its local PF/queue.
    for n in 0..4 {
        let flow = FlowTuple::tcp(10, 1000 + n as u16, 20, 80);
        if octo {
            nic.mpfs_mut().install_flow(flow, pfs[n]);
            nic.arfs_install(Time::ZERO, pfs[n], flow, queues[n]);
        } else {
            nic.arfs_install(Time::ZERO, pfs[0], flow, queues[n]);
        }
    }
    mem.reset_counters();
    for i in 0..200u64 {
        for n in 0..4 {
            let flow = FlowTuple::tcp(10, 1000 + n as u16, 20, 80);
            nic.on_wire_packet(
                Time::from_us(i * 10 + n as u64),
                MacAddr::local_admin(0),
                flow,
                1448,
                i,
                &mut fab,
                &mut mem,
            );
        }
    }
    let c = mem.counters();
    (c.interconnect_bytes, c.total_dram_bytes())
}

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Extension: 4-socket octoNIC",
        "One flow per socket, per-node x4 endpoints (800 packets total)",
    );
    let mut points = ioctopus::sweep::sweep(vec![false, true], run);
    let (ic_octo, dram_octo) = points.pop().expect("two points");
    let (ic_single, dram_single) = points.pop().expect("two points");
    println!(
        "{:>22} | {:>16} | {:>16}",
        "config", "interconnect [B]", "DRAM [B]"
    );
    println!(
        "{:>22} | {:>16} | {:>16}",
        "single-PF (4 remote)", ic_single, dram_single
    );
    println!(
        "{:>22} | {:>16} | {:>16}",
        "octoNIC (IOctoRFS)", ic_octo, dram_octo
    );
    println!("\nThe octopus architecture scales to any socket count: every flow's DMA");
    println!("is steered to its local endpoint, so interconnect traffic vanishes.");
    println!("{}", bench::shape(ic_octo == 0 && ic_single > 100 * 1448));
    bench::footer(t0);
}
