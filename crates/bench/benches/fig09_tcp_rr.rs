//! Figure 9: TCP_RR latency, rr and llnd normalized to ll.

use ioctopus::experiments::tcp_rr::{self, RrConfig};
use ioctopus::results::write_csv;
use workloads::RrConfig as RrSizes;

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Figure 9",
        "TCP RR latency with NUDMA (rr) and without DDIO (llnd), normalized to ll",
    );
    println!(
        "{:>8} | {:>9} | {:>7} {:>7} | {:>9} {:>9} | {:>9} {:>9}",
        "msg", "ll[us]", "rr/ll", "llnd/ll", "rr[us]", "llnd[us]", "rr-p90/ll", "rr-p99/ll"
    );
    let mut worst = 1.0f64;
    let mut rows = Vec::new();
    let points = ioctopus::sweep::sweep(RrSizes::paper_msg_sizes(), |msg| {
        let ll = tcp_rr::run(RrConfig::Ll, msg, 60);
        let rr = tcp_rr::run(RrConfig::Rr, msg, 60);
        let nd = tcp_rr::run(RrConfig::Llnd, msg, 60);
        (msg, ll, rr, nd)
    });
    for (msg, ll, rr, nd) in points {
        rows.push(ll.clone());
        rows.push(rr.clone());
        rows.push(nd.clone());
        let r = rr.mean_us / ll.mean_us;
        // The paper's 10-25% annotations concentrate at <= 4 KiB; our model
        // overshoots in the >= 8 KiB tail (documented in EXPERIMENTS.md).
        if msg <= 4096 {
            worst = worst.max(r);
        }
        println!(
            "{:>8} | {:>9.1} | {:>6.3} {:>7.3} | {:>9.1} {:>9.1} | {:>9.3} {:>9.3}",
            msg,
            ll.mean_us,
            r,
            nd.mean_us / ll.mean_us,
            rr.mean_us,
            nd.mean_us,
            rr.p90_us / ll.p90_us,
            rr.p99_us / ll.p99_us,
        );
    }
    if let Some(p) = write_csv("fig09_tcp_rr", &rows) {
        println!("[csv] {}", p.display());
    }
    println!("\npaper: rr adds 10%-25% over ll; QPI crossing alone (llnd vs ll) 5-15%;");
    println!("       'The 90th and 99th percentile latency (not shown) behaves similarly.'");
    println!("{}", bench::shape(worst > 1.05 && worst < 1.45));
    bench::footer(t0);
}
