//! Figure 11: TCP Rx throughput co-located with STREAM pairs.

use ioctopus::config::Placement;
use ioctopus::experiments::congestion;
use ioctopus::results::write_csv;

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Figure 11",
        "Single-core TCP Rx throughput while STREAM pairs congest the QPI",
    );
    println!(
        "{:>7} | {:>10} {:>10} {:>7} | {:>10} {:>10}",
        "pairs", "ioct[Gb/s]", "rem[Gb/s]", "ratio", "ioct-mem", "rem-mem"
    );
    let mut best = 0.0f64;
    let mut rows = Vec::new();
    let points = ioctopus::sweep::sweep((1..=6).collect::<Vec<_>>(), |pairs| {
        let l = congestion::run_fig11(Placement::Octopus, pairs, 10);
        let r = congestion::run_fig11(Placement::Remote, pairs, 10);
        (pairs, l, r)
    });
    for (pairs, l, r) in points {
        let ratio = l.throughput_gbps / r.throughput_gbps;
        best = best.max(ratio);
        rows.push(l.clone());
        rows.push(r.clone());
        println!(
            "{:>7} | {:>10.2} {:>10.2} {:>6.2}x | {:>10.1} {:>10.1}",
            pairs, l.throughput_gbps, r.throughput_gbps, ratio, l.membw_gbps, r.membw_gbps
        );
    }
    if let Some(p) = write_csv("fig11_congestion", &rows) {
        println!("[csv] {}", p.display());
    }
    println!("\npaper: ioct/local obtains 1.82x-2.67x the remote throughput");
    println!("{}", bench::shape(best > 1.5));
    bench::footer(t0);
}
