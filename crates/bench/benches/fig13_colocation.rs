//! Figure 13: PageRank co-located with memcached / netperf.

use ioctopus::config::Placement;
use ioctopus::experiments::colocation::{self, IoKind};

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Figure 13",
        "PageRank run time and I/O throughput under co-location",
    );
    let chunks = 150;
    let alone = colocation::run_pr_alone(chunks);
    println!("PR alone: {alone:.2} ms (simulated)\n");
    println!(
        "{:>10} {:>10} | {:>12} | {:>14}",
        "io", "config", "PR time[ms]", "io metric"
    );
    let mut slowdowns = Vec::new();
    let points = ioctopus::sweep::sweep(vec![IoKind::Netperf, IoKind::Memcached], |io| {
        let l = colocation::run(Placement::Octopus, io, chunks, 400);
        let r = colocation::run(Placement::Remote, io, chunks, 400);
        (io, l, r)
    });
    for (io, l, r) in points {
        slowdowns.push((io, r.pr_time_ms / l.pr_time_ms));
        for (cfg, res) in [("ioct/local", &l), ("remote", &r)] {
            println!(
                "{:>10} {:>10} | {:>12.2} | {:>11.2} {}",
                format!("{io:?}"),
                cfg,
                res.pr_time_ms,
                res.io_metric,
                if io == IoKind::Netperf {
                    "Gb/s"
                } else {
                    "KT/s"
                },
            );
        }
    }
    println!("\npaper: PR 12% slower with remote netperf, 4% with remote memcached;");
    println!("       netperf throughput comparable, memcached suffers when sharing the QPI");
    // Shape claim: remote netperf hurts PR more than remote memcached does
    // (magnitudes differ from the paper; see EXPERIMENTS.md).
    let net = slowdowns
        .iter()
        .find(|(k, _)| *k == IoKind::Netperf)
        .map(|(_, s)| *s)
        .unwrap_or(0.0);
    let kv = slowdowns
        .iter()
        .find(|(k, _)| *k == IoKind::Memcached)
        .map(|(_, s)| *s)
        .unwrap_or(0.0);
    println!("{}", bench::shape(net > 1.05 && net > kv));
    bench::footer(t0);
}
