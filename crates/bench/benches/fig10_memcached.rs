//! Figure 10: memcached throughput and memory bandwidth vs SET ratio.

use ioctopus::config::Placement;
use ioctopus::experiments::memcached;
use ioctopus::results::write_csv;

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Figure 10",
        "memcached transactions and server memory bandwidth as SET ratio grows",
    );
    println!(
        "{:>6} | {:>10} {:>10} {:>7} | {:>10} {:>10} {:>7}",
        "SET%", "ioct[KT/s]", "rem[KT/s]", "ratio", "ioct[GB/s]", "rem[GB/s]", "memx"
    );
    let mut gains = Vec::new();
    let mut rows = Vec::new();
    let points = ioctopus::sweep::sweep(vec![0, 25, 50, 75, 100], |set_pct| {
        let ratio = set_pct as f64 / 100.0;
        let l = memcached::run(Placement::Octopus, ratio, 12);
        let r = memcached::run(Placement::Remote, ratio, 12);
        (set_pct, l, r)
    });
    for (set_pct, l, r) in points {
        let gain = l.rate_per_sec / r.rate_per_sec;
        gains.push(gain);
        rows.push(l.clone());
        rows.push(r.clone());
        println!(
            "{:>6} | {:>10.2} {:>10.2} {:>6.2}x | {:>10.2} {:>10.2} {:>6.2}x",
            set_pct,
            l.rate_per_sec / 1e3,
            r.rate_per_sec / 1e3,
            gain,
            l.membw_gbps / 8.0,
            r.membw_gbps / 8.0,
            if r.membw_gbps > 0.0 {
                l.membw_gbps / r.membw_gbps
            } else {
                0.0
            },
        );
    }
    if let Some(p) = write_csv("fig10_memcached", &rows) {
        println!("[csv] {}", p.display());
    }
    let grows = gains.last().unwrap() > gains.first().unwrap();
    println!("\npaper: ioct/local advantage grows with SET%: 1.10 -> 1.16; ioct membw 0.57-0.75x of remote");
    println!("{}", bench::shape(grows && *gains.last().unwrap() > 1.03));
    bench::footer(t0);
}
