//! Figure 15: fio vs STREAM instances on the NVMe testbed.

use ioctopus::experiments::nvme_fio;
use ioctopus::results::write_csv;

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Figure 15",
        "Normalized fio / STREAM throughput as STREAM instances grow (4 remote dual-port SSDs)",
    );
    println!(
        "{:>9} | {:>9} {:>9} | {:>12} | {:>14}",
        "#STREAMs", "fio-norm", "strm-norm", "fio[GB/s]", "OctoSSD fio-norm"
    );
    let mut min_norm = 1.0f64;
    let mut rows = Vec::new();
    let points = ioctopus::sweep::sweep((1..=10).collect::<Vec<_>>(), |streams| {
        let r = nvme_fio::run(streams, false, 8);
        let o = nvme_fio::run(streams, true, 8);
        (streams, r, o)
    });
    for (streams, r, o) in points {
        min_norm = min_norm.min(r.fio_normalized);
        rows.push(r.clone());
        println!(
            "{:>9} | {:>9.2} {:>9.2} | {:>12.2} | {:>14.2}",
            streams, r.fio_normalized, r.stream_normalized, r.fio_gbs, o.fio_normalized
        );
    }
    if let Some(p) = write_csv("fig15_nvme", &rows) {
        println!("[csv] {}", p.display());
    }
    println!("\npaper: fio degrades up to 24% (norm ~0.76) by 5 STREAMs then flattens; STREAM degrades too");
    println!("extension: OctoSSD (LocalToBuffer port policy) stays ~flat");
    println!("{}", bench::shape(min_norm < 0.95 && min_norm > 0.5));
    bench::footer(t0);
}
