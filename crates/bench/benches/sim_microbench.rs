//! Criterion microbenchmarks of the simulator substrate itself: event queue
//! throughput, cache-model probes, and link reservations — the operations
//! every experiment is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use memsys::{AccessKind, MemConfig, MemSystem, NodeId};
use simcore::{BwLink, Dur, EventQueue, Time};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(Time::from_ns(i * 7 % 997), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
}

fn bench_link_reserve(c: &mut Criterion) {
    c.bench_function("bwlink_reserve", |b| {
        let mut l = BwLink::new("b", BwLink::gbps(100.0), Dur::ZERO);
        let mut t = Time::ZERO;
        b.iter(|| {
            t += Dur::from_ns(100);
            black_box(l.reserve(t, 1500))
        })
    });
}

fn bench_mem_access(c: &mut Criterion) {
    c.bench_function("memsys_cpu_read_1448B_hit", |b| {
        let mut m = MemSystem::new(MemConfig::dual_socket_broadwell());
        let buf = m.alloc(NodeId(0), 1 << 20);
        m.cpu_write(Time::ZERO, NodeId(0), buf, 4096, AccessKind::Stream);
        b.iter(|| black_box(m.cpu_read(Time::ZERO, NodeId(0), buf, 1448, AccessKind::Stream)))
    });
    c.bench_function("memsys_dma_write_remote_1448B", |b| {
        let mut m = MemSystem::new(MemConfig::dual_socket_broadwell());
        let buf = m.alloc(NodeId(0), 1 << 24);
        let mut off = 0u64;
        b.iter(|| {
            off = (off + 2048) % (1 << 23);
            black_box(m.dma_write(Time::ZERO, NodeId(1), buf.offset(off), 1448))
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_link_reserve,
    bench_mem_access
);
criterion_main!(benches);
