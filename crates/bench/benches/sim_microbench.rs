//! Microbenchmarks of the simulator substrate itself: event queue
//! throughput, cache-model probes, and link reservations — the operations
//! every experiment is built from.
//!
//! Self-contained timing harness (`harness = false`): each case is warmed
//! up, then timed over a fixed iteration count, reporting ns/iter.

use memsys::{AccessKind, MemConfig, MemSystem, NodeId};
use simcore::{BwLink, Dur, EventQueue, Time};
use std::hint::black_box;
use std::time::Instant;

fn time_case<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    for _ in 0..iters / 10 {
        f();
    }
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = started.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<40} {per_iter:>12.1} ns/iter ({iters} iters)");
}

fn bench_event_queue() {
    time_case("event_queue_push_pop_1k", 1_000, || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(Time::from_ns(i * 7 % 997), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum += v;
        }
        black_box(sum);
    });
}

fn bench_link_reserve() {
    let mut l = BwLink::new("b", BwLink::gbps(100.0), Dur::ZERO);
    let mut t = Time::ZERO;
    time_case("bwlink_reserve", 1_000_000, || {
        t += Dur::from_ns(100);
        black_box(l.reserve(t, 1500));
    });
}

fn bench_mem_access() {
    let mut m = MemSystem::new(MemConfig::dual_socket_broadwell());
    let buf = m.alloc(NodeId(0), 1 << 20);
    m.cpu_write(Time::ZERO, NodeId(0), buf, 4096, AccessKind::Stream);
    time_case("memsys_cpu_read_1448B_hit", 100_000, || {
        black_box(m.cpu_read(Time::ZERO, NodeId(0), buf, 1448, AccessKind::Stream));
    });

    let mut m = MemSystem::new(MemConfig::dual_socket_broadwell());
    let buf = m.alloc(NodeId(0), 1 << 24);
    let mut off = 0u64;
    time_case("memsys_dma_write_remote_1448B", 100_000, || {
        off = (off + 2048) % (1 << 23);
        black_box(m.dma_write(Time::ZERO, NodeId(1), buf.offset(off), 1448));
    });
}

fn main() {
    bench::header("sim_microbench", "substrate operation costs");
    let started = Instant::now();
    bench_event_queue();
    bench_link_reserve();
    bench_mem_access();
    bench::footer(started);
}
