//! Self-profiling perf baseline: times a representative sweep from each
//! figure family serially and in parallel, and writes the machine-readable
//! `BENCH_2.json` at the workspace root (consumed by CI and tracked in the
//! repo as the PR's perf record).
//!
//! `--smoke` shrinks every sweep to its cheapest point so CI can run the
//! whole harness in seconds; the full run uses figure-sized points.
//!
//! Serial runs are forced with `IOCTOPUS_THREADS=1` via an env guard around
//! the timed closure; parallel runs use the machine's available
//! parallelism. Results are bit-identical either way (the `parallel_sweep`
//! test enforces it), so the comparison is pure scheduling overhead vs
//! speedup.

use std::time::Instant;

use ioctopus::config::Placement;
use ioctopus::experiments::tcp_rr::RrConfig;
use ioctopus::experiments::{congestion, nvme_fio, pktgen, tcp_rr, tcp_stream};
use ioctopus::{perf, sweep};

struct Case {
    name: &'static str,
    /// Sweep points; each returns a checksum-able f64 so serial/parallel
    /// agreement is asserted on actual results, not just timing.
    run: fn(smoke: bool) -> f64,
}

fn fig06(smoke: bool) -> f64 {
    let sizes: Vec<u64> = if smoke {
        vec![256, 65536]
    } else {
        vec![256, 1024, 4096, 16384, 65536]
    };
    let ms = if smoke { 2 } else { 6 };
    sweep::sweep(sizes, |msg| {
        let l = tcp_stream::run_rx(Placement::Octopus, msg, ms);
        let r = tcp_stream::run_rx(Placement::Remote, msg, ms);
        l.throughput_gbps + r.throughput_gbps
    })
    .iter()
    .sum()
}

fn fig07(smoke: bool) -> f64 {
    let sizes: Vec<u64> = if smoke {
        vec![256, 65536]
    } else {
        vec![256, 1024, 4096, 16384, 65536]
    };
    let ms = if smoke { 2 } else { 6 };
    sweep::sweep(sizes, |msg| {
        tcp_stream::run_tx(Placement::Octopus, msg, ms).throughput_gbps
    })
    .iter()
    .sum()
}

fn fig08(smoke: bool) -> f64 {
    let pkts: Vec<u64> = if smoke {
        vec![64, 1500]
    } else {
        vec![64, 128, 256, 512, 1024, 1500]
    };
    let ms = if smoke { 2 } else { 6 };
    sweep::sweep(pkts, |pkt| {
        pktgen::run(Placement::Remote, pkt, ms, false).rate_per_sec
    })
    .iter()
    .sum()
}

fn fig09(smoke: bool) -> f64 {
    let sizes: Vec<u64> = if smoke {
        vec![64, 4096]
    } else {
        vec![64, 256, 1024, 4096, 16384]
    };
    let n = if smoke { 20 } else { 60 };
    sweep::sweep(sizes, |msg| {
        tcp_rr::run(RrConfig::Ll, msg, n).mean_us + tcp_rr::run(RrConfig::Rr, msg, n).mean_us
    })
    .iter()
    .sum()
}

fn fig11(smoke: bool) -> f64 {
    let pairs: Vec<usize> = if smoke { vec![1, 4] } else { (1..=6).collect() };
    let ms = if smoke { 3 } else { 10 };
    sweep::sweep(pairs, |p| {
        congestion::run_fig11(Placement::Remote, p, ms).throughput_gbps
    })
    .iter()
    .sum()
}

fn fig15(smoke: bool) -> f64 {
    let streams: Vec<usize> = if smoke { vec![1, 4] } else { (1..=8).collect() };
    let ms = if smoke { 3 } else { 8 };
    sweep::sweep(streams, |s| nvme_fio::run(s, false, ms).fio_normalized)
        .iter()
        .sum()
}

const CASES: &[Case] = &[
    Case {
        name: "fig06_tcp_rx",
        run: fig06,
    },
    Case {
        name: "fig07_tcp_tx",
        run: fig07,
    },
    Case {
        name: "fig08_pktgen",
        run: fig08,
    },
    Case {
        name: "fig09_tcp_rr",
        run: fig09,
    },
    Case {
        name: "fig11_congestion",
        run: fig11,
    },
    Case {
        name: "fig15_nvme",
        run: fig15,
    },
];

struct Row {
    name: &'static str,
    serial_s: f64,
    parallel_s: f64,
    events: u64,
    checksum_match: bool,
}

/// Runs `f` with `IOCTOPUS_THREADS` pinned to `threads`, restoring the
/// previous value afterwards.
fn with_threads<R>(threads: Option<usize>, f: impl FnOnce() -> R) -> R {
    let key = simcore::pool::THREADS_ENV;
    let prev = std::env::var(key).ok();
    // Single-threaded harness: no concurrent reader of this env var exists
    // while we swap it (sweeps only read it at fan-out time, inside `f`).
    match threads {
        Some(n) => std::env::set_var(key, n.to_string()),
        None => std::env::remove_var(key),
    }
    let out = f();
    match prev {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(rows: &[Row], smoke: bool, threads: usize) -> Option<std::path::PathBuf> {
    let mut root = std::env::current_dir().ok()?;
    while !root.join("Cargo.lock").exists() {
        if !root.pop() {
            root = std::env::current_dir().ok()?;
            break;
        }
    }
    let path = root.join("BENCH_2.json");
    let mut j = String::from("{\n");
    j.push_str(&format!("  \"smoke\": {smoke},\n"));
    j.push_str(&format!("  \"threads\": {threads},\n"));
    let total_serial: f64 = rows.iter().map(|r| r.serial_s).sum();
    let total_parallel: f64 = rows.iter().map(|r| r.parallel_s).sum();
    j.push_str(&format!("  \"total_serial_s\": {total_serial:.3},\n"));
    j.push_str(&format!("  \"total_parallel_s\": {total_parallel:.3},\n"));
    j.push_str(&format!(
        "  \"speedup\": {:.3},\n",
        total_serial / total_parallel.max(1e-9)
    ));
    j.push_str("  \"figures\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_s\": {:.3}, \"parallel_s\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {:.0}, \"speedup\": {:.3}, \
             \"serial_parallel_match\": {}}}{}\n",
            json_escape(r.name),
            r.serial_s,
            r.parallel_s,
            r.events,
            r.events as f64 / r.parallel_s.max(1e-9),
            r.serial_s / r.parallel_s.max(1e-9),
            r.checksum_match,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&path, j).ok()?;
    Some(path)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let t0 = Instant::now();
    bench::header(
        "perf_baseline",
        if smoke {
            "self-profiling sweep baseline (smoke points)"
        } else {
            "self-profiling sweep baseline (figure-sized points)"
        },
    );
    let threads = simcore::pool::worker_count(usize::MAX);
    println!(
        "{:>18} | {:>9} | {:>10} | {:>8} | {:>12} | {:>7}",
        "figure", "serial[s]", "parallel[s]", "speedup", "events", "match"
    );
    let mut rows = Vec::new();
    for c in CASES {
        let _ = perf::take_events();
        let s0 = Instant::now();
        let serial_sum = with_threads(Some(1), || (c.run)(smoke));
        let serial_s = s0.elapsed().as_secs_f64();
        let _ = perf::take_events();

        let p0 = Instant::now();
        let parallel_sum = (c.run)(smoke);
        let parallel_s = p0.elapsed().as_secs_f64();
        let events = perf::take_events();

        let checksum_match = serial_sum.to_bits() == parallel_sum.to_bits();
        println!(
            "{:>18} | {:>9.2} | {:>10.2} | {:>7.2}x | {:>12} | {:>7}",
            c.name,
            serial_s,
            parallel_s,
            serial_s / parallel_s.max(1e-9),
            events,
            checksum_match,
        );
        assert!(
            checksum_match,
            "{}: serial and parallel sweeps disagree",
            c.name
        );
        rows.push(Row {
            name: c.name,
            serial_s,
            parallel_s,
            events,
            checksum_match,
        });
    }
    let total_serial: f64 = rows.iter().map(|r| r.serial_s).sum();
    let total_parallel: f64 = rows.iter().map(|r| r.parallel_s).sum();
    println!(
        "\ntotal: serial {total_serial:.2}s, parallel {total_parallel:.2}s, speedup {:.2}x on {threads} worker(s)",
        total_serial / total_parallel.max(1e-9)
    );
    if let Some(p) = write_json(&rows, smoke, threads) {
        println!("[json] {}", p.display());
    }
    bench::footer(t0);
}
