//! Self-profiling perf baseline: times a representative sweep from each
//! figure family serially and in parallel, and writes the machine-readable
//! `BENCH_2.json` at the workspace root (consumed by CI and tracked in the
//! repo as the PR's perf record).
//!
//! `--smoke` shrinks every sweep to its cheapest point so CI can run the
//! whole harness in seconds; the full run uses figure-sized points.
//!
//! Serial runs are forced with `IOCTOPUS_THREADS=1` via an env guard around
//! the timed closure; parallel runs use the machine's available
//! parallelism. Results are bit-identical either way (the `parallel_sweep`
//! test enforces it), so the comparison is pure scheduling overhead vs
//! speedup. On a 1-worker machine the second pass is labeled `repeat`, not
//! `parallel` — there is no parallelism to claim.
//!
//! The process runs under a counting global allocator; each figure's second
//! pass reports its allocation count and allocs/event, making the
//! zero-allocation hot-path claim a tracked number rather than an assertion
//! in a doc comment.

use std::time::Instant;

use simcore::alloc_count::{allocation_count, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

use ioctopus::config::Placement;
use ioctopus::experiments::tcp_rr::RrConfig;
use ioctopus::experiments::{congestion, nvme_fio, pktgen, tcp_rr, tcp_stream};
use ioctopus::{perf, sweep};

struct Case {
    name: &'static str,
    /// Sweep points; each returns a checksum-able f64 so serial/parallel
    /// agreement is asserted on actual results, not just timing.
    run: fn(smoke: bool) -> f64,
}

fn fig06(smoke: bool) -> f64 {
    let sizes: Vec<u64> = if smoke {
        vec![256, 65536]
    } else {
        vec![256, 1024, 4096, 16384, 65536]
    };
    let ms = if smoke { 2 } else { 6 };
    sweep::sweep(sizes, |msg| {
        let l = tcp_stream::run_rx(Placement::Octopus, msg, ms);
        let r = tcp_stream::run_rx(Placement::Remote, msg, ms);
        l.throughput_gbps + r.throughput_gbps
    })
    .iter()
    .sum()
}

fn fig07(smoke: bool) -> f64 {
    let sizes: Vec<u64> = if smoke {
        vec![256, 65536]
    } else {
        vec![256, 1024, 4096, 16384, 65536]
    };
    let ms = if smoke { 2 } else { 6 };
    sweep::sweep(sizes, |msg| {
        tcp_stream::run_tx(Placement::Octopus, msg, ms).throughput_gbps
    })
    .iter()
    .sum()
}

fn fig08(smoke: bool) -> f64 {
    let pkts: Vec<u64> = if smoke {
        vec![64, 1500]
    } else {
        vec![64, 128, 256, 512, 1024, 1500]
    };
    let ms = if smoke { 2 } else { 6 };
    sweep::sweep(pkts, |pkt| {
        pktgen::run(Placement::Remote, pkt, ms, false).rate_per_sec
    })
    .iter()
    .sum()
}

fn fig09(smoke: bool) -> f64 {
    let sizes: Vec<u64> = if smoke {
        vec![64, 4096]
    } else {
        vec![64, 256, 1024, 4096, 16384]
    };
    let n = if smoke { 20 } else { 60 };
    sweep::sweep(sizes, |msg| {
        tcp_rr::run(RrConfig::Ll, msg, n).mean_us + tcp_rr::run(RrConfig::Rr, msg, n).mean_us
    })
    .iter()
    .sum()
}

fn fig11(smoke: bool) -> f64 {
    let pairs: Vec<usize> = if smoke { vec![1, 4] } else { (1..=6).collect() };
    let ms = if smoke { 3 } else { 10 };
    sweep::sweep(pairs, |p| {
        congestion::run_fig11(Placement::Remote, p, ms).throughput_gbps
    })
    .iter()
    .sum()
}

fn fig15(smoke: bool) -> f64 {
    let streams: Vec<usize> = if smoke { vec![1, 4] } else { (1..=8).collect() };
    let ms = if smoke { 3 } else { 8 };
    sweep::sweep(streams, |s| nvme_fio::run(s, false, ms).fio_normalized)
        .iter()
        .sum()
}

const CASES: &[Case] = &[
    Case {
        name: "fig06_tcp_rx",
        run: fig06,
    },
    Case {
        name: "fig07_tcp_tx",
        run: fig07,
    },
    Case {
        name: "fig08_pktgen",
        run: fig08,
    },
    Case {
        name: "fig09_tcp_rr",
        run: fig09,
    },
    Case {
        name: "fig11_congestion",
        run: fig11,
    },
    Case {
        name: "fig15_nvme",
        run: fig15,
    },
];

struct Row {
    name: &'static str,
    serial_s: f64,
    parallel_s: f64,
    events: u64,
    /// Heap allocations during the second (parallel/repeat) pass, including
    /// per-sweep setup (machine construction); steady-state dispatch itself
    /// allocates nothing.
    allocs: u64,
    checksum_match: bool,
}

impl Row {
    fn allocs_per_event(&self) -> f64 {
        self.allocs as f64 / self.events.max(1) as f64
    }
}

/// Runs `f` with `IOCTOPUS_THREADS` pinned to `threads`, restoring the
/// previous value afterwards.
fn with_threads<R>(threads: Option<usize>, f: impl FnOnce() -> R) -> R {
    let key = simcore::pool::THREADS_ENV;
    let prev = std::env::var(key).ok();
    // Single-threaded harness: no concurrent reader of this env var exists
    // while we swap it (sweeps only read it at fan-out time, inside `f`).
    match threads {
        Some(n) => std::env::set_var(key, n.to_string()),
        None => std::env::remove_var(key),
    }
    let out = f();
    match prev {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Pulls a `"key": <number>` value out of a flat JSON document. Enough
/// parser for our own `BENCH_2.json`; avoids a serde dependency.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = doc.find(&needle)? + needle.len();
    let rest = doc[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Perf-regression gate: compares this run's aggregate event rate against
/// a previously committed baseline JSON. Exits nonzero on a >20%
/// regression. Events/sec is the figure of merit (wall-clock depends on
/// sweep sizing), but smoke and full rates are *not* comparable — smoke
/// points are setup-dominated — so the gate only fires when the baseline
/// was recorded in the same mode (CI compares smoke against the committed
/// `BENCH_2_SMOKE.json`).
fn check_against_baseline(rows: &[Row], smoke: bool, path: &str) {
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(e) => {
            // A missing baseline is not a regression (fresh clone, first
            // run); the gate only fires on measured decay.
            println!("[baseline] {path} unreadable ({e}); skipping gate");
            return;
        }
    };
    let base_smoke = doc.contains("\"smoke\": true");
    if base_smoke != smoke {
        println!(
            "[baseline] {path} was recorded with smoke={base_smoke}, this run is \
             smoke={smoke}; rates are not comparable, skipping gate"
        );
        return;
    }
    let base_events = json_number(&doc, "total_events");
    let base_secs = json_number(&doc, "total_parallel_s");
    let (Some(base_events), Some(base_secs)) = (base_events, base_secs) else {
        println!("[baseline] {path} lacks total_events/total_parallel_s; skipping gate");
        return;
    };
    let base_rate = base_events / base_secs.max(1e-9);
    let events: u64 = rows.iter().map(|r| r.events).sum();
    let secs: f64 = rows.iter().map(|r| r.parallel_s).sum();
    let rate = events as f64 / secs.max(1e-9);
    let ratio = rate / base_rate.max(1e-9);
    println!(
        "[baseline] {rate:.0} events/s vs committed {base_rate:.0} events/s (ratio {ratio:.2})"
    );
    assert!(
        ratio >= 0.80,
        "perf regression: {rate:.0} events/s is more than 20% below the \
         committed baseline's {base_rate:.0} events/s ({path})"
    );
}

fn write_json(rows: &[Row], smoke: bool, threads: usize) -> Option<std::path::PathBuf> {
    let mut root = std::env::current_dir().ok()?;
    while !root.join("Cargo.lock").exists() {
        if !root.pop() {
            root = std::env::current_dir().ok()?;
            break;
        }
    }
    let path = root.join("BENCH_2.json");
    let mut j = String::from("{\n");
    j.push_str(&format!("  \"smoke\": {smoke},\n"));
    j.push_str(&format!("  \"threads\": {threads},\n"));
    // A 1-thread run's second pass measured no parallelism; say so.
    j.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if threads > 1 {
            "parallel"
        } else {
            "serial-repeat"
        }
    ));
    let total_serial: f64 = rows.iter().map(|r| r.serial_s).sum();
    let total_parallel: f64 = rows.iter().map(|r| r.parallel_s).sum();
    j.push_str(&format!("  \"total_serial_s\": {total_serial:.3},\n"));
    j.push_str(&format!("  \"total_parallel_s\": {total_parallel:.3},\n"));
    let total_events: u64 = rows.iter().map(|r| r.events).sum();
    j.push_str(&format!("  \"total_events\": {total_events},\n"));
    j.push_str(&format!(
        "  \"speedup\": {:.3},\n",
        total_serial / total_parallel.max(1e-9)
    ));
    j.push_str("  \"figures\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_s\": {:.3}, \"parallel_s\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {:.0}, \"speedup\": {:.3}, \
             \"allocs\": {}, \"allocs_per_event\": {:.4}, \
             \"serial_parallel_match\": {}}}{}\n",
            json_escape(r.name),
            r.serial_s,
            r.parallel_s,
            r.events,
            r.events as f64 / r.parallel_s.max(1e-9),
            r.serial_s / r.parallel_s.max(1e-9),
            r.allocs,
            r.allocs_per_event(),
            r.checksum_match,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&path, j).ok()?;
    Some(path)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let t0 = Instant::now();
    bench::header(
        "perf_baseline",
        if smoke {
            "self-profiling sweep baseline (smoke points)"
        } else {
            "self-profiling sweep baseline (figure-sized points)"
        },
    );
    let threads = simcore::pool::worker_count(usize::MAX);
    // With one worker the second pass exercises no parallelism; refusing
    // the label keeps the table and json honest on small machines.
    let second = if threads > 1 { "parallel" } else { "repeat" };
    println!(
        "{:>18} | {:>9} | {:>10} | {:>8} | {:>12} | {:>10} | {:>7}",
        "figure",
        "serial[s]",
        format!("{second}[s]"),
        "speedup",
        "events",
        "allocs/ev",
        "match"
    );
    let mut rows = Vec::new();
    for c in CASES {
        let _ = perf::take_events();
        let s0 = Instant::now();
        let serial_sum = with_threads(Some(1), || (c.run)(smoke));
        let serial_s = s0.elapsed().as_secs_f64();
        let _ = perf::take_events();

        let a0 = allocation_count();
        let p0 = Instant::now();
        let parallel_sum = (c.run)(smoke);
        let parallel_s = p0.elapsed().as_secs_f64();
        let events = perf::take_events();
        let allocs = allocation_count() - a0;

        let checksum_match = serial_sum.to_bits() == parallel_sum.to_bits();
        let row = Row {
            name: c.name,
            serial_s,
            parallel_s,
            events,
            allocs,
            checksum_match,
        };
        println!(
            "{:>18} | {:>9.2} | {:>10.2} | {:>7.2}x | {:>12} | {:>10.4} | {:>7}",
            row.name,
            row.serial_s,
            row.parallel_s,
            row.serial_s / row.parallel_s.max(1e-9),
            row.events,
            row.allocs_per_event(),
            row.checksum_match,
        );
        assert!(
            checksum_match,
            "{}: serial and {second} sweeps disagree",
            c.name
        );
        rows.push(row);
    }
    let total_serial: f64 = rows.iter().map(|r| r.serial_s).sum();
    let total_parallel: f64 = rows.iter().map(|r| r.parallel_s).sum();
    let total_allocs: u64 = rows.iter().map(|r| r.allocs).sum();
    let total_events: u64 = rows.iter().map(|r| r.events).sum();
    println!(
        "\ntotal: serial {total_serial:.2}s, {second} {total_parallel:.2}s, speedup {:.2}x on {threads} worker(s)",
        total_serial / total_parallel.max(1e-9)
    );
    println!(
        "allocations: {total_allocs} over {total_events} events = {:.4} allocs/event \
         (includes per-sweep machine setup; steady-state dispatch is 0)",
        total_allocs as f64 / total_events.max(1) as f64
    );
    if let Some(p) = write_json(&rows, smoke, threads) {
        println!("[json] {}", p.display());
    }
    if let Some(path) = baseline {
        check_against_baseline(&rows, smoke, &path);
    }
    bench::footer(t0);
}
