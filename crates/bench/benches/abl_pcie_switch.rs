//! §3.2 ablation: programmable PCIe switch vs static bifurcation.
//!
//! "The drawbacks of this approach ... adds latency to individual
//! operations" — we quantify the per-operation latency a switch would add.

use memsys::{MemConfig, MemSystem, NodeId};
use pcie::{FabricConfig, PcieFabric, PcieGen};
use simcore::{Dur, Time};

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Ablation §3.2",
        "Programmable PCIe switch latency vs static bifurcation (per-DMA cost)",
    );
    println!(
        "{:>12} | {:>12} {:>12}",
        "switch[ns]", "write[ns]", "read[ns]"
    );
    let points = ioctopus::sweep::sweep(vec![0u64, 60, 120, 250], |sw_ns| {
        let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let mut fab = PcieFabric::new(FabricConfig {
            switch_latency: Dur::from_ns(sw_ns),
            ..FabricConfig::default()
        });
        let pf = fab.add_endpoint(NodeId(0), PcieGen::Gen3, 8);
        let buf = mem.alloc(NodeId(0), 1 << 20);
        let w = fab.dma_write(Time::ZERO, pf, &mut mem, buf, 1448).unwrap();
        let r = fab
            .dma_read(Time::from_us(10), pf, &mut mem, buf.offset(4096), 1448)
            .unwrap();
        (sw_ns, w, r)
    });
    for (sw_ns, w, r) in points {
        println!("{:>12} | {:>12.0} {:>12.0}", sw_ns, w.as_ns(), r.as_ns());
    }
    println!("\nstatic bifurcation (switch=0) is the paper's prototype choice; a switch");
    println!("adds its latency to every transaction — visible directly above.");
    bench::footer(t0);
}
