//! Hotplug churn: epoch-fenced reconfiguration between uniform IOctopus
//! mode and legacy NUDMA mode, measured and then stress-tested.
//!
//! Two halves, one artifact (`BENCH_9.json` at the workspace root):
//!
//! * **measure** — the `reconfig` experiment runs one full surprise-remove
//!   → NUDMA → re-enumerate cycle against the Figure 7 receive stream and
//!   reports the transition latencies, the degraded-mode throughput ratio,
//!   and how much stale work the epoch fence discarded (counted, never
//!   delivered);
//! * **stress** — a topology-churn chaos campaign (the `chaos` harness's
//!   fault alphabet plus `SurpriseRemove`/`Reenumerate`, often paired)
//!   expands one fixed seed into 1000 deterministic schedules (`--smoke`:
//!   48) across the four experiment families, every run under the
//!   system-wide invariant audit. Any violation fails the harness after
//!   delta-debugging the offending schedule to a minimal reproducer in
//!   `CHAOS_MIN_PLAN.json`.

use std::time::Instant;

use ioctopus::experiments::{chaos, reconfig};
use ioctopus::perf;
use simcore::campaign::{plan_for, shrink};
use simcore::FaultPlan;

/// Fixed campaign seed: CI reruns are bit-identical, and any violation is
/// reproducible from `(SEED, index)` alone. Distinct from the `chaos`
/// harness's seed so the two campaigns explore different schedules.
const SEED: u64 = 0x10c7_0b09;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn plan_json(plan: &FaultPlan) -> String {
    let evs: Vec<String> = plan
        .events()
        .iter()
        .map(|e| {
            format!(
                "{{\"at_ps\": {}, \"pf\": {}, \"kind\": \"{}\"}}",
                e.at.as_ps(),
                e.pf,
                json_escape(&format!("{:?}", e.kind))
            )
        })
        .collect();
    format!("[{}]", evs.join(", "))
}

fn repo_root() -> std::path::PathBuf {
    let mut root = std::env::current_dir().unwrap_or_default();
    while !root.join("Cargo.lock").exists() {
        if !root.pop() {
            return std::env::current_dir().unwrap_or_default();
        }
    }
    root
}

fn write_min_plan(seed: u64, index: u64, plan: &FaultPlan, violations: &[String]) {
    let path = repo_root().join("CHAOS_MIN_PLAN.json");
    let viol: Vec<String> = violations
        .iter()
        .map(|v| format!("\"{}\"", json_escape(v)))
        .collect();
    let j = format!(
        "{{\n  \"kind\": \"hotplug-violation\",\n  \"seed\": {seed},\n  \
         \"schedule_index\": {index},\n  \"events\": {},\n  \"plan\": {},\n  \
         \"violations\": [{}]\n}}\n",
        plan.len(),
        plan_json(plan),
        viol.join(", ")
    );
    if std::fs::write(&path, j).is_ok() {
        println!("[json] {}", path.display());
    }
}

fn write_json(
    smoke: bool,
    r: &ioctopus::results::ReconfigResult,
    sum: &chaos::CampaignReport,
    wall_s: f64,
) {
    let path = repo_root().join("BENCH_9.json");
    let viol: Vec<String> = sum
        .violations
        .iter()
        .map(|v| format!("\"{}\"", json_escape(v)))
        .collect();
    let j = format!(
        "{{\n  \"smoke\": {smoke},\n  \"reconfig\": {{\n    \
         \"remove_to_survivor_us\": {:.1},\n    \"readd_to_home_us\": {:.1},\n    \
         \"degraded_ratio\": {:.4},\n    \"recovered_ratio\": {:.4},\n    \
         \"fenced_completions\": {},\n    \"fenced_irqs\": {},\n    \
         \"reconfigs\": {},\n    \"nudma_entries\": {},\n    \"nudma_exits\": {},\n    \
         \"dropped_pf_dead\": {},\n    \"resteered_flows\": {}\n  }},\n  \
         \"campaign\": {{\n    \"seed\": {},\n    \"schedules\": {},\n    \
         \"faults\": {},\n    \"events\": {},\n    \"checks\": {},\n    \
         \"recoveries\": {},\n    \"fenced\": {},\n    \"reconfigs\": {},\n    \
         \"violations\": [{}]\n  }},\n  \"wall_s\": {:.3}\n}}\n",
        r.remove_to_survivor_us,
        r.readd_to_home_us,
        r.degraded_ratio,
        r.recovered_ratio,
        r.fenced_completions,
        r.fenced_irqs,
        r.reconfigs,
        r.nudma_entries,
        r.nudma_exits,
        r.dropped_pf_dead,
        r.resteered_flows,
        sum.seed,
        sum.schedules,
        sum.faults,
        sum.events,
        sum.checks,
        sum.recoveries,
        sum.fenced,
        sum.reconfigs,
        viol.join(", "),
        wall_s,
    );
    if std::fs::write(&path, j).is_ok() {
        println!("[json] {}", path.display());
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let count: u64 = if smoke { 48 } else { 1000 };
    let t0 = Instant::now();
    bench::header(
        "reconfig_hotplug",
        &format!("epoch-fenced hotplug cycle + {count} topology-churn schedules (seed {SEED:#x})"),
    );

    // ---- measure: one clean remove → NUDMA → re-add cycle ----
    let r = reconfig::run();
    println!(
        "{:>24} | {:>12} | {:>12}",
        "transition", "latency (µs)", "tput ratio"
    );
    println!(
        "{:>24} | {:>12.1} | {:>12.3}",
        "remove -> NUDMA", r.remove_to_survivor_us, r.degraded_ratio
    );
    println!(
        "{:>24} | {:>12.1} | {:>12.3}",
        "re-add -> uniform", r.readd_to_home_us, r.recovered_ratio
    );
    println!(
        "fence: {} completions + {} irqs discarded; {} reconfigs, \
         NUDMA in/out {}/{}, {} drops  {}",
        r.fenced_completions,
        r.fenced_irqs,
        r.reconfigs,
        r.nudma_entries,
        r.nudma_exits,
        r.dropped_pf_dead,
        bench::shape(
            r.reconfigs == 2
                && r.nudma_entries == 1
                && r.nudma_exits == 1
                && r.degraded_ratio > 0.05
                && (r.recovered_ratio - 1.0).abs() < 0.05
        ),
    );

    // ---- stress: the topology-churn campaign under the invariant audit ----
    let reports = chaos::run_reports_with(&chaos::hotplug_config(SEED), count);
    let sum = chaos::aggregate(SEED, &reports);
    println!(
        "\ncampaign: {} schedules, {} faults, {} checks, {} reconfigs, \
         {} fenced, {} violation(s)",
        sum.schedules,
        sum.faults,
        sum.checks,
        sum.reconfigs,
        sum.fenced,
        sum.violations.len()
    );

    if let Some(bad) = reports.iter().find(|x| !x.violations.is_empty()) {
        println!(
            "\nVIOLATIONS (first schedule = {:?}[{}]):",
            bad.family, bad.index
        );
        for v in &sum.violations {
            println!("  {v}");
        }
        let cfg = chaos::hotplug_config(SEED);
        let plan = plan_for(&cfg, bad.index);
        let min = shrink(&plan, |p| {
            !chaos::run_plan(bad.family, bad.index, p)
                .violations
                .is_empty()
        });
        let min_report = chaos::run_plan(bad.family, bad.index, &min);
        println!(
            "minimized {} -> {} events; reproduce with seed {SEED:#x}, index {}",
            plan.len(),
            min.len(),
            bad.index
        );
        write_min_plan(SEED, bad.index, &min, &min_report.violations);
    }

    write_json(smoke, &r, &sum, t0.elapsed().as_secs_f64());
    let _ = perf::events(); // footer drains the counters
    bench::footer(t0);
    assert!(
        sum.ok(),
        "{} invariant violation(s) — see CHAOS_MIN_PLAN.json",
        sum.violations.len()
    );
    assert!(
        sum.reconfigs >= count / 4,
        "topology churn must actually exercise the fence: {} reconfigs \
         across {} schedules",
        sum.reconfigs,
        sum.schedules
    );
}
