//! Extension: zero-copy sendfile across NUMA nodes, with and without
//! IOctoSG (§3.3's proposed-but-unimplemented feature, implemented here).
//!
//! "IOctoRFS does not suffice to address packets whose data spans NUMA
//! nodes, since no single PF can access the packet over PCIe without
//! incurring NUDMA. We propose an IOctoSG (scatter-gather) feature that
//! allows the driver to provide a hint in ring descriptors specifying
//! which PF to use when accessing each fragment."

use ioctopus::config::{BuildOpts, Placement};
use ioctopus::system::build_duplex;
use kernel::{NetdevId, SendOutcome};
use memsys::NodeId;
use nic::FlowTuple;
use simcore::{OutBuf, Time};

fn run(p: Placement) -> (f64, u64) {
    let mut duplex = build_duplex(p, BuildOpts::default());
    let th = duplex.server.spawn_thread(p.app_core());
    let flow = FlowTuple::tcp(0x0A00_0001, 4242, 0x0A00_0002, 80);
    let sock = duplex.server.open_socket(Time::ZERO, th, flow, NetdevId(0));
    // A page-cache "file" interleaved across both nodes, 4 KiB pages.
    let pages_n0: Vec<_> = (0..64)
        .map(|_| duplex.server.mem.alloc(NodeId(0), 4096))
        .collect();
    let pages_n1: Vec<_> = (0..64)
        .map(|_| duplex.server.mem.alloc(NodeId(1), 4096))
        .collect();
    let file: Vec<(memsys::PhysAddr, u64)> = pages_n0
        .iter()
        .zip(pages_n1.iter())
        .flat_map(|(&a, &b)| [(a, 4096u64), (b, 4096u64)])
        .collect();
    duplex.server.mem.reset_counters();
    let mut t = Time::ZERO;
    let mut sent = 0u64;
    let mut outs = OutBuf::new();
    let mut irq_outs = OutBuf::new();
    for round in 0..20 {
        outs.clear();
        match duplex.server.sendfile(t, sock, &file, &mut outs) {
            SendOutcome::Sent { done_at } => {
                t = done_at.max(Time::from_us(round * 100));
                sent += file.iter().map(|(_, l)| l).sum::<u64>();
                // Drain completions so sndbuf frees.
                for o in &outs {
                    if let kernel::HostOut::Irq { at, queue, .. } = o {
                        irq_outs.clear();
                        duplex.server.irq(*at, *queue, &mut irq_outs);
                    }
                }
            }
            SendOutcome::WouldBlock => break,
        }
    }
    let secs = t.as_secs().max(1e-9);
    (
        sent as f64 * 8.0 / 1e9 / secs,
        duplex.server.mem.counters().interconnect_bytes,
    )
}

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Extension: IOctoSG",
        "Zero-copy sendfile of a file whose pages interleave across both NUMA nodes",
    );
    // Standard driver on node 0 / PF0 vs the octo team driver, whose
    // per-fragment PF hints keep every page-fetch local.
    let mut points = ioctopus::sweep::sweep(vec![Placement::Local, Placement::Octopus], run);
    let (tput_octo, qpi_octo) = points.pop().expect("two points");
    let (tput_std, qpi_std) = points.pop().expect("two points");
    println!(
        "{:>22} | {:>12} | {:>18}",
        "config", "tput [Gb/s]", "interconnect [B]"
    );
    println!(
        "{:>22} | {:>12.1} | {:>18}",
        "standard (no hints)", tput_std, qpi_std
    );
    println!(
        "{:>22} | {:>12.1} | {:>18}",
        "octoNIC + IOctoSG", tput_octo, qpi_octo
    );
    println!("\nIOctoSG removes the last NUDMA residue: cross-node payload fragments");
    println!("are fetched through their local endpoints.");
    println!("{}", bench::shape(qpi_octo < qpi_std / 5));
    bench::footer(t0);
}
