//! §2.4 ablation: completion rings allocated device-local.
//!
//! "allocating R remotely to pktgen and locally to the NIC yields only a
//! marginal performance improvement of up to 2%" — the evidence that
//! remote DDIO would not solve NUDMA.

use ioctopus::config::Placement;
use ioctopus::experiments::pktgen;

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Ablation §2.4",
        "pktgen with the completion ring placed local to the (remote) device",
    );
    let mut points = ioctopus::sweep::sweep(vec![false, true], |device_local| {
        pktgen::run(Placement::Remote, 64, 8, device_local)
    });
    let devring = points.pop().expect("two points");
    let normal = points.pop().expect("two points");
    let imp = devring.rate_per_sec / normal.rate_per_sec;
    println!(
        "remote, CPU-local CQ:    {:.3} Mpps",
        normal.rate_per_sec / 1e6
    );
    println!(
        "remote, device-local CQ: {:.3} Mpps",
        devring.rate_per_sec / 1e6
    );
    println!("improvement: {:.1}% (paper: up to 2%)", (imp - 1.0) * 100.0);
    println!("{}", bench::shape((0.95..1.08).contains(&imp)));
    bench::footer(t0);
}
