//! IOctoSG ablation (§3.3 extension): per-fragment PF hints for payloads
//! spanning NUMA nodes (the sendfile/page-cache case the paper describes
//! but does not implement).

use kernel::Cores;
use memsys::{MemConfig, MemSystem, NodeId};
use nic::desc::TxFragment;
use nic::{FlowTuple, Nic, NicConfig, QueueConfig, TxDesc};
use pcie::{Bifurcation, FabricConfig, PcieFabric, PcieGen};
use simcore::Time;

fn run(hinted: bool) -> f64 {
    let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
    let mut fab = PcieFabric::new(FabricConfig::default());
    let pfs = fab.add_bifurcated(&Bifurcation::x8x8_dual_socket(PcieGen::Gen3));
    let mut nic = Nic::new(NicConfig::octonic_100g(), 2, pfs[0]);
    let node = NodeId(0);
    let mk = |mem: &mut MemSystem, n: NodeId| mem.alloc(n, 64 * 1024);
    let (tx, txc, rx, rxc) = (
        mk(&mut mem, node),
        mk(&mut mem, node),
        mk(&mut mem, node),
        mk(&mut mem, node),
    );
    let q = nic.attach_queue(
        QueueConfig {
            pf: pfs[0],
            irq_core: 0,
            node,
        },
        tx,
        txc,
        rx,
        rxc,
    );
    let flow = FlowTuple::tcp(1, 1, 2, 2);
    // Page-cache buffers on both nodes.
    let frag0 = mem.alloc(NodeId(0), 1 << 20);
    let frag1 = mem.alloc(NodeId(1), 1 << 20);
    let _ = Cores::new(28);
    let mut last = Time::ZERO;
    let mut out = nic::TxOutcome::default();
    for i in 0..512u64 {
        let desc = TxDesc {
            fragments: vec![
                TxFragment {
                    addr: frag0.offset((i % 256) * 4096),
                    len: 724,
                    pf_hint: hinted.then_some(pfs[0]),
                },
                TxFragment {
                    addr: frag1.offset((i % 256) * 4096),
                    len: 724,
                    pf_hint: hinted.then_some(pfs[1]),
                },
            ]
            .into(),
            flow,
            len: 1448,
            tso: false,
        };
        nic.post_tx(q, desc);
        nic.tx_doorbell(last, last, q, &mut fab, &mut mem, &mut out);
        last = out.packets.last().map(|p| p.0).unwrap_or(last);
    }
    mem.counters().interconnect_bytes as f64
}

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Ablation IOctoSG",
        "Cross-node scatter-gather payloads: interconnect bytes with and without PF hints",
    );
    let mut points = ioctopus::sweep::sweep(vec![false, true], run);
    let with = points.pop().expect("two points");
    let without = points.pop().expect("two points");
    println!(
        "without hints: {:>12.0} interconnect bytes (half of every packet crosses)",
        without
    );
    println!("with IOctoSG:  {:>12.0} interconnect bytes", with);
    println!("reduction: {:.1}x", without / with.max(1.0));
    println!("{}", bench::shape(with < without * 0.2));
    bench::footer(t0);
}
