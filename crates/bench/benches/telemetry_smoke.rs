//! Telemetry smoke: a short traced Figure 7 pass that exercises the whole
//! telemetry subsystem end to end — tracer rings, flight recorder, metric
//! snapshot, and every exporter — then writes the trace artifacts under
//! `target/telemetry/` and schema-validates the Chrome JSON in-process
//! (the same check CI's `telemetry-dump check-json` re-runs on the
//! uploaded artifact).
//!
//! Exits nonzero if the flight recorder sees a single remote-DMA byte in
//! uniform IOctopus mode, or if any export fails validation.

use ioctopus::config::Placement;
use ioctopus::experiments::tcp_stream;

/// Ring capacity for the traced pass: small enough to exercise the
/// overwrite path, large enough to keep a meaningful tail.
const TRACE_CAP: usize = 1 << 14;

fn artifact_dir() -> Option<std::path::PathBuf> {
    let mut root = std::env::current_dir().ok()?;
    while !root.join("Cargo.lock").exists() {
        if !root.pop() {
            root = std::env::current_dir().ok()?;
            break;
        }
    }
    let dir = root.join("target").join("telemetry");
    std::fs::create_dir_all(&dir).ok()?;
    Some(dir)
}

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "telemetry_smoke",
        "Traced Figure 7 pass: trace artifacts, locality ledger, metric snapshot",
    );

    let (r, telem) = tcp_stream::run_tx_traced(Placement::Octopus, 65536, 2, TRACE_CAP);
    println!(
        "traced run: {:.2} Gb/s | {} trace records retained ({} overwritten)",
        r.throughput_gbps,
        telem.trace.retained(),
        telem.trace.overwritten()
    );
    assert!(telem.trace.retained() > 0, "tracer recorded nothing");

    // The IOctopus claim, as the flight recorder saw it.
    let t = &telem.locality;
    println!("\nlocality ledger:\n{}", t.render());
    assert_eq!(
        t.remote_bytes(),
        0,
        "uniform IOctopus mode must keep every DMA byte node-local"
    );
    assert!(t.local_bytes() > 0);

    // Exports: native, Chrome trace_event JSON, folded stacks.
    let native = telemetry::export::to_native(&telem.trace);
    let chrome = telemetry::export::to_chrome_json(&telem.trace);
    let folded = telemetry::export::to_folded(&telem.trace);
    let events = telemetry::export::json::validate_chrome(&chrome)
        .expect("chrome export must satisfy the trace_event schema");
    println!("chrome export: {events} events, schema OK");
    assert!(
        telemetry::export::parse_native(&native).is_ok(),
        "native export must parse back"
    );
    assert!(!folded.is_empty());

    if let Some(dir) = artifact_dir() {
        for (name, body) in [
            ("fig07.trace", &native),
            ("fig07.chrome.json", &chrome),
            ("fig07.folded", &folded),
        ] {
            let p = dir.join(name);
            if std::fs::write(&p, body).is_ok() {
                println!("[artifact] {}", p.display());
            }
        }
    }

    // The metric snapshot is the same registry the perf footer drains;
    // spot-check a few rows every run must produce.
    let m = &telem.metrics;
    for key in [
        "nic.tx.bytes",
        "nic.dma.local_bytes",
        "net.events_processed",
    ] {
        let v = m.get(key).unwrap_or_else(|| panic!("snapshot lacks {key}"));
        assert!(v > 0, "{key} = 0 in a traced streaming run");
    }
    assert_eq!(m.get("nic.dma.remote_bytes"), Some(0));
    println!("\nmetric snapshot ({} rows):", m.rows().len());
    print!("{}", m.render());

    bench::footer(t0);
}
