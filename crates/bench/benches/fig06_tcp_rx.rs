//! Figure 6: single-core TCP STREAM receive.

use ioctopus::config::Placement;
use ioctopus::experiments::tcp_stream;
use ioctopus::results::write_csv;
use workloads::StreamConfig;

fn main() {
    let t0 = std::time::Instant::now();
    bench::header(
        "Figure 6",
        "Single-core TCP stream receive (throughput / memory bandwidth / CPU)",
    );
    println!(
        "{:>8} | {:>10} {:>10} {:>7} | {:>10} {:>10} {:>7} | {:>7}",
        "msg", "ioct[Gb/s]", "rem[Gb/s]", "ratio", "ioct-mem", "rem-mem", "memx", "cpu"
    );
    let mut ratios = Vec::new();
    let mut rows = Vec::new();
    let points = ioctopus::sweep::sweep(StreamConfig::paper_msg_sizes(), |msg| {
        let l = tcp_stream::run_rx(Placement::Octopus, msg, 8);
        let r = tcp_stream::run_rx(Placement::Remote, msg, 8);
        (msg, l, r)
    });
    for (msg, l, r) in points {
        let ratio = l.throughput_gbps / r.throughput_gbps;
        ratios.push((msg, ratio));
        rows.push(l.clone());
        rows.push(r.clone());
        println!(
            "{:>8} | {:>10.2} {:>10.2} {:>6.2}x | {:>10.2} {:>10.2} {:>6.2}x | {:>6.2}",
            msg,
            l.throughput_gbps,
            r.throughput_gbps,
            ratio,
            l.membw_gbps,
            r.membw_gbps,
            if r.throughput_gbps > 0.0 {
                r.membw_gbps / r.throughput_gbps
            } else {
                0.0
            },
            l.cpu_cores,
        );
    }
    if let Some(p) = write_csv("fig06_tcp_rx", &rows) {
        println!("[csv] {}", p.display());
    }
    let at_64k = ratios.last().map(|(_, r)| *r).unwrap_or(0.0);
    println!("\npaper: ratio 1.08 @256B rising to ~1.24-1.26 @>=4K; remote membw ~3x tput; both CPU-bound");
    println!("{}", bench::shape(at_64k > 1.1 && at_64k < 1.6));
    bench::footer(t0);
}
