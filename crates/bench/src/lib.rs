//! Shared helpers for the figure-regeneration bench harnesses.
//!
//! Each `benches/figNN_*.rs` target is a `harness = false` binary run by
//! `cargo bench`: it re-runs the corresponding experiment from
//! [`ioctopus::experiments`] and prints the paper's rows/series next to the
//! paper's reference values, so `cargo bench --workspace` regenerates the
//! entire evaluation.

#![warn(missing_docs)]

use std::time::Instant;

/// Prints the standard figure header.
pub fn header(fig: &str, caption: &str) {
    println!("==================================================================");
    println!("{fig}: {caption}");
    println!("==================================================================");
}

/// Prints the closing footer with wall-clock cost and the self-profiled
/// event throughput since the header. Drains the metrics registry's run
/// accounting ([`telemetry::registry::take_run_stats`]) — the same cells
/// the experiment runners credit through `ioctopus::perf` and that
/// `perf_baseline` renders into the baseline JSON, so every consumer
/// reports from one source.
pub fn footer(started: Instant) {
    let secs = started.elapsed().as_secs_f64();
    let telemetry::registry::RunStats {
        events,
        audits,
        fenced,
        reconfigs,
    } = telemetry::registry::take_run_stats();
    let checks = if audits > 0 && secs > 0.0 {
        format!(" | {:.1}M checks/s", audits as f64 / 1e6 / secs)
    } else {
        String::new()
    };
    // Hotplug accounting, shown only by harnesses that reconfigured: every
    // fenced delivery was counted-and-discarded, never delivered.
    let hotplug = if reconfigs > 0 || fenced > 0 {
        format!(" | {reconfigs} reconfigs | {fenced} fenced")
    } else {
        String::new()
    };
    if events > 0 && secs > 0.0 {
        println!(
            "--------------------- [{:.1}s wall-clock | {:.1}M events | {:.1}M events/s{}{} | {} workers]\n",
            secs,
            events as f64 / 1e6,
            events as f64 / 1e6 / secs,
            checks,
            hotplug,
            simcore::pool::worker_count(usize::MAX),
        );
    } else {
        println!("------------------------------------------------ [{secs:.1}s wall-clock]\n");
    }
}

/// Formats a ratio as the paper's `N.NNx` annotations.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".into()
    } else {
        format!("{:.2}x", a / b)
    }
}

/// Quick pass/attention marker for shape checks printed by the harnesses.
pub fn shape(ok: bool) -> &'static str {
    if ok {
        "[shape OK]"
    } else {
        "[shape DEVIATES — see EXPERIMENTS.md]"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(2.0, 1.0), "2.00x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }

    #[test]
    fn shape_marker() {
        assert_eq!(shape(true), "[shape OK]");
        assert!(shape(false).contains("DEVIATES"));
    }
}
