//! netperf message patterns (§5.1).
//!
//! * TCP_STREAM: "the process repeatedly receives (or transmits) a
//!   fixed-size buffer from (or to) a TCP socket."
//! * TCP_RR: "measures the latency of sending a TCP message of a certain
//!   size from the server machine to the client machine and receiving a
//!   response of the same size."

/// Which side of the server the stream exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamDirection {
    /// Client → server (the server receives).
    Rx,
    /// Server → client (the server transmits, TSO enabled).
    Tx,
}

/// A TCP_STREAM run.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// netperf buffer size per send/recv call.
    pub msg_bytes: u64,
    /// Direction.
    pub direction: StreamDirection,
    /// Receive-window-style cap on unconsumed bytes in flight.
    pub window_bytes: u64,
}

impl StreamConfig {
    /// The paper's Figure 6/7 sweep: 64 B – 64 KB in powers of four.
    pub fn paper_msg_sizes() -> Vec<u64> {
        vec![64, 256, 1024, 4096, 16384, 65536]
    }

    /// An Rx stream with the default window.
    pub fn rx(msg_bytes: u64) -> Self {
        StreamConfig {
            msg_bytes,
            direction: StreamDirection::Rx,
            window_bytes: 512 * 1024,
        }
    }

    /// A Tx stream with the default window.
    pub fn tx(msg_bytes: u64) -> Self {
        StreamConfig {
            msg_bytes,
            direction: StreamDirection::Tx,
            window_bytes: 512 * 1024,
        }
    }

    /// Wire packets one message becomes at the given MSS.
    pub fn packets_per_msg(&self, mss: u64) -> u64 {
        self.msg_bytes.div_ceil(mss).max(1)
    }
}

/// A TCP_RR run.
#[derive(Debug, Clone, Copy)]
pub struct RrConfig {
    /// Request/response size (equal in both directions).
    pub msg_bytes: u64,
    /// Transactions to measure.
    pub transactions: usize,
}

impl RrConfig {
    /// The paper's Figure 9 sweep: 1 B – 64 KB.
    pub fn paper_msg_sizes() -> Vec<u64> {
        vec![
            1, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
        ]
    }

    /// A run at `msg_bytes` with enough transactions for a stable mean.
    pub fn new(msg_bytes: u64, transactions: usize) -> Self {
        assert!(transactions > 0, "need at least one transaction");
        RrConfig {
            msg_bytes,
            transactions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_per_msg_matches_mss_math() {
        let c = StreamConfig::rx(65536);
        assert_eq!(c.packets_per_msg(1460), 45);
        let small = StreamConfig::rx(64);
        assert_eq!(small.packets_per_msg(1460), 1);
    }

    #[test]
    fn paper_sweeps_are_sorted_and_bounded() {
        let s = StreamConfig::paper_msg_sizes();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*s.first().unwrap(), 64);
        assert_eq!(*s.last().unwrap(), 65536);
        let r = RrConfig::paper_msg_sizes();
        assert!(r.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*r.first().unwrap(), 1);
        assert_eq!(*r.last().unwrap(), 65536);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_transactions_rejected() {
        RrConfig::new(64, 0);
    }
}
