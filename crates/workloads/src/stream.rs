//! The STREAM memory-bandwidth antagonist (§5.2, §5.4).
//!
//! "To load the QPI, we occupy the other server cores with pairs of the
//! STREAM memory bandwidth benchmark. Both STREAM instances in each pair
//! target memory remote to their CPU, one reading and the other writing."
//!
//! Each antagonist is a loop that moves fixed-size chunks between its core
//! and a (usually remote) node through
//! [`memsys::MemSystem::cpu_stream_through`], so it consumes real simulated
//! DRAM + interconnect bandwidth and *self-limits* under congestion —
//! exactly how the real benchmark behaves when the QPI saturates
//! (Figure 15 shows STREAM itself degrading too).

use memsys::{MemSystem, NodeId};
use simcore::{Dur, Time};

use kernel::Cores;

/// One STREAM instance.
#[derive(Debug, Clone, Copy)]
pub struct StreamAntagonist {
    /// Core the loop runs on.
    pub core: usize,
    /// Node whose memory it targets (remote in the paper's setup).
    pub target: NodeId,
    /// Whether this instance writes (one of each per pair).
    pub write: bool,
    /// Chunk moved per loop iteration.
    pub chunk_bytes: u64,
    bytes_done: u64,
}

impl StreamAntagonist {
    /// Creates an instance; pairs are conventionally `(reader, writer)`.
    pub fn new(core: usize, target: NodeId, write: bool) -> Self {
        StreamAntagonist {
            core,
            target,
            write,
            // One array sweep per iteration: large chunks keep realistic
            // amounts of traffic in flight, which is what actually builds
            // interconnect queueing under saturation.
            chunk_bytes: 1024 * 1024,
            bytes_done: 0,
        }
    }

    /// A `(reader, writer)` pair on two cores targeting `target`.
    pub fn pair(core_a: usize, core_b: usize, target: NodeId) -> (Self, Self) {
        (
            StreamAntagonist::new(core_a, target, false),
            StreamAntagonist::new(core_b, target, true),
        )
    }

    /// Runs one loop iteration starting at `now`; returns when the next
    /// iteration may start.
    pub fn step(&mut self, now: Time, mem: &mut MemSystem, cores: &mut Cores) -> Time {
        let node = mem.topology().node_of_core(self.core);
        let stall = mem.cpu_stream_through(now, node, self.target, self.chunk_bytes, self.write);
        // A small fixed loop overhead plus the memory stall.
        let done = cores.run(self.core, now, stall + Dur::from_ns(200));
        self.bytes_done += self.chunk_bytes;
        done
    }

    /// Bytes moved so far.
    pub fn bytes_done(&self) -> u64 {
        self.bytes_done
    }

    /// Achieved bandwidth over `[from, to]`.
    pub fn bandwidth(&self, from: Time, to: Time) -> f64 {
        let secs = to.since(from).as_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes_done as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::MemConfig;

    #[test]
    fn single_instance_approaches_qpi_share() {
        let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let mut cores = Cores::new(28);
        let mut s = StreamAntagonist::new(0, NodeId(1), false);
        let mut t = Time::ZERO;
        while t < Time::from_ms(2) {
            t = s.step(t, &mut mem, &mut cores);
        }
        let bw = s.bandwidth(Time::ZERO, t);
        // One reader alone: bounded by QPI direction (38.4 GB/s) and its own
        // loop; must be in the multi-GB/s range.
        assert!(bw > 5e9, "bw = {bw:.3e}");
        assert!(bw < 40e9, "bw = {bw:.3e}");
    }

    #[test]
    fn many_pairs_saturate_and_self_limit() {
        let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let mut cores = Cores::new(28);
        // 6 pairs as in Figure 11's x-axis maximum.
        let mut ants: Vec<StreamAntagonist> = (0..6)
            .flat_map(|i| {
                let (r, w) = StreamAntagonist::pair(2 + 2 * i, 3 + 2 * i, NodeId(1));
                [r, w]
            })
            .collect();
        let mut clocks = vec![Time::ZERO; ants.len()];
        for _ in 0..200 {
            for (i, a) in ants.iter_mut().enumerate() {
                clocks[i] = a.step(clocks[i], &mut mem, &mut cores);
            }
        }
        let end = *clocks.iter().max().unwrap();
        let total: f64 = ants.iter().map(|a| a.bandwidth(Time::ZERO, end)).sum();
        // Aggregate cannot exceed the QPI direction capacities by much.
        assert!(total < 85e9, "total = {total:.3e}");
        // And congestion keeps the per-instance share well below solo rate.
        let per = total / ants.len() as f64;
        assert!(per < 10e9, "per-instance {per:.3e}");
    }

    #[test]
    fn reader_and_writer_use_opposite_directions() {
        let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let mut cores = Cores::new(28);
        let (mut r, mut w) = StreamAntagonist::pair(0, 1, NodeId(1));
        r.step(Time::ZERO, &mut mem, &mut cores);
        let after_read = mem.counters().interconnect_bytes;
        w.step(Time::ZERO, &mut mem, &mut cores);
        let after_write = mem.counters().interconnect_bytes;
        assert!(after_read >= r.chunk_bytes);
        assert!(after_write >= after_read + w.chunk_bytes);
    }
}
