//! The fio storage workload of Figure 15.
//!
//! "We run 8 fio threads that each perform asynchronous direct reads,
//! thereby bypassing the page cache and interacting directly with the SSD.
//! Each thread continuously submits 32 read requests for 128 KB blocks.
//! The fio jobs interact with an SSD remote from their CPU." (§5.4)

use memsys::PhysAddr;

/// Paper block size.
pub const BLOCK_BYTES: u64 = 128 * 1024;
/// Paper queue depth per job.
pub const QUEUE_DEPTH: usize = 32;

/// One fio job: a thread keeping `queue_depth` reads outstanding against
/// one drive.
#[derive(Debug)]
pub struct FioJob {
    /// Core the job runs on.
    pub core: usize,
    /// Index of the drive this job targets.
    pub ssd: usize,
    /// Target queue depth.
    pub queue_depth: usize,
    /// I/O buffers (node-local to the job), reused round-robin.
    pub buffers: Vec<PhysAddr>,
    inflight: usize,
    next_buf: usize,
    completed: u64,
    bytes: u64,
}

impl FioJob {
    /// Creates a job with pre-allocated buffers (one per queue slot).
    ///
    /// # Panics
    /// Panics if fewer buffers than queue depth are supplied.
    pub fn new(core: usize, ssd: usize, queue_depth: usize, buffers: Vec<PhysAddr>) -> Self {
        assert!(buffers.len() >= queue_depth, "need a buffer per queue slot");
        FioJob {
            core,
            ssd,
            queue_depth,
            buffers,
            inflight: 0,
            next_buf: 0,
            completed: 0,
            bytes: 0,
        }
    }

    /// How many submissions are needed to restore the queue depth.
    pub fn want_to_submit(&self) -> usize {
        self.queue_depth.saturating_sub(self.inflight)
    }

    /// Takes the next buffer and marks one request in flight.
    pub fn submit(&mut self) -> PhysAddr {
        assert!(self.inflight < self.queue_depth, "queue full");
        let buf = self.buffers[self.next_buf % self.buffers.len()];
        self.next_buf += 1;
        self.inflight += 1;
        buf
    }

    /// Records a completion of `bytes`.
    pub fn complete(&mut self, bytes: u64) {
        assert!(self.inflight > 0, "completion without submission");
        self.inflight -= 1;
        self.completed += 1;
        self.bytes += bytes;
    }

    /// Requests currently outstanding.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Completions so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Payload bytes completed so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> FioJob {
        let bufs = (0..QUEUE_DEPTH)
            .map(|i| PhysAddr(i as u64 * BLOCK_BYTES))
            .collect();
        FioJob::new(0, 0, QUEUE_DEPTH, bufs)
    }

    #[test]
    fn keeps_queue_depth() {
        let mut j = job();
        assert_eq!(j.want_to_submit(), 32);
        for _ in 0..32 {
            j.submit();
        }
        assert_eq!(j.want_to_submit(), 0);
        assert_eq!(j.inflight(), 32);
        j.complete(BLOCK_BYTES);
        assert_eq!(j.want_to_submit(), 1);
        assert_eq!(j.bytes(), BLOCK_BYTES);
        assert_eq!(j.completed(), 1);
    }

    #[test]
    #[should_panic(expected = "queue full")]
    fn over_submission_rejected() {
        let mut j = job();
        for _ in 0..33 {
            j.submit();
        }
    }

    #[test]
    #[should_panic(expected = "completion without submission")]
    fn spurious_completion_rejected() {
        job().complete(BLOCK_BYTES);
    }

    #[test]
    fn buffers_rotate() {
        let mut j = job();
        let a = j.submit();
        j.complete(BLOCK_BYTES);
        let mut seen_again = false;
        for _ in 0..64 {
            let b = j.submit();
            j.complete(BLOCK_BYTES);
            if b == a {
                seen_again = true;
            }
        }
        assert!(seen_again, "round-robin reuse");
    }
}
