//! The memcached/memslap key-value workload of Figure 10.
//!
//! "We measure the aggregated throughput of a single memcached key-value
//! store accessed by 14 memslap instances running on one client CPU. We use
//! keys and values of 256 bytes and 512 KB, respectively … as we vary the
//! ratio of SET operations" (§5.1.3).

use simcore::SimRng;

/// Paper key size.
pub const KEY_BYTES: u64 = 256;
/// Paper value size.
pub const VALUE_BYTES: u64 = 512 * 1024;

/// One key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// GET: small request (key), large response (value).
    Get {
        /// Which key.
        key: usize,
    },
    /// SET: large request (key + value), small response (status).
    Set {
        /// Which key.
        key: usize,
    },
}

impl KvOp {
    /// Client→server request payload bytes.
    pub fn request_bytes(&self) -> u64 {
        match self {
            KvOp::Get { .. } => KEY_BYTES,
            KvOp::Set { .. } => KEY_BYTES + VALUE_BYTES,
        }
    }

    /// Server→client response payload bytes.
    pub fn response_bytes(&self) -> u64 {
        match self {
            KvOp::Get { .. } => VALUE_BYTES,
            KvOp::Set { .. } => 64,
        }
    }

    /// The key this op touches.
    pub fn key(&self) -> usize {
        match self {
            KvOp::Get { key } | KvOp::Set { key } => *key,
        }
    }
}

/// The memslap-style request mix.
#[derive(Debug)]
pub struct KvWorkload {
    set_ratio: f64,
    keys: usize,
    rng: SimRng,
    gets: u64,
    sets: u64,
}

impl KvWorkload {
    /// A mix with `set_ratio` ∈ [0, 1] over `keys` distinct keys.
    ///
    /// # Panics
    /// Panics if `set_ratio` is outside `[0, 1]` or `keys` is zero.
    pub fn new(set_ratio: f64, keys: usize, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&set_ratio), "ratio in [0,1]");
        assert!(keys > 0, "need at least one key");
        KvWorkload {
            set_ratio,
            keys,
            rng: SimRng::seed(seed),
            gets: 0,
            sets: 0,
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> KvOp {
        let key = self.rng.below(self.keys as u64) as usize;
        if self.rng.chance(self.set_ratio) {
            self.sets += 1;
            KvOp::Set { key }
        } else {
            self.gets += 1;
            KvOp::Get { key }
        }
    }

    /// Operations drawn so far: `(gets, sets)`.
    pub fn counts(&self) -> (u64, u64) {
        (self.gets, self.sets)
    }

    /// Total bytes the store occupies (`keys × value`), which determines
    /// whether the working set fits the LLC — the reason Figure 10's
    /// ioct/local still shows memory traffic ("The working set here is
    /// larger than in the netperf TCP Rx experiments").
    pub fn store_bytes(&self) -> u64 {
        self.keys as u64 * VALUE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes_match_paper() {
        assert_eq!(KvOp::Get { key: 0 }.request_bytes(), 256);
        assert_eq!(KvOp::Get { key: 0 }.response_bytes(), 512 * 1024);
        assert_eq!(KvOp::Set { key: 0 }.request_bytes(), 256 + 512 * 1024);
        assert_eq!(KvOp::Set { key: 0 }.response_bytes(), 64);
    }

    #[test]
    fn mix_ratio_is_respected() {
        let mut w = KvWorkload::new(0.3, 64, 7);
        for _ in 0..10_000 {
            w.next_op();
        }
        let (g, s) = w.counts();
        let ratio = s as f64 / (g + s) as f64;
        assert!((ratio - 0.3).abs() < 0.03, "ratio = {ratio}");
    }

    #[test]
    fn pure_get_and_pure_set() {
        let mut g = KvWorkload::new(0.0, 4, 1);
        let mut s = KvWorkload::new(1.0, 4, 1);
        for _ in 0..100 {
            assert!(matches!(g.next_op(), KvOp::Get { .. }));
            assert!(matches!(s.next_op(), KvOp::Set { .. }));
        }
    }

    #[test]
    fn keys_in_range_and_deterministic() {
        let mut a = KvWorkload::new(0.5, 16, 42);
        let mut b = KvWorkload::new(0.5, 16, 42);
        for _ in 0..500 {
            let (oa, ob) = (a.next_op(), b.next_op());
            assert_eq!(oa, ob);
            assert!(oa.key() < 16);
        }
    }

    #[test]
    fn store_exceeds_llc_with_paper_sizes() {
        let w = KvWorkload::new(0.0, 128, 0);
        assert!(w.store_bytes() > 35 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn bad_ratio_rejected() {
        KvWorkload::new(1.5, 4, 0);
    }
}
