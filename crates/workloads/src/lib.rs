//! Workload generators for the IOctopus reproduction.
//!
//! Synthetic but faithful equivalents of every benchmark the paper's
//! evaluation runs:
//!
//! * [`netperf`] — TCP_STREAM (Rx/Tx) and TCP_RR message patterns (§5.1),
//! * [`stream`] — the STREAM memory-bandwidth antagonist pairs that congest
//!   the QPI in §5.2 and §5.4,
//! * [`pagerank`] — the GAP-suite PageRank victim of Figure 13,
//! * [`memcached`] — the memcached/memslap key-value workload of Figure 10
//!   (256 B keys, 512 KB values, swept SET ratio),
//! * [`fio`] — the asynchronous direct-read storage workload of Figure 15
//!   (8 jobs × QD 32 × 128 KB blocks).
//!
//! Each module provides the workload's *logic* (request mixes, access
//! patterns, queue-depth management) as plain state machines; the
//! `ioctopus` crate owns the event loop that drives them against the
//! simulated hosts.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fio;
pub mod memcached;
pub mod netperf;
pub mod pagerank;
pub mod stream;

pub use fio::FioJob;
pub use memcached::{KvOp, KvWorkload};
pub use netperf::{RrConfig, StreamConfig, StreamDirection};
pub use pagerank::PageRank;
pub use stream::StreamAntagonist;
