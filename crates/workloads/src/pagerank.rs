//! The PageRank victim of Figure 13.
//!
//! "We use a 16-thread parallel PageRank (PR) benchmark, with 8 threads
//! pinned to each CPU." PR over a partitioned graph alternates compute with
//! memory sweeps; a fraction of each sweep touches the other socket's
//! partition, so PR both *consumes* QPI bandwidth and *suffers* when
//! co-located I/O loads it.

use memsys::{MemSystem, NodeId};
use simcore::{Dur, Time};

use kernel::Cores;

/// One PageRank worker thread.
#[derive(Debug, Clone, Copy)]
pub struct PrThread {
    /// Core this worker is pinned to.
    pub core: usize,
    chunks_done: u64,
}

/// The parallel PageRank job.
#[derive(Debug)]
pub struct PageRank {
    threads: Vec<PrThread>,
    /// Bytes each worker sweeps per iteration chunk.
    pub chunk_bytes: u64,
    /// Fraction of sweep traffic that hits the remote socket's partition.
    pub remote_fraction: f64,
    /// Pure compute per chunk (rank updates).
    pub compute_per_chunk: Dur,
    /// Total chunks each worker must finish.
    pub chunks_per_thread: u64,
}

impl PageRank {
    /// Builds the Figure 13 configuration: `threads_per_node` workers pinned
    /// to the first cores of each socket.
    pub fn new(mem: &MemSystem, threads_per_node: usize, chunks_per_thread: u64) -> Self {
        let topo = mem.topology();
        let mut threads = Vec::new();
        for n in topo.node_ids() {
            for c in topo.cores_of(n).take(threads_per_node) {
                threads.push(PrThread {
                    core: c,
                    chunks_done: 0,
                });
            }
        }
        PageRank {
            threads,
            chunk_bytes: 256 * 1024,
            // Partitioned graph: ~15% of each sweep touches the other
            // socket; rank updates dominate compute.
            remote_fraction: 0.08,
            compute_per_chunk: Dur::from_us(20),
            chunks_per_thread,
        }
    }

    /// Number of worker threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Advances worker `i` by one chunk starting at `now`; returns the chunk
    /// completion time, or `None` if the worker already finished.
    pub fn step(
        &mut self,
        i: usize,
        now: Time,
        mem: &mut MemSystem,
        cores: &mut Cores,
    ) -> Option<Time> {
        let chunk = self.chunk_bytes;
        let remote_frac = self.remote_fraction;
        let compute = self.compute_per_chunk;
        let th = &mut self.threads[i];
        if th.chunks_done >= self.chunks_per_thread {
            return None;
        }
        let node = mem.topology().node_of_core(th.core);
        let remote = NodeId((node.0 + 1) % mem.topology().nodes());
        let local_bytes = (chunk as f64 * (1.0 - remote_frac)) as u64;
        let remote_bytes = chunk - local_bytes;
        let s1 = mem.cpu_stream_through(now, node, node, local_bytes, false);
        let s2 = mem.cpu_stream_through(now, node, remote, remote_bytes, false);
        let done = cores.run(th.core, now, compute + s1 + s2);
        th.chunks_done += 1;
        Some(done)
    }

    /// Whether every worker has finished.
    pub fn finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| t.chunks_done >= self.chunks_per_thread)
    }

    /// Total chunks completed across workers.
    pub fn progress(&self) -> u64 {
        self.threads.iter().map(|t| t.chunks_done).sum()
    }

    /// Runs the whole job to completion starting at `now`; returns the
    /// finish time (workers run concurrently on their own cores).
    pub fn run_to_completion(&mut self, now: Time, mem: &mut MemSystem, cores: &mut Cores) -> Time {
        let n = self.thread_count();
        let mut clocks = vec![now; n];
        let mut done = false;
        while !done {
            done = true;
            #[allow(clippy::needless_range_loop)] // `i` names the worker for step()
            for i in 0..n {
                if let Some(t) = self.step(i, clocks[i], mem, cores) {
                    clocks[i] = t;
                    done = false;
                }
            }
        }
        clocks.into_iter().max().unwrap_or(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::MemConfig;

    #[test]
    fn builds_paper_thread_layout() {
        let mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let pr = PageRank::new(&mem, 8, 10);
        assert_eq!(pr.thread_count(), 16);
    }

    #[test]
    fn runs_to_completion() {
        let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let mut cores = Cores::new(28);
        let mut pr = PageRank::new(&mem, 2, 20);
        let end = pr.run_to_completion(Time::ZERO, &mut mem, &mut cores);
        assert!(pr.finished());
        assert_eq!(pr.progress(), 4 * 20);
        assert!(end > Time::ZERO);
    }

    #[test]
    fn qpi_congestion_slows_pagerank() {
        // The Figure 13 effect: PR runs slower when the interconnect is
        // loaded by someone else.
        let quiet = {
            let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
            let mut cores = Cores::new(28);
            PageRank::new(&mem, 4, 50).run_to_completion(Time::ZERO, &mut mem, &mut cores)
        };
        let loaded = {
            let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
            let mut cores = Cores::new(28);
            // Pre-load both QPI directions with ~3 ms of traffic.
            mem.cpu_stream_through(Time::ZERO, NodeId(0), NodeId(1), 120_000_000, true);
            mem.cpu_stream_through(Time::ZERO, NodeId(1), NodeId(0), 120_000_000, true);
            PageRank::new(&mem, 4, 50).run_to_completion(Time::ZERO, &mut mem, &mut cores)
        };
        assert!(
            loaded > quiet,
            "loaded {loaded} should exceed quiet {quiet}"
        );
    }
}
