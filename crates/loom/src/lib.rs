//! A minimal, in-repo reimplementation of the [`loom`] model-checking API.
//!
//! The real `loom` crate is not vendorable in this offline workspace, so this
//! shim provides the subset of its surface the concurrency tests use —
//! [`model`], [`thread::spawn`]/[`thread::JoinHandle::join`],
//! [`sync::Mutex`], and the [`sync::atomic`] types — backed by a
//! deterministic scheduler that **exhaustively explores every
//! sequentially-consistent interleaving** of the model's synchronization
//! operations.
//!
//! # How exploration works
//!
//! Model threads run as real OS threads, but a cooperative scheduler admits
//! exactly one at a time. Every synchronization operation (atomic access,
//! mutex acquire, spawn, join) passes through a *yield point* where the
//! scheduler picks which runnable thread proceeds. Whenever more than one
//! thread is runnable the pick is a recorded *decision*; [`model`] re-runs
//! the closure, depth-first, until every reachable decision sequence has
//! been executed once. A panic on any branch (assertion failure, deadlock,
//! double-claim) aborts exploration and is propagated to the test, together
//! with the number of schedules explored.
//!
//! # Fidelity limits (vs. real loom)
//!
//! * Only **sequentially-consistent** interleavings are explored: `Ordering`
//!   arguments are accepted but not weakened, so bugs that require observing
//!   relaxed/acquire-release reordering are out of scope. (Rule of thumb:
//!   this shim checks *protocol* races — lost updates, double claims, missed
//!   shutdowns, deadlocks — not memory-model races. The CI ThreadSanitizer
//!   job covers the latter on real hardware.)
//! * Preemption happens only at synchronization operations, which is
//!   sufficient for data-race-free code whose shared state is only touched
//!   through those operations.
//! * No `UnsafeCell`/`CausalCell` tracking, no spurious wakeups, no
//!   condvars: the pool under test uses none of these.
//!
//! [`loom`]: https://docs.rs/loom

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc as StdArc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Hard cap on schedules explored by one [`model`] call. Exceeding it means
/// the model is too large to check exhaustively — shrink it.
const MAX_SCHEDULES: usize = 500_000;

/// Hard cap on scheduling decisions within a single execution: trips on
/// accidental livelock (e.g. a spin loop with no blocking).
const MAX_DECISIONS_PER_RUN: usize = 100_000;

/// Sentinel panic payload used to unwind model threads when exploration
/// aborts (deadlock or a sibling thread's panic); swallowed by the harness.
struct Abort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked,
    Finished,
}

#[derive(Default)]
struct State {
    status: Vec<Status>,
    /// Index of the thread currently allowed to run user code.
    active: Option<usize>,
    /// Model threads blocked in `join` on the keyed thread.
    join_waiters: Vec<Vec<usize>>,
    /// One slot per registered model mutex: is it held?
    mutex_locked: Vec<bool>,
    /// Model threads blocked acquiring the keyed mutex.
    mutex_waiters: Vec<Vec<usize>>,
    /// Decision choices to replay, from the previous execution's record.
    prefix: Vec<usize>,
    /// This execution's decisions as `(choice, n_options)`.
    record: Vec<(usize, usize)>,
    /// First non-abort panic payload observed on any model thread.
    panic: Option<Box<dyn Any + Send>>,
    abort: bool,
    /// OS threads that have not yet reached `finish`.
    live: usize,
}

struct Scheduler {
    state: StdMutex<State>,
    cv: Condvar,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// (scheduler, model-thread id) for the current OS thread, set while it
    /// executes inside a [`model`] run.
    static CTX: RefCell<Option<(StdArc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> (StdArc<Scheduler>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitive used outside loom::model")
    })
}

impl Scheduler {
    fn new(prefix: Vec<usize>) -> Self {
        Scheduler {
            state: StdMutex::new(State {
                prefix,
                ..State::default()
            }),
            cv: Condvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, State> {
        self.state.lock().expect("scheduler state poisoned")
    }

    fn register_thread(state: &mut State) -> usize {
        state.status.push(Status::Runnable);
        state.join_waiters.push(Vec::new());
        state.live += 1;
        state.status.len() - 1
    }

    fn register_mutex(&self) -> usize {
        let mut s = self.lock();
        s.mutex_locked.push(false);
        s.mutex_waiters.push(Vec::new());
        s.mutex_locked.len() - 1
    }

    /// Picks the next active thread among the runnable set, recording a
    /// decision when there is a real choice. Flags deadlock when threads
    /// remain but none can run.
    fn choose(&self, state: &mut State) {
        let runnable: Vec<usize> = (0..state.status.len())
            .filter(|&i| state.status[i] == Status::Runnable)
            .collect();
        match runnable.len() {
            0 => {
                state.active = None;
                let stuck = state.status.contains(&Status::Blocked);
                if stuck && !state.abort {
                    state.panic = Some(Box::new(format!(
                        "loom: deadlock — blocked threads remain: {:?}",
                        state
                            .status
                            .iter()
                            .enumerate()
                            .filter(|(_, &s)| s == Status::Blocked)
                            .map(|(i, _)| i)
                            .collect::<Vec<_>>()
                    )));
                    state.abort = true;
                }
            }
            1 => state.active = Some(runnable[0]),
            n => {
                let d = state.record.len();
                assert!(
                    d < MAX_DECISIONS_PER_RUN,
                    "loom: execution exceeded {MAX_DECISIONS_PER_RUN} decisions (livelock?)"
                );
                let choice = state.prefix.get(d).copied().unwrap_or(0);
                debug_assert!(choice < n, "replay divergence: choice out of range");
                state.record.push((choice, n));
                state.active = Some(runnable[choice]);
            }
        }
        self.cv.notify_all();
    }

    /// Parks the calling model thread until the scheduler hands it the
    /// baton; unwinds with [`Abort`] if exploration is being torn down.
    fn wait_for_turn<'a>(
        &'a self,
        mut state: StdMutexGuard<'a, State>,
        me: usize,
    ) -> StdMutexGuard<'a, State> {
        while state.active != Some(me) {
            if state.abort {
                drop(state);
                panic::panic_any(Abort);
            }
            state = self.cv.wait(state).expect("scheduler state poisoned");
        }
        if state.abort {
            drop(state);
            panic::panic_any(Abort);
        }
        state
    }

    /// A preemption point: every other runnable thread gets a chance to run
    /// before the caller's next operation.
    fn yield_point(&self, me: usize) {
        let mut s = self.lock();
        debug_assert_eq!(s.active, Some(me), "yield from a descheduled thread");
        self.choose(&mut s);
        let _guard = self.wait_for_turn(s, me);
    }

    /// Marks `me` finished, wakes its joiners, and passes the baton on.
    fn finish(&self, me: usize) {
        let mut s = self.lock();
        s.status[me] = Status::Finished;
        s.live -= 1;
        let waiters = std::mem::take(&mut s.join_waiters[me]);
        for w in waiters {
            s.status[w] = Status::Runnable;
        }
        if s.active == Some(me) {
            s.active = None;
        }
        self.choose(&mut s);
        self.cv.notify_all();
    }

    /// Handles a panic payload escaping a model thread's closure: aborts
    /// exploration unless it is our own teardown sentinel.
    fn on_panic(&self, payload: Box<dyn Any + Send>) {
        if payload.downcast_ref::<Abort>().is_some() {
            return;
        }
        let mut s = self.lock();
        if s.panic.is_none() {
            s.panic = Some(payload);
        }
        s.abort = true;
        self.cv.notify_all();
    }
}

/// Runs `f` under every reachable sequentially-consistent interleaving of
/// its synchronization operations; panics (re-raising the model's panic) if
/// any schedule fails.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = StdArc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        schedules += 1;
        assert!(
            schedules <= MAX_SCHEDULES,
            "loom: exceeded {MAX_SCHEDULES} schedules; shrink the model"
        );
        let record = run_once(f.clone(), std::mem::take(&mut prefix));
        // Depth-first backtrack: advance the deepest decision that still has
        // an unexplored option, dropping everything after it.
        let mut next: Vec<usize> = Vec::with_capacity(record.len());
        let mut advanced = false;
        for (i, &(choice, options)) in record.iter().enumerate().rev() {
            if choice + 1 < options {
                next.extend(record[..i].iter().map(|&(c, _)| c));
                next.push(choice + 1);
                advanced = true;
                break;
            }
        }
        if !advanced {
            return;
        }
        prefix = next;
    }
}

/// Executes the model closure once, replaying `prefix` at decision points;
/// returns the full decision record. Propagates any model panic.
fn run_once<F>(f: StdArc<F>, prefix: Vec<usize>) -> Vec<(usize, usize)>
where
    F: Fn() + Send + Sync + 'static,
{
    let sched = StdArc::new(Scheduler::new(prefix));
    {
        let mut s = sched.lock();
        let id = Scheduler::register_thread(&mut s);
        debug_assert_eq!(id, 0);
        s.active = Some(0);
    }
    let sched0 = sched.clone();
    let root = std::thread::Builder::new()
        .name("loom-0".into())
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((sched0.clone(), 0)));
            let result = panic::catch_unwind(AssertUnwindSafe(|| f()));
            if let Err(payload) = result {
                sched0.on_panic(payload);
            }
            sched0.finish(0);
            CTX.with(|c| *c.borrow_mut() = None);
        })
        .expect("spawn model root thread");
    sched.os_handles.lock().expect("handles").push(root);

    // Wait for every model thread to reach `finish`, then join the OS
    // threads so no stale worker outlives this execution.
    {
        let mut s = sched.lock();
        while s.live > 0 {
            s = sched.cv.wait(s).expect("scheduler state poisoned");
        }
    }
    loop {
        let h = sched.os_handles.lock().expect("handles").pop();
        match h {
            Some(h) => drop(h.join()),
            None => break,
        }
    }

    let mut s = sched.lock();
    if let Some(p) = s.panic.take() {
        drop(s);
        panic::resume_unwind(p);
    }
    std::mem::take(&mut s.record)
}

/// Model-aware threads: spawn/join with scheduler participation.
pub mod thread {
    use super::*;

    /// Handle to a model thread; mirrors `std::thread::JoinHandle`.
    pub struct JoinHandle<T> {
        id: usize,
        result: StdArc<StdMutex<Option<T>>>,
    }

    /// Spawns a model thread. It becomes runnable immediately but executes
    /// only when the scheduler picks it.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sched, me) = ctx();
        let id = {
            let mut s = sched.lock();
            Scheduler::register_thread(&mut s)
        };
        let result = StdArc::new(StdMutex::new(None));
        let result2 = result.clone();
        let sched2 = sched.clone();
        let os = std::thread::Builder::new()
            .name(format!("loom-{id}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((sched2.clone(), id)));
                // Park until first scheduled.
                {
                    let s = sched2.lock();
                    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                        drop(sched2.wait_for_turn(s, id));
                    }));
                    if outcome.is_err() {
                        // Teardown before we ever ran.
                        sched2.finish(id);
                        return;
                    }
                }
                let outcome = panic::catch_unwind(AssertUnwindSafe(f));
                match outcome {
                    Ok(v) => *result2.lock().expect("result slot") = Some(v),
                    Err(payload) => sched2.on_panic(payload),
                }
                sched2.finish(id);
                CTX.with(|c| *c.borrow_mut() = None);
            })
            .expect("spawn model thread");
        sched.os_handles.lock().expect("handles").push(os);
        // Spawning is itself a visible scheduling point.
        sched.yield_point(me);
        JoinHandle { id, result }
    }

    impl<T> JoinHandle<T> {
        /// Blocks (in model time) until the thread finishes; returns its
        /// result. Mirrors `std`'s signature; a panicked thread aborts the
        /// whole model instead of surfacing here.
        pub fn join(self) -> Result<T, Box<dyn Any + Send>> {
            let (sched, me) = ctx();
            loop {
                let mut s = sched.lock();
                if s.status[self.id] == Status::Finished {
                    drop(s);
                    break;
                }
                s.status[me] = Status::Blocked;
                s.join_waiters[self.id].push(me);
                if s.active == Some(me) {
                    s.active = None;
                }
                sched.choose(&mut s);
                drop(sched.wait_for_turn(s, me));
            }
            match self.result.lock().expect("result slot").take() {
                Some(v) => Ok(v),
                None => Err(Box::new("loom model thread produced no result")),
            }
        }
    }

    /// A bare preemption point, mirroring `std::thread::yield_now`.
    pub fn yield_now() {
        let (sched, me) = ctx();
        sched.yield_point(me);
    }
}

/// Model-aware synchronization primitives.
pub mod sync {
    use super::*;
    use std::cell::UnsafeCell;
    use std::ops::{Deref, DerefMut};

    pub use std::sync::Arc;

    /// A mutex whose acquire order is controlled (and exhaustively varied)
    /// by the model scheduler.
    pub struct Mutex<T> {
        mid: usize,
        sched: StdArc<Scheduler>,
        data: UnsafeCell<T>,
    }

    // SAFETY: the scheduler runs exactly one model thread at a time and the
    // `mutex_locked` protocol gives `MutexGuard` exclusive access to `data`;
    // baton hand-offs go through a std mutex/condvar pair, which provides
    // the necessary happens-before edges between OS threads.
    unsafe impl<T: Send> Send for Mutex<T> {}
    // SAFETY: as above — `&Mutex<T>` only exposes `T` through the guard,
    // whose exclusivity the scheduler protocol enforces.
    unsafe impl<T: Send> Sync for Mutex<T> {}

    /// RAII guard; releasing wakes every blocked acquirer and lets the
    /// scheduler pick the winner (modelling real acquisition nondeterminism).
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates a model mutex (must be called inside [`crate::model`]).
        pub fn new(value: T) -> Self {
            let (sched, _) = ctx();
            let mid = sched.register_mutex();
            Mutex {
                mid,
                sched,
                data: UnsafeCell::new(value),
            }
        }

        /// Acquires the mutex, blocking this model thread if it is held.
        /// Always succeeds (no poisoning); the `Result` mirrors `std`.
        #[allow(clippy::result_unit_err)]
        pub fn lock(&self) -> Result<MutexGuard<'_, T>, ()> {
            let (sched, me) = ctx();
            debug_assert!(
                StdArc::ptr_eq(&sched, &self.sched),
                "mutex used across model runs"
            );
            sched.yield_point(me);
            let mut s = sched.lock();
            while s.mutex_locked[self.mid] {
                s.status[me] = Status::Blocked;
                s.mutex_waiters[self.mid].push(me);
                if s.active == Some(me) {
                    s.active = None;
                }
                sched.choose(&mut s);
                s = sched.wait_for_turn(s, me);
            }
            s.mutex_locked[self.mid] = true;
            drop(s);
            Ok(MutexGuard { lock: self })
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            let mut s = self.lock.sched.lock();
            s.mutex_locked[self.lock.mid] = false;
            let waiters = std::mem::take(&mut s.mutex_waiters[self.lock.mid]);
            for w in waiters {
                s.status[w] = Status::Runnable;
            }
            // The releasing thread keeps the baton; contenders race at the
            // next decision point.
            self.lock.sched.cv.notify_all();
        }
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: guard existence == exclusive hold of `mutex_locked`,
            // so no other reference to `data` is live.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as in `deref` — the lock protocol guarantees
            // exclusivity for the guard's lifetime.
            unsafe { &mut *self.lock.data.get() }
        }
    }

    /// Model-aware atomics: every access is a preemption point; all
    /// orderings are explored as sequentially consistent.
    pub mod atomic {
        use super::super::{ctx, StdAtomicUsize, StdOrdering};

        pub use std::sync::atomic::Ordering;

        /// Model `AtomicUsize`: std semantics plus a scheduler yield before
        /// every access.
        #[derive(Debug, Default)]
        pub struct AtomicUsize {
            cell: StdAtomicUsize,
        }

        impl AtomicUsize {
            /// Creates a new model atomic.
            pub fn new(v: usize) -> Self {
                AtomicUsize {
                    cell: StdAtomicUsize::new(v),
                }
            }

            fn yield_here(&self) {
                let (sched, me) = ctx();
                sched.yield_point(me);
            }

            /// Atomic load (explored as SeqCst).
            pub fn load(&self, _order: Ordering) -> usize {
                self.yield_here();
                self.cell.load(StdOrdering::SeqCst)
            }

            /// Atomic store (explored as SeqCst).
            pub fn store(&self, v: usize, _order: Ordering) {
                self.yield_here();
                self.cell.store(v, StdOrdering::SeqCst)
            }

            /// Atomic fetch-add (explored as SeqCst).
            pub fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
                self.yield_here();
                self.cell.fetch_add(v, StdOrdering::SeqCst)
            }

            /// Atomic compare-exchange (explored as SeqCst).
            pub fn compare_exchange(
                &self,
                current: usize,
                new: usize,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<usize, usize> {
                self.yield_here();
                self.cell
                    .compare_exchange(current, new, StdOrdering::SeqCst, StdOrdering::SeqCst)
            }
        }

        /// Model `AtomicBool`: std semantics plus a scheduler yield before
        /// every access.
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            cell: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Creates a new model atomic.
            pub fn new(v: bool) -> Self {
                AtomicBool {
                    cell: std::sync::atomic::AtomicBool::new(v),
                }
            }

            fn yield_here(&self) {
                let (sched, me) = ctx();
                sched.yield_point(me);
            }

            /// Atomic load (explored as SeqCst).
            pub fn load(&self, _order: Ordering) -> bool {
                self.yield_here();
                self.cell.load(StdOrdering::SeqCst)
            }

            /// Atomic store (explored as SeqCst).
            pub fn store(&self, v: bool, _order: Ordering) {
                self.yield_here();
                self.cell.store(v, StdOrdering::SeqCst)
            }

            /// Atomic swap (explored as SeqCst).
            pub fn swap(&self, v: bool, _order: Ordering) -> bool {
                self.yield_here();
                self.cell.swap(v, StdOrdering::SeqCst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};
    use super::thread;

    #[test]
    fn single_thread_runs_once_per_schedule() {
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let h2 = hits.clone();
        super::model(move || {
            h2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        // No decisions → exactly one schedule.
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn explores_both_orders_of_two_writers() {
        // Two threads race to set a cell; both final values must be seen
        // across the explored schedules.
        let saw = std::sync::Arc::new(std::sync::Mutex::new(std::collections::BTreeSet::new()));
        let saw2 = saw.clone();
        super::model(move || {
            let cell = Arc::new(AtomicUsize::new(0));
            let (a, b) = (cell.clone(), cell.clone());
            let t1 = thread::spawn(move || a.store(1, Ordering::SeqCst));
            let t2 = thread::spawn(move || b.store(2, Ordering::SeqCst));
            t1.join().unwrap();
            t2.join().unwrap();
            saw2.lock().unwrap().insert(cell.load(Ordering::SeqCst));
        });
        assert_eq!(
            saw.lock().unwrap().iter().copied().collect::<Vec<_>>(),
            vec![1, 2],
            "exploration must reach both write orders"
        );
    }

    #[test]
    fn finds_check_then_act_race() {
        // Non-atomic claim (load; store) lets two threads both "win" under
        // some interleaving; the explorer must find that schedule.
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let flag = Arc::new(AtomicBool::new(false));
                let wins = Arc::new(AtomicUsize::new(0));
                let hs: Vec<_> = (0..2)
                    .map(|_| {
                        let flag = flag.clone();
                        let wins = wins.clone();
                        thread::spawn(move || {
                            if !flag.load(Ordering::SeqCst) {
                                flag.store(true, Ordering::SeqCst);
                                wins.fetch_add(1, Ordering::SeqCst);
                            }
                        })
                    })
                    .collect();
                for h in hs {
                    h.join().unwrap();
                }
                assert!(wins.load(Ordering::SeqCst) <= 1, "double claim");
            });
        });
        assert!(result.is_err(), "model must expose the double-claim race");
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let m = m.clone();
                    thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        let v = *g;
                        *g = v + 1;
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2, "lost update through the mutex");
        });
    }

    #[test]
    fn deadlock_is_reported() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (a.clone(), b.clone());
                let t = thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop(_ga);
                drop(_gb);
                t.join().unwrap();
            });
        });
        assert!(result.is_err(), "AB/BA lock order must deadlock somewhere");
    }
}
