//! Flash media model: the drive's internal read path.

use simcore::{BwLink, Dur, Time};

/// Media parameters of one drive.
#[derive(Debug, Clone, Copy)]
pub struct MediaConfig {
    /// Sustained sequential read bandwidth, bytes/second.
    pub read_bytes_per_sec: u64,
    /// Per-command access latency (FTL lookup + NAND sense).
    pub read_latency: Dur,
}

impl MediaConfig {
    /// Samsung PM1725a-class drive (§5.4's testbed): ~3.2 GB/s sustained
    /// reads, ~90 µs NAND read latency.
    pub fn pm1725a() -> Self {
        MediaConfig {
            read_bytes_per_sec: 3_200_000_000,
            read_latency: Dur::from_us(90),
        }
    }
}

/// One drive's flash backend: a bandwidth server over the NAND channels.
#[derive(Debug)]
pub struct Media {
    link: BwLink,
    latency: Dur,
    read_bytes: u64,
}

impl Media {
    /// Builds the media model.
    pub fn new(id: usize, cfg: MediaConfig) -> Self {
        Media {
            link: BwLink::new(format!("nand{id}"), cfg.read_bytes_per_sec, Dur::ZERO),
            latency: cfg.read_latency,
            read_bytes: 0,
        }
    }

    /// Reads `bytes` from flash starting at `now`; returns when the data is
    /// in the controller's buffer.
    pub fn read(&mut self, now: Time, bytes: u64) -> Time {
        self.read_bytes += bytes;
        self.link.reserve(now, bytes) + self.latency
    }

    /// Total bytes read since construction.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_floor() {
        let mut m = Media::new(0, MediaConfig::pm1725a());
        let done = m.read(Time::ZERO, 4096);
        assert!(done >= Time::from_us(90));
        assert!(done < Time::from_us(95));
    }

    #[test]
    fn bandwidth_bound() {
        let mut m = Media::new(0, MediaConfig::pm1725a());
        // 32 MB at 3.2 GB/s = 10 ms.
        let mut last = Time::ZERO;
        for _ in 0..256 {
            last = m.read(Time::ZERO, 128 * 1024);
        }
        assert!(last >= Time::from_ms(10));
        assert_eq!(m.read_bytes(), 256 * 128 * 1024);
    }
}
