//! NVMe substrate for the IOctopus reproduction (§5.4, "IOctopus on NVMe").
//!
//! Models a PCIe SSD at command granularity: submission/completion queues in
//! host memory, command fetch by DMA, a flash-media bandwidth model, and the
//! data/completion DMA back to the host. Supports:
//!
//! * single-port drives (one PF),
//! * **dual-port** drives (two PFs — "such dual-port NVMe SSDs are already
//!   available on the market", §5.4) wired to different sockets via a
//!   customized backplane, and
//! * the **OctoSSD** mode the paper leaves as future work: the controller
//!   routes each command's data DMA through the PF local to the target
//!   buffer's node, eliminating NUDMA on storage reads the same way the
//!   octoNIC does for packets.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod media;
pub mod ssd;

pub use media::MediaConfig;
pub use ssd::{PortPolicy, ReadResult, Ssd, SsdConfig, SsdRobustness};
