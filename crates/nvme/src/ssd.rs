//! The SSD controller: queues, ports, and the read command pipeline.

use memsys::{MemSystem, NodeId, PhysAddr};
use pcie::{PcieFabric, PfId};
use simcore::{Dur, Time};

use crate::media::{Media, MediaConfig};

/// NVMe command and completion entry sizes.
pub const SQE_BYTES: u64 = 64;
/// NVMe completion entry size.
pub const CQE_BYTES: u64 = 16;

/// How the controller picks the PF for a command's data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortPolicy {
    /// Always use port `i` — a conventional (or dual-port-but-static) drive.
    /// §5.4's experiment accesses the drive through the port remote to the
    /// fio threads.
    Fixed(usize),
    /// OctoSSD: use the port whose socket is local to the data buffer, so
    /// the data DMA never crosses the interconnect.
    LocalToBuffer,
}

/// Drive-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct SsdConfig {
    /// Media parameters.
    pub media: MediaConfig,
    /// Data-DMA port selection.
    pub policy: PortPolicy,
    /// Command retry budget: how many times a timed-out DMA hop or an
    /// uncorrectable media read is re-attempted before the command
    /// completes with error status.
    pub retry_limit: u32,
    /// Base command timeout; doubles per retry (exponent bounded), the
    /// same bounded-exponential-backoff shape the kernel's doorbell and
    /// steering recovery use.
    pub retry_backoff: Dur,
}

impl SsdConfig {
    /// Configuration with the default NVMe recovery knobs (4 retries,
    /// 50 µs base timeout).
    pub fn new(media: MediaConfig, policy: PortPolicy) -> Self {
        SsdConfig {
            media,
            policy,
            retry_limit: 4,
            retry_backoff: Dur::from_us(50),
        }
    }
}

/// Result of one read command.
#[derive(Debug, Clone, Copy)]
pub struct ReadResult {
    /// When the data and the completion entry are visible in host memory —
    /// or, for a failed command, when the driver observed the failure (the
    /// error CQE landing, or the final timeout expiring).
    pub done_at: Time,
    /// The PF the data moved through.
    pub data_pf: PfId,
    /// The command failed (retry budget exhausted on a dead link or on
    /// uncorrectable media): no data reached the host buffer.
    pub error: bool,
}

/// Recovery counters: what the drive + driver absorbed instead of
/// panicking. Deterministic for a given run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsdRobustness {
    /// DMA hops that timed out (link down under the port).
    pub timeouts: u64,
    /// Re-attempts issued (DMA re-issues plus media re-reads).
    pub retries: u64,
    /// Commands that exhausted the retry budget and completed with error.
    pub failed_commands: u64,
    /// Uncorrectable media reads encountered (injected faults).
    pub media_errors: u64,
}

/// Transfer-buffer slots: how many block-sized data transfers the
/// controller can hold while their host DMA drains. When the interconnect
/// backs up, this is what throttles the flash pipeline (§5.4's fio
/// degradation under UPI saturation).
pub const XFER_BUFFER_SLOTS: usize = 4;

/// One NVMe SSD with one or two ports.
#[derive(Debug)]
pub struct Ssd {
    ports: Vec<PfId>,
    media: Media,
    policy: PortPolicy,
    retry_limit: u32,
    retry_backoff: Dur,
    sq_addr: PhysAddr,
    cq_addr: PhysAddr,
    reads: u64,
    media_errors_pending: u32,
    robust: SsdRobustness,
    xfer_done: std::collections::VecDeque<Time>,
}

/// Issues a DMA hop with command-timeout recovery: each failed attempt is
/// detected after a timeout that doubles per retry (exponent bounded), and
/// the next attempt is issued at the backed-off time. Returns the backoff
/// accumulated before success (`Dur::ZERO` on a clean first try) and the
/// hop's duration, or `None` once the budget is spent.
fn dma_with_retry(
    limit: u32,
    backoff: Dur,
    robust: &mut SsdRobustness,
    base: Time,
    mut hop: impl FnMut(Time) -> Option<Dur>,
) -> (Dur, Option<Dur>) {
    let mut delay = Dur::ZERO;
    let mut attempt = 0u32;
    loop {
        if let Some(d) = hop(base + delay) {
            return (delay, Some(d));
        }
        robust.timeouts += 1;
        delay += backoff * (1u64 << attempt.min(10));
        if attempt >= limit {
            return (delay, None);
        }
        robust.retries += 1;
        attempt += 1;
    }
}

impl Ssd {
    /// Builds a drive whose ports are the given PCIe endpoints. Queue memory
    /// is allocated on `queue_node` (where the submitting threads run).
    pub fn new(
        id: usize,
        cfg: SsdConfig,
        ports: Vec<PfId>,
        mem: &mut MemSystem,
        queue_node: NodeId,
    ) -> Self {
        assert!(!ports.is_empty(), "drive needs at least one port");
        if let PortPolicy::Fixed(i) = cfg.policy {
            assert!(i < ports.len(), "fixed port out of range");
        }
        Ssd {
            ports,
            media: Media::new(id, cfg.media),
            policy: cfg.policy,
            retry_limit: cfg.retry_limit,
            retry_backoff: cfg.retry_backoff,
            sq_addr: mem.alloc(queue_node, SQE_BYTES * 1024),
            cq_addr: mem.alloc(queue_node, CQE_BYTES * 1024),
            reads: 0,
            media_errors_pending: 0,
            robust: SsdRobustness::default(),
            xfer_done: std::collections::VecDeque::new(),
        }
    }

    /// Arms `errors` uncorrectable media reads: each of the next `errors`
    /// flash accesses comes back bad and costs a controller-level re-read
    /// (bounded by the retry budget). This is the drive-side half of
    /// [`simcore::FaultKind::MediaFault`].
    pub fn inject_media_fault(&mut self, errors: u8) {
        self.media_errors_pending += u32::from(errors);
    }

    /// Recovery counters accumulated since construction.
    pub fn robustness(&self) -> SsdRobustness {
        self.robust
    }

    /// The drive's ports.
    pub fn ports(&self) -> &[PfId] {
        &self.ports
    }

    /// Executes one asynchronous direct read of `len` bytes into `buf`
    /// (submitted at `now`; the caller charges its own submission CPU cost).
    ///
    /// Pipeline: command fetch (64 B DMA read via the command port) → flash
    /// read → data DMA write into `buf` → completion entry write.
    pub fn read(
        &mut self,
        now: Time,
        buf: PhysAddr,
        len: u64,
        fabric: &mut PcieFabric,
        mem: &mut MemSystem,
    ) -> ReadResult {
        self.reads += 1;
        let cmd_port = self.ports[0];
        let data_port = match self.policy {
            PortPolicy::Fixed(i) => self.ports[i],
            PortPolicy::LocalToBuffer => {
                let home = buf.home();
                *self
                    .ports
                    .iter()
                    .find(|pf| fabric.node_of(**pf) == Some(home))
                    .unwrap_or(&self.ports[0])
            }
        };
        // Fetch the submission-queue entry. All PCIe/memory hops are
        // reserved at `now` with durations summed (see pcie::fabric); the
        // per-drive flash FIFO is reserved at the command's arrival, which
        // is monotone per drive. A hop that vanishes into a dead link is
        // re-issued with bounded exponential backoff; a spent budget
        // completes the command with error status instead of panicking.
        let (limit, backoff) = (self.retry_limit, self.retry_backoff);
        let slot = self.sq_addr.offset((self.reads % 1024) * SQE_BYTES);
        let cq_slot = self.cq_addr.offset((self.reads % 1024) * CQE_BYTES);
        let (cmd_delay, cmd_dur) = dma_with_retry(limit, backoff, &mut self.robust, now, |t| {
            fabric.dma_read(t, cmd_port, mem, slot, SQE_BYTES)
        });
        let Some(cmd_dur) = cmd_dur else {
            // The controller never saw the command; the driver's final
            // timeout is the failure point and no CQE ever lands.
            self.robust.failed_commands += 1;
            return ReadResult {
                done_at: now + cmd_delay,
                data_pf: cmd_port,
                error: true,
            };
        };
        // Flash cannot start until a transfer-buffer slot frees (the
        // controller's internal buffer backpressures the NAND pipeline when
        // host DMA is slow — e.g. a congested interconnect). The slot that
        // must free is the oldest *data transfer* (flash-to-host), whose
        // duration rides the congested path.
        let gate = if self.xfer_done.len() >= XFER_BUFFER_SLOTS {
            *self.xfer_done.front().expect("non-empty")
        } else {
            Time::ZERO
        };
        let mut flash_done = self.media.read((now + cmd_delay + cmd_dur).max(gate), len);
        // Injected media faults: each pending error spoils one full flash
        // access; the controller re-reads after a backed-off recovery step,
        // within the same bounded budget.
        let mut media_attempt = 0u32;
        let mut media_ok = true;
        while self.media_errors_pending > 0 {
            self.media_errors_pending -= 1;
            self.robust.media_errors += 1;
            if media_attempt >= limit {
                media_ok = false;
                break;
            }
            self.robust.retries += 1;
            let step = backoff * (1u64 << media_attempt.min(10));
            flash_done = self.media.read(flash_done + step, len);
            media_attempt += 1;
        }
        if !media_ok {
            // Uncorrectable: no data transfer, but the error CQE still has
            // to reach the host (with the same hop recovery).
            let (cqe_delay, cqe_dur) = dma_with_retry(limit, backoff, &mut self.robust, now, |t| {
                fabric.dma_write(t, data_port, mem, cq_slot, CQE_BYTES)
            });
            self.robust.failed_commands += 1;
            return ReadResult {
                done_at: flash_done + cqe_delay + cqe_dur.unwrap_or(Dur::ZERO),
                data_pf: data_port,
                error: true,
            };
        }
        // Data to host, then the CQE (bandwidth reserved at the submission
        // event time, like every shared-resource reservation in the model).
        let (data_delay, data_dur) = dma_with_retry(limit, backoff, &mut self.robust, now, |t| {
            fabric.dma_write(t, data_port, mem, buf, len)
        });
        let Some(data_dur) = data_dur else {
            self.robust.failed_commands += 1;
            return ReadResult {
                done_at: flash_done + data_delay,
                data_pf: data_port,
                error: true,
            };
        };
        let (cqe_delay, cqe_dur) = dma_with_retry(limit, backoff, &mut self.robust, now, |t| {
            fabric.dma_write(t, data_port, mem, cq_slot, CQE_BYTES)
        });
        let Some(cqe_dur) = cqe_dur else {
            self.robust.failed_commands += 1;
            return ReadResult {
                done_at: flash_done + data_delay + data_dur + cqe_delay,
                data_pf: data_port,
                error: true,
            };
        };
        let t = flash_done + data_delay + data_dur + cqe_delay + cqe_dur;
        self.xfer_done.push_back(flash_done + data_delay + data_dur);
        if self.xfer_done.len() >= XFER_BUFFER_SLOTS {
            self.xfer_done.pop_front();
        }
        ReadResult {
            done_at: t,
            data_pf: data_port,
            error: false,
        }
    }

    /// Commands processed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Bytes read from flash.
    pub fn flash_bytes(&self) -> u64 {
        self.media.read_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::MemConfig;
    use pcie::{FabricConfig, PcieGen};

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn setup(policy: PortPolicy) -> (MemSystem, PcieFabric, Ssd) {
        let mut mem = MemSystem::new(MemConfig::dual_socket_skylake());
        let mut fab = PcieFabric::new(FabricConfig::default());
        let p0 = fab.add_endpoint(N0, PcieGen::Gen3, 4);
        let p1 = fab.add_endpoint(N1, PcieGen::Gen3, 4);
        let ssd = Ssd::new(
            0,
            SsdConfig::new(MediaConfig::pm1725a(), policy),
            vec![p0, p1],
            &mut mem,
            N1,
        );
        (mem, fab, ssd)
    }

    #[test]
    fn read_completes_after_flash_latency() {
        let (mut mem, mut fab, mut ssd) = setup(PortPolicy::Fixed(0));
        let buf = mem.alloc(N1, 128 * 1024);
        let r = ssd.read(Time::ZERO, buf, 128 * 1024, &mut fab, &mut mem);
        assert!(r.done_at > Time::from_us(90));
        assert_eq!(ssd.reads(), 1);
        assert_eq!(ssd.flash_bytes(), 128 * 1024);
    }

    #[test]
    fn fixed_port_crosses_interconnect_for_remote_buffer() {
        let (mut mem, mut fab, mut ssd) = setup(PortPolicy::Fixed(0));
        let buf = mem.alloc(N1, 128 * 1024); // remote to port 0 (node 0)
        mem.reset_counters();
        ssd.read(Time::ZERO, buf, 128 * 1024, &mut fab, &mut mem);
        assert!(
            mem.counters().interconnect_bytes >= 128 * 1024,
            "data crossed UPI"
        );
    }

    #[test]
    fn octossd_keeps_data_local() {
        let (mut mem, mut fab, mut ssd) = setup(PortPolicy::LocalToBuffer);
        let buf = mem.alloc(N1, 128 * 1024);
        mem.reset_counters();
        let r = ssd.read(Time::ZERO, buf, 128 * 1024, &mut fab, &mut mem);
        assert_eq!(fab.node_of(r.data_pf), Some(N1), "local port chosen");
        // Only the tiny command fetch crossed; the 128 KiB payload did not.
        assert!(
            mem.counters().interconnect_bytes < 4096,
            "payload stayed local, got {}",
            mem.counters().interconnect_bytes
        );
    }

    #[test]
    fn octossd_is_faster_for_remote_buffers_under_congestion() {
        let (mut mem, mut fab, mut ssd_fixed) = setup(PortPolicy::Fixed(0));
        // Saturate node0->node1 with ~1 ms of antagonist traffic.
        mem.cpu_stream_through(Time::ZERO, N0, N1, 41_600_000, true);
        let buf = mem.alloc(N1, 128 * 1024);
        let slow = ssd_fixed.read(Time::ZERO, buf, 128 * 1024, &mut fab, &mut mem);

        let (mut mem2, mut fab2, mut ssd_octo) = setup(PortPolicy::LocalToBuffer);
        mem2.cpu_stream_through(Time::ZERO, N0, N1, 41_600_000, true);
        let buf2 = mem2.alloc(N1, 128 * 1024);
        let fast = ssd_octo.read(Time::ZERO, buf2, 128 * 1024, &mut fab2, &mut mem2);
        assert!(
            fast.done_at < slow.done_at,
            "octo {} vs fixed {}",
            fast.done_at,
            slow.done_at
        );
    }

    #[test]
    fn dead_link_command_fails_after_bounded_retries() {
        let (mut mem, mut fab, mut ssd) = setup(PortPolicy::Fixed(0));
        let buf = mem.alloc(N0, 128 * 1024);
        fab.link_down(ssd.ports()[0]);
        let r = ssd.read(Time::ZERO, buf, 128 * 1024, &mut fab, &mut mem);
        assert!(r.error, "no data can cross a dead link");
        let rb = ssd.robustness();
        assert_eq!(rb.failed_commands, 1);
        // limit retries + the initial attempt all timed out; the budget is
        // bounded, so the command fails instead of spinning forever.
        assert_eq!(rb.retries, 4);
        assert_eq!(rb.timeouts, 5);
        // The failure point reflects the accumulated (doubling) timeouts:
        // 50 + 100 + 200 + 400 + 800 µs.
        assert_eq!(r.done_at, Time::ZERO + Dur::from_us(1550));
    }

    #[test]
    fn recovered_link_serves_the_next_command() {
        let (mut mem, mut fab, mut ssd) = setup(PortPolicy::Fixed(0));
        let buf = mem.alloc(N0, 4096);
        fab.link_down(ssd.ports()[0]);
        assert!(ssd.read(Time::ZERO, buf, 4096, &mut fab, &mut mem).error);
        fab.link_recover(Time::from_ms(2), ssd.ports()[0]);
        let r = ssd.read(Time::from_ms(3), buf, 4096, &mut fab, &mut mem);
        assert!(!r.error, "retry state never wedges the drive");
        assert_eq!(ssd.robustness().failed_commands, 1);
    }

    #[test]
    fn media_fault_is_retried_and_recovered() {
        let (mut mem, mut fab, mut ssd) = setup(PortPolicy::Fixed(0));
        let buf = mem.alloc(N0, 4096);
        let clean = ssd.read(Time::ZERO, buf, 4096, &mut fab, &mut mem);
        ssd.inject_media_fault(1);
        let r = ssd.read(Time::ZERO, buf, 4096, &mut fab, &mut mem);
        assert!(!r.error, "one bad read is within the budget");
        let rb = ssd.robustness();
        assert_eq!(rb.media_errors, 1);
        assert!(rb.retries >= 1);
        assert!(
            r.done_at > clean.done_at,
            "the re-read costs flash time: {} vs {}",
            r.done_at,
            clean.done_at
        );
    }

    #[test]
    fn uncorrectable_media_exhausts_the_budget_with_an_error_cqe() {
        let (mut mem, mut fab, mut ssd) = setup(PortPolicy::Fixed(0));
        let buf = mem.alloc(N0, 4096);
        ssd.inject_media_fault(10);
        let r = ssd.read(Time::ZERO, buf, 4096, &mut fab, &mut mem);
        assert!(r.error);
        let rb = ssd.robustness();
        assert_eq!(rb.failed_commands, 1);
        assert_eq!(rb.media_errors, 5, "initial read + 4 retries all spoiled");
        // The leftover armed errors hit (and are absorbed by) later reads.
        let r2 = ssd.read(Time::from_ms(5), buf, 4096, &mut fab, &mut mem);
        assert!(r2.error, "5 errors left > 4-retry budget");
        let r3 = ssd.read(Time::from_ms(10), buf, 4096, &mut fab, &mut mem);
        assert!(!r3.error, "queue drains; the drive heals");
    }

    #[test]
    #[should_panic(expected = "fixed port out of range")]
    fn bad_fixed_port() {
        let mut mem = MemSystem::new(MemConfig::dual_socket_skylake());
        let mut fab = PcieFabric::new(FabricConfig::default());
        let p0 = fab.add_endpoint(N0, PcieGen::Gen3, 4);
        Ssd::new(
            0,
            SsdConfig::new(MediaConfig::pm1725a(), PortPolicy::Fixed(3)),
            vec![p0],
            &mut mem,
            N0,
        );
    }
}
