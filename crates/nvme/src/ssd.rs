//! The SSD controller: queues, ports, and the read command pipeline.

use memsys::{MemSystem, NodeId, PhysAddr};
use pcie::{PcieFabric, PfId};
use simcore::Time;

use crate::media::{Media, MediaConfig};

/// NVMe command and completion entry sizes.
pub const SQE_BYTES: u64 = 64;
/// NVMe completion entry size.
pub const CQE_BYTES: u64 = 16;

/// How the controller picks the PF for a command's data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortPolicy {
    /// Always use port `i` — a conventional (or dual-port-but-static) drive.
    /// §5.4's experiment accesses the drive through the port remote to the
    /// fio threads.
    Fixed(usize),
    /// OctoSSD: use the port whose socket is local to the data buffer, so
    /// the data DMA never crosses the interconnect.
    LocalToBuffer,
}

/// Drive-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct SsdConfig {
    /// Media parameters.
    pub media: MediaConfig,
    /// Data-DMA port selection.
    pub policy: PortPolicy,
}

/// Result of one read command.
#[derive(Debug, Clone, Copy)]
pub struct ReadResult {
    /// When the data and the completion entry are visible in host memory.
    pub done_at: Time,
    /// The PF the data moved through.
    pub data_pf: PfId,
}

/// Transfer-buffer slots: how many block-sized data transfers the
/// controller can hold while their host DMA drains. When the interconnect
/// backs up, this is what throttles the flash pipeline (§5.4's fio
/// degradation under UPI saturation).
pub const XFER_BUFFER_SLOTS: usize = 4;

/// One NVMe SSD with one or two ports.
#[derive(Debug)]
pub struct Ssd {
    ports: Vec<PfId>,
    media: Media,
    policy: PortPolicy,
    sq_addr: PhysAddr,
    cq_addr: PhysAddr,
    reads: u64,
    xfer_done: std::collections::VecDeque<Time>,
}

impl Ssd {
    /// Builds a drive whose ports are the given PCIe endpoints. Queue memory
    /// is allocated on `queue_node` (where the submitting threads run).
    pub fn new(
        id: usize,
        cfg: SsdConfig,
        ports: Vec<PfId>,
        mem: &mut MemSystem,
        queue_node: NodeId,
    ) -> Self {
        assert!(!ports.is_empty(), "drive needs at least one port");
        if let PortPolicy::Fixed(i) = cfg.policy {
            assert!(i < ports.len(), "fixed port out of range");
        }
        Ssd {
            ports,
            media: Media::new(id, cfg.media),
            policy: cfg.policy,
            sq_addr: mem.alloc(queue_node, SQE_BYTES * 1024),
            cq_addr: mem.alloc(queue_node, CQE_BYTES * 1024),
            reads: 0,
            xfer_done: std::collections::VecDeque::new(),
        }
    }

    /// The drive's ports.
    pub fn ports(&self) -> &[PfId] {
        &self.ports
    }

    /// Executes one asynchronous direct read of `len` bytes into `buf`
    /// (submitted at `now`; the caller charges its own submission CPU cost).
    ///
    /// Pipeline: command fetch (64 B DMA read via the command port) → flash
    /// read → data DMA write into `buf` → completion entry write.
    pub fn read(
        &mut self,
        now: Time,
        buf: PhysAddr,
        len: u64,
        fabric: &mut PcieFabric,
        mem: &mut MemSystem,
    ) -> ReadResult {
        self.reads += 1;
        let cmd_port = self.ports[0];
        let data_port = match self.policy {
            PortPolicy::Fixed(i) => self.ports[i],
            PortPolicy::LocalToBuffer => {
                let home = buf.home();
                *self
                    .ports
                    .iter()
                    .find(|pf| fabric.node_of(**pf) == Some(home))
                    .unwrap_or(&self.ports[0])
            }
        };
        // Fetch the submission-queue entry. All PCIe/memory hops are
        // reserved at `now` with durations summed (see pcie::fabric); the
        // per-drive flash FIFO is reserved at the command's arrival, which
        // is monotone per drive.
        let slot = self.sq_addr.offset((self.reads % 1024) * SQE_BYTES);
        let cmd_dur = fabric
            .dma_read(now, cmd_port, mem, slot, SQE_BYTES)
            .expect("SSD links are not fault-injected");
        // Flash cannot start until a transfer-buffer slot frees (the
        // controller's internal buffer backpressures the NAND pipeline when
        // host DMA is slow — e.g. a congested interconnect). The slot that
        // must free is the oldest *data transfer* (flash-to-host), whose
        // duration rides the congested path.
        let gate = if self.xfer_done.len() >= XFER_BUFFER_SLOTS {
            *self.xfer_done.front().expect("non-empty")
        } else {
            Time::ZERO
        };
        let flash_done = self.media.read((now + cmd_dur).max(gate), len);
        // Data to host, then the CQE (bandwidth reserved at the submission
        // event time, like every shared-resource reservation in the model).
        let data_dur = fabric
            .dma_write(now, data_port, mem, buf, len)
            .expect("SSD links are not fault-injected");
        let cq_slot = self.cq_addr.offset((self.reads % 1024) * CQE_BYTES);
        let cqe_dur = fabric
            .dma_write(now, data_port, mem, cq_slot, CQE_BYTES)
            .expect("SSD links are not fault-injected");
        let t = flash_done + data_dur + cqe_dur;
        self.xfer_done.push_back(flash_done + data_dur);
        if self.xfer_done.len() >= XFER_BUFFER_SLOTS {
            self.xfer_done.pop_front();
        }
        ReadResult {
            done_at: t,
            data_pf: data_port,
        }
    }

    /// Commands processed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Bytes read from flash.
    pub fn flash_bytes(&self) -> u64 {
        self.media.read_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::MemConfig;
    use pcie::{FabricConfig, PcieGen};

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn setup(policy: PortPolicy) -> (MemSystem, PcieFabric, Ssd) {
        let mut mem = MemSystem::new(MemConfig::dual_socket_skylake());
        let mut fab = PcieFabric::new(FabricConfig::default());
        let p0 = fab.add_endpoint(N0, PcieGen::Gen3, 4);
        let p1 = fab.add_endpoint(N1, PcieGen::Gen3, 4);
        let ssd = Ssd::new(
            0,
            SsdConfig {
                media: MediaConfig::pm1725a(),
                policy,
            },
            vec![p0, p1],
            &mut mem,
            N1,
        );
        (mem, fab, ssd)
    }

    #[test]
    fn read_completes_after_flash_latency() {
        let (mut mem, mut fab, mut ssd) = setup(PortPolicy::Fixed(0));
        let buf = mem.alloc(N1, 128 * 1024);
        let r = ssd.read(Time::ZERO, buf, 128 * 1024, &mut fab, &mut mem);
        assert!(r.done_at > Time::from_us(90));
        assert_eq!(ssd.reads(), 1);
        assert_eq!(ssd.flash_bytes(), 128 * 1024);
    }

    #[test]
    fn fixed_port_crosses_interconnect_for_remote_buffer() {
        let (mut mem, mut fab, mut ssd) = setup(PortPolicy::Fixed(0));
        let buf = mem.alloc(N1, 128 * 1024); // remote to port 0 (node 0)
        mem.reset_counters();
        ssd.read(Time::ZERO, buf, 128 * 1024, &mut fab, &mut mem);
        assert!(
            mem.counters().interconnect_bytes >= 128 * 1024,
            "data crossed UPI"
        );
    }

    #[test]
    fn octossd_keeps_data_local() {
        let (mut mem, mut fab, mut ssd) = setup(PortPolicy::LocalToBuffer);
        let buf = mem.alloc(N1, 128 * 1024);
        mem.reset_counters();
        let r = ssd.read(Time::ZERO, buf, 128 * 1024, &mut fab, &mut mem);
        assert_eq!(fab.node_of(r.data_pf), Some(N1), "local port chosen");
        // Only the tiny command fetch crossed; the 128 KiB payload did not.
        assert!(
            mem.counters().interconnect_bytes < 4096,
            "payload stayed local, got {}",
            mem.counters().interconnect_bytes
        );
    }

    #[test]
    fn octossd_is_faster_for_remote_buffers_under_congestion() {
        let (mut mem, mut fab, mut ssd_fixed) = setup(PortPolicy::Fixed(0));
        // Saturate node0->node1 with ~1 ms of antagonist traffic.
        mem.cpu_stream_through(Time::ZERO, N0, N1, 41_600_000, true);
        let buf = mem.alloc(N1, 128 * 1024);
        let slow = ssd_fixed.read(Time::ZERO, buf, 128 * 1024, &mut fab, &mut mem);

        let (mut mem2, mut fab2, mut ssd_octo) = setup(PortPolicy::LocalToBuffer);
        mem2.cpu_stream_through(Time::ZERO, N0, N1, 41_600_000, true);
        let buf2 = mem2.alloc(N1, 128 * 1024);
        let fast = ssd_octo.read(Time::ZERO, buf2, 128 * 1024, &mut fab2, &mut mem2);
        assert!(
            fast.done_at < slow.done_at,
            "octo {} vs fixed {}",
            fast.done_at,
            slow.done_at
        );
    }

    #[test]
    #[should_panic(expected = "fixed port out of range")]
    fn bad_fixed_port() {
        let mut mem = MemSystem::new(MemConfig::dual_socket_skylake());
        let mut fab = PcieFabric::new(FabricConfig::default());
        let p0 = fab.add_endpoint(N0, PcieGen::Gen3, 4);
        Ssd::new(
            0,
            SsdConfig {
                media: MediaConfig::pm1725a(),
                policy: PortPolicy::Fixed(3),
            },
            vec![p0],
            &mut mem,
            N0,
        );
    }
}
