//! A deterministic, fast `BuildHasher` for simulation hot paths.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of cycles per
//! lookup — pure overhead for a simulator whose keys (flow tuples, cache-set
//! indices, MAC addresses) are short and attacker-free. [`FxHasher`]
//! implements the FxHash algorithm (one wrapping multiply + rotate-xor per
//! word, as used by rustc itself): ~5× cheaper on the small keys the
//! substrates hash, and — unlike `RandomState` — *seed-free*, so iteration-
//! independent code paths hash identically across runs and across the
//! parallel sweep workers. Determinism here is a correctness requirement:
//! bit-identical replay is what the differential and sweep tests enforce.
//!
//! # Example
//! ```
//! use simcore::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(42, "line");
//! assert_eq!(m.get(&42), Some(&"line"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (the golden-ratio constant rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher: `hash = (hash rotl 5 ^ word) * SEED` per
/// word. Not DoS-resistant — do not use for attacker-controlled keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(word.try_into().expect("8 bytes")));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (word, rest) = bytes.split_at(4);
            self.add_to_hash(u32::from_le_bytes(word.try_into().expect("4 bytes")) as u64);
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Seed-free `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// A map's entries sorted by key — the sanctioned way to iterate a hash map
/// from code that schedules events (simlint rule `unordered-iteration`).
///
/// Even with a seed-free hasher, hash-map iteration order depends on
/// insertion history and capacity growth; any event scheduled from inside
/// such a loop inherits that order as a tiebreak. Sorting by key first makes
/// the visit order a pure function of the map's *contents*.
pub fn sorted_entries<K: Ord, V, S>(map: &std::collections::HashMap<K, V, S>) -> Vec<(&K, &V)> {
    let mut entries: Vec<_> = map.iter().collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
    entries
}

/// A set's (or map's key) view sorted ascending — see [`sorted_entries`].
pub fn sorted_keys<K: Ord, S>(set: &std::collections::HashSet<K, S>) -> Vec<&K> {
    let mut keys: Vec<_> = set.iter().collect();
    keys.sort_unstable();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        // Same value, fresh builders (fresh "runs"): identical hashes.
        assert_eq!(hash_of(&0xdead_beefu64), hash_of(&0xdead_beefu64));
        assert_eq!(hash_of(&"flow"), hash_of(&"flow"));
        assert_eq!(hash_of(&(1u32, 2u16, 3u16)), hash_of(&(1u32, 2u16, 3u16)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a strength proof, just a sanity check against degenerate
        // implementations (e.g. ignoring input).
        let hashes: Vec<u64> = (0..1000u64).map(|i| hash_of(&i)).collect();
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hashes.len(), "collisions on sequential keys");
    }

    #[test]
    fn mixed_width_writes() {
        let mut h = FxHasher::default();
        h.write_u8(1);
        h.write_u16(2);
        h.write_u32(3);
        h.write_u64(4);
        h.write_usize(5);
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        assert_ne!(h.finish(), 0);
    }

    #[test]
    fn sorted_iteration_is_content_deterministic() {
        // Two maps with identical contents but different insertion histories
        // (and hence potentially different raw iteration orders) yield the
        // same sorted view.
        let mut a: FxHashMap<u64, u64> = FxHashMap::default();
        let mut b: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..64u64 {
            a.insert(i, i * 10);
        }
        for i in (0..64u64).rev() {
            b.insert(i, i * 10);
            b.remove(&i);
            b.insert(i, i * 10);
        }
        assert_eq!(sorted_entries(&a), sorted_entries(&b));
        assert_eq!(
            sorted_entries(&a).first().map(|&(k, v)| (*k, *v)),
            Some((0, 0))
        );

        let s: FxHashSet<u32> = [5u32, 1, 9, 3].into_iter().collect();
        assert_eq!(sorted_keys(&s), vec![&1, &3, &5, &9]);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<(u32, u16), u64> = FxHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m[&(1, 2)], 3);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }
}
