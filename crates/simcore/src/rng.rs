//! Deterministic randomness for workloads and steering decisions.
//!
//! Every stochastic choice in the simulation (memcached key selection,
//! pktgen flow tuples, RSS hashing noise, …) draws from a [`SimRng`] seeded
//! from the experiment configuration, so a run replays identically for a
//! given seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A small, fast, seedable RNG with convenience draws used across the
/// workspace.
///
/// # Example
/// ```
/// use simcore::SimRng;
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives a child RNG deterministically from this one plus a stream tag.
    ///
    /// Use distinct tags for independent stochastic processes so adding draws
    /// to one process does not perturb another.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed(s)
    }

    /// A uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.inner.gen::<f64>() < p
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    /// Panics if `slice` is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot pick from an empty slice");
        &slice[self.below(slice.len() as u64) as usize]
    }

    /// An exponentially distributed duration-scale value with the given mean
    /// (used for Poisson arrival processes).
    pub fn exp_mean(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root1 = SimRng::seed(9);
        let mut root2 = SimRng::seed(9);
        let mut c1 = root1.fork(1);
        let mut c2 = root2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut d = root1.fork(2);
        assert_ne!(c1.next_u64(), d.next_u64());
    }

    #[test]
    fn pick_and_exp() {
        let mut r = SimRng::seed(5);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(r.pick(&xs)));
        }
        let mean: f64 = (0..5000).map(|_| r.exp_mean(100.0)).sum::<f64>() / 5000.0;
        assert!((mean - 100.0).abs() < 10.0, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_zero_bound_panics() {
        SimRng::seed(0).below(0);
    }
}
