//! Deterministic randomness for workloads and steering decisions.
//!
//! Every stochastic choice in the simulation (memcached key selection,
//! pktgen flow tuples, RSS hashing noise, fault-plan jitter, …) draws from
//! a [`SimRng`] seeded from the experiment configuration, so a run replays
//! identically for a given seed.
//!
//! The generator is a self-contained xoshiro256** (public domain, Blackman
//! & Vigna) seeded through SplitMix64 — no external crates, so the
//! workspace builds hermetically and the stream is stable across toolchain
//! updates.

/// A small, fast, seedable RNG with convenience draws used across the
/// workspace.
///
/// # Example
/// ```
/// use simcore::SimRng;
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives a child RNG deterministically from this one plus a stream tag.
    ///
    /// Use distinct tags for independent stochastic processes so adding draws
    /// to one process does not perturb another.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let s = self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed(s)
    }

    /// A uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method: unbiased.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.unit() < p
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    /// Panics if `slice` is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot pick from an empty slice");
        &slice[self.below(slice.len() as u64) as usize]
    }

    /// An exponentially distributed duration-scale value with the given mean
    /// (used for Poisson arrival processes).
    pub fn exp_mean(&mut self, mean: f64) -> f64 {
        // 1 - unit() is in (0, 1], so ln never sees zero.
        -mean * (1.0 - self.unit()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::seed(11);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root1 = SimRng::seed(9);
        let mut root2 = SimRng::seed(9);
        let mut c1 = root1.fork(1);
        let mut c2 = root2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut d = root1.fork(2);
        assert_ne!(c1.next_u64(), d.next_u64());
    }

    #[test]
    fn pick_and_exp() {
        let mut r = SimRng::seed(5);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(r.pick(&xs)));
        }
        let mean: f64 = (0..5000).map(|_| r.exp_mean(100.0)).sum::<f64>() / 5000.0;
        assert!((mean - 100.0).abs() < 10.0, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_zero_bound_panics() {
        SimRng::seed(0).below(0);
    }
}
