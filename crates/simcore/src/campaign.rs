//! Chaos campaigns: generated fault schedules and schedule minimization.
//!
//! Hand-written [`FaultPlan`]s probe the failure interleavings someone
//! thought of; a *campaign* probes the ones nobody did. From one campaign
//! seed, [`plan_for`] derives an unbounded family of random-but-deterministic
//! schedules — schedule `i` of campaign `s` is the same plan on every
//! machine, forever — mixing uniform background faults with the patterns
//! that historically break recovery code:
//!
//! * **bursts** — faults clustered within microseconds of each other
//!   (including same-instant events) on the heels of a previous fault;
//! * **overlaps** — a new fault on a PF whose previous fault has not
//!   recovered yet (fail-while-failed, down-while-down);
//! * **zero-gap pairs** — a recovery scheduled at the *same instant* as its
//!   failure, the degenerate flap;
//! * **orphans** — recoveries with no matching failure and failures with no
//!   recovery, in whatever order the dice produce.
//!
//! When a schedule trips an invariant (see [`crate::audit`]), [`shrink`]
//! minimizes it with delta debugging (ddmin): it repeatedly re-runs the
//! failing predicate on subsets and complements of the event list, then
//! polishes greedily, returning a locally minimal plan — typically one to
//! three events — that still reproduces the violation. The shrunk plan plus
//! the campaign seed *is* the bug report.

use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::rng::SimRng;
use crate::time::{Dur, Time};

/// Parameters of a campaign: the seed plus the shape of each generated
/// schedule. Two configs with the same fields generate identical plans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Campaign seed; schedule `i` derives its RNG as `seed(s).fork(i)`.
    pub seed: u64,
    /// Faults land in `(0, horizon)`.
    pub horizon: Dur,
    /// Targets are PF indices in `0..pf_count` (drive indices for
    /// [`FaultKind::MediaFault`]).
    pub pf_count: usize,
    /// Minimum faults per schedule.
    pub faults_min: usize,
    /// Maximum faults per schedule (inclusive).
    pub faults_max: usize,
    /// Probability that a fault clusters within microseconds of the
    /// previous one instead of landing uniformly in the horizon.
    pub burst_chance: f64,
    /// Probability that a fail-type fault gets a matching recovery pushed
    /// (at a gap that may be zero).
    pub pair_chance: f64,
    /// Whether to include NVMe media faults in the kind mix.
    pub media_faults: bool,
    /// Whether to include hotplug topology churn ([`FaultKind::
    /// SurpriseRemove`] / [`FaultKind::Reenumerate`]) in the kind mix. The
    /// hotplug indices are appended *after* every existing kind, so enabling
    /// the flag never perturbs the plans a hotplug-free config generates.
    pub hotplug: bool,
}

impl CampaignConfig {
    /// A campaign over `pf_count` PFs with the default shape: 1–12 faults
    /// per schedule in an 8 ms horizon, 35% bursts, 60% paired recoveries,
    /// no media faults.
    pub fn new(seed: u64, pf_count: usize) -> Self {
        CampaignConfig {
            seed,
            horizon: Dur::from_ms(8),
            pf_count,
            faults_min: 1,
            faults_max: 12,
            burst_chance: 0.35,
            pair_chance: 0.6,
            media_faults: false,
            hotplug: false,
        }
    }
}

/// Derives schedule `index` of the campaign. Deterministic: depends only on
/// `cfg` and `index`, never on call order or host state.
///
/// # Panics
/// Panics if `cfg.pf_count` is zero, `cfg.horizon` is zero, or
/// `cfg.faults_max < cfg.faults_min`.
pub fn plan_for(cfg: &CampaignConfig, index: u64) -> FaultPlan {
    assert!(cfg.pf_count > 0, "need at least one PF to target");
    assert!(cfg.horizon > Dur::ZERO, "horizon must be positive");
    assert!(cfg.faults_max >= cfg.faults_min, "faults_max < faults_min");
    let mut rng = SimRng::seed(cfg.seed).fork(index);
    let count = cfg.faults_min + rng.below((cfg.faults_max - cfg.faults_min + 1) as u64) as usize;
    let mut plan = FaultPlan::new();
    let mut last_at = Time::ZERO + Dur::from_ps(1);
    let mut last_pf = 0usize;
    let mut placed = 0usize;
    while placed < count {
        let at = if placed > 0 && rng.chance(cfg.burst_chance) {
            // Burst: within 0–5 µs of the previous fault, with a fat atom
            // at exactly zero (same-instant collision).
            if rng.chance(0.25) {
                last_at
            } else {
                last_at + Dur::from_ns(1 + rng.below(5_000))
            }
        } else {
            Time::ZERO + Dur::from_ps(1 + rng.below(cfg.horizon.as_ps().max(2) - 1))
        };
        // Overlap bias: a third of follow-on faults re-target the previous
        // PF regardless of its (unknown here) recovery state.
        let pf = if placed > 0 && rng.chance(1.0 / 3.0) {
            last_pf
        } else {
            rng.below(cfg.pf_count as u64) as usize
        };
        // Hotplug indices are appended after every pre-existing kind so a
        // hotplug-free config draws the exact RNG sequence it always did.
        let base = if cfg.media_faults { 7u64 } else { 6 };
        let kinds = base + if cfg.hotplug { 2 } else { 0 };
        let kind = match rng.below(kinds) {
            0 => FaultKind::LinkDown,
            1 => FaultKind::LinkDegrade {
                lanes: *rng.pick(&[1u8, 2, 4, 8]),
                gen: 3,
            },
            2 => FaultKind::LinkRecover,
            3 => FaultKind::PfFail,
            4 => FaultKind::PfRecover,
            5 => FaultKind::IrqLoss,
            6 if cfg.media_faults => FaultKind::MediaFault {
                errors: 1 + rng.below(3) as u8,
            },
            k if k == base => FaultKind::SurpriseRemove,
            _ => FaultKind::Reenumerate,
        };
        plan.push(at, pf, kind);
        placed += 1;
        // Paired recovery for fail-type kinds, at a gap that may be zero
        // (the zero-gap flap) and may itself overlap later faults.
        let recover = match kind {
            FaultKind::LinkDown => Some(FaultKind::LinkRecover),
            FaultKind::LinkDegrade { .. } => Some(FaultKind::LinkRecover),
            FaultKind::PfFail => Some(FaultKind::PfRecover),
            FaultKind::SurpriseRemove => Some(FaultKind::Reenumerate),
            _ => None,
        };
        if let Some(rk) = recover {
            if placed < count && rng.chance(cfg.pair_chance) {
                // Zero-gap flaps get a fat atom; otherwise 1 ns – 2 ms.
                let gap = if rng.chance(0.15) {
                    Dur::ZERO
                } else {
                    Dur::from_ns(1 + rng.below(2_000_000))
                };
                plan.push(at + gap, pf, rk);
                placed += 1;
            }
        }
        last_at = at;
        last_pf = pf;
    }
    plan
}

/// Minimizes a failing schedule with delta debugging.
///
/// `still_failing` runs the system on a candidate plan and reports whether
/// the original violation still reproduces. The input `plan` must itself
/// fail (if it does not, it is returned unchanged). The result is *1-minimal*:
/// removing any single event makes the violation disappear. ddmin narrows in
/// `O(n log n)` runs for well-behaved failures and degrades to `O(n²)` in
/// the worst case; the greedy polish pass afterwards guarantees minimality.
pub fn shrink<F>(plan: &FaultPlan, mut still_failing: F) -> FaultPlan
where
    F: FnMut(&FaultPlan) -> bool,
{
    let rebuild = |evs: &[FaultEvent]| {
        let mut p = FaultPlan::new();
        for e in evs {
            p.push(e.at, e.pf, e.kind);
        }
        p
    };
    let mut events: Vec<FaultEvent> = plan.events().to_vec();
    if !still_failing(&rebuild(&events)) {
        return rebuild(&events); // not reproducible: nothing to shrink
    }
    if still_failing(&FaultPlan::new()) {
        return FaultPlan::new(); // fails with no faults at all
    }
    let mut n = 2usize.min(events.len().max(1));
    while events.len() >= 2 {
        let len = events.len();
        let chunk = len.div_ceil(n);
        let mut reduced = false;
        // Try each subset (one chunk alone) …
        let subset_hit = (0..n).find_map(|i| {
            let lo = i * chunk;
            let hi = ((i + 1) * chunk).min(len);
            if lo >= len || hi - lo == len {
                return None;
            }
            let subset = events[lo..hi].to_vec();
            still_failing(&rebuild(&subset)).then_some(subset)
        });
        if let Some(subset) = subset_hit {
            events = subset;
            n = 2;
            reduced = true;
        }
        // … then each complement (everything but one chunk).
        if !reduced {
            let comp_hit = (0..n).find_map(|i| {
                let lo = i * chunk;
                let hi = ((i + 1) * chunk).min(len);
                if lo >= len || hi == lo || hi - lo == len {
                    return None;
                }
                let mut comp = events[..lo].to_vec();
                comp.extend_from_slice(&events[hi..]);
                still_failing(&rebuild(&comp)).then_some(comp)
            });
            if let Some(comp) = comp_hit {
                events = comp;
                n = (n - 1).max(2);
                reduced = true;
            }
        }
        if !reduced {
            if n >= events.len() {
                break;
            }
            n = (2 * n).min(events.len());
        }
    }
    // Greedy polish: drop events one at a time until 1-minimal.
    loop {
        let mut removed = false;
        for i in 0..events.len() {
            let mut cand = events.clone();
            cand.remove(i);
            if still_failing(&rebuild(&cand)) {
                events = cand;
                removed = true;
                break;
            }
        }
        if !removed {
            break;
        }
    }
    rebuild(&events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> CampaignConfig {
        CampaignConfig::new(seed, 2)
    }

    #[test]
    fn same_seed_and_index_give_identical_plans() {
        let a = plan_for(&cfg(0xc0ffee), 17);
        let b = plan_for(&cfg(0xc0ffee), 17);
        assert_eq!(a.events(), b.events());
        assert!(!a.is_empty());
    }

    #[test]
    fn different_indices_give_different_plans() {
        let c = cfg(0xc0ffee);
        let a = plan_for(&c, 0);
        let b = plan_for(&c, 1);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn plans_are_sorted_bounded_and_sized() {
        let c = cfg(0x5eed);
        for i in 0..200 {
            let p = plan_for(&c, i);
            assert!(p.events().windows(2).all(|w| w[0].at <= w[1].at));
            assert!(p.events().iter().all(|e| e.pf < c.pf_count));
            assert!(p.len() >= c.faults_min);
            // Pairing can add one recovery past the nominal cap.
            assert!(p.len() <= c.faults_max + 1);
            assert!(p.events().iter().all(|e| e.at > Time::ZERO));
        }
    }

    #[test]
    fn campaign_exercises_the_edge_patterns() {
        let c = cfg(0xedfe);
        let mut same_instant = 0;
        let mut zero_gap_pairs = 0;
        let mut overlap_same_pf = 0;
        for i in 0..400 {
            let p = plan_for(&c, i);
            for w in p.events().windows(2) {
                if w[0].at == w[1].at {
                    same_instant += 1;
                    if w[0].pf == w[1].pf
                        && w[0].kind == FaultKind::PfFail
                        && w[1].kind == FaultKind::PfRecover
                    {
                        zero_gap_pairs += 1;
                    }
                }
                if w[0].pf == w[1].pf {
                    overlap_same_pf += 1;
                }
            }
        }
        assert!(
            same_instant > 0,
            "bursts never collided to the same instant"
        );
        assert!(
            zero_gap_pairs > 0,
            "no zero-gap fail/recover pair generated"
        );
        assert!(overlap_same_pf > 0, "no same-PF consecutive faults");
    }

    #[test]
    fn media_faults_only_when_enabled() {
        let mut with = cfg(0xabc);
        with.media_faults = true;
        let without = cfg(0xabc);
        let has_media = |c: &CampaignConfig| {
            (0..100).any(|i| {
                plan_for(c, i)
                    .events()
                    .iter()
                    .any(|e| matches!(e.kind, FaultKind::MediaFault { .. }))
            })
        };
        assert!(has_media(&with));
        assert!(!has_media(&without));
    }

    #[test]
    fn hotplug_only_when_enabled() {
        let mut with = cfg(0xdef);
        with.hotplug = true;
        let without = cfg(0xdef);
        let has_hotplug = |c: &CampaignConfig| {
            (0..100).any(|i| {
                plan_for(c, i)
                    .events()
                    .iter()
                    .any(|e| matches!(e.kind, FaultKind::SurpriseRemove | FaultKind::Reenumerate))
            })
        };
        assert!(has_hotplug(&with));
        assert!(!has_hotplug(&without));
    }

    #[test]
    fn hotplug_flag_never_perturbs_legacy_plans() {
        // Appending the hotplug kinds must leave every plan a hotplug-free
        // config generates bit-identical: existing BENCH baselines depend
        // on it.
        let old = cfg(0x10c7);
        let mut media = cfg(0x10c7);
        media.media_faults = true;
        for c in [old, media] {
            for i in 0..50 {
                let p = plan_for(&c, i);
                assert!(!p
                    .events()
                    .iter()
                    .any(|e| matches!(e.kind, FaultKind::SurpriseRemove | FaultKind::Reenumerate)));
            }
        }
    }

    #[test]
    fn surprise_remove_pairs_with_reenumerate() {
        let mut c = cfg(0xbeef);
        c.hotplug = true;
        c.pair_chance = 1.0;
        let mut paired = 0;
        for i in 0..400 {
            let p = plan_for(&c, i);
            for (j, e) in p.events().iter().enumerate() {
                if e.kind == FaultKind::SurpriseRemove
                    && p.events()[j + 1..]
                        .iter()
                        .any(|r| r.pf == e.pf && r.kind == FaultKind::Reenumerate)
                {
                    paired += 1;
                }
            }
        }
        assert!(paired > 0, "no SurpriseRemove/Reenumerate pair generated");
    }

    #[test]
    fn shrink_isolates_a_single_culprit_event() {
        // "Violation" iff the plan contains any PfFail on PF 0; ensure at
        // least one culprit exists among the generated noise.
        let plan = plan_for(&cfg(0xbead), 3).with(Time::from_ms(1), 0, FaultKind::PfFail);
        assert!(plan.len() >= 3, "want a multi-event plan to shrink");
        let fails = |p: &FaultPlan| {
            p.events()
                .iter()
                .any(|e| e.pf == 0 && e.kind == FaultKind::PfFail)
        };
        let min = shrink(&plan, fails);
        assert_eq!(min.len(), 1);
        assert_eq!(min.events()[0].kind, FaultKind::PfFail);
        assert!(fails(&min));
    }

    #[test]
    fn shrink_keeps_a_two_event_interaction() {
        // Failure needs a LinkDown *followed by* a PfFail on the same PF —
        // a genuine two-event interaction; ddmin must keep exactly both.
        let mut plan = FaultPlan::new();
        for i in 0..6 {
            plan.push(Time::from_ms(i + 1), 1, FaultKind::IrqLoss);
        }
        plan.push(Time::from_ms(2), 0, FaultKind::LinkDown);
        plan.push(Time::from_ms(5), 0, FaultKind::PfFail);
        let fails = |p: &FaultPlan| {
            let down = p
                .events()
                .iter()
                .position(|e| e.pf == 0 && e.kind == FaultKind::LinkDown);
            match down {
                Some(i) => p.events()[i..]
                    .iter()
                    .any(|e| e.pf == 0 && e.kind == FaultKind::PfFail),
                None => false,
            }
        };
        let min = shrink(&plan, fails);
        assert_eq!(min.len(), 2);
        assert!(fails(&min));
    }

    #[test]
    fn shrink_returns_input_when_not_reproducible() {
        let plan = plan_for(&cfg(0x11), 0);
        let min = shrink(&plan, |_| false);
        assert_eq!(min.events(), plan.events());
    }

    #[test]
    fn shrink_handles_unconditional_failure() {
        let plan = plan_for(&cfg(0x12), 0);
        let min = shrink(&plan, |_| true);
        assert!(min.is_empty(), "failure independent of the plan ⇒ empty");
    }
}
