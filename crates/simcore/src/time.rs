//! Simulated time in integer picoseconds.
//!
//! Integer picoseconds give exact arithmetic for bandwidth computations
//! (e.g. one byte on a 100 Gb/s wire is exactly 80 ps) while still covering
//! ~213 days of simulated time in a `u64` — far beyond the tens-of-
//! milliseconds windows the experiments use.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// The single sanctioned picosecond→float boundary, used by the `as_*`
/// display/statistics conversions and fractional scaling. `f64` is exact
/// below 2⁵³ ps (~2.5 simulated hours); experiment horizons are tens of
/// milliseconds, far inside that. All event-ordering arithmetic stays in
/// integer ps and never passes through here.
fn ps_to_f64(ps: u64) -> f64 {
    // simlint: allow(lossy-time-cast) — sole sanctioned ps→f64 boundary; exact below 2^53 ps, horizons are ms
    ps as f64
}

/// An absolute instant of simulated time, in picoseconds since simulation start.
///
/// `Time` is ordered and copyable; subtracting two `Time`s yields a [`Dur`].
///
/// # Example
/// ```
/// use simcore::{Time, Dur};
/// let t = Time::ZERO + Dur::from_us(3);
/// assert_eq!(t.as_ns(), 3_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time, in picoseconds.
///
/// # Example
/// ```
/// use simcore::Dur;
/// assert_eq!(Dur::from_ns(2) * 3, Dur::from_ns(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);
    /// The greatest representable instant; useful as an "infinity" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * PS_PER_NS)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Time(us * PS_PER_US)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * PS_PER_MS)
    }

    /// Raw picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time as fractional nanoseconds.
    pub fn as_ns(self) -> f64 {
        ps_to_f64(self.0) / PS_PER_NS as f64
    }

    /// Time as fractional microseconds.
    pub fn as_us(self) -> f64 {
        ps_to_f64(self.0) / PS_PER_US as f64
    }

    /// Time as fractional milliseconds.
    pub fn as_ms(self) -> f64 {
        ps_to_f64(self.0) / PS_PER_MS as f64
    }

    /// Time as fractional seconds.
    pub fn as_secs(self) -> f64 {
        ps_to_f64(self.0) / PS_PER_SEC as f64
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Duration since an earlier instant, saturating to zero.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);
    /// The greatest representable duration.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Creates a duration from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Dur(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Dur(ns * PS_PER_NS)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Dur(us * PS_PER_US)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Dur(ms * PS_PER_MS)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * PS_PER_SEC)
    }

    /// Creates a duration from fractional nanoseconds (rounded to the nearest
    /// picosecond).
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns >= 0.0, "durations are non-negative, got {ns}");
        Dur((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Duration as fractional nanoseconds.
    pub fn as_ns(self) -> f64 {
        ps_to_f64(self.0) / PS_PER_NS as f64
    }

    /// Duration as fractional microseconds.
    pub fn as_us(self) -> f64 {
        ps_to_f64(self.0) / PS_PER_US as f64
    }

    /// Duration as fractional milliseconds.
    pub fn as_ms(self) -> f64 {
        ps_to_f64(self.0) / PS_PER_MS as f64
    }

    /// Duration as fractional seconds.
    pub fn as_secs(self) -> f64 {
        ps_to_f64(self.0) / PS_PER_SEC as f64
    }

    /// The longer of two durations.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The shorter of two durations.
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The time it takes to move `bytes` bytes at `bytes_per_sec`.
    ///
    /// Computed in 128-bit arithmetic so that multi-gigabyte transfers on
    /// slow links cannot overflow.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is zero.
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Dur {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        let ps = (bytes as u128 * PS_PER_SEC as u128) / bytes_per_sec as u128;
        Dur(ps as u64)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Mul<f64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: f64) -> Dur {
        assert!(rhs >= 0.0, "duration scale must be non-negative");
        Dur((ps_to_f64(self.0) * rhs).round() as u64)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < PS_PER_US {
            write!(f, "{:.1}ns", self.as_ns())
        } else if self.0 < PS_PER_MS {
            write!(f, "{:.2}us", self.as_us())
        } else {
            write!(f, "{:.3}ms", self.as_ms())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Time::from_ns(5).as_ps(), 5_000);
        assert_eq!(Time::from_us(5).as_ps(), 5_000_000);
        assert_eq!(Time::from_ms(5).as_ps(), 5_000_000_000);
        assert_eq!(Dur::from_secs(1).as_ps(), PS_PER_SEC);
    }

    #[test]
    fn time_dur_arithmetic() {
        let t = Time::from_ns(100);
        let d = Dur::from_ns(40);
        assert_eq!(t + d, Time::from_ns(140));
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_saturates() {
        let early = Time::from_ns(10);
        let late = Time::from_ns(50);
        assert_eq!(late.since(early), Dur::from_ns(40));
        assert_eq!(early.since(late), Dur::ZERO);
    }

    #[test]
    fn for_bytes_exact_on_100gbe() {
        // 100 Gb/s = 12.5 GB/s, so one byte takes exactly 80 ps.
        let bps = 12_500_000_000;
        assert_eq!(Dur::for_bytes(1, bps).as_ps(), 80);
        assert_eq!(Dur::for_bytes(1500, bps).as_ps(), 120_000);
    }

    #[test]
    fn for_bytes_large_transfer_no_overflow() {
        // 1 TiB at 1 MB/s: ~12.7 days, should not overflow.
        let d = Dur::for_bytes(1 << 40, 1_000_000);
        assert!(d.as_secs() > 1_000_000.0);
    }

    #[test]
    fn dur_scaling() {
        assert_eq!(Dur::from_ns(10) * 3, Dur::from_ns(30));
        assert_eq!(Dur::from_ns(10) * 0.5, Dur::from_ns(5));
        assert_eq!(Dur::from_ns(10) / 2, Dur::from_ns(5));
    }

    #[test]
    fn from_ns_f64_rounds() {
        assert_eq!(Dur::from_ns_f64(1.5).as_ps(), 1_500);
        assert_eq!(Dur::from_ns_f64(0.0004).as_ps(), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_ns_f64_rejects_negative() {
        let _ = Dur::from_ns_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dur::from_ns(12)), "12.0ns");
        assert_eq!(format!("{}", Dur::from_us(12)), "12.00us");
        assert_eq!(format!("{}", Dur::from_ms(12)), "12.000ms");
    }

    #[test]
    fn min_max_helpers() {
        let a = Time::from_ns(1);
        let b = Time::from_ns(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Dur::from_ns(1).max(Dur::from_ns(2)), Dur::from_ns(2));
    }

    #[test]
    fn prop_add_sub_inverse() {
        let mut r = SimRng::seed(0x71ae);
        for _ in 0..256 {
            let time = Time::from_ps(r.below(u64::MAX / 4));
            let dur = Dur::from_ps(r.below(u64::MAX / 4));
            assert_eq!((time + dur) - dur, time);
            assert_eq!((time + dur) - time, dur);
        }
    }

    #[test]
    fn prop_for_bytes_monotone_in_bytes() {
        let mut r = SimRng::seed(0x71af);
        for _ in 0..256 {
            let b1 = r.below(1 << 32);
            let b2 = r.below(1 << 32);
            let bw = 1 + r.below(100_000_000_000 - 1);
            let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
            assert!(Dur::for_bytes(lo, bw) <= Dur::for_bytes(hi, bw));
        }
    }

    #[test]
    fn prop_for_bytes_antitone_in_bandwidth() {
        let mut r = SimRng::seed(0x71b0);
        for _ in 0..256 {
            let bytes = 1 + r.below((1 << 32) - 1);
            let bw1 = 1 + r.below(100_000_000_000 - 1);
            let bw2 = 1 + r.below(100_000_000_000 - 1);
            let (slow, fast) = if bw1 <= bw2 { (bw1, bw2) } else { (bw2, bw1) };
            assert!(Dur::for_bytes(bytes, fast) <= Dur::for_bytes(bytes, slow));
        }
    }
}
