//! Deterministic fault injection: time-ordered schedules of hardware faults.
//!
//! Robustness experiments drive the simulated machine through PCIe link
//! flaps, physical-function failures, and lost interrupts. All faults are
//! declared up front in a [`FaultPlan`] — a time-ordered list of
//! [`FaultEvent`]s installed at experiment build time — so a run is exactly
//! as deterministic with faults as without: same seed + same plan ⇒
//! identical event sequence and identical counters.
//!
//! The plan speaks in raw PF indices (`usize`) rather than `pcie::PfId`
//! because `simcore` sits below the device crates; the experiment layer maps
//! indices to concrete endpoints when it applies each event.

use crate::rng::SimRng;
use crate::time::{Dur, Time};

/// What goes wrong (or comes back) at a fault instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The PCIe link behind the PF drops entirely: every in-flight and
    /// future transaction on it is lost until the link recovers.
    LinkDown,
    /// The link retrains to `lanes` lanes at generation `gen` (3 or 4):
    /// DMA transparently slows down, nothing is lost.
    LinkDegrade {
        /// Post-retrain lane count (1, 2, 4, 8, 16).
        lanes: u8,
        /// Post-retrain PCIe generation: 3 or 4.
        gen: u8,
    },
    /// The link retrains back to its configured width and speed.
    LinkRecover,
    /// The physical function fails: its queues die, in-flight descriptors
    /// complete with error status, and flows must fail over to a surviving
    /// PF.
    PfFail,
    /// The physical function comes back after a function-level reset.
    PfRecover,
    /// One interrupt from this PF's queues is silently lost; the driver's
    /// watchdog must notice and recover.
    IrqLoss,
    /// NVMe media fault: the drive's flash array returns uncorrectable
    /// errors for the next `errors` commands. The host sees command
    /// timeouts and must retry with bounded exponential backoff. For this
    /// kind the `pf` index names a *drive*, not a NIC PF; NIC-only hosts
    /// absorb it as a no-op.
    MediaFault {
        /// Consecutive commands that fail before the media heals.
        errors: u8,
    },
    /// Surprise hot-removal: the endpoint vanishes from the fabric without
    /// warning. Its device epoch is retired — completions and interrupts
    /// stamped with the old epoch are *fenced* (counted, never delivered) —
    /// and the driver must quiesce, drain, and rebind onto a surviving PF
    /// (legacy NUDMA mode when only one remains).
    SurpriseRemove,
    /// The removed endpoint re-enumerates: slot power-up plus link retrain
    /// latency, then a fresh device epoch. The driver rebinds rings and
    /// reinstalls steering behind the same fence, restoring uniform
    /// IOctopus mode.
    Reenumerate,
}

/// One scheduled fault: `kind` applied to PF index `pf` at time `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: Time,
    /// Which physical function (raw index into the experiment's PF list).
    pub pf: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, time-ordered schedule of fault events.
///
/// Events inserted out of order are sorted on insertion (stable for equal
/// times: insertion order is preserved), so iteration via [`pop_due`]
/// (FaultPlan::pop_due) always yields events in firing order regardless of
/// how the plan was built.
///
/// # Example
/// ```
/// use simcore::{FaultKind, FaultPlan, Time};
///
/// let mut plan = FaultPlan::new();
/// plan.push(Time::from_ms(4), 0, FaultKind::PfFail);
/// plan.push(Time::from_ms(7), 0, FaultKind::PfRecover);
/// assert_eq!(plan.len(), 2);
/// assert_eq!(plan.next_at(), Some(Time::from_ms(4)));
/// let due = plan.pop_due(Time::from_ms(5));
/// assert_eq!(due.len(), 1);
/// assert_eq!(due[0].kind, FaultKind::PfFail);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// Creates an empty plan (no faults: the baseline healthy run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` on PF `pf` at `at`, keeping the plan time-sorted.
    ///
    /// # Panics
    /// Panics if events before `at` have already been popped — a plan is
    /// installed before the run starts, not mutated mid-flight.
    pub fn push(&mut self, at: Time, pf: usize, kind: FaultKind) {
        assert!(
            self.cursor == 0,
            "fault plans are fixed before the run starts"
        );
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, pf, kind });
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, at: Time, pf: usize, kind: FaultKind) -> Self {
        self.push(at, pf, kind);
        self
    }

    /// A PF outage window: `PfFail` at `fail_at`, `PfRecover` at
    /// `recover_at`.
    ///
    /// # Panics
    /// Panics if `recover_at <= fail_at`.
    pub fn pf_outage(pf: usize, fail_at: Time, recover_at: Time) -> Self {
        assert!(recover_at > fail_at, "recovery must follow the failure");
        Self::new()
            .with(fail_at, pf, FaultKind::PfFail)
            .with(recover_at, pf, FaultKind::PfRecover)
    }

    /// A link-quality dip: downtrain at `degrade_at`, retrain to full
    /// width/speed at `recover_at`.
    ///
    /// # Panics
    /// Panics if `recover_at <= degrade_at`.
    pub fn link_dip(pf: usize, degrade_at: Time, recover_at: Time, lanes: u8, gen: u8) -> Self {
        assert!(recover_at > degrade_at, "recovery must follow the degrade");
        Self::new()
            .with(degrade_at, pf, FaultKind::LinkDegrade { lanes, gen })
            .with(recover_at, pf, FaultKind::LinkRecover)
    }

    /// A randomized plan drawn from `rng`: `count` faults uniformly spread
    /// over `(0, horizon)`, each targeting a uniformly random PF in
    /// `0..pf_count` with a uniformly random kind. Deterministic for a given
    /// RNG state — used by soak tests to show no plan can panic the stack.
    ///
    /// # Panics
    /// Panics if `pf_count` is zero or `horizon` is zero.
    pub fn randomized(rng: &mut SimRng, horizon: Dur, pf_count: usize, count: usize) -> Self {
        assert!(pf_count > 0, "need at least one PF to target");
        assert!(horizon > Dur::ZERO, "horizon must be positive");
        let mut plan = Self::new();
        for _ in 0..count {
            let at = Time::ZERO + Dur::from_ps(1 + rng.below(horizon.as_ps().max(2) - 1));
            let pf = rng.below(pf_count as u64) as usize;
            let kind = match rng.below(7) {
                0 => FaultKind::LinkDown,
                1 => FaultKind::LinkDegrade {
                    lanes: *rng.pick(&[1u8, 2, 4, 8]),
                    gen: 3,
                },
                2 => FaultKind::LinkRecover,
                3 => FaultKind::PfFail,
                4 => FaultKind::PfRecover,
                5 => FaultKind::IrqLoss,
                _ => FaultKind::MediaFault {
                    errors: 1 + rng.below(3) as u8,
                },
            };
            plan.push(at, pf, kind);
        }
        plan
    }

    /// Total number of events in the plan (including already-popped ones).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan has no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events not yet popped.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// The firing time of the next un-popped event, if any. Event loops use
    /// this to schedule their next fault dispatch.
    pub fn next_at(&self) -> Option<Time> {
        self.events.get(self.cursor).map(|e| e.at)
    }

    /// Pops every event with `at <= now`, in firing order.
    pub fn pop_due(&mut self, now: Time) -> Vec<FaultEvent> {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].at <= now {
            self.cursor += 1;
        }
        self.events[start..self.cursor].to_vec()
    }

    /// All events, in firing order, without consuming them.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Rewinds the pop cursor so the same plan can drive a second run
    /// (determinism tests replay one plan twice).
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_time_order() {
        let mut p = FaultPlan::new();
        p.push(Time::from_ms(5), 0, FaultKind::LinkRecover);
        p.push(Time::from_ms(1), 1, FaultKind::LinkDown);
        p.push(Time::from_ms(3), 0, FaultKind::IrqLoss);
        let ats: Vec<_> = p.events().iter().map(|e| e.at).collect();
        assert_eq!(
            ats,
            vec![Time::from_ms(1), Time::from_ms(3), Time::from_ms(5)]
        );
    }

    #[test]
    fn equal_times_preserve_insertion_order() {
        let mut p = FaultPlan::new();
        p.push(Time::from_ms(2), 0, FaultKind::PfFail);
        p.push(Time::from_ms(2), 1, FaultKind::PfFail);
        assert_eq!(p.events()[0].pf, 0);
        assert_eq!(p.events()[1].pf, 1);
    }

    #[test]
    fn pop_due_consumes_in_order() {
        let mut p = FaultPlan::pf_outage(0, Time::from_ms(2), Time::from_ms(6));
        assert_eq!(p.remaining(), 2);
        assert!(p.pop_due(Time::from_ms(1)).is_empty());
        let due = p.pop_due(Time::from_ms(2));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].kind, FaultKind::PfFail);
        assert_eq!(p.next_at(), Some(Time::from_ms(6)));
        let due = p.pop_due(Time::from_ms(10));
        assert_eq!(due[0].kind, FaultKind::PfRecover);
        assert_eq!(p.remaining(), 0);
        assert_eq!(p.next_at(), None);
    }

    #[test]
    fn rewind_replays() {
        let mut p = FaultPlan::pf_outage(1, Time::from_ms(1), Time::from_ms(2));
        let first: Vec<_> = p.pop_due(Time::from_ms(9));
        p.rewind();
        let second: Vec<_> = p.pop_due(Time::from_ms(9));
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "fixed before the run")]
    fn push_after_pop_rejected() {
        let mut p = FaultPlan::pf_outage(0, Time::from_ms(1), Time::from_ms(2));
        p.pop_due(Time::from_ms(1));
        p.push(Time::from_ms(5), 0, FaultKind::IrqLoss);
    }

    #[test]
    fn randomized_is_deterministic_and_sorted() {
        let mut r1 = SimRng::seed(0xfa01);
        let mut r2 = SimRng::seed(0xfa01);
        let a = FaultPlan::randomized(&mut r1, Dur::from_ms(10), 2, 32);
        let b = FaultPlan::randomized(&mut r2, Dur::from_ms(10), 2, 32);
        assert_eq!(a.events(), b.events());
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.events().iter().all(|e| e.pf < 2));
    }

    #[test]
    fn overlapping_faults_on_same_pf_keep_insertion_order() {
        // Two outage windows on PF 0 that overlap (the second fail lands
        // while the first is still unrecovered) plus a link fault inside
        // the window: the plan must keep all of them, time-sorted, with
        // same-instant events in insertion order.
        let mut p = FaultPlan::new();
        p.push(Time::from_ms(1), 0, FaultKind::PfFail);
        p.push(Time::from_ms(3), 0, FaultKind::PfRecover);
        p.push(Time::from_ms(2), 0, FaultKind::PfFail); // overlaps the outage
        p.push(Time::from_ms(2), 0, FaultKind::LinkDown); // same instant, same PF
        assert_eq!(p.len(), 4);
        let due = p.pop_due(Time::from_ms(10));
        assert_eq!(due[0].kind, FaultKind::PfFail);
        assert_eq!(due[1].kind, FaultKind::PfFail);
        assert_eq!(due[2].kind, FaultKind::LinkDown);
        assert_eq!(due[3].kind, FaultKind::PfRecover);
    }

    #[test]
    fn zero_gap_fail_recover_pair_fires_in_order() {
        // Fail and recover at the *same instant*: both pop in one pop_due
        // call, fail first (FIFO on equal times), so the applied state is
        // "recovered" — a flap of zero duration, not a stuck-dead PF.
        let t = Time::from_ms(4);
        let mut p = FaultPlan::new()
            .with(t, 1, FaultKind::PfFail)
            .with(t, 1, FaultKind::PfRecover);
        let due = p.pop_due(t);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].kind, FaultKind::PfFail);
        assert_eq!(due[1].kind, FaultKind::PfRecover);
        assert_eq!(p.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "fixed before the run")]
    fn push_behind_the_cursor_rejected() {
        // The cursor has already passed 2 ms; pushing an event at 1 ms
        // would retroactively change history and is rejected outright.
        let mut p = FaultPlan::pf_outage(0, Time::from_ms(2), Time::from_ms(6));
        p.pop_due(Time::from_ms(3));
        p.push(Time::from_ms(1), 0, FaultKind::LinkDown);
    }

    #[test]
    fn rewind_reopens_the_plan_for_building() {
        let mut p = FaultPlan::pf_outage(0, Time::from_ms(1), Time::from_ms(2));
        p.pop_due(Time::from_ms(5));
        p.rewind();
        p.push(Time::from_ms(3), 0, FaultKind::IrqLoss);
        assert_eq!(p.len(), 3);
        assert_eq!(p.pop_due(Time::from_ms(5)).len(), 3);
    }

    #[test]
    fn randomized_reaches_media_faults() {
        let mut r = SimRng::seed(0xfa02);
        let p = FaultPlan::randomized(&mut r, Dur::from_ms(10), 2, 256);
        assert!(p
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::MediaFault { errors } if errors >= 1)));
    }

    #[test]
    fn link_dip_shape() {
        let p = FaultPlan::link_dip(0, Time::from_ms(1), Time::from_ms(2), 2, 3);
        assert_eq!(
            p.events()[0].kind,
            FaultKind::LinkDegrade { lanes: 2, gen: 3 }
        );
        assert_eq!(p.events()[1].kind, FaultKind::LinkRecover);
    }
}
