//! Bandwidth servers: shared conduits on which transfers serialize.
//!
//! Every shared physical resource in the simulated machine — a QPI/UPI link
//! direction, a DRAM channel group, a PCIe link direction, the Ethernet wire —
//! is modeled as a [`BwLink`]. A transfer of `n` bytes occupies the link for
//! `n / bandwidth` seconds starting no earlier than the link's current
//! *busy-until* horizon; the completion time additionally includes the link's
//! fixed propagation latency. Congestion (the paper's Figures 11, 12, and 15)
//! emerges naturally from the queueing delay at saturated links.

use crate::stats::RateMeter;
use crate::time::{Dur, Time};

/// A point-to-point bandwidth resource with store-and-forward queueing.
///
/// # Example
/// ```
/// use simcore::{Time, Dur, link::BwLink};
///
/// // 12.5 GB/s (= 100 Gb/s), no propagation delay.
/// let mut l = BwLink::new("qpi", 12_500_000_000, Dur::ZERO);
/// let t1 = l.reserve(Time::ZERO, 1250); // 100 ns of occupancy
/// let t2 = l.reserve(Time::ZERO, 1250); // queues behind the first transfer
/// assert_eq!(t1, Time::from_ns(100));
/// assert_eq!(t2, Time::from_ns(200));
/// ```
#[derive(Debug, Clone)]
pub struct BwLink {
    name: String,
    bytes_per_sec: u64,
    latency: Dur,
    busy_until: Time,
    meter: RateMeter,
}

impl BwLink {
    /// Creates a link with the given bandwidth (bytes/second) and fixed
    /// propagation latency.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(name: impl Into<String>, bytes_per_sec: u64, latency: Dur) -> Self {
        assert!(bytes_per_sec > 0, "link bandwidth must be positive");
        BwLink {
            name: name.into(),
            bytes_per_sec,
            latency,
            busy_until: Time::ZERO,
            meter: RateMeter::new(),
        }
    }

    /// Converts gigabits/second to bytes/second (convenience for configs).
    pub fn gbps(g: f64) -> u64 {
        (g * 1e9 / 8.0).round() as u64
    }

    /// The link's name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The link's configured bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// The link's fixed propagation latency.
    pub fn latency(&self) -> Dur {
        self.latency
    }

    /// Reserves the link for a `bytes`-sized transfer arriving at `now`.
    ///
    /// Returns the time at which the last byte *arrives at the far end*
    /// (serialization + queueing + propagation). Zero-byte reservations pay
    /// only the propagation latency.
    pub fn reserve(&mut self, now: Time, bytes: u64) -> Time {
        let start = now.max(self.busy_until);
        let xfer = Dur::for_bytes(bytes, self.bytes_per_sec);
        self.busy_until = start + xfer;
        self.meter.record(now, bytes);
        self.busy_until + self.latency
    }

    /// Like [`reserve`](Self::reserve) but does not consume bandwidth — used
    /// for probe traffic that rides on dedicated wires (e.g. doorbell writes
    /// whose bandwidth is negligible).
    pub fn delay_only(&self, _now: Time) -> Dur {
        self.latency
    }

    /// [`reserve`](Self::reserve) for an *idle* link with the serialization
    /// time already known (memoized fast path: skips the bytes→duration
    /// division). The caller must guarantee that the link is idle at `now`
    /// and that `xfer == Dur::for_bytes(bytes, self.bytes_per_sec())`; both
    /// are checked in debug builds, so any stale memo entry trips the test
    /// suite rather than silently diverging from [`reserve`].
    pub fn reserve_precomputed(&mut self, now: Time, bytes: u64, xfer: Dur) -> Time {
        debug_assert!(self.busy_until <= now, "link {} not idle", self.name);
        debug_assert_eq!(
            xfer,
            Dur::for_bytes(bytes, self.bytes_per_sec),
            "stale memoized serialization time on link {}",
            self.name
        );
        self.busy_until = now + xfer;
        self.meter.record(now, bytes);
        self.busy_until + self.latency
    }

    /// The queueing delay a transfer arriving `now` would currently suffer
    /// before its first byte goes out.
    pub fn queue_delay(&self, now: Time) -> Dur {
        self.busy_until.since(now)
    }

    /// Whether the link is occupied at `now`.
    pub fn is_busy(&self, now: Time) -> bool {
        self.busy_until > now
    }

    /// Total bytes ever reserved on this link.
    pub fn total_bytes(&self) -> u64 {
        self.meter.total()
    }

    /// Mean throughput in bytes/second over `[from, to]`, based on bytes
    /// recorded in that window.
    pub fn mean_rate(&self, from: Time, to: Time) -> f64 {
        self.meter.rate(from, to)
    }

    /// Resets the traffic meter (e.g. at the start of a measurement window).
    /// The busy-until horizon is preserved — in-flight transfers still occupy
    /// the link.
    pub fn reset_meter(&mut self) {
        self.meter = RateMeter::new();
    }

    /// Changes the link's bandwidth mid-run (e.g. a PCIe link retraining to
    /// fewer lanes). Transfers already reserved keep their committed
    /// completion times; only future reservations see the new rate.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is zero.
    pub fn set_bytes_per_sec(&mut self, bytes_per_sec: u64) {
        assert!(bytes_per_sec > 0, "link bandwidth must be positive");
        self.bytes_per_sec = bytes_per_sec;
    }

    /// Blocks the link until at least `t` (e.g. retraining downtime):
    /// transfers arriving earlier queue behind the stall. Never moves the
    /// busy horizon backwards.
    pub fn stall_until(&mut self, t: Time) {
        self.busy_until = self.busy_until.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    fn link_100gbe() -> BwLink {
        BwLink::new("t", BwLink::gbps(100.0), Dur::ZERO)
    }

    #[test]
    fn gbps_conversion() {
        assert_eq!(BwLink::gbps(100.0), 12_500_000_000);
        assert_eq!(BwLink::gbps(8.0), 1_000_000_000);
    }

    #[test]
    fn serialization_delay() {
        let mut l = link_100gbe();
        // 1500 B at 12.5 GB/s = 120 ns.
        assert_eq!(l.reserve(Time::ZERO, 1500), Time::from_ns(120));
    }

    #[test]
    fn queueing_serializes_transfers() {
        let mut l = link_100gbe();
        let a = l.reserve(Time::ZERO, 1250);
        let b = l.reserve(Time::ZERO, 1250);
        assert_eq!(b - a, Dur::from_ns(100));
    }

    #[test]
    fn idle_gap_not_reclaimed() {
        let mut l = link_100gbe();
        l.reserve(Time::ZERO, 1250); // busy until 100 ns
                                     // Arriving at 500 ns: link is idle again; starts immediately.
        let done = l.reserve(Time::from_ns(500), 1250);
        assert_eq!(done, Time::from_ns(600));
    }

    #[test]
    fn propagation_latency_added_once() {
        let mut l = BwLink::new("lat", BwLink::gbps(100.0), Dur::from_ns(500));
        let done = l.reserve(Time::ZERO, 1250);
        assert_eq!(done, Time::from_ns(600)); // 100 xfer + 500 prop
    }

    #[test]
    fn zero_bytes_pays_latency_only() {
        let mut l = BwLink::new("lat", BwLink::gbps(100.0), Dur::from_ns(500));
        assert_eq!(l.reserve(Time::ZERO, 0), Time::from_ns(500));
    }

    #[test]
    fn meters_accumulate() {
        let mut l = link_100gbe();
        l.reserve(Time::ZERO, 1000);
        l.reserve(Time::from_ns(50), 2000);
        assert_eq!(l.total_bytes(), 3000);
        l.reset_meter();
        assert_eq!(l.total_bytes(), 0);
    }

    #[test]
    fn mean_rate_over_window() {
        let mut l = link_100gbe();
        // 1 MB over 1 ms = 1 GB/s.
        l.reserve(Time::ZERO, 1_000_000);
        let rate = l.mean_rate(Time::ZERO, Time::from_ms(1));
        assert!((rate - 1e9).abs() < 1.0, "rate = {rate}");
    }

    #[test]
    fn queue_delay_reflects_backlog() {
        let mut l = link_100gbe();
        l.reserve(Time::ZERO, 12_500); // 1 us of occupancy
        assert_eq!(l.queue_delay(Time::ZERO), Dur::from_us(1));
        assert_eq!(l.queue_delay(Time::from_us(2)), Dur::ZERO);
        assert!(l.is_busy(Time::ZERO));
        assert!(!l.is_busy(Time::from_us(2)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = BwLink::new("bad", 0, Dur::ZERO);
    }

    #[test]
    fn downtrain_slows_future_transfers_only() {
        let mut l = link_100gbe();
        let before = l.reserve(Time::ZERO, 1250); // 100 ns at full rate
        l.set_bytes_per_sec(BwLink::gbps(25.0));
        // Same size at quarter rate takes 4x the serialization time,
        // queued behind the committed transfer.
        let after = l.reserve(Time::ZERO, 1250);
        assert_eq!(before, Time::from_ns(100));
        assert_eq!(after, Time::from_ns(500));
    }

    #[test]
    fn stall_blocks_transfers_until_deadline() {
        let mut l = link_100gbe();
        l.stall_until(Time::from_us(5));
        let done = l.reserve(Time::ZERO, 1250);
        assert_eq!(done, Time::from_us(5) + Dur::from_ns(100));
        // Stalling backwards is a no-op.
        l.stall_until(Time::ZERO);
        assert!(l.is_busy(Time::from_us(5)));
    }

    #[test]
    fn prop_completions_monotone() {
        // Back-to-back reservations at t=0 must complete in order.
        let mut r = SimRng::seed(0x1a1);
        for _ in 0..32 {
            let n = 1 + r.below(49) as usize;
            let mut l = link_100gbe();
            let mut last = Time::ZERO;
            for _ in 0..n {
                let done = l.reserve(Time::ZERO, 1 + r.below(999_999));
                assert!(done >= last);
                last = done;
            }
        }
    }

    #[test]
    fn prop_total_time_is_sum() {
        // With all arrivals at t=0, the final completion equals the sum of
        // individual serialization delays (work-conserving server).
        let mut r = SimRng::seed(0x1a2);
        for _ in 0..32 {
            let n = 1 + r.below(49) as usize;
            let mut l = link_100gbe();
            let mut expect = Dur::ZERO;
            let mut last = Time::ZERO;
            for _ in 0..n {
                let s = 1 + r.below(999_999);
                last = l.reserve(Time::ZERO, s);
                expect += Dur::for_bytes(s, BwLink::gbps(100.0));
            }
            assert_eq!(last - Time::ZERO, expect);
        }
    }
}
