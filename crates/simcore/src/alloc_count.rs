//! A counting global allocator for allocation-budget enforcement.
//!
//! The event hot path is designed to be allocation-free in steady state:
//! out-buffers, dispatch batches, and TX scratch outcomes are long-lived and
//! recycled, so dispatching an event performs no heap allocation once
//! capacities have warmed up. [`CountingAlloc`] makes that claim measurable —
//! harnesses install it as their `#[global_allocator]` and read
//! [`allocation_count`] deltas around a workload:
//!
//! ```ignore
//! #[global_allocator]
//! static A: simcore::alloc_count::CountingAlloc = simcore::alloc_count::CountingAlloc;
//!
//! let before = simcore::alloc_count::allocation_count();
//! run_steady_state();
//! assert_eq!(simcore::alloc_count::allocation_count() - before, 0);
//! ```
//!
//! The counter tallies `alloc`, `alloc_zeroed`, and `realloc` calls (a
//! growing `Vec` is an allocation even when it reuses no new pointer);
//! `dealloc` is free. When no harness installs the type, this module is
//! inert — the counter just never moves.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static TRAP: AtomicBool = AtomicBool::new(false);
static TRAP_BUDGET: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static IN_TRAP: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Arms (or disarms) backtrace printing for the next `budget` allocations —
/// a diagnostic for allocation-regression failures: rerun the failing
/// window with the trap armed and the offending call sites print to stderr.
pub fn trap_allocations(on: bool, budget: u64) {
    TRAP_BUDGET.store(budget, Ordering::Relaxed);
    TRAP.store(on, Ordering::Relaxed);
}

fn count_one() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    if TRAP.load(Ordering::Relaxed) {
        IN_TRAP.with(|g| {
            // Backtrace capture allocates; the guard keeps it re-entrancy-safe.
            let budget = TRAP_BUDGET.load(Ordering::Relaxed);
            if !g.get() && budget > 0 {
                TRAP_BUDGET.store(budget - 1, Ordering::Relaxed);
                g.set(true);
                eprintln!(
                    "[alloc_count trap]\n{}",
                    std::backtrace::Backtrace::force_capture()
                );
                g.set(false);
            }
        });
    }
}

/// Pass-through [`System`] allocator that counts allocation events.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: defers all allocation to `System`; the counter bump has no effect
// on layout or pointer validity, and `count_one` never re-enters the
// allocator unguarded (the trap path's thread-local gate breaks recursion).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        // SAFETY: `layout` is the caller's, forwarded unmodified; our caller
        // upholds `GlobalAlloc::alloc`'s contract (non-zero size).
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        // SAFETY: as in `alloc` — the caller's layout contract passes through.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        // SAFETY: `ptr`/`layout` came from this allocator, which is a pure
        // pass-through to `System`, so they satisfy `System.realloc`'s
        // currently-allocated-with-this-layout requirement; `new_size` is
        // forwarded under the caller's contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by the pass-through `alloc` family above
        // with this same `layout`, per the caller's `dealloc` contract.
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Total allocation events since process start (0 unless a harness installed
/// [`CountingAlloc`] as its global allocator).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}
