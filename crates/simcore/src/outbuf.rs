//! A long-lived, recycled output buffer for allocation-free hot paths.
//!
//! The simulation's event dispatch used to move a freshly allocated
//! `Vec` of side effects out of every callback. [`OutBuf`] inverts that
//! convention: the caller owns one buffer for the lifetime of the run and
//! threads it as `&mut` through every producer, which *appends*. Once the
//! buffer has grown to the high-water mark of the workload, steady-state
//! dispatch never touches the heap again.
//!
//! Producers must never clear the buffer themselves — appending is what
//! lets a driver accumulate the side effects of several calls (e.g. a
//! batch of packet arrivals) and drain them in one pass, in exactly the
//! order they were produced.

/// A recycled append-only buffer of out-events.
///
/// Dereferences to a slice for inspection; [`drain`](OutBuf::drain)
/// empties it while keeping its capacity for the next round.
#[derive(Debug, Clone)]
pub struct OutBuf<T> {
    items: Vec<T>,
}

impl<T> Default for OutBuf<T> {
    fn default() -> Self {
        OutBuf { items: Vec::new() }
    }
}

impl<T> OutBuf<T> {
    /// An empty buffer. Capacity grows on first use and is then retained.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with room for `n` items before any reallocation.
    pub fn with_capacity(n: usize) -> Self {
        OutBuf {
            items: Vec::with_capacity(n),
        }
    }

    /// Appends one item.
    pub fn push(&mut self, item: T) {
        self.items.push(item);
    }

    /// Empties the buffer, yielding items in insertion order. Capacity is
    /// retained, so a steady-state producer/drain cycle never reallocates.
    pub fn drain(&mut self) -> std::vec::Drain<'_, T> {
        self.items.drain(..)
    }

    /// Discards the contents without yielding them (capacity retained).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Current contents as a slice (also available via deref).
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }
}

impl<T> std::ops::Deref for OutBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.items
    }
}

impl<'a, T> IntoIterator for &'a OutBuf<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_preserves_order_and_capacity() {
        let mut b = OutBuf::new();
        b.push(1);
        b.push(2);
        b.push(3);
        assert_eq!(b.len(), 3);
        let cap_before = b.items.capacity();
        let drained: Vec<i32> = b.drain().collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert!(b.is_empty());
        assert_eq!(b.items.capacity(), cap_before);
    }

    #[test]
    fn deref_gives_slice_access() {
        let mut b = OutBuf::with_capacity(2);
        b.push(10);
        b.push(20);
        assert_eq!(b[0], 10);
        assert_eq!(b.iter().copied().max(), Some(20));
        b.clear();
        assert!(b.as_slice().is_empty());
    }
}
