//! System-wide invariant audit: conservation checks with a shared report.
//!
//! Chaos campaigns (`simcore::campaign`) throw thousands of generated fault
//! schedules at the stack; passing them means more than "did not panic". Each
//! substrate owns conservation invariants — NIC buffers are neither leaked
//! nor double-freed, every PCIe transaction is accounted as completed,
//! dropped, or rejected, event time never runs backwards — and this module
//! provides the common vocabulary for checking them: an [`Audit`] collector
//! that subsystems append [`Violation`]s to.
//!
//! The checkers themselves live next to the state they inspect (e.g.
//! `PcieFabric::audit`, `Nic::audit`, `Host::audit` in the device crates);
//! they are cheap enough to run per-step in debug builds and are always run
//! at quiesce points (end of a schedule) in release campaigns.
//!
//! # Example
//! ```
//! use simcore::audit::Audit;
//!
//! let mut a = Audit::new();
//! a.check("pool", "conservation", 2 + 2 == 4, || "unreachable".into());
//! a.check("ring", "occupancy", false, || "3 descriptors missing".into());
//! assert_eq!(a.checks(), 2);
//! assert_eq!(a.violations().len(), 1);
//! assert!(!a.ok());
//! ```

use std::fmt;

/// One failed invariant check: which subsystem, which invariant, and a
/// human-readable account of the mismatch (actual vs. expected numbers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The subsystem that owns the invariant (`"pcie"`, `"nic"`, …).
    pub subsystem: &'static str,
    /// Short invariant name (`"txn-conservation"`, `"rx-buf-conservation"`).
    pub check: &'static str,
    /// The mismatch, with enough numbers to debug from the report alone.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}/{}] {}", self.subsystem, self.check, self.detail)
    }
}

/// Collector for invariant checks: counts every check performed and records
/// each violation. One `Audit` typically spans one schedule run; campaign
/// harnesses aggregate many.
#[derive(Debug, Clone, Default)]
pub struct Audit {
    violations: Vec<Violation>,
    checks: u64,
}

impl Audit {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one invariant check. `detail` is only evaluated on failure,
    /// so hot per-step audits pay nothing for the passing case.
    pub fn check(
        &mut self,
        subsystem: &'static str,
        check: &'static str,
        ok: bool,
        detail: impl FnOnce() -> String,
    ) {
        self.checks += 1;
        if !ok {
            self.violations.push(Violation {
                subsystem,
                check,
                detail: detail(),
            });
        }
    }

    /// Total checks performed (passing and failing).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Every violation recorded so far, in discovery order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether every check so far passed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Folds another report into this one (campaign aggregation).
    pub fn merge(&mut self, other: Audit) {
        self.checks += other.checks;
        self.violations.extend(other.violations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_checks_leave_no_violations() {
        let mut a = Audit::new();
        a.check("x", "y", true, || unreachable!("lazy detail"));
        assert!(a.ok());
        assert_eq!(a.checks(), 1);
    }

    #[test]
    fn failures_record_subsystem_and_detail() {
        let mut a = Audit::new();
        a.check("nic", "rx-buf-conservation", false, || "511 != 512".into());
        assert!(!a.ok());
        let v = &a.violations()[0];
        assert_eq!(v.subsystem, "nic");
        assert_eq!(format!("{v}"), "[nic/rx-buf-conservation] 511 != 512");
    }

    #[test]
    fn merge_accumulates_both_counts() {
        let mut a = Audit::new();
        a.check("a", "c1", true, String::new);
        let mut b = Audit::new();
        b.check("b", "c2", false, || "boom".into());
        a.merge(b);
        assert_eq!(a.checks(), 2);
        assert_eq!(a.violations().len(), 1);
    }
}
