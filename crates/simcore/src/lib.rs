//! Discrete-event simulation core for the IOctopus reproduction.
//!
//! This crate is domain-agnostic: it knows nothing about NUMA, PCIe, or NICs.
//! It provides the four primitives every substrate in the workspace builds on:
//!
//! * [`Time`] / [`Dur`] — integer **picosecond** simulated time, so that
//!   bandwidth arithmetic (bytes ↔ time on multi-gigabit links) is exact and
//!   runs are bit-for-bit deterministic.
//! * [`EventQueue`] — a time-ordered queue with stable FIFO tie-breaking,
//!   generic over the event payload type.
//! * [`BwLink`] — a *bandwidth server*: a shared conduit (QPI link direction,
//!   DRAM channel, PCIe link, Ethernet wire) on which transfers serialize.
//!   Congestion emerges from queueing at these servers.
//! * [`stats`] — counters, rate meters, histograms and time-series samplers
//!   used to produce the paper's figures.
//!
//! # Example
//!
//! ```
//! use simcore::{Time, Dur, link::BwLink};
//!
//! // A 100 Gb/s wire with 500 ns propagation delay.
//! let mut wire = BwLink::new("wire", BwLink::gbps(100.0), Dur::from_ns(500));
//! let done = wire.reserve(Time::ZERO, 1500);
//! assert!(done > Time::ZERO + Dur::from_ns(500));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc_count;
pub mod audit;
pub mod campaign;
pub mod faults;
pub mod hash;
pub mod link;
pub mod outbuf;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use audit::{Audit, Violation};
pub use campaign::CampaignConfig;
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use link::BwLink;
pub use outbuf::OutBuf;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{Dur, Time};
