//! A minimal scoped thread pool for embarrassingly parallel simulation
//! sweeps.
//!
//! Every figure of the evaluation is a sweep over independent points
//! (message sizes × placements × flow counts), and each point is a fully
//! deterministic, self-contained simulation: it shares no mutable state
//! with any other point. That makes fan-out trivially safe — workers claim
//! points from an atomic counter, run them, and write results into
//! per-point slots, so the returned `Vec` is always in **input order**
//! regardless of which worker finished first or how the OS scheduled them.
//!
//! The workspace is std-only by design; this is `std::thread::scope` plus
//! an atomic work index — no channels, no dependency.
//!
//! # Example
//! ```
//! use simcore::pool;
//!
//! let squares = pool::scoped_map(vec![1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count (useful for pinning
/// benchmarks, and for forcing serial execution with `IOCTOPUS_THREADS=1`).
pub const THREADS_ENV: &str = "IOCTOPUS_THREADS";

/// Number of workers a sweep of `jobs` independent points should use:
/// `IOCTOPUS_THREADS` if set, otherwise the machine's available
/// parallelism, never more than `jobs` and never less than 1.
pub fn worker_count(jobs: usize) -> usize {
    // simlint: allow(wallclock) — explicit operator override; worker count affects wall time only, results stay input-order deterministic (tests/parallel_sweep.rs)
    let configured = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0);
    // simlint: allow(wallclock) — host parallelism picks the worker count, never the results; serial-vs-parallel bit-identity is gated dynamically
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    configured.unwrap_or(hw).min(jobs.max(1))
}

/// Applies `f` to every item on a scoped worker pool, returning results in
/// input order.
///
/// Falls back to a plain serial map when only one worker is warranted, so
/// `IOCTOPUS_THREADS=1 <bench>` is *exactly* the serial run. Workers pull
/// the next unclaimed index from a shared atomic, so long and short points
/// load-balance naturally.
///
/// # Panics
/// Propagates a panic from any worker (the scope joins all threads first).
pub fn scoped_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // One slot per point: the input moves out through the Mutex, the result
    // moves back in. Slot `i` only ever belongs to the worker that claimed
    // index `i`, so there is no contention beyond the claim counter itself.
    let slots: Vec<Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|t| Mutex::new((Some(t), None)))
        .collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let next_ref = &next;
    let slots_ref = &slots;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots_ref[i]
                    .lock()
                    .expect("slot poisoned")
                    .0
                    .take()
                    .expect("index claimed once");
                let result = f(item);
                slots_ref[i].lock().expect("slot poisoned").1 = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("workers joined")
                .1
                .expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        // Make later items finish first by sleeping on the early ones.
        let out = scoped_map((0..32u64).collect(), |i| {
            if i < 4 {
                // simlint: allow(wallclock) — test intentionally delays early items to prove the join restores input order
                std::thread::sleep(std::time::Duration::from_millis(10 - 2 * i));
            }
            i * 100
        });
        assert_eq!(out, (0..32u64).map(|i| i * 100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(scoped_map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(scoped_map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1) == 1);
        assert!(worker_count(1000) >= 1);
    }

    #[test]
    fn matches_serial_map() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(0x9e37)).collect();
        let parallel = scoped_map(items, |x| x.wrapping_mul(0x9e37));
        assert_eq!(serial, parallel);
    }
}
