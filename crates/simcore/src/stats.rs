//! Measurement primitives: counters, rate meters, histograms, and
//! time-series samplers.
//!
//! The experiment harnesses use these to produce exactly the quantities the
//! paper plots: throughput in Gb/s, memory bandwidth in Gb/s or GB/s, CPU
//! utilization in cores, latency averages/percentiles, and per-PF throughput
//! time series (Figure 14).

use crate::time::{Dur, Time};

/// A monotonically increasing byte/event counter with a start timestamp, from
/// which mean rates over a window can be computed.
#[derive(Debug, Clone, Default)]
pub struct RateMeter {
    total: u64,
    events: u64,
}

impl RateMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `amount` units observed at `_now`.
    pub fn record(&mut self, _now: Time, amount: u64) {
        self.total += amount;
        self.events += 1;
    }

    /// Total units recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of record events.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Mean rate in units/second over the window `[from, to]`.
    ///
    /// Returns 0.0 for an empty or inverted window.
    pub fn rate(&self, from: Time, to: Time) -> f64 {
        let secs = to.since(from).as_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.total as f64 / secs
        }
    }
}

/// Converts a byte rate (bytes/second) to gigabits/second as plotted in the
/// paper's throughput figures.
pub fn bytes_per_sec_to_gbps(rate: f64) -> f64 {
    rate * 8.0 / 1e9
}

/// Converts a byte rate (bytes/second) to gigabytes/second (Figure 10's
/// memory-bandwidth axis).
pub fn bytes_per_sec_to_gigabytes(rate: f64) -> f64 {
    rate / 1e9
}

/// A latency histogram backed by the raw samples.
///
/// Experiments collect at most tens of thousands of round-trip samples, so
/// storing them exactly (rather than bucketing) is cheap and gives exact
/// percentiles.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<Dur>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: Dur) {
        self.samples.push(d);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<Dur> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|d| d.as_ps() as u128).sum();
        Some(Dur::from_ps((sum / self.samples.len() as u128) as u64))
    }

    /// The `p`-th percentile (0.0 ≤ p ≤ 100.0) by nearest-rank, or `None` if
    /// empty.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<Dur> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        Some(self.samples[rank.min(n) - 1])
    }

    /// Minimum sample, or `None` if empty.
    pub fn min(&self) -> Option<Dur> {
        self.samples.iter().copied().min()
    }

    /// Maximum sample, or `None` if empty.
    pub fn max(&self) -> Option<Dur> {
        self.samples.iter().copied().max()
    }
}

/// A time series of `(instant, value)` samples — e.g. per-PF throughput
/// sampled every 50 ms for Figure 14.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(Time, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Samples should be appended in time order.
    pub fn push(&mut self, at: Time, value: f64) {
        self.points.push((at, value));
    }

    /// The recorded samples, in insertion order.
    pub fn points(&self) -> &[(Time, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The mean of values whose timestamps fall in `[from, to)`.
    pub fn mean_in(&self, from: Time, to: Time) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Tracks how busy a core (or any binary-occupancy resource) was, yielding
/// utilization in fractional "cores" like the paper's CPU-utilization panels.
#[derive(Debug, Clone, Default)]
pub struct BusyMeter {
    busy: Dur,
}

impl BusyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the resource was busy for `d`.
    pub fn add_busy(&mut self, d: Dur) {
        self.busy += d;
    }

    /// Total accumulated busy time.
    pub fn busy_time(&self) -> Dur {
        self.busy
    }

    /// Utilization in `[0, ..]` over `[from, to]` — can exceed 1.0 when used
    /// to aggregate several cores.
    pub fn utilization(&self, from: Time, to: Time) -> f64 {
        let span = to.since(from).as_secs();
        if span <= 0.0 {
            0.0
        } else {
            self.busy.as_secs() / span
        }
    }

    /// Resets accumulated busy time.
    pub fn reset(&mut self) {
        self.busy = Dur::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn rate_meter_basic() {
        let mut m = RateMeter::new();
        m.record(Time::ZERO, 500);
        m.record(Time::from_ms(1), 500);
        assert_eq!(m.total(), 1000);
        assert_eq!(m.events(), 2);
        // 1000 bytes over 1 ms = 1 MB/s.
        assert!((m.rate(Time::ZERO, Time::from_ms(1)) - 1e6).abs() < 1.0);
    }

    #[test]
    fn rate_meter_empty_window() {
        let m = RateMeter::new();
        assert_eq!(m.rate(Time::from_ms(2), Time::from_ms(1)), 0.0);
        assert_eq!(m.rate(Time::ZERO, Time::ZERO), 0.0);
    }

    #[test]
    fn unit_conversions() {
        assert!((bytes_per_sec_to_gbps(12_500_000_000.0) - 100.0).abs() < 1e-9);
        assert!((bytes_per_sec_to_gigabytes(2e9) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_mean_and_percentiles() {
        let mut h = Histogram::new();
        for ns in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(Dur::from_ns(ns));
        }
        assert_eq!(h.mean().unwrap(), Dur::from_ns(55));
        assert_eq!(h.percentile(50.0).unwrap(), Dur::from_ns(50));
        assert_eq!(h.percentile(90.0).unwrap(), Dur::from_ns(90));
        assert_eq!(h.percentile(99.0).unwrap(), Dur::from_ns(100));
        assert_eq!(h.percentile(0.0).unwrap(), Dur::from_ns(10));
        assert_eq!(h.min().unwrap(), Dur::from_ns(10));
        assert_eq!(h.max().unwrap(), Dur::from_ns(100));
    }

    #[test]
    fn histogram_empty() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
    }

    #[test]
    #[should_panic(expected = "[0,100]")]
    fn histogram_rejects_bad_percentile() {
        let mut h = Histogram::new();
        h.record(Dur::from_ns(1));
        let _ = h.percentile(150.0);
    }

    #[test]
    fn time_series_window_mean() {
        let mut ts = TimeSeries::new();
        ts.push(Time::from_ms(1), 10.0);
        ts.push(Time::from_ms(2), 20.0);
        ts.push(Time::from_ms(3), 30.0);
        assert_eq!(ts.mean_in(Time::from_ms(1), Time::from_ms(3)), Some(15.0));
        assert_eq!(ts.mean_in(Time::from_ms(5), Time::from_ms(9)), None);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn busy_meter_utilization() {
        let mut b = BusyMeter::new();
        b.add_busy(Dur::from_ms(5));
        let u = b.utilization(Time::ZERO, Time::from_ms(10));
        assert!((u - 0.5).abs() < 1e-12);
        b.reset();
        assert_eq!(b.busy_time(), Dur::ZERO);
    }

    #[test]
    fn prop_percentile_monotone() {
        let mut r = SimRng::seed(0x57a7);
        for _ in 0..64 {
            let n = 1 + r.below(99) as usize;
            let mut h = Histogram::new();
            for _ in 0..n {
                h.record(Dur::from_ns(1 + r.below(999_999)));
            }
            let p1 = r.unit() * 100.0;
            let p2 = r.unit() * 100.0;
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            assert!(h.percentile(lo).unwrap() <= h.percentile(hi).unwrap());
        }
    }

    #[test]
    fn prop_mean_within_min_max() {
        let mut r = SimRng::seed(0x57a8);
        for _ in 0..64 {
            let n = 1 + r.below(99) as usize;
            let mut h = Histogram::new();
            for _ in 0..n {
                h.record(Dur::from_ns(1 + r.below(999_999)));
            }
            let mean = h.mean().unwrap();
            assert!(mean >= h.min().unwrap());
            assert!(mean <= h.max().unwrap());
        }
    }
}
