//! Time-ordered event queue with stable FIFO tie-breaking.
//!
//! Two implementations live here:
//!
//! * [`EventQueue`] — the production queue, a *calendar queue* (time-wheel
//!   of buckets plus a sorted overflow list). Discrete-event hot loops are
//!   dominated by `push`/`pop`; a binary heap pays an `O(log n)` chain of
//!   comparisons per operation, whereas the calendar queue's bucket index
//!   arithmetic makes both operations amortized `O(1)` when the wheel is
//!   sized to the event population (it re-sizes itself as the population
//!   grows).
//! * [`HeapEventQueue`] — the original `BinaryHeap`-based queue, kept as the
//!   differential-test oracle. Both queues order pops by the total order
//!   `(time, push sequence)`, so for any push/pop script their outputs are
//!   bit-identical; randomized tests below enforce exactly that.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::audit::Audit;
use crate::time::Time;

/// A pending event: fires at `at`, carrying payload `E`.
#[derive(Debug, Clone)]
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    /// The total order every queue implementation pops in: time, then
    /// push sequence. This is a *total* order (seq is unique), which is
    /// what makes the calendar queue's pop sequence provably identical to
    /// the heap's regardless of internal layout.
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // entry is popped first.
        other.key().cmp(&self.key())
    }
}

/// Initial bucket count (power of two).
const INITIAL_BUCKETS: usize = 64;
/// Wheel growth cap: beyond this, buckets stop doubling and simply hold
/// more entries each (still sorted, still correct).
const MAX_BUCKETS: usize = 8192;
/// Initial bucket width exponent: 2^14 ps ≈ 16 ns per bucket, a reasonable
/// starting grain for the ns-scale events the substrates schedule. Resizes
/// re-estimate the width from the live population.
const INITIAL_SHIFT: u32 = 14;

/// A discrete-event queue: events are popped in time order, and events
/// scheduled for the same instant are popped in the order they were pushed.
///
/// Determinism matters: the whole simulation must replay identically for a
/// given seed, so ties are broken by a monotonically increasing sequence
/// number rather than by internal layout.
///
/// Internally this is a calendar queue: a ring of `2^k`-picosecond-wide
/// buckets (each a `VecDeque` sorted ascending by `(time, seq)`) covering
/// one "rotation" of simulated time ahead of the cursor, plus a sorted
/// overflow list for events beyond the rotation. The cursor always rests on
/// the slot of the earliest pending event, so `peek_time` is O(1) and `pop`
/// is O(1) plus the (amortized constant) cost of walking empty slots.
///
/// # Example
/// ```
/// use simcore::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(20), "b");
/// q.push(Time::from_ns(10), "a");
/// q.push(Time::from_ns(20), "c");
/// assert_eq!(q.pop(), Some((Time::from_ns(10), "a")));
/// assert_eq!(q.pop(), Some((Time::from_ns(20), "b")));
/// assert_eq!(q.pop(), Some((Time::from_ns(20), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Ring of buckets, each sorted ascending by `(at, seq)`.
    buckets: Vec<VecDeque<Entry<E>>>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: usize,
    /// Bucket width is `1 << shift` picoseconds.
    shift: u32,
    /// Absolute slot (`at.as_ps() >> shift`) the cursor rests on. Invariant
    /// after every mutation: if the queue is non-empty, the wheel is
    /// non-empty and `buckets[cur_slot & mask]`'s front entry has slot
    /// `cur_slot` and is the global minimum.
    cur_slot: u64,
    /// Entries resident in the wheel.
    wheel_len: usize,
    /// Entries beyond the wheel's current rotation, sorted ascending by
    /// `(at, seq)` (front = earliest).
    overflow: VecDeque<Entry<E>>,
    next_seq: u64,
    popped: u64,
    /// Time of the most recent pop, for monotonicity auditing.
    last_pop: Option<Time>,
    /// Pops whose time preceded the previous pop's. A well-behaved
    /// simulation never schedules behind its own clock, so this stays 0;
    /// the audit layer flags any other value.
    time_regressions: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| VecDeque::new()).collect(),
            mask: INITIAL_BUCKETS - 1,
            shift: INITIAL_SHIFT,
            cur_slot: 0,
            wheel_len: 0,
            overflow: VecDeque::new(),
            next_seq: 0,
            popped: 0,
            last_pop: None,
            time_regressions: 0,
        }
    }

    #[inline]
    fn slot(&self, at: Time) -> u64 {
        at.as_ps() >> self.shift
    }

    /// Whether `slot` falls within the wheel's current rotation.
    #[inline]
    fn in_wheel(&self, slot: u64) -> bool {
        slot < self.cur_slot + self.buckets.len() as u64
    }

    /// Inserts an entry into a sorted `VecDeque` (ascending `(at, seq)`),
    /// with an O(1) fast path for the overwhelmingly common append case
    /// (events are mostly generated in nondecreasing time order).
    fn sorted_insert(dst: &mut VecDeque<Entry<E>>, e: Entry<E>) {
        match dst.back() {
            Some(b) if b.key() > e.key() => {
                let pos = dst.partition_point(|x| x.key() < e.key());
                dst.insert(pos, e);
            }
            _ => dst.push_back(e),
        }
    }

    /// Places an entry into its wheel bucket or the overflow list. The
    /// caller is responsible for cursor positioning.
    fn place(&mut self, e: Entry<E>) {
        let s = self.slot(e.at);
        if self.in_wheel(s) {
            Self::sorted_insert(&mut self.buckets[(s & self.mask as u64) as usize], e);
            self.wheel_len += 1;
        } else {
            Self::sorted_insert(&mut self.overflow, e);
        }
    }

    /// Moves overflow entries that now fall inside the rotation into their
    /// buckets.
    fn drain_overflow(&mut self) {
        while let Some(front) = self.overflow.front() {
            let s = self.slot(front.at);
            if !self.in_wheel(s) {
                break;
            }
            let e = self.overflow.pop_front().expect("front exists");
            Self::sorted_insert(&mut self.buckets[(s & self.mask as u64) as usize], e);
            self.wheel_len += 1;
        }
    }

    /// The slot of the earliest entry anywhere in the queue. Only called on
    /// a non-empty queue.
    fn min_slot(&self) -> u64 {
        let mut best: Option<(Time, u64)> = self.overflow.front().map(Entry::key);
        for b in &self.buckets {
            if let Some(front) = b.front() {
                let k = front.key();
                if best.map(|m| k < m).unwrap_or(true) {
                    best = Some(k);
                }
            }
        }
        self.slot(best.expect("queue is non-empty").0)
    }

    /// Advances the cursor to the slot of the global minimum entry,
    /// restoring the peek/pop invariant. Called after any mutation that can
    /// leave the cursor on an empty slot.
    fn settle(&mut self) {
        if self.wheel_len == 0 {
            if self.overflow.is_empty() {
                return; // queue empty; cursor position is irrelevant
            }
            self.cur_slot = self.slot(self.overflow.front().expect("non-empty").at);
        }
        let mut scanned = 0usize;
        loop {
            self.drain_overflow();
            let b = &self.buckets[(self.cur_slot & self.mask as u64) as usize];
            if let Some(front) = b.front() {
                if self.slot(front.at) == self.cur_slot {
                    return;
                }
            }
            self.cur_slot += 1;
            scanned += 1;
            // Sparse population: rather than crawling slot by slot, jump
            // straight to the earliest entry after one fruitless rotation.
            if scanned > self.buckets.len() {
                self.cur_slot = self.min_slot();
                scanned = 0;
            }
        }
    }

    /// Doubles the wheel (up to [`MAX_BUCKETS`]) and re-estimates the bucket
    /// width from the live population, then re-distributes every entry.
    fn rebuild(&mut self) {
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.len());
        for b in &mut self.buckets {
            all.extend(b.drain(..));
        }
        all.extend(self.overflow.drain(..));
        self.wheel_len = 0;
        if all.is_empty() {
            return;
        }
        all.sort_by_key(|e| e.key());

        let n = all.len();
        let nbuckets = (n.next_power_of_two() * 2).clamp(INITIAL_BUCKETS, MAX_BUCKETS);
        let min_ps = all.first().expect("non-empty").at.as_ps();
        let max_ps = all.last().expect("non-empty").at.as_ps();
        // Aim for ~one event per bucket across the live span.
        let ideal = ((max_ps - min_ps) / n as u64).max(1);
        self.shift = ideal.next_power_of_two().trailing_zeros().min(40);
        self.buckets = (0..nbuckets).map(|_| VecDeque::new()).collect();
        self.mask = nbuckets - 1;
        self.cur_slot = min_ps >> self.shift;
        for e in all {
            self.place(e); // sorted input ⇒ pure appends
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: Time, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let e = Entry { at, seq, payload };
        let s = self.slot(at);
        if self.is_empty() || s < self.cur_slot {
            // First entry, or scheduled before the cursor (the heap imposed
            // no push-ordering constraint, so neither do we): the new entry
            // is the minimum; park the cursor on it.
            self.cur_slot = s;
        }
        self.place(e);
        if self.len() > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild();
            self.settle();
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.is_empty() {
            return None;
        }
        // settle() has parked the cursor on the minimum's slot; its bucket's
        // front entry *is* the global minimum (the bucket is sorted, all
        // same-slot entries share a bucket, and no earlier slot is occupied).
        let b = (self.cur_slot & self.mask as u64) as usize;
        let e = self.buckets[b].pop_front().expect("settled cursor");
        self.wheel_len -= 1;
        self.popped += 1;
        if self.last_pop.is_some_and(|lp| e.at < lp) {
            self.time_regressions += 1;
        }
        self.last_pop = Some(e.at);
        self.settle();
        Some((e.at, e.payload))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        if self.is_empty() {
            return None;
        }
        let b = (self.cur_slot & self.mask as u64) as usize;
        match self.buckets[b].front() {
            Some(front) => Some(front.at),
            // Unreachable once settled, but stay total rather than panic.
            None => self.overflow.front().map(|e| e.at),
        }
    }

    /// Pops *every* event scheduled for the earliest pending instant into
    /// `out` (appending, in push-sequence order) and returns that instant.
    ///
    /// Equivalent to popping while [`peek_time`](Self::peek_time) equals the
    /// head time, but the cursor settles once per batch instead of once per
    /// event: after [`settle`](Self::settle), every entry sharing the head
    /// time lives contiguously at the front of the cursor's bucket (same
    /// time ⇒ same slot, and the bucket is sorted by `(time, seq)`), so the
    /// whole batch drains with no re-scan.
    pub fn pop_batch_into(&mut self, out: &mut Vec<E>) -> Option<Time> {
        if self.is_empty() {
            return None;
        }
        let b = (self.cur_slot & self.mask as u64) as usize;
        let t = self.buckets[b].front().expect("settled cursor").at;
        while self.buckets[b].front().is_some_and(|e| e.at == t) {
            let e = self.buckets[b].pop_front().expect("front checked");
            self.wheel_len -= 1;
            self.popped += 1;
            out.push(e.payload);
        }
        // One regression at most per batch: within the batch every pop
        // shares `t`, so only the first could run behind the previous pop —
        // exactly what per-event popping would have counted.
        if self.last_pop.is_some_and(|lp| t < lp) {
            self.time_regressions += 1;
        }
        self.last_pop = Some(t);
        self.settle();
        Some(t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events popped over the queue's lifetime.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Pops that went backwards in time relative to the previous pop. See
    /// [`audit`](Self::audit).
    pub fn time_regressions(&self) -> u64 {
        self.time_regressions
    }

    /// Audits the queue's invariants into `a`:
    ///
    /// * **time-monotonicity** — pop times never decreased. Simulation
    ///   loops only schedule at or after their current event time (the
    ///   reservation-clock rule), so a regression means some handler
    ///   scheduled into the past.
    /// * **occupancy** — the wheel's entry count matches the buckets'
    ///   actual contents (no entry lost or double-counted by a rebuild).
    pub fn audit(&self, a: &mut Audit) {
        a.check(
            "simcore",
            "queue-time-monotonicity",
            self.time_regressions == 0,
            || {
                format!(
                    "{} pops ran backwards in time (last pop {:?})",
                    self.time_regressions, self.last_pop
                )
            },
        );
        let counted: usize = self.buckets.iter().map(VecDeque::len).sum();
        a.check(
            "simcore",
            "queue-occupancy",
            counted == self.wheel_len,
            || {
                format!(
                    "wheel holds {counted} entries but wheel_len says {}",
                    self.wheel_len
                )
            },
        );
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The original `BinaryHeap`-backed event queue, kept as the reference
/// implementation: differential tests drive it and [`EventQueue`] with the
/// same push/pop script and require bit-identical outputs.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
    last_pop: Option<Time>,
    time_regressions: u64,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
            last_pop: None,
            time_regressions: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: Time, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            if self.last_pop.is_some_and(|lp| e.at < lp) {
                self.time_regressions += 1;
            }
            self.last_pop = Some(e.at);
            (e.at, e.payload)
        })
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped over the queue's lifetime.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Pops that went backwards in time relative to the previous pop
    /// (mirrors [`EventQueue::time_regressions`] so differential tests can
    /// compare the two trackers too).
    pub fn time_regressions(&self) -> u64 {
        self.time_regressions
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(7), ());
        assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counts_processed() {
        let mut q = EventQueue::new();
        q.push(Time::ZERO, ());
        q.push(Time::ZERO, ());
        q.pop();
        assert_eq!(q.events_processed(), 1);
        q.pop();
        assert_eq!(q.events_processed(), 2);
        assert_eq!(q.pop(), None);
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(Time::from_ns(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn far_future_events_via_overflow() {
        let mut q = EventQueue::new();
        // Spread far beyond one wheel rotation (64 × 16 ns ≈ 1 µs initially).
        q.push(Time::from_ms(50), "far");
        q.push(Time::from_ns(1), "near");
        q.push(Time::from_ms(500), "farther");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "farther");
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_before_cursor_still_pops_first() {
        let mut q = EventQueue::new();
        q.push(Time::from_us(10), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        // Scheduled before the cursor's current position.
        q.push(Time::from_ns(5), 2);
        q.push(Time::from_us(20), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn grows_past_initial_buckets() {
        let mut q = EventQueue::new();
        let n = 10_000u64;
        for i in 0..n {
            q.push(Time::from_ns((i * 37) % 5000), i);
        }
        assert_eq!(q.len(), n as usize);
        let mut last = Time::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
        }
        assert_eq!(popped, n);
    }

    #[test]
    fn prop_pops_sorted() {
        let mut r = SimRng::seed(0x9e1);
        for _ in 0..32 {
            let count = r.below(200) as usize;
            let times: Vec<u64> = (0..count).map(|_| r.below(1_000_000)).collect();
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Time::from_ps(t), i);
            }
            let mut last = Time::ZERO;
            let mut n = 0;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
                n += 1;
            }
            assert_eq!(n, times.len());
        }
    }

    #[test]
    fn prop_equal_times_fifo() {
        let mut r = SimRng::seed(0x9e2);
        for _ in 0..16 {
            let n = 1 + r.below(199) as usize;
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(Time::from_ns(42), i);
            }
            for i in 0..n {
                assert_eq!(q.pop().unwrap().1, i);
            }
        }
    }

    /// The differential oracle: random push/pop scripts across wildly
    /// different time scales must produce bit-identical pop sequences from
    /// the calendar queue and the reference heap.
    #[test]
    fn diff_calendar_matches_heap_on_random_scripts() {
        let mut r = SimRng::seed(0xca1e17da);
        for round in 0..64 {
            let mut cal = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            // Mix scales: dense ps-level ties, ns bursts, and ms outliers.
            let span = match round % 4 {
                0 => 1_000,           // heavy ties
                1 => 1_000_000,       // ns scale
                2 => 1_000_000_000,   // us scale
                _ => 500_000_000_000, // far-future outliers
            };
            let ops = 1 + r.below(800) as usize;
            let mut base = 0u64;
            for i in 0..ops {
                if r.chance(0.6) {
                    let at = Time::from_ps(base + r.below(span));
                    cal.push(at, i);
                    heap.push(at, i);
                } else {
                    let a = cal.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "divergence (round {round}, op {i})");
                    // Advance the time base like a real simulation clock so
                    // later pushes land at or after the last pop.
                    if let Some((t, _)) = a {
                        base = t.as_ps();
                    }
                }
                assert_eq!(cal.len(), heap.len());
                assert_eq!(cal.peek_time(), heap.peek_time());
            }
            loop {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "drain divergence (round {round})");
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(cal.events_processed(), heap.events_processed());
        }
    }

    /// Same script, but allowing pushes *earlier* than the last pop (the
    /// heap never forbade scheduling into the past, so the calendar queue
    /// must match there too).
    #[test]
    fn diff_matches_heap_with_past_pushes() {
        let mut r = SimRng::seed(0xca1e17db);
        for round in 0..32 {
            let mut cal = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            let ops = 1 + r.below(500) as usize;
            for i in 0..ops {
                if r.chance(0.55) {
                    let at = Time::from_ps(r.below(10_000_000));
                    cal.push(at, i);
                    heap.push(at, i);
                } else {
                    assert_eq!(cal.pop(), heap.pop(), "round {round} op {i}");
                }
            }
            loop {
                let a = cal.pop();
                assert_eq!(a, heap.pop(), "drain, round {round}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// Burst-heavy script exercising the rebuild path: thousands of pushes
    /// between pops.
    #[test]
    fn diff_matches_heap_through_rebuilds() {
        let mut r = SimRng::seed(0xca1e17dc);
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut base = 0u64;
        for burst in 0..8 {
            for i in 0..2_000u64 {
                let at = Time::from_ps(base + r.below(50_000_000));
                cal.push(at, (burst, i));
                heap.push(at, (burst, i));
            }
            for _ in 0..1_500 {
                let a = cal.pop();
                assert_eq!(a, heap.pop());
                if let Some((t, _)) = a {
                    base = t.as_ps();
                }
            }
        }
        loop {
            let a = cal.pop();
            assert_eq!(a, heap.pop());
            if a.is_none() {
                break;
            }
        }
    }

    /// `pop_batch_into` must drain exactly what repeated `pop` would, in the
    /// same order, across random scripts (including heavy ties).
    #[test]
    fn diff_pop_batch_matches_serial_pops() {
        let mut r = SimRng::seed(0xba7c4);
        for round in 0..32 {
            let mut a = EventQueue::new();
            let mut b = EventQueue::new();
            let span = if round % 2 == 0 { 50 } else { 1_000_000 };
            let n = 1 + r.below(600) as usize;
            for i in 0..n {
                let at = Time::from_ps(r.below(span));
                a.push(at, i);
                b.push(at, i);
            }
            let mut batch = Vec::new();
            while let Some(t) = a.pop_batch_into(&mut batch) {
                for &payload in &batch {
                    assert_eq!(b.pop(), Some((t, payload)), "round {round}");
                }
                batch.clear();
            }
            assert!(b.is_empty());
            assert_eq!(a.events_processed(), b.events_processed());
            assert_eq!(a.time_regressions(), b.time_regressions());
        }
    }

    #[test]
    fn pop_batch_on_empty_queue_is_none() {
        let mut q: EventQueue<u8> = EventQueue::new();
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch_into(&mut batch), None);
        assert!(batch.is_empty());
    }

    #[test]
    fn audit_passes_on_monotone_script() {
        let mut q = EventQueue::new();
        for i in 0..500u64 {
            q.push(Time::from_ns(i * 3), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.time_regressions(), 0);
        let mut a = Audit::new();
        q.audit(&mut a);
        assert!(a.ok(), "{:?}", a.violations());
        assert_eq!(a.checks(), 2);
    }

    #[test]
    fn past_pushes_count_regressions_identically_in_both_queues() {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        cal.push(Time::from_us(10), 0);
        heap.push(Time::from_us(10), 0);
        assert_eq!(cal.pop(), heap.pop());
        // Scheduled behind the last pop: the next pop runs backwards.
        cal.push(Time::from_ns(1), 1);
        heap.push(Time::from_ns(1), 1);
        assert_eq!(cal.pop(), heap.pop());
        assert_eq!(cal.time_regressions(), 1);
        assert_eq!(heap.time_regressions(), 1);
        let mut a = Audit::new();
        cal.audit(&mut a);
        assert!(!a.ok());
        assert_eq!(a.violations()[0].check, "queue-time-monotonicity");
    }

    #[test]
    fn heap_oracle_behaves_like_original() {
        let mut q = HeapEventQueue::new();
        q.push(Time::from_ns(20), "b");
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(20), "c");
        assert_eq!(q.peek_time(), Some(Time::from_ns(10)));
        assert_eq!(q.pop(), Some((Time::from_ns(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_ns(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_ns(20), "c")));
        assert!(q.is_empty());
        assert_eq!(q.events_processed(), 3);
        assert_eq!(HeapEventQueue::<u8>::default().len(), 0);
    }
}
