//! Time-ordered event queue with stable FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

/// A pending event: fires at `at`, carrying payload `E`.
#[derive(Debug, Clone)]
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // entry is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue: events are popped in time order, and events
/// scheduled for the same instant are popped in the order they were pushed.
///
/// Determinism matters: the whole simulation must replay identically for a
/// given seed, so ties are broken by a monotonically increasing sequence
/// number rather than by heap internals.
///
/// # Example
/// ```
/// use simcore::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(20), "b");
/// q.push(Time::from_ns(10), "a");
/// q.push(Time::from_ns(20), "c");
/// assert_eq!(q.pop(), Some((Time::from_ns(10), "a")));
/// assert_eq!(q.pop(), Some((Time::from_ns(20), "b")));
/// assert_eq!(q.pop(), Some((Time::from_ns(20), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: Time, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            (e.at, e.payload)
        })
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped over the queue's lifetime.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(7), ());
        assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counts_processed() {
        let mut q = EventQueue::new();
        q.push(Time::ZERO, ());
        q.push(Time::ZERO, ());
        q.pop();
        assert_eq!(q.events_processed(), 1);
        q.pop();
        assert_eq!(q.events_processed(), 2);
        assert_eq!(q.pop(), None);
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(Time::from_ns(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn prop_pops_sorted() {
        let mut r = SimRng::seed(0x9e1);
        for _ in 0..32 {
            let count = r.below(200) as usize;
            let times: Vec<u64> = (0..count).map(|_| r.below(1_000_000)).collect();
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(Time::from_ps(t), i);
            }
            let mut last = Time::ZERO;
            let mut n = 0;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
                n += 1;
            }
            assert_eq!(n, times.len());
        }
    }

    #[test]
    fn prop_equal_times_fifo() {
        let mut r = SimRng::seed(0x9e2);
        for _ in 0..16 {
            let n = 1 + r.below(199) as usize;
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(Time::from_ns(42), i);
            }
            for i in 0..n {
                assert_eq!(q.pop().unwrap().1, i);
            }
        }
    }
}
