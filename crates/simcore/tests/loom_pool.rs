//! Loom model checks for the `simcore::pool` concurrency protocol.
//!
//! `pool::scoped_map` cannot be loom-instrumented directly (it is built on
//! `std::thread::scope`, which loom does not model), so these tests model
//! its synchronization protocol verbatim — an atomic claim counter plus
//! per-slot mutexed `(input, output)` hand-off, joined before reading — and
//! let the model checker drive every sequentially-consistent interleaving.
//! The properties proved here are exactly the ones `scoped_map` relies on:
//!
//! 1. **Unique claim**: `fetch_add` hands each index to exactly one worker
//!    (`take().expect("claimed once")` never double-fires).
//! 2. **Shutdown**: every worker terminates even when the claim counter
//!    overshoots `n` (more workers than items, racing increments).
//! 3. **Queue hand-off**: results written before a worker exits are visible
//!    in input order after `join` — the scope-join publication edge.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p simcore --test loom_pool --release`
//!
//! The `loom` dependency here is the workspace's in-repo shim (see
//! `crates/loom`): an exhaustive sequentially-consistent interleaving
//! explorer over the loom API subset these models use.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

/// The worker body of `pool::scoped_map`, lifted verbatim onto loom types:
/// claim an index, move the input out of its slot, compute, move the result
/// back in.
fn worker(n: usize, next: &AtomicUsize, slots: &[Mutex<(Option<u64>, Option<u64>)>]) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let item = slots[i]
            .lock()
            .expect("slot poisoned")
            .0
            .take()
            .expect("index claimed once");
        let result = item * 100;
        slots[i].lock().expect("slot poisoned").1 = Some(result);
    }
}

fn run_model(n: usize, workers: usize) {
    loom::model(move || {
        let slots: Arc<Vec<Mutex<(Option<u64>, Option<u64>)>>> =
            Arc::new((0..n as u64).map(|i| Mutex::new((Some(i), None))).collect());
        let next = Arc::new(AtomicUsize::new(0));

        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let slots = slots.clone();
                let next = next.clone();
                thread::spawn(move || worker(n, &next, &slots))
            })
            .collect();
        for h in handles {
            h.join().expect("worker completed");
        }

        // Join is the publication point: every slot must be drained of its
        // input and filled with its in-order result.
        for (i, slot) in slots.iter().enumerate() {
            let g = slot.lock().expect("slot poisoned");
            assert!(g.0.is_none(), "slot {i} input not consumed");
            assert_eq!(g.1, Some(i as u64 * 100), "slot {i} result out of order");
        }
        // The claim counter saw exactly one increment per claim attempt;
        // after shutdown it is at least n (each item claimed) and at most
        // n + workers (one overshooting probe per worker).
        let final_next = next.load(Ordering::Relaxed);
        assert!(final_next >= n && final_next <= n + workers);
    });
}

#[test]
fn claim_and_handoff_two_workers() {
    run_model(2, 2);
}

#[test]
fn contended_three_items_two_workers() {
    run_model(3, 2);
}

#[test]
fn shutdown_with_more_workers_than_items() {
    // Counter overshoot: three workers race past n=1; all must terminate
    // and the single item must be processed exactly once.
    run_model(1, 3);
}

#[test]
fn empty_input_terminates_all_workers() {
    run_model(0, 2);
}

/// Sanity check on the checker itself: replacing the atomic claim
/// (`fetch_add`) with a check-then-act load/store *must* be caught as a
/// double claim under some interleaving. If this test stops panicking, the
/// explorer has lost its teeth and the passing tests above prove nothing.
#[test]
#[should_panic(expected = "index claimed once")]
fn broken_nonatomic_claim_is_caught() {
    loom::model(|| {
        let n = 1usize;
        let slots: Arc<Vec<Mutex<(Option<u64>, Option<u64>)>>> =
            Arc::new((0..n as u64).map(|i| Mutex::new((Some(i), None))).collect());
        let next = Arc::new(AtomicUsize::new(0));

        let handles: Vec<_> = (0..2)
            .map(|_| {
                let slots = slots.clone();
                let next = next.clone();
                thread::spawn(move || {
                    // BUG (deliberate): load-then-store instead of fetch_add.
                    let i = next.load(Ordering::Relaxed);
                    next.store(i + 1, Ordering::Relaxed);
                    if i < n {
                        let item = slots[i]
                            .lock()
                            .expect("slot poisoned")
                            .0
                            .take()
                            .expect("index claimed once");
                        slots[i].lock().expect("slot poisoned").1 = Some(item * 100);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker completed");
        }
    });
}
