//! The metrics registry: interned static labels, atomic instruments.
//!
//! Two layers:
//!
//! * The **process-wide registry** ([`Registry::global`]) holds counters
//!   that aggregate across every simulation a process runs — the bench
//!   harness's events/audits/fenced/reconfig footer accounting lives
//!   here ([`RunStats`]). Instruments are registered once per label
//!   (interned by string content, so the same name always resolves to
//!   the same cell) and handed out as `&'static` references; the hot
//!   path is a single relaxed atomic op with no lock and no allocation.
//!   Registration itself (cold, once per label) takes a mutex and leaks
//!   one small box — bounded by the number of distinct labels.
//! * **Per-run snapshots** ([`Snapshot`]) are plain sorted tables each
//!   component fills from its own counters at harvest time (see
//!   `NetLoop::metrics_snapshot` in the `ioctopus` crate). They carry
//!   the per-run story that must not be smeared across sweep threads.
//!
//! Determinism: labels are `&'static str`, lookup is by string content
//! (a linear scan over the registration table — label counts are tiny),
//! and snapshots render in sorted label order. Nothing depends on hash
//! order, pointer values, or wallclock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter (relaxed atomics: cheap under the
/// parallel sweep, exact once the pool has joined).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reads and resets, returning the value at the moment of reset.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets a [`Histogram`] keeps (covers the full u64
/// range: bucket `i` counts values whose bit length is `i`).
pub const HIST_BUCKETS: usize = 65;

/// A log-bucketed histogram: bucket `i` counts recorded values `v` with
/// `bit_length(v) == i` (bucket 0 is exactly zero). Good enough for
/// latency/size distributions at simulation fidelity, and recording is
/// one relaxed atomic increment — no allocation, no lock.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Bucket counts, index = bit length of the recorded value.
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

enum Instrument {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// The interning metrics registry. See the module docs for the
/// global-vs-per-run split.
pub struct Registry {
    table: Mutex<Vec<(&'static str, Instrument)>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.table.lock().map(|t| t.len()).unwrap_or(0);
        write!(f, "Registry({n} instruments)")
    }
}

impl Registry {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Registry {
            table: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: Registry = Registry::new();
        &GLOBAL
    }

    /// Interns `name` as a counter: the first call registers (and leaks)
    /// the cell, later calls return the same cell. Panics if `name` is
    /// already registered as a different instrument kind.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut t = self.table.lock().expect("registry poisoned");
        if let Some((_, i)) = t.iter().find(|(n, _)| *n == name) {
            if let Instrument::Counter(c) = i {
                return c;
            }
            // Panic outside the lock so a kind-mismatch bug cannot poison
            // the global registry for unrelated code.
            drop(t);
            panic!("label {name:?} registered as a non-counter");
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        t.push((name, Instrument::Counter(c)));
        c
    }

    /// Interns `name` as a gauge (see [`Registry::counter`]).
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut t = self.table.lock().expect("registry poisoned");
        if let Some((_, i)) = t.iter().find(|(n, _)| *n == name) {
            if let Instrument::Gauge(g) = i {
                return g;
            }
            // Panic outside the lock so a kind-mismatch bug cannot poison
            // the global registry for unrelated code.
            drop(t);
            panic!("label {name:?} registered as a non-gauge");
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        t.push((name, Instrument::Gauge(g)));
        g
    }

    /// Interns `name` as a histogram (see [`Registry::counter`]).
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut t = self.table.lock().expect("registry poisoned");
        if let Some((_, i)) = t.iter().find(|(n, _)| *n == name) {
            if let Instrument::Histogram(h) = i {
                return h;
            }
            // Panic outside the lock so a kind-mismatch bug cannot poison
            // the global registry for unrelated code.
            drop(t);
            panic!("label {name:?} registered as a non-histogram");
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        t.push((name, Instrument::Histogram(h)));
        h
    }

    /// A sorted snapshot of every registered counter and gauge (histograms
    /// contribute their sample count under `<name>.count`).
    pub fn snapshot(&self) -> Snapshot {
        let t = self.table.lock().expect("registry poisoned");
        let mut s = Snapshot::new();
        for (name, i) in t.iter() {
            match i {
                Instrument::Counter(c) => s.push(name, c.get()),
                Instrument::Gauge(g) => s.push(name, g.get()),
                Instrument::Histogram(h) => s.push_counted(name, h.count()),
            }
        }
        s.sort();
        s
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// A per-run metric table: `(label, value)` rows a harvest pass fills
/// from component counters, rendered in sorted label order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    rows: Vec<(&'static str, u64)>,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Snapshot { rows: Vec::new() }
    }

    /// Appends one row.
    pub fn push(&mut self, name: &'static str, value: u64) {
        self.rows.push((name, value));
    }

    fn push_counted(&mut self, name: &'static str, value: u64) {
        // Histograms appear by sample count; buckets are export-only.
        self.rows.push((name, value));
    }

    /// Sorts rows by label (harvest order becomes irrelevant).
    pub fn sort(&mut self) {
        self.rows.sort_by(|a, b| a.0.cmp(b.0));
    }

    /// The rows, in their current order.
    pub fn rows(&self) -> &[(&'static str, u64)] {
        &self.rows
    }

    /// The value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.rows.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Renders `label value` lines (sorted beforehand by convention).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (n, v) in &self.rows {
            out.push_str(n);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------
// Well-known process-wide run accounting (the bench-footer counters).
// ---------------------------------------------------------------------

/// Label of the dispatched-simulation-events counter.
pub const EVENTS: &str = "sim.events.dispatched";
/// Label of the invariant-audit-checks counter.
pub const AUDITS: &str = "sim.audit.checks";
/// Label of the epoch-fenced-deliveries counter.
pub const FENCED: &str = "sim.fence.discards";
/// Label of the completed-reconfigurations counter.
pub const RECONFIGS: &str = "sim.reconfig.completed";

/// The aggregate accounting a bench footer prints, drained from the
/// global registry — the *single* source both the human footer and the
/// machine-readable baseline JSON render from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Simulation events dispatched.
    pub events: u64,
    /// Invariant-audit predicate evaluations.
    pub audits: u64,
    /// Epoch-fenced completions/interrupts (counted, never delivered).
    pub fenced: u64,
    /// Completed quiesce/drain/rebind reconfigurations.
    pub reconfigs: u64,
}

fn well_known() -> &'static [&'static Counter; 4] {
    static CELLS: OnceLock<[&'static Counter; 4]> = OnceLock::new();
    CELLS.get_or_init(|| {
        let r = Registry::global();
        [
            r.counter(EVENTS),
            r.counter(AUDITS),
            r.counter(FENCED),
            r.counter(RECONFIGS),
        ]
    })
}

/// Credits `stats` to the global registry's run accounting.
pub fn note_run(stats: RunStats) {
    let [e, a, f, r] = well_known();
    e.add(stats.events);
    a.add(stats.audits);
    f.add(stats.fenced);
    r.add(stats.reconfigs);
}

/// The counter behind one of the well-known labels, for callers that
/// credit a single dimension.
pub fn run_counter(label: &'static str) -> &'static Counter {
    Registry::global().counter(label)
}

/// Drains the run accounting, returning the values at the reset instant.
/// Harnesses call this once per figure to attribute work per figure.
pub fn take_run_stats() -> RunStats {
    let [e, a, f, r] = well_known();
    RunStats {
        events: e.take(),
        audits: a.take(),
        fenced: f.take(),
        reconfigs: r.take(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_interns_by_content() {
        let r = Registry::global();
        let a = r.counter("test.registry.intern");
        let b = r.counter("test.registry.intern");
        assert!(std::ptr::eq(a, b), "same label, same cell");
        a.add(3);
        assert!(b.get() >= 3);
        let _ = a.take();
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_mismatch_panics() {
        let r = Registry::global();
        let _ = r.gauge("test.registry.kind");
        let _ = r.counter("test.registry.kind");
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(7);
        h.record(1024);
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[3], 1);
        assert_eq!(b[11], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn run_stats_roundtrip() {
        let _ = take_run_stats();
        note_run(RunStats {
            events: 5,
            audits: 2,
            fenced: 1,
            reconfigs: 1,
        });
        let got = take_run_stats();
        assert!(got.events >= 5);
        assert!(got.audits >= 2);
        assert!(got.fenced >= 1);
        assert!(got.reconfigs >= 1);
    }

    #[test]
    fn snapshot_renders_sorted() {
        let mut s = Snapshot::new();
        s.push("z.last", 2);
        s.push("a.first", 1);
        s.sort();
        assert_eq!(s.render(), "a.first 1\nz.last 2\n");
        assert_eq!(s.get("z.last"), Some(2));
    }
}
