//! Deterministic observability substrate for the IOctopus reproduction.
//!
//! Three pieces, all obeying the DESIGN.md §11 determinism contract (sim
//! time only, no wallclock, no hash-order dependence, zero allocation in
//! steady state):
//!
//! * [`registry`] — a process-wide metrics registry (counters, gauges,
//!   log-bucketed histograms) keyed by interned `&'static str` labels.
//!   The substrate crates register into it and the bench footers /
//!   results JSON render from it, so there is exactly one source of
//!   aggregate accounting.
//! * [`trace`] — a span/event tracer: fixed-size [`trace::TraceRecord`]s
//!   stamped with simulated time, pushed into pre-sized per-domain
//!   ring buffers ([`trace::TraceRing`]) owned by the component that
//!   emits them. Off by default (a component holds `Option<TraceRing>`,
//!   so the steady-state cost of disabled tracing is one branch per
//!   record site) and compiled out entirely without the `trace` feature.
//! * [`flight`] — the NUMA-locality flight recorder: a per-flow/per-PF
//!   ledger of local vs. remote DMA bytes, DDIO outcomes and QPI
//!   crossings, pre-sized so steady-state recording never allocates.
//!
//! [`export`] renders a collected [`trace::TraceSet`] as Chrome
//! `trace_event` JSON, folded stacks (flamegraph input), or the native
//! line format the `telemetry-dump` binary pretty-prints and diffs.
//! Identical seeds produce byte-identical exports, serial or parallel.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
pub mod flight;
pub mod registry;
pub mod trace;

pub use flight::{FlightRecorder, LedgerCells, LocalityTable};
pub use registry::{Counter, Gauge, Histogram, Registry, RunStats, Snapshot};
pub use trace::{Domain, TraceKind, TraceRecord, TraceRing, TraceSet};
