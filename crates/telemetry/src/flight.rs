//! The NUMA-locality flight recorder.
//!
//! A per-flow/per-PF ledger of where DMA bytes actually landed: on the
//! PF's own node (local — the IOctopus claim) or across the
//! interconnect (remote — legacy NUDMA), and whether DDIO absorbed the
//! write into the LLC. The NIC device model feeds it at its DMA sites,
//! because that is the one place that knows the flow, the PF, *and* the
//! target address at the same time.
//!
//! The ledger is a pre-sized flat table scanned linearly (flow×PF
//! cardinality is tiny in every experiment; no hashing, no ordering
//! hazards) so steady-state recording is alloc-free; rows past the
//! capacity aggregate into an overflow bucket rather than being lost.

/// Per-row (and aggregate) DMA locality cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerCells {
    /// DMA-read bytes that stayed on the PF's node.
    pub local_read_bytes: u64,
    /// DMA-read bytes that crossed the interconnect.
    pub remote_read_bytes: u64,
    /// DMA-write bytes that stayed on the PF's node.
    pub local_write_bytes: u64,
    /// DMA-write bytes that crossed the interconnect.
    pub remote_write_bytes: u64,
    /// DDIO-eligible writes that allocated into the LLC.
    pub ddio_hits: u64,
    /// DDIO-eligible writes that fell through to DRAM.
    pub ddio_misses: u64,
    /// Transactions that crossed the interconnect (QPI/UPI).
    pub qpi_crossings: u64,
}

impl LedgerCells {
    /// All bytes that stayed node-local.
    pub fn local_bytes(&self) -> u64 {
        self.local_read_bytes + self.local_write_bytes
    }

    /// All bytes that crossed the interconnect.
    pub fn remote_bytes(&self) -> u64 {
        self.remote_read_bytes + self.remote_write_bytes
    }

    /// Remote share of all recorded DMA bytes (0 when nothing recorded).
    pub fn remote_share(&self) -> f64 {
        let total = self.local_bytes() + self.remote_bytes();
        if total == 0 {
            0.0
        } else {
            self.remote_bytes() as f64 / total as f64
        }
    }

    /// DDIO hit ratio over eligible writes (0 when none recorded).
    pub fn ddio_hit_ratio(&self) -> f64 {
        let total = self.ddio_hits + self.ddio_misses;
        if total == 0 {
            0.0
        } else {
            self.ddio_hits as f64 / total as f64
        }
    }

    fn absorb(&mut self, o: &LedgerCells) {
        self.local_read_bytes += o.local_read_bytes;
        self.remote_read_bytes += o.remote_read_bytes;
        self.local_write_bytes += o.local_write_bytes;
        self.remote_write_bytes += o.remote_write_bytes;
        self.ddio_hits += o.ddio_hits;
        self.ddio_misses += o.ddio_misses;
        self.qpi_crossings += o.qpi_crossings;
    }

    /// Cell-wise difference (`self - earlier`), for windowed readings.
    pub fn since(&self, earlier: &LedgerCells) -> LedgerCells {
        LedgerCells {
            local_read_bytes: self.local_read_bytes - earlier.local_read_bytes,
            remote_read_bytes: self.remote_read_bytes - earlier.remote_read_bytes,
            local_write_bytes: self.local_write_bytes - earlier.local_write_bytes,
            remote_write_bytes: self.remote_write_bytes - earlier.remote_write_bytes,
            ddio_hits: self.ddio_hits - earlier.ddio_hits,
            ddio_misses: self.ddio_misses - earlier.ddio_misses,
            qpi_crossings: self.qpi_crossings - earlier.qpi_crossings,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Row {
    flow: u64,
    pf: u32,
    cells: LedgerCells,
}

/// The flight recorder a NIC owns while enabled.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    rows: Vec<Row>,
    cap: usize,
    overflow: LedgerCells,
    overflow_rows: u64,
}

impl FlightRecorder {
    /// Creates a recorder tracking at most `cap` distinct `(flow, PF)`
    /// rows (the one allocation it ever performs).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "flight recorder needs row capacity");
        FlightRecorder {
            rows: Vec::with_capacity(cap),
            cap,
            overflow: LedgerCells::default(),
            overflow_rows: 0,
        }
    }

    /// Records one DMA transaction (hot path: linear row scan over a
    /// handful of flows, no allocation — rows were reserved up front).
    ///
    /// `ddio_hit` is `Some` only for DDIO-eligible accesses (payload
    /// writes); reads and control-structure writes pass `None`.
    #[inline]
    pub fn record_dma(
        &mut self,
        flow: u64,
        pf: u32,
        bytes: u64,
        write: bool,
        local: bool,
        ddio_hit: Option<bool>,
    ) {
        let found = self.rows.iter().position(|r| r.flow == flow && r.pf == pf);
        let cells = match found {
            Some(i) => &mut self.rows[i].cells,
            None if self.rows.len() < self.cap => {
                self.rows.push(Row {
                    flow,
                    pf,
                    cells: LedgerCells::default(),
                });
                &mut self.rows.last_mut().expect("just pushed").cells
            }
            None => {
                self.overflow_rows += 1;
                &mut self.overflow
            }
        };
        match (write, local) {
            (true, true) => cells.local_write_bytes += bytes,
            (true, false) => cells.remote_write_bytes += bytes,
            (false, true) => cells.local_read_bytes += bytes,
            (false, false) => cells.remote_read_bytes += bytes,
        }
        if !local {
            cells.qpi_crossings += 1;
        }
        match ddio_hit {
            Some(true) => cells.ddio_hits += 1,
            Some(false) => cells.ddio_misses += 1,
            None => {}
        }
    }

    /// A sorted snapshot of the ledger (cold path).
    pub fn table(&self) -> LocalityTable {
        let mut rows: Vec<FlowPfLocality> = self
            .rows
            .iter()
            .map(|r| FlowPfLocality {
                flow: r.flow,
                pf: r.pf,
                cells: r.cells,
            })
            .collect();
        rows.sort_by_key(|r| (r.flow, r.pf));
        let mut totals = self.overflow;
        for r in &rows {
            totals.absorb(&r.cells);
        }
        LocalityTable {
            rows,
            totals,
            overflow_rows: self.overflow_rows,
        }
    }
}

/// One `(flow, PF)` row of a [`LocalityTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPfLocality {
    /// The flow's stable key (an FNV-1a fold of its 5-tuple).
    pub flow: u64,
    /// The PCIe function that carried the DMA.
    pub pf: u32,
    /// The locality cells.
    pub cells: LedgerCells,
}

/// A sorted, totalled snapshot of the flight recorder — the locality
/// table experiment results expose.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityTable {
    /// Per-`(flow, PF)` rows, sorted by `(flow, PF)`.
    pub rows: Vec<FlowPfLocality>,
    /// Aggregate over every row plus the overflow bucket.
    pub totals: LedgerCells,
    /// Transactions folded into the overflow bucket because the row
    /// table was full.
    pub overflow_rows: u64,
}

impl LocalityTable {
    /// Total bytes that crossed the interconnect.
    pub fn remote_bytes(&self) -> u64 {
        self.totals.remote_bytes()
    }

    /// Aggregate cells over every row carried by `pf` (overflow excluded —
    /// the overflow bucket has no PF attribution).
    pub fn pf_cells(&self, pf: u32) -> LedgerCells {
        let mut out = LedgerCells::default();
        for r in self.rows.iter().filter(|r| r.pf == pf) {
            out.absorb(&r.cells);
        }
        out
    }

    /// Total bytes that stayed node-local.
    pub fn local_bytes(&self) -> u64 {
        self.totals.local_bytes()
    }

    /// Renders the deterministic human table (also what the native
    /// artifact embeds).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str(
            "flow               pf  local_rd     remote_rd    local_wr     remote_wr    \
             ddio_hit  ddio_miss qpi\n",
        );
        for r in &self.rows {
            let c = &r.cells;
            let _ = writeln!(
                out,
                "{:#018x} {:<3} {:<12} {:<12} {:<12} {:<12} {:<9} {:<9} {}",
                r.flow,
                r.pf,
                c.local_read_bytes,
                c.remote_read_bytes,
                c.local_write_bytes,
                c.remote_write_bytes,
                c.ddio_hits,
                c.ddio_misses,
                c.qpi_crossings
            );
        }
        let t = &self.totals;
        let _ = writeln!(
            out,
            "TOTAL: local {} B, remote {} B (share {:.4}), ddio {}/{} , qpi {}",
            t.local_bytes(),
            t.remote_bytes(),
            t.remote_share(),
            t.ddio_hits,
            t.ddio_hits + t.ddio_misses,
            t.qpi_crossings
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_splits_by_locality_and_direction() {
        let mut fr = FlightRecorder::new(8);
        fr.record_dma(7, 0, 1448, true, true, Some(true));
        fr.record_dma(7, 0, 64, true, true, None);
        fr.record_dma(7, 1, 1448, true, false, Some(false));
        fr.record_dma(9, 0, 128, false, false, None);
        let t = fr.table();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0].flow, 7);
        assert_eq!(t.rows[0].pf, 0);
        assert_eq!(t.rows[0].cells.local_write_bytes, 1512);
        assert_eq!(t.rows[1].cells.remote_write_bytes, 1448);
        assert_eq!(t.rows[1].cells.ddio_misses, 1);
        assert_eq!(t.rows[2].cells.remote_read_bytes, 128);
        assert_eq!(t.totals.remote_bytes(), 1576);
        assert_eq!(t.totals.qpi_crossings, 2);
        assert!(t.totals.ddio_hit_ratio() > 0.49 && t.totals.ddio_hit_ratio() < 0.51);
    }

    #[test]
    fn overflow_aggregates_instead_of_dropping() {
        let mut fr = FlightRecorder::new(2);
        for flow in 0..5u64 {
            fr.record_dma(flow, 0, 100, true, false, None);
        }
        let t = fr.table();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.overflow_rows, 3);
        assert_eq!(t.totals.remote_bytes(), 500, "no bytes lost");
    }

    #[test]
    fn per_pf_aggregation() {
        let mut fr = FlightRecorder::new(8);
        fr.record_dma(7, 0, 100, true, true, None);
        fr.record_dma(9, 0, 40, true, true, None);
        fr.record_dma(7, 1, 60, true, false, None);
        let t = fr.table();
        assert_eq!(t.pf_cells(0).local_write_bytes, 140);
        assert_eq!(t.pf_cells(1).remote_write_bytes, 60);
        assert_eq!(t.pf_cells(2), LedgerCells::default());
    }

    #[test]
    fn windowed_difference() {
        let mut fr = FlightRecorder::new(4);
        fr.record_dma(1, 0, 100, true, true, None);
        let before = fr.table().totals;
        fr.record_dma(1, 0, 50, true, false, None);
        let after = fr.table().totals;
        let w = after.since(&before);
        assert_eq!(w.local_write_bytes, 0);
        assert_eq!(w.remote_write_bytes, 50);
    }
}
