//! Trace exporters: native line format, Chrome `trace_event` JSON, and
//! folded stacks (flamegraph input).
//!
//! Every exporter is a pure function of the merged record order, formats
//! integers only (timestamps render as fixed-point microseconds computed
//! with integer arithmetic — no float formatting anywhere), and appends
//! in the canonical `(time, domain, seq)` order. Identical inputs
//! therefore produce byte-identical output on any platform, thread
//! count, or run — the property the determinism suite asserts.

use std::fmt::Write as _;

use crate::trace::{DdioOutcome, DmaRoute, Domain, TraceKind, TraceRecord, TraceSet};

/// Version tag of the native format (first line of every artifact).
pub const NATIVE_HEADER: &str = "# ioctopus-trace v1";

/// Renders a record timestamp (picoseconds) as fixed-point microseconds,
/// entirely in integer arithmetic.
fn ps_as_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

// ---------------------------------------------------------------------
// Native line format
// ---------------------------------------------------------------------

/// Renders the native line format: a header, a retention summary, then
/// one `t_ps domain kind seq a b c d` line per record in merge order.
pub fn to_native(set: &TraceSet) -> String {
    let merged = set.merged();
    let mut out = String::new();
    out.push_str(NATIVE_HEADER);
    out.push('\n');
    let _ = writeln!(
        out,
        "# retained={} overwritten={}",
        merged.len(),
        set.overwritten()
    );
    for (d, r) in &merged {
        let _ = writeln!(
            out,
            "{} {} {} {} {} {} {} {}",
            r.t.as_ps(),
            d.name(),
            r.kind.name(),
            r.seq,
            r.a,
            r.b,
            r.c,
            r.d
        );
    }
    out
}

/// Parses a native artifact back into merged `(domain, record)` rows.
pub fn parse_native(s: &str) -> Result<Vec<(Domain, TraceRecord)>, String> {
    let mut lines = s.lines();
    match lines.next() {
        Some(h) if h == NATIVE_HEADER => {}
        other => return Err(format!("bad header: {other:?}")),
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let mut f = line.split_ascii_whitespace();
        let mut num = |name: &str| -> Result<u64, String> {
            f.next()
                .ok_or_else(|| format!("line {}: missing {name}", i + 2))?
                .parse::<u64>()
                .map_err(|e| format!("line {}: bad {name}: {e}", i + 2))
        };
        let t = simcore::Time::from_ps(num("t")?);
        let domain = {
            let tok = f
                .next()
                .ok_or_else(|| format!("line {}: missing domain", i + 2))?;
            Domain::parse(tok).ok_or_else(|| format!("line {}: unknown domain {tok:?}", i + 2))?
        };
        let kind = {
            let tok = f
                .next()
                .ok_or_else(|| format!("line {}: missing kind", i + 2))?;
            TraceKind::parse(tok).ok_or_else(|| format!("line {}: unknown kind {tok:?}", i + 2))?
        };
        let mut num = |name: &str| -> Result<u64, String> {
            f.next()
                .ok_or_else(|| format!("line {}: missing {name}", i + 2))?
                .parse::<u64>()
                .map_err(|e| format!("line {}: bad {name}: {e}", i + 2))
        };
        let (seq, a, b, c, d) = (num("seq")?, num("a")?, num("b")?, num("c")?, num("d")?);
        if f.next().is_some() {
            return Err(format!("line {}: trailing fields", i + 2));
        }
        out.push((
            domain,
            TraceRecord {
                t,
                seq,
                kind,
                a,
                b,
                c,
                d,
            },
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Chrome trace_event JSON
// ---------------------------------------------------------------------

fn ddio_name(d: DdioOutcome) -> &'static str {
    match d {
        DdioOutcome::Hit => "hit",
        DdioOutcome::Miss => "miss",
        DdioOutcome::NotApplicable => "n/a",
    }
}

/// Renders Chrome `trace_event` JSON (the object form: `traceEvents`
/// plus metadata). DMA records become complete (`"ph":"X"`) events
/// spanning issue→landing; everything else is an instant event. One
/// trace "thread" per domain, named by metadata events.
pub fn to_chrome_json(set: &TraceSet) -> String {
    let merged = set.merged();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    for d in [
        Domain::Nic,
        Domain::Kernel,
        Domain::Pcie,
        Domain::Mem,
        Domain::Net,
    ] {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            d as u8,
            d.name()
        );
    }
    for (d, r) in &merged {
        sep(&mut out);
        let tid = *d as u8;
        let ts = ps_as_us(r.t.as_ps());
        match r.kind {
            TraceKind::DmaRead | TraceKind::DmaWrite => {
                let route = DmaRoute::unpack(r.b);
                let dur_ps = r.c.saturating_sub(r.t.as_ps());
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{ts},\"dur\":{},\"args\":{{\"flow\":\"{:#018x}\",\
                     \"pf\":{},\"src_node\":{},\"dst_node\":{},\"local\":{},\
                     \"ddio\":\"{}\",\"bytes\":{}}}}}",
                    r.kind.name(),
                    ps_as_us(dur_ps),
                    r.a,
                    route.pf,
                    route.src_node,
                    route.dst_node,
                    route.local,
                    ddio_name(route.ddio),
                    r.d
                );
            }
            TraceKind::FlowSteered => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"flow_steered\",\"pid\":1,\
                     \"tid\":{tid},\"ts\":{ts},\"args\":{{\"flow\":\"{:#018x}\",\
                     \"pf\":{},\"queue\":{},\"failover\":{}}}}}",
                    r.a, r.b, r.c, r.d
                );
            }
            TraceKind::IrqDelivered => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"irq_delivered\",\"pid\":1,\
                     \"tid\":{tid},\"ts\":{ts},\"args\":{{\"queue\":{},\"core\":{},\
                     \"epoch\":{}}}}}",
                    r.a, r.b, r.c
                );
            }
            TraceKind::ReconfigPhase => {
                let phase = match r.b {
                    0 => "quiesce",
                    1 => "drain",
                    _ => "rebind",
                };
                let mode = if r.d == 1 { "nudma" } else { "uniform" };
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"reconfig_{phase}\",\"pid\":1,\
                     \"tid\":{tid},\"ts\":{ts},\"args\":{{\"pf\":{},\"epoch\":{},\
                     \"mode\":\"{mode}\"}}}}",
                    r.a, r.c
                );
            }
        }
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"generator\":\
         \"ioctopus-telemetry\",\"format\":\"v1\",\"retained\":{},\
         \"overwritten\":{}}}}}",
        merged.len(),
        set.overwritten()
    );
    out
}

// ---------------------------------------------------------------------
// Folded stacks
// ---------------------------------------------------------------------

/// Renders folded stacks (`frame;frame;frame count` per line, sorted),
/// the input format of flamegraph tooling. DMA frames fold in their
/// locality/DDIO qualifier and weigh by bytes; other kinds weigh by
/// occurrence.
pub fn to_folded(set: &TraceSet) -> String {
    let merged = set.merged();
    // (stack, weight) aggregation via a sorted Vec keeps the exporter
    // free of hash-order concerns.
    let mut rows: Vec<(String, u64)> = Vec::new();
    for (d, r) in &merged {
        let (stack, w) = match r.kind {
            TraceKind::DmaRead | TraceKind::DmaWrite => {
                let route = DmaRoute::unpack(r.b);
                let loc = if route.local { "local" } else { "remote" };
                (
                    format!(
                        "{};{};pf{};{loc};ddio_{}",
                        d.name(),
                        r.kind.name(),
                        route.pf,
                        ddio_name(route.ddio).replace('/', "_")
                    ),
                    r.d,
                )
            }
            _ => (format!("{};{}", d.name(), r.kind.name()), 1),
        };
        match rows.binary_search_by(|(s, _)| s.as_str().cmp(stack.as_str())) {
            Ok(i) => rows[i].1 += w,
            Err(i) => rows.insert(i, (stack, w)),
        }
    }
    let mut out = String::new();
    for (s, w) in rows {
        let _ = writeln!(out, "{s} {w}");
    }
    out
}

// ---------------------------------------------------------------------
// Minimal JSON structural validator (no serde in this workspace)
// ---------------------------------------------------------------------

/// A dependency-free JSON reader, just enough to validate exporter
/// output and the Chrome `trace_event` schema in CI.
pub mod json {
    /// Validates that `s` is well-formed JSON *and* matches the Chrome
    /// trace shape: a top-level object whose `traceEvents` member is an
    /// array of objects each carrying `ph`, `name`, `pid` and `tid`
    /// (plus `ts` for non-metadata events). Returns the event count.
    pub fn validate_chrome(s: &str) -> Result<usize, String> {
        let v = parse(s)?;
        let Value::Object(members) = v else {
            return Err("top level is not an object".into());
        };
        let Some(Value::Array(events)) = members
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
        else {
            return Err("missing traceEvents array".into());
        };
        for (i, ev) in events.iter().enumerate() {
            let Value::Object(fields) = ev else {
                return Err(format!("event {i} is not an object"));
            };
            let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
            let Some(Value::String(ph)) = get("ph") else {
                return Err(format!("event {i}: missing ph"));
            };
            if !matches!(get("name"), Some(Value::String(_))) {
                return Err(format!("event {i}: missing name"));
            }
            for k in ["pid", "tid"] {
                if !matches!(get(k), Some(Value::Number(_))) {
                    return Err(format!("event {i}: missing {k}"));
                }
            }
            if ph != "M" && !matches!(get("ts"), Some(Value::Number(_))) {
                return Err(format!("event {i}: missing ts"));
            }
        }
        Ok(events.len())
    }

    /// A parsed JSON value (strings and numbers are kept as text — the
    /// validator only needs structure).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number, kept as its source text.
        Number(String),
        /// A decoded string (escapes resolved enough for comparisons).
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object as ordered members.
        Object(Vec<(String, Value)>),
    }

    /// Parses `s` as a single JSON value.
    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut i = 0;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => Ok(Value::String(string(b, i)?)),
            Some(b't') => lit(b, i, "true", Value::Bool(true)),
            Some(b'f') => lit(b, i, "false", Value::Bool(false)),
            Some(b'n') => lit(b, i, "null", Value::Null),
            Some(_) => number(b, i),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(b: &[u8], i: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {i}"))
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Result<Value, String> {
        let start = *i;
        if matches!(b.get(*i), Some(b'-')) {
            *i += 1;
        }
        let digits = |b: &[u8], i: &mut usize| {
            let s = *i;
            while matches!(b.get(*i), Some(c) if c.is_ascii_digit()) {
                *i += 1;
            }
            *i > s
        };
        if !digits(b, i) {
            return Err(format!("bad number at {start}"));
        }
        if matches!(b.get(*i), Some(b'.')) {
            *i += 1;
            if !digits(b, i) {
                return Err(format!("bad fraction at {start}"));
            }
        }
        if matches!(b.get(*i), Some(b'e' | b'E')) {
            *i += 1;
            if matches!(b.get(*i), Some(b'+' | b'-')) {
                *i += 1;
            }
            if !digits(b, i) {
                return Err(format!("bad exponent at {start}"));
            }
        }
        Ok(Value::Number(
            std::str::from_utf8(&b[start..*i]).unwrap().to_string(),
        ))
    }

    fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
        debug_assert_eq!(b[*i], b'"');
        *i += 1;
        let mut out = String::new();
        loop {
            match b.get(*i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*i + 1..*i + 5)
                                .ok_or_else(|| "short \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *i += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through untouched.
                    out.push(c as char);
                    *i += 1;
                }
            }
        }
    }

    fn array(b: &[u8], i: &mut usize) -> Result<Value, String> {
        *i += 1; // '['
        let mut out = Vec::new();
        skip_ws(b, i);
        if matches!(b.get(*i), Some(b']')) {
            *i += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(Value::Array(out));
                }
                other => return Err(format!("bad array separator {other:?} at {i}")),
            }
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Result<Value, String> {
        *i += 1; // '{'
        let mut out = Vec::new();
        skip_ws(b, i);
        if matches!(b.get(*i), Some(b'}')) {
            *i += 1;
            return Ok(Value::Object(out));
        }
        loop {
            skip_ws(b, i);
            if !matches!(b.get(*i), Some(b'"')) {
                return Err(format!("expected member name at {i}"));
            }
            let k = string(b, i)?;
            skip_ws(b, i);
            if !matches!(b.get(*i), Some(b':')) {
                return Err(format!("expected ':' at {i}"));
            }
            *i += 1;
            let v = value(b, i)?;
            out.push((k, v));
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(Value::Object(out));
                }
                other => return Err(format!("bad object separator {other:?} at {i}")),
            }
        }
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use crate::trace::TraceRing;
    use simcore::Time;

    fn sample_set() -> TraceSet {
        let mut nic = TraceRing::new(Domain::Nic, 16);
        let route = DmaRoute {
            pf: 0,
            src_node: 0,
            dst_node: 0,
            local: true,
            ddio: DdioOutcome::Hit,
        };
        nic.push(
            Time::from_us(1),
            TraceKind::DmaWrite,
            0xdead,
            route.pack(),
            Time::from_us(2).as_ps(),
            1448,
        );
        nic.push(Time::from_us(1), TraceKind::FlowSteered, 0xdead, 0, 3, 0);
        let mut kern = TraceRing::new(Domain::Kernel, 16);
        kern.push(Time::from_us(3), TraceKind::IrqDelivered, 3, 0, 0, 0);
        kern.push(Time::from_us(4), TraceKind::ReconfigPhase, 0, 1, 2, 1);
        let mut set = TraceSet::new();
        set.add(nic);
        set.add(kern);
        set
    }

    #[test]
    fn native_roundtrips() {
        let set = sample_set();
        let text = to_native(&set);
        let parsed = parse_native(&text).unwrap();
        assert_eq!(parsed, set.merged());
    }

    #[test]
    fn chrome_json_validates() {
        let set = sample_set();
        let j = to_chrome_json(&set);
        let n = json::validate_chrome(&j).unwrap();
        // 5 thread-name metadata events + 4 records.
        assert_eq!(n, 9);
    }

    #[test]
    fn folded_weighs_dma_by_bytes() {
        let set = sample_set();
        let folded = to_folded(&set);
        assert!(
            folded.contains("nic;dma_write;pf0;local;ddio_hit 1448"),
            "{folded}"
        );
        assert!(folded.contains("kernel;irq_delivered 1"), "{folded}");
    }

    #[test]
    fn timestamps_render_in_integer_microseconds() {
        assert_eq!(super::ps_as_us(1_234_567), "1.234567");
        assert_eq!(super::ps_as_us(42), "0.000042");
    }

    #[test]
    fn validator_rejects_malformed_events() {
        assert!(json::validate_chrome("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(json::validate_chrome("not json").is_err());
        assert!(json::validate_chrome("[1,2]").is_err());
    }
}
