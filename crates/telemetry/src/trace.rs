//! The span/event tracer: fixed-size sim-time-stamped records in
//! pre-sized per-domain ring buffers.
//!
//! Each emitting component *owns* its ring (`Option<TraceRing>`, `None`
//! until tracing is enabled), which keeps the hot path free of shared
//! handles and keeps the parallel sweep deterministic: a run's records
//! live with the run. At harvest time the rings are collected into a
//! [`TraceSet`] and merged by `(time, domain, seq)` — a total order that
//! does not depend on collection order or thread interleaving.
//!
//! A [`TraceRecord`] is four `u64` arguments plus a kind and timestamp;
//! the meaning of the arguments is fixed per [`TraceKind`] (documented
//! there), so recording never formats, never allocates, and the ring is
//! a flat pre-sized buffer. When the ring wraps, the oldest records are
//! overwritten and counted — a flight-recorder discipline, not a lossy
//! sample.

use simcore::Time;

/// The subsystem a ring belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Domain {
    /// The NIC device model (DMA, steering).
    Nic = 0,
    /// The kernel/driver (IRQ delivery, reconfiguration phases).
    Kernel = 1,
    /// The PCIe fabric.
    Pcie = 2,
    /// The memory system.
    Mem = 3,
    /// The event loop / experiment harness.
    Net = 4,
}

impl Domain {
    /// Stable lowercase name (used by every exporter).
    pub fn name(self) -> &'static str {
        match self {
            Domain::Nic => "nic",
            Domain::Kernel => "kernel",
            Domain::Pcie => "pcie",
            Domain::Mem => "mem",
            Domain::Net => "net",
        }
    }

    /// Parses a name produced by [`Domain::name`].
    pub fn parse(s: &str) -> Option<Domain> {
        Some(match s {
            "nic" => Domain::Nic,
            "kernel" => Domain::Kernel,
            "pcie" => Domain::Pcie,
            "mem" => Domain::Mem,
            "net" => Domain::Net,
            _ => return None,
        })
    }
}

/// What a record describes. The four `u64` arguments (`a..d`) are fixed
/// per kind:
///
/// | kind | a | b | c | d |
/// |---|---|---|---|---|
/// | `FlowSteered` | flow key | PF | queue | 1 if firmware failover |
/// | `DmaRead` | flow key | packed route | landed-at (ps) | bytes |
/// | `DmaWrite` | flow key | packed route | landed-at (ps) | bytes |
/// | `IrqDelivered` | queue | core | epoch | 0 |
/// | `ReconfigPhase` | PF | phase (0 quiesce / 1 drain / 2 rebind) | epoch | mode (0 uniform / 1 NUDMA) |
///
/// The *packed route* of a DMA record is
/// `pf | src_node << 8 | dst_node << 16 | local << 24 | ddio << 25`
/// (`ddio`: 0 miss / 1 hit / 2 not-applicable), built and unpacked by
/// [`DmaRoute`]. The record's own timestamp is the issue time; `c`
/// carries the landing time, so one record covers issued *and* landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// A steering rule bound a flow to a PF/queue.
    FlowSteered = 0,
    /// A device-initiated DMA read (descriptor or payload fetch).
    DmaRead = 1,
    /// A device-initiated DMA write (payload or completion landing).
    DmaWrite = 2,
    /// An MSI-X reached its target core and was accepted (not fenced).
    IrqDelivered = 3,
    /// A hotplug reconfiguration phase transition.
    ReconfigPhase = 4,
}

impl TraceKind {
    /// Stable lowercase name (used by every exporter).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::FlowSteered => "flow_steered",
            TraceKind::DmaRead => "dma_read",
            TraceKind::DmaWrite => "dma_write",
            TraceKind::IrqDelivered => "irq_delivered",
            TraceKind::ReconfigPhase => "reconfig_phase",
        }
    }

    /// Parses a name produced by [`TraceKind::name`].
    pub fn parse(s: &str) -> Option<TraceKind> {
        Some(match s {
            "flow_steered" => TraceKind::FlowSteered,
            "dma_read" => TraceKind::DmaRead,
            "dma_write" => TraceKind::DmaWrite,
            "irq_delivered" => TraceKind::IrqDelivered,
            "reconfig_phase" => TraceKind::ReconfigPhase,
            _ => return None,
        })
    }
}

/// DDIO outcome carried in a DMA record's packed route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdioOutcome {
    /// The write allocated into the LLC (local + DDIO enabled).
    Hit,
    /// The access went to DRAM (remote, or DDIO disabled).
    Miss,
    /// Not a DDIO-eligible access (e.g. a read).
    NotApplicable,
}

/// The packed `(pf, src node, dst node, locality, DDIO)` route of a DMA
/// record (field `b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaRoute {
    /// The PCIe function the transaction flowed through.
    pub pf: u8,
    /// The NUMA node the PF is attached to.
    pub src_node: u8,
    /// The home node of the target address.
    pub dst_node: u8,
    /// Whether the transaction stayed on the PF's node.
    pub local: bool,
    /// DDIO outcome of the access.
    pub ddio: DdioOutcome,
}

impl DmaRoute {
    /// Packs into a record argument.
    pub fn pack(self) -> u64 {
        let ddio = match self.ddio {
            DdioOutcome::Miss => 0u64,
            DdioOutcome::Hit => 1,
            DdioOutcome::NotApplicable => 2,
        };
        self.pf as u64
            | (self.src_node as u64) << 8
            | (self.dst_node as u64) << 16
            | (self.local as u64) << 24
            | ddio << 25
    }

    /// Unpacks a record argument.
    pub fn unpack(v: u64) -> DmaRoute {
        DmaRoute {
            pf: (v & 0xff) as u8,
            src_node: (v >> 8 & 0xff) as u8,
            dst_node: (v >> 16 & 0xff) as u8,
            local: v >> 24 & 1 == 1,
            ddio: match v >> 25 & 0b11 {
                1 => DdioOutcome::Hit,
                2 => DdioOutcome::NotApplicable,
                _ => DdioOutcome::Miss,
            },
        }
    }
}

/// One trace record: fixed size, no heap, meaning of `a..d` fixed per
/// [`TraceKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated issue time.
    pub t: Time,
    /// Per-ring monotone sequence number (assigned at push; survives
    /// ring wrap, so merged order is total and stable).
    pub seq: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-specific argument (see [`TraceKind`]).
    pub a: u64,
    /// Kind-specific argument.
    pub b: u64,
    /// Kind-specific argument.
    pub c: u64,
    /// Kind-specific argument.
    pub d: u64,
}

/// A pre-sized ring buffer of [`TraceRecord`]s owned by one component.
///
/// `push` never allocates: the backing store is reserved up front and
/// wraps in place, overwriting the oldest records (counted in
/// `overwritten`). Without the crate's `trace` feature, `push` is a
/// no-op and compiles away.
#[derive(Debug, Clone)]
pub struct TraceRing {
    domain: Domain,
    buf: Vec<TraceRecord>,
    cap: usize,
    head: usize,
    next_seq: u64,
    overwritten: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `cap` records (cold path: the one
    /// allocation the tracer ever performs).
    pub fn new(domain: Domain, cap: usize) -> Self {
        assert!(cap > 0, "a trace ring needs capacity");
        TraceRing {
            domain,
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            next_seq: 0,
            overwritten: 0,
        }
    }

    /// The ring's domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Records one event (hot path: branch + indexed store, no
    /// allocation — the buffer was reserved at construction).
    #[inline]
    pub fn push(&mut self, t: Time, kind: TraceKind, a: u64, b: u64, c: u64, d: u64) {
        #[cfg(feature = "trace")]
        {
            let r = TraceRecord {
                t,
                seq: self.next_seq,
                kind,
                a,
                b,
                c,
                d,
            };
            self.next_seq += 1;
            if self.buf.len() < self.cap {
                self.buf.push(r);
            } else {
                self.buf[self.head] = r;
                self.head = (self.head + 1) % self.cap;
                self.overwritten += 1;
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (t, kind, a, b, c, d);
        }
    }

    /// Records pushed since construction.
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Records lost to ring wrap.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// The retained records in seq order (cold path; allocates).
    pub fn drain_sorted(&self) -> Vec<TraceRecord> {
        let mut v = self.buf.clone();
        v.sort_by_key(|r| r.seq);
        v
    }
}

/// A harvested collection of rings, ready for export.
#[derive(Debug, Default)]
pub struct TraceSet {
    rings: Vec<TraceRing>,
}

impl TraceSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        TraceSet { rings: Vec::new() }
    }

    /// Adds a component's ring.
    pub fn add(&mut self, ring: TraceRing) {
        self.rings.push(ring);
    }

    /// Total records currently retained.
    pub fn retained(&self) -> usize {
        self.rings.iter().map(|r| r.buf.len()).sum()
    }

    /// Total records lost to ring wrap across all rings.
    pub fn overwritten(&self) -> u64 {
        self.rings.iter().map(|r| r.overwritten).sum()
    }

    /// All records merged into the canonical total order:
    /// `(time, domain, seq)`. Collection order of the rings is
    /// irrelevant, so serial and parallel harvests agree bit-for-bit.
    pub fn merged(&self) -> Vec<(Domain, TraceRecord)> {
        let mut out: Vec<(Domain, TraceRecord)> = Vec::with_capacity(self.retained());
        for ring in &self.rings {
            for r in &ring.buf {
                out.push((ring.domain, *r));
            }
        }
        out.sort_by_key(|(d, r)| (r.t, *d, r.seq));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_pack_roundtrip() {
        let r = DmaRoute {
            pf: 1,
            src_node: 0,
            dst_node: 1,
            local: false,
            ddio: DdioOutcome::Hit,
        };
        assert_eq!(DmaRoute::unpack(r.pack()), r);
        let r2 = DmaRoute {
            pf: 0,
            src_node: 1,
            dst_node: 1,
            local: true,
            ddio: DdioOutcome::NotApplicable,
        };
        assert_eq!(DmaRoute::unpack(r2.pack()), r2);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn ring_wraps_without_growing() {
        let mut r = TraceRing::new(Domain::Nic, 4);
        for i in 0..10u64 {
            r.push(Time::from_ns(i), TraceKind::DmaRead, i, 0, 0, 0);
        }
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.overwritten(), 6);
        assert!(r.buf.capacity() <= 4, "never grew");
        let kept = r.drain_sorted();
        assert_eq!(kept.len(), 4);
        assert_eq!(kept[0].a, 6, "oldest retained is seq 6");
        assert_eq!(kept[3].a, 9);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn merge_order_is_collection_order_independent() {
        let mut a = TraceRing::new(Domain::Nic, 8);
        let mut b = TraceRing::new(Domain::Kernel, 8);
        a.push(Time::from_ns(2), TraceKind::DmaRead, 1, 0, 0, 0);
        b.push(Time::from_ns(1), TraceKind::IrqDelivered, 2, 0, 0, 0);
        a.push(Time::from_ns(1), TraceKind::DmaWrite, 3, 0, 0, 0);

        let mut s1 = TraceSet::new();
        s1.add(a.clone());
        s1.add(b.clone());
        let mut s2 = TraceSet::new();
        s2.add(b);
        s2.add(a);
        assert_eq!(s1.merged(), s2.merged());
        let m = s1.merged();
        assert_eq!(m[0].1.a, 3, "t=1ns nic before kernel (domain order)");
        assert_eq!(m[1].1.a, 2);
        assert_eq!(m[2].1.a, 1);
    }
}
