//! `telemetry-dump` — pretty-print, diff and validate trace artifacts.
//!
//! ```text
//! telemetry-dump print <run.trace>        pretty-print a native artifact
//! telemetry-dump diff <a.trace> <b.trace> first divergence between two artifacts
//! telemetry-dump check-json <run.json>    validate Chrome trace_event schema
//! ```
//!
//! Exit status: 0 on success / identical / valid; 1 on divergence or
//! validation failure; 2 on usage or I/O errors. Everything here runs on
//! artifact files after the simulation has finished — no wallclock, no
//! environment probing, so identical inputs give identical output.

use std::process::ExitCode;

use telemetry::export::{json, parse_native};
use telemetry::trace::{DdioOutcome, DmaRoute, Domain, TraceKind, TraceRecord};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["print", path] => cmd_print(path),
        ["diff", a, b] => cmd_diff(a, b),
        ["check-json", path] => cmd_check_json(path),
        _ => {
            eprintln!(
                "usage: telemetry-dump print <run.trace>\n\
                 \x20      telemetry-dump diff <a.trace> <b.trace>\n\
                 \x20      telemetry-dump check-json <run.json>"
            );
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<Vec<(Domain, TraceRecord)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_native(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_print(path: &str) -> ExitCode {
    let records = match load(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    println!("{path}: {} records", records.len());
    for (d, r) in &records {
        println!("{}", render(*d, r));
    }
    ExitCode::SUCCESS
}

fn cmd_diff(a_path: &str, b_path: &str) -> ExitCode {
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    for (i, (ra, rb)) in a.iter().zip(&b).enumerate() {
        if ra != rb {
            println!("first divergence at record {i}:");
            println!("  - {}", render(ra.0, &ra.1));
            println!("  + {}", render(rb.0, &rb.1));
            return ExitCode::FAILURE;
        }
    }
    if a.len() != b.len() {
        println!(
            "common prefix identical; lengths differ: {} vs {} records",
            a.len(),
            b.len()
        );
        return ExitCode::FAILURE;
    }
    println!("identical: {} records", a.len());
    ExitCode::SUCCESS
}

fn cmd_check_json(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    match json::validate_chrome(&text) {
        Ok(n) => {
            println!("{path}: valid Chrome trace ({n} events)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One human-readable line per record, fixed-width time in microseconds.
fn render(d: Domain, r: &TraceRecord) -> String {
    let ps = r.t.as_ps();
    let stamp = format!("{:>7}.{:06}us", ps / 1_000_000, ps % 1_000_000);
    let body = match r.kind {
        TraceKind::FlowSteered => format!(
            "flow {:#x} -> pf{} q{}{}",
            r.a,
            r.b,
            r.c,
            if r.d == 1 { " (failover)" } else { "" }
        ),
        TraceKind::DmaRead | TraceKind::DmaWrite => {
            let route = DmaRoute::unpack(r.b);
            let dir = if r.kind == TraceKind::DmaWrite {
                "write"
            } else {
                "read"
            };
            let ddio = match route.ddio {
                DdioOutcome::Hit => " ddio-hit",
                DdioOutcome::Miss => " ddio-miss",
                DdioOutcome::NotApplicable => "",
            };
            format!(
                "dma-{dir} {}B pf{} node{}->node{} {}{} flow {:#x} lands {}.{:06}us",
                r.d,
                route.pf,
                route.src_node,
                route.dst_node,
                if route.local { "local" } else { "REMOTE" },
                ddio,
                r.a,
                r.c / 1_000_000,
                r.c % 1_000_000,
            )
        }
        TraceKind::IrqDelivered => {
            format!("irq q{} -> core {} (epoch {})", r.a, r.b, r.c)
        }
        TraceKind::ReconfigPhase => {
            let phase = match r.b {
                0 => "quiesce",
                1 => "drain",
                _ => "rebind",
            };
            format!(
                "reconfig {phase} pf{} epoch {} -> {} mode",
                r.a,
                r.c,
                if r.d == 1 { "NUDMA" } else { "uniform" }
            )
        }
    };
    format!("{stamp} [{:<6}] {body}", d.name())
}
