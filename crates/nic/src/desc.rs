//! Descriptors: the I/O requests the OS posts and the completions the
//! device writes back (§2.3).

use memsys::PhysAddr;

use crate::flow::FlowTuple;

/// Size of one work descriptor in host memory (a Mellanox WQE).
pub const DESC_BYTES: u64 = 64;
/// Size of one completion entry in host memory (a CQE). Reading one of
/// these from DRAM after a remote DMA write "costs about 80 ns, which is
/// essentially the delta between the per-packet costs of ioct/local and
/// remote" (§5.1.1).
pub const CQE_BYTES: u64 = 64;

/// One fragment of a transmit payload.
///
/// `pf_hint` is the IOctoSG extension (§3.3): for payloads spanning NUMA
/// nodes, the driver can tell the device which PF to fetch each fragment
/// through, so every fragment DMA stays node-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxFragment {
    /// Fragment start.
    pub addr: PhysAddr,
    /// Fragment length in bytes.
    pub len: u64,
    /// IOctoSG per-fragment PF hint (`None` = use the queue's PF).
    pub pf_hint: Option<pcie::PfId>,
}

impl TxFragment {
    /// A fragment without an IOctoSG hint.
    pub fn plain(addr: PhysAddr, len: u64) -> Self {
        TxFragment {
            addr,
            len,
            pf_hint: None,
        }
    }
}

/// Fragment list with the first fragment stored inline.
///
/// Nearly every descriptor carries exactly one fragment, and the TX path
/// posts one descriptor per message chunk — a `Vec` here would be a heap
/// allocation per packet on the steady-state hot path (the
/// `alloc_regression` test holds that line at zero). The inline slot makes
/// the common case allocation-free; scatter-gather descriptors (IOctoSG
/// sendfile, §3.3) spill fragments beyond the first into `rest`, reusing
/// the builder's `Vec`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FragList {
    first: Option<TxFragment>,
    rest: Vec<TxFragment>,
}

impl FragList {
    /// A single-fragment list. Performs no heap allocation.
    pub fn one(frag: TxFragment) -> Self {
        FragList {
            first: Some(frag),
            rest: Vec::new(),
        }
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        usize::from(self.first.is_some()) + self.rest.len()
    }

    /// Whether the list holds no fragments.
    pub fn is_empty(&self) -> bool {
        self.first.is_none()
    }

    /// Iterates the fragments in order.
    pub fn iter(&self) -> impl Iterator<Item = &TxFragment> {
        self.first.iter().chain(self.rest.iter())
    }
}

impl From<Vec<TxFragment>> for FragList {
    fn from(mut v: Vec<TxFragment>) -> Self {
        if v.is_empty() {
            return FragList::default();
        }
        // Keep the caller's allocation for the tail instead of copying.
        let first = v.remove(0);
        FragList {
            first: Some(first),
            rest: v,
        }
    }
}

impl std::ops::Index<usize> for FragList {
    type Output = TxFragment;
    fn index(&self, i: usize) -> &TxFragment {
        match i {
            0 => self.first.as_ref().expect("empty fragment list"),
            _ => &self.rest[i - 1],
        }
    }
}

impl std::ops::IndexMut<usize> for FragList {
    fn index_mut(&mut self, i: usize) -> &mut TxFragment {
        match i {
            0 => self.first.as_mut().expect("empty fragment list"),
            _ => &mut self.rest[i - 1],
        }
    }
}

impl<'a> IntoIterator for &'a FragList {
    type Item = &'a TxFragment;
    type IntoIter =
        std::iter::Chain<std::option::Iter<'a, TxFragment>, std::slice::Iter<'a, TxFragment>>;
    fn into_iter(self) -> Self::IntoIter {
        self.first.iter().chain(self.rest.iter())
    }
}

/// A transmit work descriptor: one *wire packet* (post-TSO segmentation is
/// performed by the device; see [`crate::tso`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxDesc {
    /// Payload fragments (usually one).
    pub fragments: FragList,
    /// The flow this packet belongs to.
    pub flow: FlowTuple,
    /// Total payload bytes across fragments, pre-segmentation. Up to 64 KiB
    /// with TSO.
    pub len: u64,
    /// TSO: segment into MTU-sized wire packets on the device.
    pub tso: bool,
}

impl TxDesc {
    /// A simple single-fragment descriptor. Performs no heap allocation —
    /// this is the constructor on the per-packet send path.
    pub fn simple(addr: PhysAddr, len: u64, flow: FlowTuple, tso: bool) -> Self {
        TxDesc {
            fragments: FragList::one(TxFragment::plain(addr, len)),
            flow,
            len,
            tso,
        }
    }

    /// Validates internal consistency (fragment lengths sum to `len`).
    pub fn is_consistent(&self) -> bool {
        self.fragments.iter().map(|f| f.len).sum::<u64>() == self.len && self.len > 0
    }
}

/// A receive work descriptor: an empty buffer the kernel posted for the
/// device to fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxDesc {
    /// Buffer start (kernel-allocated, node-local to the queue).
    pub addr: PhysAddr,
    /// Buffer capacity in bytes (≥ MTU).
    pub len: u64,
}

/// A completion entry the device DMA-writes after servicing a descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Bytes transferred.
    pub bytes: u64,
    /// Per-flow sequence number of the packet (Rx: stamped by the sender;
    /// used to detect out-of-order delivery across steering updates).
    pub seq: u64,
    /// Flow of the completed packet.
    pub flow: FlowTuple,
    /// For Rx: the buffer that now holds the packet.
    pub buffer: Option<RxDesc>,
    /// When the entry became visible in host memory. The driver must not
    /// observe it earlier — NAPI paces itself with these landings, which is
    /// how congested DMA paths slow the consumer.
    pub landed_at: simcore::Time,
    /// Error status: the descriptor was aborted rather than serviced (its
    /// PF failed or the PCIe link under it dropped). The driver counts
    /// these and retries or tears down, but must not treat the payload as
    /// transferred.
    pub error: bool,
    /// Device epoch of the producing PF at issue time. A completion whose
    /// epoch is older than the PF's current epoch was in flight across a
    /// surprise removal / re-enumeration; the driver *fences* it — counts
    /// and recycles it, never delivers it.
    pub epoch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowTuple {
        FlowTuple::tcp(1, 2, 3, 4)
    }

    #[test]
    fn simple_desc_is_consistent() {
        let d = TxDesc::simple(PhysAddr(0), 1500, flow(), false);
        assert!(d.is_consistent());
        assert_eq!(d.fragments.len(), 1);
        assert_eq!(d.fragments[0].pf_hint, None);
    }

    #[test]
    fn inconsistent_fragments_detected() {
        let mut d = TxDesc::simple(PhysAddr(0), 1500, flow(), false);
        d.fragments[0].len = 100;
        assert!(!d.is_consistent());
    }

    #[test]
    fn zero_length_is_inconsistent() {
        let d = TxDesc {
            fragments: FragList::default(),
            flow: flow(),
            len: 0,
            tso: false,
        };
        assert!(!d.is_consistent());
    }

    #[test]
    fn ioctosg_fragment_carries_hint() {
        let f = TxFragment {
            addr: PhysAddr(0),
            len: 64,
            pf_hint: Some(pcie::PfId(1)),
        };
        assert_eq!(f.pf_hint, Some(pcie::PfId(1)));
    }
}
