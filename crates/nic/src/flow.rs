//! Flow identification: 5-tuples and MAC addresses.

use std::fmt;

/// Transport protocol of a flow (the fifth tuple element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
}

/// An IP flow, "uniquely identified by its 5-tuple: source IP, source port,
/// destination IP, destination port, and protocol ID" (paper, footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl FlowTuple {
    /// Convenience constructor for a TCP flow.
    pub fn tcp(src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16) -> Self {
        FlowTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Protocol::Tcp,
        }
    }

    /// Convenience constructor for a UDP flow.
    pub fn udp(src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16) -> Self {
        FlowTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Protocol::Udp,
        }
    }

    /// The reverse direction of this flow (responses).
    pub fn reversed(self) -> FlowTuple {
        FlowTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// A stable 64-bit identity for telemetry (FNV-1a over the 5-tuple in
    /// canonical field order). Unlike [`FlowTuple::rss_hash`] this key is
    /// part of the trace-artifact format, so its definition must never
    /// change.
    pub fn key(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let proto = match self.proto {
            Protocol::Tcp => 6u8,
            Protocol::Udp => 17,
        };
        for b in self
            .src_ip
            .to_be_bytes()
            .into_iter()
            .chain(self.dst_ip.to_be_bytes())
            .chain(self.src_port.to_be_bytes())
            .chain(self.dst_port.to_be_bytes())
            .chain([proto])
        {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    /// A deterministic hash used for RSS-style queue selection
    /// (Toeplitz-flavored mixing; exact polynomial irrelevant to the model).
    pub fn rss_hash(&self) -> u64 {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for v in [
            self.src_ip as u64,
            self.dst_ip as u64,
            self.src_port as u64,
            self.dst_port as u64,
            match self.proto {
                Protocol::Tcp => 6,
                Protocol::Udp => 17,
            },
        ] {
            h ^= v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h = h.rotate_left(31).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        }
        h
    }
}

impl fmt::Display for FlowTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {}.{} -> {}.{}",
            self.proto, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

/// A 48-bit Ethernet MAC address. The octoNIC exposes exactly one to the
/// outside world (§3.3: "An IOctopus NIC (octoNIC) has a single interface
/// with the external world — a single physical port and MAC address").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub u64);

impl MacAddr {
    /// A deterministic locally administered address for unit `i`.
    pub fn local_admin(i: u64) -> MacAddr {
        MacAddr(0x0200_0000_0000 | (i & 0xFFFF_FFFF))
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0.to_be_bytes();
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[2], b[3], b[4], b[5], b[6], b[7]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    #[test]
    fn reversed_swaps_endpoints() {
        let f = FlowTuple::tcp(1, 100, 2, 200);
        let r = f.reversed();
        assert_eq!(r.src_ip, 2);
        assert_eq!(r.dst_ip, 1);
        assert_eq!(r.src_port, 200);
        assert_eq!(r.dst_port, 100);
        assert_eq!(r.reversed(), f);
    }

    #[test]
    fn hash_is_deterministic_and_direction_sensitive() {
        let f = FlowTuple::tcp(1, 100, 2, 200);
        assert_eq!(f.rss_hash(), f.rss_hash());
        assert_ne!(f.rss_hash(), f.reversed().rss_hash());
    }

    #[test]
    fn tcp_udp_differ() {
        let t = FlowTuple::tcp(1, 1, 2, 2);
        let u = FlowTuple::udp(1, 1, 2, 2);
        assert_ne!(t, u);
        assert_ne!(t.rss_hash(), u.rss_hash());
    }

    #[test]
    fn key_is_direction_sensitive_and_proto_sensitive() {
        let f = FlowTuple::tcp(1, 100, 2, 200);
        assert_eq!(f.key(), f.key());
        assert_ne!(f.key(), f.reversed().key());
        assert_ne!(f.key(), FlowTuple::udp(1, 100, 2, 200).key());
        assert_ne!(f.key(), f.rss_hash(), "key and RSS hash are independent");
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr::local_admin(1).to_string(), "02:00:00:00:00:01");
    }

    #[test]
    fn prop_reverse_involution() {
        let mut r = SimRng::seed(0xf10e);
        for _ in 0..256 {
            let a = r.next_u64() as u32;
            let b = r.next_u64() as u32;
            let p = r.next_u64() as u16;
            let q = r.next_u64() as u16;
            let f = FlowTuple::tcp(a, p, b, q);
            assert_eq!(f.reversed().reversed(), f);
        }
    }

    #[test]
    fn prop_hash_spreads() {
        let mut r = SimRng::seed(0xf10f);
        for _ in 0..256 {
            let n = 1 + r.below(9_999) as u32;
            // Different ports must not all collide mod a small queue count.
            let h1 = FlowTuple::tcp(1, n as u16, 2, 7).rss_hash() % 14;
            let h2 = FlowTuple::tcp(1, n.wrapping_add(1) as u16, 2, 7).rss_hash() % 14;
            // They *may* collide, but the hash itself must differ.
            assert!(h1 < 14 && h2 < 14);
        }
    }
}
