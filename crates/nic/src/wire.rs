//! The Ethernet wire between the server NIC and its back-to-back peer
//! (§5: "The client is connected back-to-back to one of the server NIC's
//! ports").

use simcore::{BwLink, Dur, Time};

/// Ethernet framing overhead per wire packet: preamble (8) + FCS (4) +
/// inter-frame gap (12).
pub const FRAME_OVERHEAD_BYTES: u64 = 24;
/// Ethernet + IP + TCP headers carried on the wire per packet.
pub const HEADER_BYTES: u64 = 14 + 20 + 20;
/// Standard MTU used throughout the paper's evaluation.
pub const MTU: u64 = 1500;
/// MSS implied by the MTU (IP + TCP headers subtracted).
pub const MSS: u64 = MTU - 40;

/// Wire parameters.
#[derive(Debug, Clone, Copy)]
pub struct WireConfig {
    /// Line rate in bytes/second.
    pub bytes_per_sec: u64,
    /// One-way propagation + PHY/MAC pipeline latency.
    pub latency: Dur,
}

impl WireConfig {
    /// 100 GbE back-to-back.
    pub fn back_to_back_100g() -> Self {
        WireConfig {
            bytes_per_sec: BwLink::gbps(100.0),
            latency: Dur::from_ns(600),
        }
    }
}

/// One full-duplex wire: independent per-direction bandwidth servers.
#[derive(Debug)]
pub struct Wire {
    /// Server → client direction.
    pub tx: BwLink,
    /// Client → server direction.
    pub rx: BwLink,
}

impl Wire {
    /// Builds the wire.
    pub fn new(cfg: WireConfig) -> Self {
        Wire {
            tx: BwLink::new("wire-tx", cfg.bytes_per_sec, cfg.latency),
            rx: BwLink::new("wire-rx", cfg.bytes_per_sec, cfg.latency),
        }
    }

    /// Bytes a `payload`-byte packet occupies on the wire.
    pub fn wire_bytes(payload: u64) -> u64 {
        payload + HEADER_BYTES + FRAME_OVERHEAD_BYTES
    }

    /// Sends `payload` bytes server→client; returns arrival time at the peer.
    pub fn send_tx(&mut self, now: Time, payload: u64) -> Time {
        self.tx.reserve(now, Self::wire_bytes(payload))
    }

    /// Sends `payload` bytes client→server; returns arrival time at the
    /// server NIC.
    pub fn send_rx(&mut self, now: Time, payload: u64) -> Time {
        self.rx.reserve(now, Self::wire_bytes(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_include_framing() {
        assert_eq!(Wire::wire_bytes(1448), 1448 + 54 + 24);
    }

    #[test]
    fn line_rate_bounds_throughput() {
        let mut w = Wire::new(WireConfig::back_to_back_100g());
        // 10,000 MTU packets back-to-back: at 100 Gb/s the last one lands
        // no earlier than total_bytes / rate.
        let mut last = Time::ZERO;
        for _ in 0..10_000 {
            last = w.send_rx(Time::ZERO, 1448);
        }
        let total_wire: u64 = 10_000 * Wire::wire_bytes(1448);
        let floor = total_wire as f64 / 12.5e9;
        assert!(last.as_secs() >= floor, "{} < {floor}", last.as_secs());
    }

    #[test]
    fn directions_independent() {
        let mut w = Wire::new(WireConfig::back_to_back_100g());
        for _ in 0..1000 {
            w.send_tx(Time::ZERO, 1448);
        }
        // Rx direction unaffected by Tx backlog.
        let arr = w.send_rx(Time::ZERO, 64);
        assert!(arr < Time::from_us(1));
    }

    #[test]
    fn latency_applied() {
        let mut w = Wire::new(WireConfig::back_to_back_100g());
        let arr = w.send_tx(Time::ZERO, 64);
        assert!(arr >= Time::from_ns(600));
    }
}
