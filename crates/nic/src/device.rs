//! The NIC device model: queues, DMA pipelines, steering, interrupts.
//!
//! One [`Nic`] instance models the server's adapter — either a conventional
//! NIC (every PF a separate logical device, MAC-steered) or the octoNIC
//! (one MAC, IOctoRFS flow steering). The difference is *only* firmware
//! state ([`SteeringMode`]) plus which driver manages it, exactly as in the
//! paper (§4.1: "By loading our IOctopus firmware, we can turn the server's
//! NIC into an octoNIC").

use std::cell::Cell;

use memsys::{MemSystem, NodeId, PhysAddr};
use pcie::{PcieFabric, PfId};
use simcore::{Dur, Time};
use telemetry::trace::{DdioOutcome, DmaRoute, Domain, TraceKind};
use telemetry::{FlightRecorder, LocalityTable, Snapshot, TraceRing};

use crate::desc::{Completion, RxDesc, TxDesc, CQE_BYTES, DESC_BYTES};
use crate::flow::{FlowTuple, MacAddr};
use crate::mpfs::{Mpfs, SteeringMode};
use crate::ring::DescRing;
use crate::steering::ArfsTable;
use crate::tso;
use crate::wire::{Wire, WireConfig};

/// Identifies one queue pair (Tx + Rx rings and their completion queues).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueId(pub usize);

impl std::fmt::Display for QueueId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Device-wide parameters.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Wire MTU.
    pub mtu: u64,
    /// TCP MSS (MTU minus IP/TCP headers).
    pub mss: u64,
    /// Ring capacity (descriptors per ring).
    pub ring_entries: usize,
    /// Per-packet device pipeline latency (parse, steer, schedule).
    pub processing_delay: Dur,
    /// Interrupt moderation delay: time from completion to MSI-X fire while
    /// armed. Zero models §5.1.2's "disable adaptive interrupt coalescing".
    pub irq_delay: Dur,
    /// Steering firmware.
    pub steering: SteeringMode,
    /// Wire parameters.
    pub wire: WireConfig,
}

impl NicConfig {
    /// The paper's server NIC as shipped (standard firmware).
    pub fn standard_100g() -> Self {
        NicConfig {
            mtu: crate::wire::MTU,
            mss: crate::wire::MSS,
            ring_entries: 1024,
            processing_delay: Dur::from_ns(10),
            irq_delay: Dur::from_us(8),
            steering: SteeringMode::MacBased,
            wire: WireConfig::back_to_back_100g(),
        }
    }

    /// The same hardware after loading the IOctopus firmware.
    pub fn octonic_100g() -> Self {
        NicConfig {
            steering: SteeringMode::FlowBased,
            ..Self::standard_100g()
        }
    }
}

/// Static configuration of one queue pair.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// The PCIe endpoint this queue's DMA flows through.
    pub pf: PfId,
    /// The core whose interrupts service this queue.
    pub irq_core: usize,
    /// The NUMA node the queue's rings and buffers live on.
    pub node: NodeId,
}

#[derive(Debug)]
struct Queue {
    cfg: QueueConfig,
    tx_ring: DescRing<TxDesc>,
    tx_cq: DescRing<Completion>,
    rx_ring: DescRing<RxDesc>,
    rx_cq: DescRing<Completion>,
    irq_armed: bool,
    busy_until: Time,
    /// Rx buffers the hardware popped from the ring and then lost (the
    /// link dropped mid-DMA, so the buffer could not be returned). The
    /// host's pool-conservation audit subtracts these from the pool
    /// capacity it expects to account for.
    rx_bufs_lost: u64,
}

/// What happened to an arriving wire packet.
#[derive(Debug, Clone)]
pub enum RxOutcome {
    /// Delivered into a posted buffer; a completion entry was written.
    Delivered {
        /// Queue the packet landed on.
        queue: QueueId,
        /// PF the DMA went through (for per-PF accounting).
        pf: PfId,
        /// When the payload + CQE writes finished.
        done_at: Time,
        /// MSI-X delivery, if one fired: `(time, target core)`.
        irq: Option<(Time, usize)>,
    },
    /// No posted Rx buffer — the packet was dropped.
    DroppedNoBuffer {
        /// Queue whose ring was empty.
        queue: QueueId,
    },
    /// The steered PF is dead and no surviving PF could take the packet
    /// (standard firmware has no cross-PF path; or every PF is down).
    DroppedPfDead {
        /// The dead PF the packet was steered to.
        pf: PfId,
    },
    /// The PCIe link under the delivery PF dropped mid-transfer.
    DroppedLinkDown {
        /// Queue the packet was headed for.
        queue: QueueId,
        /// The PF whose link is down.
        pf: PfId,
    },
    /// The steered PF has no attached queues to land the packet on.
    DroppedNoQueue {
        /// The queueless PF.
        pf: PfId,
    },
}

/// Result of processing a Tx doorbell.
#[derive(Debug, Clone, Default)]
pub struct TxOutcome {
    /// Wire packets sent: `(arrival time at peer, flow, payload bytes)`.
    pub packets: Vec<(Time, FlowTuple, u64)>,
    /// When each descriptor's completion entry landed in host memory.
    pub completions: Vec<Time>,
    /// MSI-X delivery, if one fired: `(time, target core)`.
    pub irq: Option<(Time, usize)>,
    /// Descriptors that completed with error status instead of reaching
    /// the wire (dead PF, dead link).
    pub errors: u64,
}

impl TxOutcome {
    /// Empties the outcome for reuse, keeping the vectors' capacity so a
    /// recycled scratch outcome never reallocates in steady state.
    pub fn clear(&mut self) {
        self.packets.clear();
        self.completions.clear();
        self.irq = None;
        self.errors = 0;
    }
}

/// Robustness counters: everything the device absorbed instead of
/// panicking. Deterministic for a given run (same seed + same fault plan).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicCounters {
    /// Descriptors completed with error status (PF failed / link down).
    pub error_completions: u64,
    /// Flow rules migrated off failed PFs by firmware failover.
    pub resteered_flows: u64,
    /// Wire packets dropped because their PF was dead with no failover
    /// path (plus packets steered to a PF with no queues).
    pub dropped_pf_dead: u64,
    /// Interrupts that should have fired but never reached the host
    /// (injected IRQ loss, or the link dropped under the MSI-X write).
    pub lost_irqs: u64,
    /// Operations that referenced a queue the device does not have.
    pub invalid_refs: u64,
    /// PF failure events absorbed.
    pub pf_fails: u64,
    /// PF recovery events absorbed.
    pub pf_recoveries: u64,
}

/// The NIC device.
#[derive(Debug)]
pub struct Nic {
    cfg: NicConfig,
    queues: Vec<Queue>,
    mpfs: Mpfs,
    arfs: Vec<ArfsTable>,
    wire: Wire,
    pf_count: usize,
    rx_bytes_per_pf: Vec<u64>,
    tx_bytes_per_pf: Vec<u64>,
    rx_dropped: u64,
    rx_no_buffer: u64,
    pf_alive: Vec<bool>,
    irq_loss_pending: Vec<bool>,
    /// Per-PF device epoch mirrored from the fabric by the driver's hotplug
    /// path: every completion the device writes is stamped with its PF's
    /// epoch at issue time, so the driver can fence stale entries after a
    /// surprise removal / re-enumeration.
    pf_epoch: Vec<u64>,
    home_default: PfId,
    counters: NicCounters,
    invalid_refs: Cell<u64>,
    /// Sim-time tracer ring, `None` (one branch per site) unless enabled.
    tracer: Option<TraceRing>,
    /// NUMA-locality flight recorder, `None` unless enabled.
    flight: Option<FlightRecorder>,
}

impl Nic {
    /// Creates the device with `pf_count` physical functions. `default_pf`
    /// catches traffic no steering rule matches.
    pub fn new(cfg: NicConfig, pf_count: usize, default_pf: PfId) -> Self {
        assert!(pf_count > 0, "a NIC needs at least one PF");
        assert!(default_pf.0 < pf_count, "default PF out of range");
        Nic {
            mpfs: Mpfs::new(cfg.steering, default_pf),
            cfg,
            queues: Vec::new(),
            arfs: vec![ArfsTable::new(Dur::from_ms(500)); pf_count],
            wire: Wire::new(cfg.wire),
            pf_count,
            rx_bytes_per_pf: vec![0; pf_count],
            tx_bytes_per_pf: vec![0; pf_count],
            rx_dropped: 0,
            rx_no_buffer: 0,
            pf_alive: vec![true; pf_count],
            irq_loss_pending: vec![false; pf_count],
            pf_epoch: vec![0; pf_count],
            home_default: default_pf,
            counters: NicCounters::default(),
            invalid_refs: Cell::new(0),
            tracer: None,
            flight: None,
        }
    }

    /// Enables sim-time tracing into a pre-sized ring of `cap` records
    /// (the one allocation tracing performs; the steady-state record path
    /// stays alloc-free). Off by default.
    pub fn enable_tracing(&mut self, cap: usize) {
        self.tracer = Some(TraceRing::new(Domain::Nic, cap));
    }

    /// Takes the tracer ring for harvest, disabling tracing.
    pub fn take_trace(&mut self) -> Option<TraceRing> {
        self.tracer.take()
    }

    /// Enables the NUMA-locality flight recorder with room for `cap`
    /// distinct `(flow, PF)` rows. Off by default.
    pub fn enable_flight_recorder(&mut self, cap: usize) {
        self.flight = Some(FlightRecorder::new(cap));
    }

    /// A sorted snapshot of the locality ledger, if recording is enabled.
    pub fn flight_table(&self) -> Option<LocalityTable> {
        self.flight.as_ref().map(|f| f.table())
    }

    /// Publishes the device's counters into a per-run metric snapshot.
    pub fn publish_metrics(&self, s: &mut Snapshot) {
        let c = self.counters();
        s.push("nic.error_completions", c.error_completions);
        s.push("nic.resteered_flows", c.resteered_flows);
        s.push("nic.dropped_pf_dead", c.dropped_pf_dead);
        s.push("nic.lost_irqs", c.lost_irqs);
        s.push("nic.invalid_refs", c.invalid_refs);
        s.push("nic.pf_fails", c.pf_fails);
        s.push("nic.pf_recoveries", c.pf_recoveries);
        s.push("nic.rx.dropped", self.rx_dropped);
        s.push("nic.rx.no_buffer", self.rx_no_buffer);
        s.push("nic.rx.bytes", self.rx_bytes_per_pf.iter().sum());
        s.push("nic.tx.bytes", self.tx_bytes_per_pf.iter().sum());
        if let Some(fr) = &self.flight {
            let t = fr.table();
            s.push("nic.dma.local_bytes", t.totals.local_bytes());
            s.push("nic.dma.remote_bytes", t.totals.remote_bytes());
            s.push("nic.dma.ddio_hits", t.totals.ddio_hits);
            s.push("nic.dma.ddio_misses", t.totals.ddio_misses);
            s.push("nic.dma.qpi_crossings", t.totals.qpi_crossings);
        }
    }

    /// Whether any telemetry sink wants per-DMA notifications (hot-path
    /// guard: one load per packet when everything is off).
    #[inline]
    fn telemetry_on(&self) -> bool {
        self.tracer.is_some() || self.flight.is_some()
    }

    /// Feeds one DMA transaction to the enabled telemetry sinks. The NIC
    /// is the one component that knows the flow, the PF, *and* the target
    /// address at the same time, so locality is classified here:
    /// `local` means the PF's I/O controller and the address's home node
    /// coincide; DDIO applies to payload writes only.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn note_dma(
        &mut self,
        now: Time,
        flow: u64,
        pf: PfId,
        dev_node: Option<NodeId>,
        addr: PhysAddr,
        bytes: u64,
        write: bool,
        payload: bool,
        ddio_on: bool,
        d: Dur,
    ) {
        let home = addr.home();
        let local = dev_node == Some(home);
        let ddio_hit = if write && payload {
            Some(local && ddio_on)
        } else {
            None
        };
        if let Some(fr) = &mut self.flight {
            fr.record_dma(flow, pf.0 as u32, bytes, write, local, ddio_hit);
        }
        if let Some(tr) = &mut self.tracer {
            let dev = dev_node.map_or(0, |n| n.0 as u8);
            let route = DmaRoute {
                pf: pf.0 as u8,
                src_node: if write { dev } else { home.0 as u8 },
                dst_node: if write { home.0 as u8 } else { dev },
                local,
                ddio: match ddio_hit {
                    Some(true) => DdioOutcome::Hit,
                    Some(false) => DdioOutcome::Miss,
                    None => DdioOutcome::NotApplicable,
                },
            };
            let kind = if write {
                TraceKind::DmaWrite
            } else {
                TraceKind::DmaRead
            };
            tr.push(now, kind, flow, route.pack(), (now + d).as_ps(), bytes);
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// The integrated multi-PF switch (firmware steering state).
    pub fn mpfs_mut(&mut self) -> &mut Mpfs {
        &mut self.mpfs
    }

    /// Read access to the switch.
    pub fn mpfs(&self) -> &Mpfs {
        &self.mpfs
    }

    /// Robustness counters accumulated since construction.
    pub fn counters(&self) -> NicCounters {
        NicCounters {
            invalid_refs: self.invalid_refs.get(),
            ..self.counters
        }
    }

    /// Whether `pf` is currently operational.
    pub fn pf_alive(&self, pf: PfId) -> bool {
        self.pf_alive.get(pf.0).copied().unwrap_or(false)
    }

    /// The device epoch completions from `pf` are currently stamped with
    /// (0 for an unknown PF, counted).
    pub fn pf_epoch(&self, pf: PfId) -> u64 {
        match self.pf_epoch.get(pf.0) {
            Some(&e) => e,
            None => {
                self.invalid_refs.set(self.invalid_refs.get() + 1);
                0
            }
        }
    }

    /// Advances `pf`'s device epoch to `epoch` (the driver mirrors the
    /// fabric's epoch here across surprise removals and re-enumerations;
    /// completions already sitting in CQs keep their older stamp and are
    /// fenced by the driver when reaped). Epochs never move backwards.
    pub fn set_pf_epoch(&mut self, pf: PfId, epoch: u64) {
        match self.pf_epoch.get_mut(pf.0) {
            Some(e) => *e = (*e).max(epoch),
            None => self.invalid_refs.set(self.invalid_refs.get() + 1),
        }
    }

    /// Fails physical function `pf` (function-level death: its queues stop,
    /// in-flight Tx descriptors complete with error status at `now`, and —
    /// with octoNIC firmware — every flow rule steering to it migrates to
    /// the lowest-indexed surviving PF, as does the default-PF fallback).
    /// Standard firmware has no cross-PF path, so its flows go dark until
    /// recovery. Returns the number of flow rules re-steered. Idempotent.
    pub fn fail_pf(&mut self, now: Time, pf: PfId) -> usize {
        if pf.0 >= self.pf_count {
            self.invalid_refs.set(self.invalid_refs.get() + 1);
            return 0;
        }
        if !self.pf_alive[pf.0] {
            return 0;
        }
        self.pf_alive[pf.0] = false;
        self.counters.pf_fails += 1;
        let epoch = self.pf_epoch[pf.0];
        for i in 0..self.queues.len() {
            if self.queues[i].cfg.pf == pf {
                self.counters.error_completions +=
                    Self::flush_queue_on_reset(&mut self.queues[i], now, epoch);
            }
        }
        // ARFS rules on the dead PF are function state; the reset wipes
        // them. The driver re-installs after recovery.
        self.arfs[pf.0] = ArfsTable::new(Dur::from_ms(500));
        let mut moved = 0;
        if self.cfg.steering == SteeringMode::FlowBased {
            if let Some(s) = self.failover_target() {
                moved = self.mpfs.resteer(pf, s);
                self.counters.resteered_flows += moved as u64;
                if self.mpfs.default_pf() == pf {
                    self.mpfs.set_default_pf(s);
                }
            }
        }
        moved
    }

    /// Brings `pf` back after a function-level reset. Steering state stays
    /// where failover moved it — the driver decides what to migrate back
    /// (via `install_flow`/`arfs_install`) — except the default-PF
    /// fallback, which firmware restores to its configured home, or adopts
    /// onto the recovering PF if the current default is dead (the
    /// all-PFs-down-then-partial-recovery case: with no survivor at the
    /// last failure, the fallback had nowhere to fail over to, and waiting
    /// for the home PF specifically would blackhole unmatched traffic on
    /// an otherwise serving device — found by the chaos campaign's
    /// fail-while-failed schedules). Idempotent.
    pub fn recover_pf(&mut self, pf: PfId) {
        if pf.0 >= self.pf_count {
            self.invalid_refs.set(self.invalid_refs.get() + 1);
            return;
        }
        if self.pf_alive[pf.0] {
            return;
        }
        self.pf_alive[pf.0] = true;
        self.counters.pf_recoveries += 1;
        if self.cfg.steering == SteeringMode::FlowBased
            && (self.home_default == pf || !self.pf_alive(self.mpfs.default_pf()))
        {
            self.mpfs.set_default_pf(pf);
        }
    }

    /// Arms a one-shot interrupt loss on `pf`: the next MSI-X that would
    /// fire from one of its queues is silently swallowed (the completion
    /// still lands in host memory — only the doorbell to the CPU is lost).
    /// The driver's watchdog must notice the unserviced completions.
    pub fn inject_irq_loss(&mut self, pf: PfId) {
        if pf.0 >= self.pf_count {
            self.invalid_refs.set(self.invalid_refs.get() + 1);
            return;
        }
        self.irq_loss_pending[pf.0] = true;
    }

    /// The lowest-indexed live PF, if any — where failover sends orphaned
    /// flows.
    fn failover_target(&self) -> Option<PfId> {
        (0..self.pf_count).find(|&i| self.pf_alive[i]).map(PfId)
    }

    /// Consumes a pending one-shot IRQ loss on `pf`, counting it.
    fn take_irq_loss(&mut self, pf: PfId) -> bool {
        if self.irq_loss_pending[pf.0] {
            self.irq_loss_pending[pf.0] = false;
            self.counters.lost_irqs += 1;
            true
        } else {
            false
        }
    }

    /// Function-level reset of one queue: outstanding Tx work completes
    /// with error status at `now` (no DMA — the CQEs are synthesized by
    /// firmware on the control path). Posted Rx descriptors survive the
    /// reset in this model: a real driver would free and repost identical
    /// entries, and skipping that churn keeps the host's buffer pools
    /// balanced without an extra repost handshake. Returns the error
    /// completions generated.
    fn flush_queue_on_reset(q: &mut Queue, now: Time, epoch: u64) -> u64 {
        let mut n = 0;
        while let Some((_, desc)) = q.tx_ring.consume() {
            if q.tx_cq.next_slot_addr().is_some() {
                q.tx_cq
                    .post(Completion {
                        bytes: desc.len,
                        seq: 0,
                        flow: desc.flow,
                        buffer: None,
                        landed_at: now,
                        error: true,
                        epoch,
                    })
                    .expect("slot checked above");
            }
            n += 1;
        }
        q.irq_armed = true;
        n
    }

    /// Registers a queue pair whose rings live at the given host addresses
    /// (allocated by the driver, node-local to the queue's CPU — §2.3 "Q's
    /// memory is allocated from C's node").
    pub fn attach_queue(
        &mut self,
        cfg: QueueConfig,
        tx_ring_base: PhysAddr,
        tx_cq_base: PhysAddr,
        rx_ring_base: PhysAddr,
        rx_cq_base: PhysAddr,
    ) -> QueueId {
        assert!(cfg.pf.0 < self.pf_count, "queue references unknown PF");
        let n = self.cfg.ring_entries;
        let id = QueueId(self.queues.len());
        // Completion queues are sized 4x the work rings: buffers recycle
        // through the rings faster than NAPI drains under bursts, so more
        // completions than ring slots can be outstanding.
        self.queues.push(Queue {
            cfg,
            tx_ring: DescRing::new(tx_ring_base, DESC_BYTES, n),
            tx_cq: DescRing::new(tx_cq_base, CQE_BYTES, n * 4),
            rx_ring: DescRing::new(rx_ring_base, DESC_BYTES, n),
            rx_cq: DescRing::new(rx_cq_base, CQE_BYTES, n * 4),
            irq_armed: true,
            busy_until: Time::ZERO,
            rx_bufs_lost: 0,
        });
        id
    }

    /// Number of attached queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// The static configuration of `q`, if the queue exists.
    pub fn queue_config(&self, q: QueueId) -> Option<QueueConfig> {
        self.queue(q).map(|qq| qq.cfg)
    }

    /// Installs an ARFS rule on `pf`: packets of `flow` arriving at that PF
    /// go to `queue`.
    pub fn arfs_install(&mut self, now: Time, pf: PfId, flow: FlowTuple, queue: QueueId) {
        self.arfs[pf.0].install(now, flow, queue);
    }

    /// Expires idle ARFS rules on every PF; returns the total removed.
    pub fn arfs_expire(&mut self, now: Time) -> usize {
        self.arfs.iter_mut().map(|t| t.expire(now)).sum()
    }

    /// The driver posts an Rx buffer to `q`'s ring. Returns the slot address
    /// written (the driver charges its own `cpu_write`), or `None` if the
    /// ring is full or the queue does not exist.
    pub fn post_rx(&mut self, q: QueueId, desc: RxDesc) -> Option<PhysAddr> {
        self.queue_mut(q)?.rx_ring.post(desc)
    }

    /// The driver posts a Tx descriptor. Returns the slot address, or
    /// `None` if the ring is full or the queue does not exist.
    pub fn post_tx(&mut self, q: QueueId, desc: TxDesc) -> Option<PhysAddr> {
        assert!(desc.is_consistent(), "malformed Tx descriptor");
        self.queue_mut(q)?.tx_ring.post(desc)
    }

    /// Outstanding Tx descriptors on `q` (drained by doorbells).
    pub fn tx_backlog(&self, q: QueueId) -> usize {
        self.queue(q).map_or(0, |qq| qq.tx_ring.len())
    }

    /// Posted Rx buffers available on `q`.
    pub fn rx_buffers_available(&self, q: QueueId) -> usize {
        self.queue(q).map_or(0, |qq| qq.rx_ring.len())
    }

    /// The driver consumes one completion from `q`'s Rx CQ, if any.
    /// Returns the CQE address (for the driver's `cpu_read` charge) and the
    /// completion.
    pub fn pop_rx_completion(&mut self, q: QueueId) -> Option<(PhysAddr, Completion)> {
        self.queue_mut(q)?.rx_cq.consume()
    }

    /// The driver consumes one Tx completion, if any.
    pub fn pop_tx_completion(&mut self, q: QueueId) -> Option<(PhysAddr, Completion)> {
        self.queue_mut(q)?.tx_cq.consume()
    }

    /// When the oldest un-reaped Rx completion becomes visible in host
    /// memory, if any.
    pub fn rx_landing(&self, q: QueueId) -> Option<Time> {
        self.queue(q)?.rx_cq.peek().map(|c| c.landed_at)
    }

    /// When the oldest un-reaped Tx completion becomes visible, if any.
    pub fn tx_landing(&self, q: QueueId) -> Option<Time> {
        self.queue(q)?.tx_cq.peek().map(|c| c.landed_at)
    }

    /// Re-arms `q`'s interrupt (NAPI poll finished and found nothing).
    pub fn rearm_irq(&mut self, q: QueueId) {
        if let Some(qq) = self.queue_mut(q) {
            qq.irq_armed = true;
        }
    }

    /// Whether `q` currently has completions waiting in its Rx CQ.
    pub fn rx_cq_depth(&self, q: QueueId) -> usize {
        self.queue(q).map_or(0, |qq| qq.rx_cq.len())
    }

    /// Whether `q`'s Tx CQ has unreaped completions.
    pub fn tx_cq_depth(&self, q: QueueId) -> usize {
        self.queue(q).map_or(0, |qq| qq.tx_cq.len())
    }

    /// Whether `q`'s interrupt is currently armed (diagnostics).
    pub fn irq_armed(&self, q: QueueId) -> bool {
        self.queue(q).is_some_and(|qq| qq.irq_armed)
    }

    /// Processes a Tx doorbell: drains every posted descriptor on `q`,
    /// performing descriptor fetches, payload DMA reads (TSO-segmented),
    /// wire transmission, and completion writes.
    ///
    /// `doorbell_at` should already include the driver's MMIO cost and sets
    /// the pipeline chronology; `reserve_at` is the *event time* the caller
    /// is executing at, used for all shared-resource reservations (bandwidth
    /// must never be reserved at chained future times — that pushes FIFO
    /// horizons ahead of concurrent traffic and destabilizes the model).
    ///
    /// Results land in `out`, a caller-owned scratch outcome that is
    /// cleared on entry and recycled across doorbells so the Tx path does
    /// not allocate in steady state.
    pub fn tx_doorbell(
        &mut self,
        doorbell_at: Time,
        reserve_at: Time,
        q: QueueId,
        fabric: &mut PcieFabric,
        mem: &mut MemSystem,
        out: &mut TxOutcome,
    ) {
        out.clear();
        let Some((pf, irq_core, node)) = self
            .queue(q)
            .map(|qq| (qq.cfg.pf, qq.cfg.irq_core, qq.cfg.node))
        else {
            return;
        };
        if !self.pf_alive[pf.0] {
            // Doorbell rang on a dead function: everything posted completes
            // with error status (the ring doorbell itself is a posted MMIO
            // write — nothing tells the driver synchronously).
            let epoch = self.pf_epoch[pf.0];
            let qq = &mut self.queues[q.0];
            let n = Self::flush_queue_on_reset(qq, doorbell_at, epoch);
            self.counters.error_completions += n;
            out.errors += n;
            return;
        }
        let epoch = self.pf_epoch[pf.0];
        let telem = self.telemetry_on();
        let ddio_on = mem.ddio();
        let dev_node = if telem { fabric.node_of(pf) } else { None };
        // The engine is pipelined: it spends `processing_delay` of occupancy
        // per descriptor while the DMA latencies of consecutive packets
        // overlap (bandwidth is still serialized inside the PCIe links).
        let mut engine = doorbell_at.max(self.queues[q.0].busy_until);
        let mut t = engine;

        while let Some((slot_addr, desc)) = self.queues[q.0].tx_ring.consume() {
            engine += self.cfg.processing_delay;
            let fkey = if telem { desc.flow.key() } else { 0 };
            // Fetch the work descriptor from host memory. Bandwidth is
            // reserved at the doorbell's event time: feeding chained
            // (future) completion times back into shared-link FIFOs would
            // let congested chains starve near-term traffic.
            //
            // Any DMA on the path returning `None` means the link under the
            // PF is down: the descriptor completes with error status and
            // the drain continues — later descriptors fail the same way.
            let fetched = 'fetch: {
                let Some(d_desc) = fabric.dma_read(reserve_at, pf, mem, slot_addr, DESC_BYTES)
                else {
                    break 'fetch None;
                };
                if telem {
                    self.note_dma(
                        reserve_at, fkey, pf, dev_node, slot_addr, DESC_BYTES, false, false,
                        ddio_on, d_desc,
                    );
                }
                // Read the payload. IOctoSG (§3.3): fragments may carry
                // a PF hint so cross-node payloads are fetched through
                // the local PF. FIFO on the link: slowest component
                // bounds readiness.
                let mut slowest = d_desc;
                for frag in &desc.fragments {
                    let frag_pf = frag.pf_hint.unwrap_or(pf);
                    let Some(d) = fabric.dma_read(reserve_at, frag_pf, mem, frag.addr, frag.len)
                    else {
                        break 'fetch None;
                    };
                    if telem {
                        let frag_node = if frag_pf == pf {
                            dev_node
                        } else {
                            fabric.node_of(frag_pf)
                        };
                        self.note_dma(
                            reserve_at, fkey, frag_pf, frag_node, frag.addr, frag.len, false, true,
                            ddio_on, d,
                        );
                    }
                    slowest = slowest.max(d);
                }
                Some(slowest)
            };
            let Some(slowest) = fetched else {
                Self::post_error_completion(&mut self.queues[q.0], &desc, engine, epoch);
                self.counters.error_completions += 1;
                out.errors += 1;
                continue;
            };
            t = engine + slowest;

            // Segment onto the wire. Non-TSO descriptors go out as one
            // packet; TSO ones stream through the segment iterator, so
            // neither path allocates.
            if desc.tso {
                for seg in tso::segments(desc.len, self.cfg.mss) {
                    let arrive = self.wire.send_tx(t, seg);
                    self.tx_bytes_per_pf[pf.0] += seg;
                    out.packets.push((arrive, desc.flow, seg));
                }
            } else {
                let seg = desc.len;
                let arrive = self.wire.send_tx(t, seg);
                self.tx_bytes_per_pf[pf.0] += seg;
                out.packets.push((arrive, desc.flow, seg));
            }

            // Completion entry.
            let Some(cq_slot) = self.queues[q.0].tx_cq.next_slot_addr() else {
                // CQ full: completion coalesced onto the oldest outstanding
                // entry (real hardware cannot overrun its CQ because the
                // driver sizes it to the ring).
                out.completions.push(t);
                continue;
            };
            let cqe_done = match fabric.dma_write(reserve_at, pf, mem, cq_slot, CQE_BYTES) {
                Some(d) => {
                    if telem {
                        self.note_dma(
                            reserve_at, fkey, pf, dev_node, cq_slot, CQE_BYTES, true, false,
                            ddio_on, d,
                        );
                    }
                    t + d
                }
                // Link died between payload fetch and CQE write: the packet
                // reached the wire but its completion never lands; firmware
                // synthesizes an error CQE for the watchdog to find.
                None => {
                    Self::post_error_completion(&mut self.queues[q.0], &desc, t, epoch);
                    self.counters.error_completions += 1;
                    out.errors += 1;
                    continue;
                }
            };
            self.queues[q.0]
                .tx_cq
                .post(Completion {
                    bytes: desc.len,
                    seq: 0,
                    flow: desc.flow,
                    buffer: None,
                    landed_at: cqe_done,
                    error: false,
                    epoch,
                })
                .expect("slot checked above");
            out.completions.push(cqe_done);
            t = t.max(engine);
        }

        // The interrupt is triggered by the FIRST completion written while
        // armed (moderated by irq_delay); NAPI then paces itself with the
        // later landings.
        if !out.completions.is_empty() && self.queues[q.0].irq_armed {
            self.queues[q.0].irq_armed = false;
            let first = out.completions.iter().copied().min().unwrap_or(t);
            let fire = first + self.cfg.irq_delay;
            if self.take_irq_loss(pf) {
                // Swallowed: completions landed, doorbell to the CPU lost.
            } else if let Some(lat) = fabric.interrupt(reserve_at, pf, mem, node) {
                out.irq = Some((fire + lat, irq_core));
            } else {
                self.counters.lost_irqs += 1;
            }
        }
        self.queues[q.0].busy_until = engine;
    }

    /// Synthesizes an error CQE for `desc` at `at` (control path, no DMA
    /// charge), if the CQ has room.
    fn post_error_completion(q: &mut Queue, desc: &TxDesc, at: Time, epoch: u64) {
        if q.tx_cq.next_slot_addr().is_some() {
            q.tx_cq
                .post(Completion {
                    bytes: desc.len,
                    seq: 0,
                    flow: desc.flow,
                    buffer: None,
                    landed_at: at,
                    error: true,
                    epoch,
                })
                .expect("slot checked above");
        }
    }

    /// Handles a packet arriving from the wire at `now` (already including
    /// wire serialization — the caller reserved [`Wire::send_rx`]).
    ///
    /// Steering: MPFS picks the PF (by MAC or by IOctoRFS flow rule), the
    /// PF's ARFS table picks the queue, RSS hashes as a fallback.
    #[allow(clippy::too_many_arguments)]
    pub fn on_wire_packet(
        &mut self,
        now: Time,
        dst_mac: MacAddr,
        flow: FlowTuple,
        payload: u64,
        seq: u64,
        fabric: &mut PcieFabric,
        mem: &mut MemSystem,
    ) -> RxOutcome {
        let steered = self.mpfs.steer(dst_mac, &flow);
        let pf = if self.pf_alive[steered.0] {
            steered
        } else if self.cfg.steering == SteeringMode::FlowBased {
            // OctoNIC firmware: a packet for a dead PF lands on a survivor
            // (its flow rule normally migrated at fail time; this catches
            // the default-PF path and races around the failover instant).
            match self.failover_target() {
                Some(s) => s,
                None => {
                    self.counters.dropped_pf_dead += 1;
                    self.rx_dropped += 1;
                    return RxOutcome::DroppedPfDead { pf: steered };
                }
            }
        } else {
            // Standard firmware: each PF is its own logical NIC; with the
            // function dead its traffic has nowhere to go.
            self.counters.dropped_pf_dead += 1;
            self.rx_dropped += 1;
            return RxOutcome::DroppedPfDead { pf: steered };
        };
        let q = match self.arfs[pf.0]
            .steer(now, &flow)
            .or_else(|| self.rss_fallback(pf, &flow))
        {
            Some(q) => q,
            None => {
                self.counters.dropped_pf_dead += 1;
                self.rx_dropped += 1;
                return RxOutcome::DroppedNoQueue { pf };
            }
        };
        let (qpf, irq_core, node) = {
            let qq = &self.queues[q.0];
            (qq.cfg.pf, qq.cfg.irq_core, qq.cfg.node)
        };
        let telem = self.telemetry_on();
        let fkey = if telem { flow.key() } else { 0 };
        if let Some(tr) = &mut self.tracer {
            tr.push(
                now,
                TraceKind::FlowSteered,
                fkey,
                qpf.0 as u64,
                q.0 as u64,
                (pf != steered) as u64,
            );
        }
        // Pipelined Rx engine: `processing_delay` of per-packet occupancy;
        // descriptor prefetch + payload/CQE DMA latencies overlap across
        // packets (bandwidth still serializes inside the PCIe links).
        let engine = now.max(self.queues[q.0].busy_until) + self.cfg.processing_delay;

        // Pop a posted buffer.
        let (rx_slot, buf) = match self.queues[q.0].rx_ring.consume() {
            Some(x) => x,
            None => {
                self.rx_dropped += 1;
                self.rx_no_buffer += 1;
                return RxOutcome::DroppedNoBuffer { queue: q };
            }
        };
        debug_assert!(buf.len >= payload, "posted buffer smaller than MTU packet");
        // Fetch the Rx descriptor, write the payload, write the CQE.
        // Bandwidth reserved at the arrival time (see tx_doorbell). The
        // three DMAs of one packet queue FIFO on the endpoint's link, so
        // the slowest component (whose duration already includes the
        // backlog of the earlier ones) bounds delivery; summing would
        // charge the same queue delay multiple times. Any of the three
        // returning `None` means the link dropped under the PF: the packet
        // (and the popped buffer — hardware cannot return it) is lost.
        let cq_slot = self.queues[q.0]
            .rx_cq
            .next_slot_addr()
            .expect("Rx CQ sized to ring; cannot overrun");
        let dev_node = if telem { fabric.node_of(qpf) } else { None };
        let ddio_on = mem.ddio();
        let dmas = 'dma: {
            let Some(d_desc) = fabric.dma_read(now, qpf, mem, rx_slot, DESC_BYTES) else {
                break 'dma None;
            };
            let Some(d_payload) = fabric.dma_write(now, qpf, mem, buf.addr, payload) else {
                break 'dma None;
            };
            let Some(d_cqe) = fabric.dma_write(now, qpf, mem, cq_slot, CQE_BYTES) else {
                break 'dma None;
            };
            if telem {
                self.note_dma(
                    now, fkey, qpf, dev_node, rx_slot, DESC_BYTES, false, false, ddio_on, d_desc,
                );
                self.note_dma(
                    now, fkey, qpf, dev_node, buf.addr, payload, true, true, ddio_on, d_payload,
                );
                self.note_dma(
                    now, fkey, qpf, dev_node, cq_slot, CQE_BYTES, true, false, ddio_on, d_cqe,
                );
            }
            Some(d_desc.max(d_payload).max(d_cqe))
        };
        let Some(slowest) = dmas else {
            self.rx_dropped += 1;
            self.queues[q.0].rx_bufs_lost += 1;
            return RxOutcome::DroppedLinkDown { queue: q, pf: qpf };
        };
        let t = engine + slowest;
        self.queues[q.0]
            .rx_cq
            .post(Completion {
                bytes: payload,
                seq,
                flow,
                buffer: Some(buf),
                landed_at: t,
                error: false,
                epoch: self.pf_epoch[qpf.0],
            })
            .expect("slot checked above");
        self.rx_bytes_per_pf[qpf.0] += payload;
        self.queues[q.0].busy_until = engine;

        let irq = if self.queues[q.0].irq_armed {
            self.queues[q.0].irq_armed = false;
            let fire = t + self.cfg.irq_delay;
            if self.take_irq_loss(qpf) {
                None
            } else if let Some(lat) = fabric.interrupt(now, qpf, mem, node) {
                Some((fire + lat, irq_core))
            } else {
                self.counters.lost_irqs += 1;
                None
            }
        } else {
            None
        };
        RxOutcome::Delivered {
            queue: q,
            pf: qpf,
            done_at: t,
            irq,
        }
    }

    /// The client→server wire direction (the system uses it to model the
    /// peer's transmissions).
    pub fn wire_mut(&mut self) -> &mut Wire {
        &mut self.wire
    }

    /// Receive bytes that flowed through `pf` since construction (Figure 14
    /// samples the per-PF difference every 50 ms).
    pub fn rx_bytes(&self, pf: PfId) -> u64 {
        self.rx_bytes_per_pf[pf.0]
    }

    /// Transmit bytes that flowed through `pf`.
    pub fn tx_bytes(&self, pf: PfId) -> u64 {
        self.tx_bytes_per_pf[pf.0]
    }

    /// Packets dropped for lack of a posted Rx buffer.
    pub fn rx_dropped(&self) -> u64 {
        self.rx_dropped
    }

    /// Rx buffers queue `q` popped from its ring and then lost because the
    /// PCIe link dropped mid-DMA. These buffers never come back: the host's
    /// conservation audit writes them off against the pool capacity.
    pub fn rx_bufs_lost(&self, q: QueueId) -> u64 {
        self.queue(q).map_or(0, |qq| qq.rx_bufs_lost)
    }

    /// Rx buffers currently parked in queue `q`'s completion queue —
    /// delivered packets the host has not reaped yet. Error completions
    /// carry no buffer and are not counted.
    pub fn rx_cq_held_buffers(&self, q: QueueId) -> usize {
        self.queue(q).map_or(0, |qq| {
            qq.rx_cq.iter().filter(|c| c.buffer.is_some()).count()
        })
    }

    /// Runs the device's own conservation checks into `a`.
    ///
    /// * `rx-drop-conservation` — every increment of the aggregate
    ///   `rx_dropped` tally happens at a site that also classifies the drop
    ///   (dead PF, empty ring, link down), so the aggregate must equal the
    ///   sum of the classified counters. A new drop path that forgets to
    ///   classify (or classifies without counting) trips this.
    /// * `default-pf-alive` — with octoNIC firmware, firmware failover
    ///   keeps the default-PF fallback pointed at a live function whenever
    ///   any function survives.
    pub fn audit(&self, a: &mut simcore::Audit) {
        let lost: u64 = self.queues.iter().map(|q| q.rx_bufs_lost).sum();
        let classified = self.counters.dropped_pf_dead + self.rx_no_buffer + lost;
        a.check(
            "nic",
            "rx-drop-conservation",
            self.rx_dropped == classified,
            || {
                format!(
                    "rx_dropped {} != pf_dead {} + no_buffer {} + link_lost {}",
                    self.rx_dropped, self.counters.dropped_pf_dead, self.rx_no_buffer, lost
                )
            },
        );
        if self.cfg.steering == SteeringMode::FlowBased {
            let any_alive = self.pf_alive.iter().any(|&x| x);
            let default_alive = self.pf_alive(self.mpfs.default_pf());
            a.check(
                "nic",
                "default-pf-alive",
                !any_alive || default_alive,
                || {
                    format!(
                        "default PF {:?} is dead while {} PFs are alive",
                        self.mpfs.default_pf(),
                        self.pf_alive.iter().filter(|&&x| x).count()
                    )
                },
            );
        }
    }

    fn rss_fallback(&self, pf: PfId, flow: &FlowTuple) -> Option<QueueId> {
        // Count-then-nth keeps this per-packet fallback allocation-free.
        let n = self.queues.iter().filter(|q| q.cfg.pf == pf).count();
        if n == 0 {
            return None;
        }
        let pick = (flow.rss_hash() % n as u64) as usize;
        (0..self.queues.len())
            .filter(|i| self.queues[*i].cfg.pf == pf)
            .nth(pick)
            .map(QueueId)
    }

    /// Resolves a queue reference, counting (rather than panicking on)
    /// references to queues the device does not have — a buggy or stale
    /// driver must degrade the run, not abort it.
    fn queue(&self, q: QueueId) -> Option<&Queue> {
        let qq = self.queues.get(q.0);
        if qq.is_none() {
            self.invalid_refs.set(self.invalid_refs.get() + 1);
        }
        qq
    }

    fn queue_mut(&mut self, q: QueueId) -> Option<&mut Queue> {
        if q.0 >= self.queues.len() {
            self.invalid_refs.set(self.invalid_refs.get() + 1);
            return None;
        }
        Some(&mut self.queues[q.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::MemConfig;
    use pcie::{Bifurcation, FabricConfig, PcieGen};

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    struct Rig {
        mem: MemSystem,
        fab: PcieFabric,
        nic: Nic,
        pfs: Vec<PfId>,
        q0: QueueId,
        q1: QueueId,
    }

    fn rig(mode: SteeringMode) -> Rig {
        let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let mut fab = PcieFabric::new(FabricConfig::default());
        let pfs = fab.add_bifurcated(&Bifurcation::x8x8_dual_socket(PcieGen::Gen3));
        let cfg = if mode == SteeringMode::FlowBased {
            NicConfig::octonic_100g()
        } else {
            NicConfig::standard_100g()
        };
        let mut nic = Nic::new(cfg, 2, pfs[0]);
        let mk_queue = |nic: &mut Nic, mem: &mut MemSystem, pf: PfId, node: NodeId, core: usize| {
            let ring_bytes = DESC_BYTES * 1024;
            let tx = mem.alloc(node, ring_bytes);
            let txc = mem.alloc(node, ring_bytes);
            let rx = mem.alloc(node, ring_bytes);
            let rxc = mem.alloc(node, ring_bytes);
            nic.attach_queue(
                QueueConfig {
                    pf,
                    irq_core: core,
                    node,
                },
                tx,
                txc,
                rx,
                rxc,
            )
        };
        let q0 = mk_queue(&mut nic, &mut mem, pfs[0], N0, 0);
        let q1 = mk_queue(&mut nic, &mut mem, pfs[1], N1, 14);
        nic.mpfs_mut().register_mac(MacAddr::local_admin(0), pfs[0]);
        nic.mpfs_mut().register_mac(MacAddr::local_admin(1), pfs[1]);
        Rig {
            mem,
            fab,
            nic,
            pfs,
            q0,
            q1,
        }
    }

    fn post_buffers(r: &mut Rig, q: QueueId, node: NodeId, n: usize) {
        for _ in 0..n {
            let buf = r.mem.alloc(node, 2048);
            r.nic
                .post_rx(
                    q,
                    RxDesc {
                        addr: buf,
                        len: 2048,
                    },
                )
                .unwrap();
        }
    }

    fn flow() -> FlowTuple {
        FlowTuple::tcp(100, 5000, 200, 80)
    }

    #[test]
    fn rx_delivers_into_posted_buffer() {
        let mut r = rig(SteeringMode::MacBased);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 4);
        let out = r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            1448,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        match out {
            RxOutcome::Delivered {
                queue,
                pf,
                done_at,
                irq,
            } => {
                assert_eq!(queue, r.q0);
                assert_eq!(pf, r.pfs[0]);
                assert!(done_at > Time::ZERO);
                assert!(irq.is_some(), "first packet fires the armed irq");
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(r.nic.rx_cq_depth(r.q0), 1);
        assert_eq!(r.nic.rx_bytes(r.pfs[0]), 1448);
    }

    #[test]
    fn rx_without_buffers_drops() {
        let mut r = rig(SteeringMode::MacBased);
        let out = r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            1448,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        assert!(matches!(out, RxOutcome::DroppedNoBuffer { .. }));
        assert_eq!(r.nic.rx_dropped(), 1);
    }

    #[test]
    fn irq_moderation_fires_once_until_rearm() {
        let mut r = rig(SteeringMode::MacBased);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 8);
        let first = r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            100,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        let second = r.nic.on_wire_packet(
            Time::from_us(1),
            MacAddr::local_admin(0),
            flow(),
            100,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        let irq1 = matches!(first, RxOutcome::Delivered { irq: Some(_), .. });
        let irq2 = matches!(second, RxOutcome::Delivered { irq: None, .. });
        assert!(irq1 && irq2, "second completion is coalesced");
        r.nic.rearm_irq(r.q0);
        let third = r.nic.on_wire_packet(
            Time::from_us(2),
            MacAddr::local_admin(0),
            flow(),
            100,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        assert!(matches!(third, RxOutcome::Delivered { irq: Some(_), .. }));
    }

    #[test]
    fn mac_steering_picks_pf_by_mac() {
        let mut r = rig(SteeringMode::MacBased);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 4);
        let q1_ = r.q1;
        post_buffers(&mut r, q1_, N1, 4);
        let out = r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(1),
            flow(),
            100,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        match out {
            RxOutcome::Delivered { pf, queue, .. } => {
                assert_eq!(pf, r.pfs[1]);
                assert_eq!(queue, r.q1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ioctorfs_moves_flow_between_pfs() {
        let mut r = rig(SteeringMode::FlowBased);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 8);
        let q1_ = r.q1;
        post_buffers(&mut r, q1_, N1, 8);
        let one_mac = MacAddr::local_admin(7); // single externally visible MAC
        r.nic.mpfs_mut().install_flow(flow(), r.pfs[0]);
        r.nic.arfs_install(Time::ZERO, r.pfs[0], flow(), r.q0);
        let a = r
            .nic
            .on_wire_packet(Time::ZERO, one_mac, flow(), 100, 0, &mut r.fab, &mut r.mem);
        assert!(matches!(a, RxOutcome::Delivered { pf, .. } if pf == r.pfs[0]));
        // Process migrated: the driver updates IOctoRFS + the new PF's ARFS.
        r.nic.mpfs_mut().install_flow(flow(), r.pfs[1]);
        r.nic.arfs_install(Time::ZERO, r.pfs[1], flow(), r.q1);
        let b = r.nic.on_wire_packet(
            Time::from_us(5),
            one_mac,
            flow(),
            100,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        assert!(
            matches!(b, RxOutcome::Delivered { pf, queue, .. } if pf == r.pfs[1] && queue == r.q1)
        );
    }

    #[test]
    fn local_rx_faster_than_remote_rx() {
        // The NUDMA effect at device level: same packet, buffer on node 0,
        // via the node-0 PF vs the node-1 PF.
        let mut rl = rig(SteeringMode::MacBased);
        let q0_ = rl.q0;
        post_buffers(&mut rl, q0_, N0, 4);
        let local = match rl.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            1448,
            0,
            &mut rl.fab,
            &mut rl.mem,
        ) {
            RxOutcome::Delivered { done_at, .. } => done_at,
            o => panic!("{o:?}"),
        };
        let mut rr = rig(SteeringMode::MacBased);
        // Queue q1 rides PF1 (node 1) but we give it node-0 buffers: every
        // payload DMA crosses the socket.
        let q1_ = rr.q1;
        post_buffers(&mut rr, q1_, N0, 4);
        let remote = match rr.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(1),
            flow(),
            1448,
            0,
            &mut rr.fab,
            &mut rr.mem,
        ) {
            RxOutcome::Delivered { done_at, .. } => done_at,
            o => panic!("{o:?}"),
        };
        assert!(remote > local, "remote {remote} vs local {local}");
    }

    #[test]
    fn tx_doorbell_sends_and_completes() {
        let mut r = rig(SteeringMode::MacBased);
        let payload = r.mem.alloc(N0, 4096);
        r.nic
            .post_tx(r.q0, TxDesc::simple(payload, 1448, flow(), false))
            .unwrap();
        let mut out = TxOutcome::default();
        r.nic.tx_doorbell(
            Time::ZERO,
            Time::ZERO,
            r.q0,
            &mut r.fab,
            &mut r.mem,
            &mut out,
        );
        assert_eq!(out.packets.len(), 1);
        assert_eq!(out.packets[0].2, 1448);
        assert_eq!(out.completions.len(), 1);
        assert!(out.irq.is_some());
        assert_eq!(r.nic.tx_bytes(r.pfs[0]), 1448);
        assert_eq!(r.nic.tx_backlog(r.q0), 0);
    }

    #[test]
    fn tso_segments_on_device() {
        let mut r = rig(SteeringMode::MacBased);
        let payload = r.mem.alloc(N0, 65536);
        r.nic
            .post_tx(r.q0, TxDesc::simple(payload, 64 * 1024, flow(), true))
            .unwrap();
        let mut out = TxOutcome::default();
        r.nic.tx_doorbell(
            Time::ZERO,
            Time::ZERO,
            r.q0,
            &mut r.fab,
            &mut r.mem,
            &mut out,
        );
        let expect = tso::segment_count(64 * 1024, crate::wire::MSS);
        assert_eq!(out.packets.len() as u64, expect);
        assert_eq!(out.packets.iter().map(|p| p.2).sum::<u64>(), 64 * 1024);
        // One CQE for the aggregate, not per segment.
        assert_eq!(out.completions.len(), 1);
    }

    #[test]
    fn ioctosg_fetches_fragments_through_hinted_pf() {
        let mut r = rig(SteeringMode::FlowBased);
        // Payload spans both nodes (sendfile page-cache case, §3.3).
        let frag0 = r.mem.alloc(N0, 4096);
        let frag1 = r.mem.alloc(N1, 4096);
        let desc = TxDesc {
            fragments: vec![
                crate::desc::TxFragment {
                    addr: frag0,
                    len: 1000,
                    pf_hint: Some(r.pfs[0]),
                },
                crate::desc::TxFragment {
                    addr: frag1,
                    len: 448,
                    pf_hint: Some(r.pfs[1]),
                },
            ]
            .into(),
            flow: flow(),
            len: 1448,
            tso: false,
        };
        r.nic.post_tx(r.q0, desc).unwrap();
        let before0 = r.fab.downstream_bytes(r.pfs[0]);
        let before1 = r.fab.downstream_bytes(r.pfs[1]);
        r.nic.tx_doorbell(
            Time::ZERO,
            Time::ZERO,
            r.q0,
            &mut r.fab,
            &mut r.mem,
            &mut TxOutcome::default(),
        );
        assert!(r.fab.downstream_bytes(r.pfs[0]) > before0, "frag 0 via PF0");
        assert!(r.fab.downstream_bytes(r.pfs[1]) > before1, "frag 1 via PF1");
    }

    #[test]
    fn tx_ring_full_rejected() {
        let mut r = rig(SteeringMode::MacBased);
        let payload = r.mem.alloc(N0, 4096);
        for _ in 0..1024 {
            assert!(r
                .nic
                .post_tx(r.q0, TxDesc::simple(payload, 100, flow(), false))
                .is_some());
        }
        assert!(r
            .nic
            .post_tx(r.q0, TxDesc::simple(payload, 100, flow(), false))
            .is_none());
    }

    #[test]
    fn unknown_queue_counted_not_panicking() {
        let mut r = rig(SteeringMode::MacBased);
        let bogus = QueueId(99);
        assert_eq!(r.nic.tx_backlog(bogus), 0);
        assert_eq!(r.nic.rx_buffers_available(bogus), 0);
        assert!(r.nic.queue_config(bogus).is_none());
        assert!(r.nic.pop_rx_completion(bogus).is_none());
        assert!(r
            .nic
            .post_rx(
                bogus,
                RxDesc {
                    addr: PhysAddr(0),
                    len: 2048,
                },
            )
            .is_none());
        r.nic.rearm_irq(bogus);
        assert!(!r.nic.irq_armed(bogus));
        let mut out = TxOutcome::default();
        r.nic.tx_doorbell(
            Time::ZERO,
            Time::ZERO,
            bogus,
            &mut r.fab,
            &mut r.mem,
            &mut out,
        );
        assert!(out.packets.is_empty() && out.completions.is_empty());
        assert_eq!(r.nic.counters().invalid_refs, 8);
    }

    #[test]
    fn flight_recorder_classifies_local_rx() {
        let mut r = rig(SteeringMode::MacBased);
        r.nic.enable_flight_recorder(16);
        r.nic.enable_tracing(64);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 4);
        let out = r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            1448,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        assert!(matches!(out, RxOutcome::Delivered { .. }));
        let t = r.nic.flight_table().expect("recorder enabled");
        assert_eq!(t.remote_bytes(), 0, "node-0 buffers via the node-0 PF");
        assert!(t.totals.local_write_bytes >= 1448);
        assert_eq!(t.totals.qpi_crossings, 0);
        assert_eq!(t.totals.ddio_hits, 1, "one payload write, DDIO absorbed");
        let ring = r.nic.take_trace().expect("tracer enabled");
        // FlowSteered + descriptor read + payload write + CQE write.
        assert_eq!(ring.recorded(), 4);
    }

    #[test]
    fn flight_recorder_sees_remote_rx_dma() {
        let mut r = rig(SteeringMode::MacBased);
        r.nic.enable_flight_recorder(16);
        // Queue q1 rides PF1 (node 1) but gets node-0 buffers: every
        // payload DMA crosses the socket.
        let q1_ = r.q1;
        post_buffers(&mut r, q1_, N0, 4);
        let out = r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(1),
            flow(),
            1448,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        assert!(matches!(out, RxOutcome::Delivered { .. }));
        let t = r.nic.flight_table().expect("recorder enabled");
        assert!(t.totals.remote_write_bytes >= 1448, "payload crossed QPI");
        assert!(t.totals.qpi_crossings >= 1);
        assert_eq!(t.totals.ddio_hits, 0, "remote writes cannot hit DDIO");
    }

    #[test]
    fn tx_dma_reads_recorded_with_locality() {
        let mut r = rig(SteeringMode::MacBased);
        r.nic.enable_flight_recorder(16);
        let payload = r.mem.alloc(N0, 4096);
        r.nic
            .post_tx(r.q0, TxDesc::simple(payload, 1448, flow(), false))
            .unwrap();
        let mut out = TxOutcome::default();
        r.nic.tx_doorbell(
            Time::ZERO,
            Time::ZERO,
            r.q0,
            &mut r.fab,
            &mut r.mem,
            &mut out,
        );
        assert_eq!(out.packets.len(), 1);
        let t = r.nic.flight_table().expect("recorder enabled");
        assert!(t.totals.local_read_bytes >= 1448, "payload fetch was local");
        assert_eq!(t.remote_bytes(), 0);
    }

    #[test]
    fn pf_fail_flushes_tx_ring_with_error_completions() {
        let mut r = rig(SteeringMode::FlowBased);
        let payload = r.mem.alloc(N0, 4096);
        for _ in 0..3 {
            r.nic
                .post_tx(r.q0, TxDesc::simple(payload, 1000, flow(), false))
                .unwrap();
        }
        let flushed = r.nic.fail_pf(Time::from_us(3), r.pfs[0]);
        assert_eq!(flushed, 0, "no flow rules installed yet");
        assert_eq!(r.nic.tx_backlog(r.q0), 0);
        assert_eq!(r.nic.counters().error_completions, 3);
        let mut seen = 0;
        while let Some((_, c)) = r.nic.pop_tx_completion(r.q0) {
            assert!(c.error, "flushed descriptors carry error status");
            assert_eq!(c.landed_at, Time::from_us(3));
            seen += 1;
        }
        assert_eq!(seen, 3);
    }

    #[test]
    fn doorbell_on_dead_pf_errors_out() {
        let mut r = rig(SteeringMode::FlowBased);
        r.nic.fail_pf(Time::ZERO, r.pfs[0]);
        let payload = r.mem.alloc(N0, 4096);
        r.nic
            .post_tx(r.q0, TxDesc::simple(payload, 1448, flow(), false))
            .unwrap();
        let mut out = TxOutcome::default();
        r.nic.tx_doorbell(
            Time::from_us(1),
            Time::from_us(1),
            r.q0,
            &mut r.fab,
            &mut r.mem,
            &mut out,
        );
        assert!(out.packets.is_empty(), "dead PF sends nothing");
        assert_eq!(out.errors, 1);
        assert_eq!(r.nic.tx_bytes(r.pfs[0]), 0);
    }

    #[test]
    fn ioctorfs_fails_over_to_surviving_pf() {
        let mut r = rig(SteeringMode::FlowBased);
        let q1_ = r.q1;
        post_buffers(&mut r, q1_, N1, 4);
        let one_mac = MacAddr::local_admin(7);
        r.nic.mpfs_mut().install_flow(flow(), r.pfs[0]);
        r.nic.arfs_install(Time::ZERO, r.pfs[0], flow(), r.q0);
        let moved = r.nic.fail_pf(Time::from_us(1), r.pfs[0]);
        assert_eq!(moved, 1, "the flow rule migrates to the survivor");
        assert!(!r.nic.pf_alive(r.pfs[0]));
        let out = r.nic.on_wire_packet(
            Time::from_us(2),
            one_mac,
            flow(),
            1448,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        match out {
            RxOutcome::Delivered { pf, queue, .. } => {
                assert_eq!(pf, r.pfs[1], "delivered through the survivor");
                assert_eq!(queue, r.q1);
            }
            other => panic!("expected failover delivery, got {other:?}"),
        }
        assert_eq!(r.nic.counters().resteered_flows, 1);
    }

    #[test]
    fn mac_steering_drops_when_pf_dead() {
        let mut r = rig(SteeringMode::MacBased);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 4);
        r.nic.fail_pf(Time::ZERO, r.pfs[0]);
        let out = r.nic.on_wire_packet(
            Time::from_us(1),
            MacAddr::local_admin(0),
            flow(),
            1448,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        assert!(
            matches!(out, RxOutcome::DroppedPfDead { pf } if pf == r.pfs[0]),
            "standard firmware has no failover path: {out:?}"
        );
        assert_eq!(r.nic.counters().dropped_pf_dead, 1);
        assert_eq!(r.nic.rx_dropped(), 1);
    }

    #[test]
    fn pf_recovery_restores_default_steering() {
        let mut r = rig(SteeringMode::FlowBased);
        assert_eq!(r.nic.mpfs().default_pf(), r.pfs[0]);
        r.nic.fail_pf(Time::ZERO, r.pfs[0]);
        assert_eq!(
            r.nic.mpfs().default_pf(),
            r.pfs[1],
            "default fallback moves off the dead PF"
        );
        r.nic.recover_pf(r.pfs[0]);
        assert!(r.nic.pf_alive(r.pfs[0]));
        assert_eq!(r.nic.mpfs().default_pf(), r.pfs[0]);
        assert_eq!(r.nic.counters().pf_fails, 1);
        assert_eq!(r.nic.counters().pf_recoveries, 1);
        // Idempotence: repeated events are absorbed, not double-counted.
        r.nic.recover_pf(r.pfs[0]);
        assert_eq!(r.nic.counters().pf_recoveries, 1);
    }

    #[test]
    fn injected_irq_loss_swallows_exactly_one_interrupt() {
        let mut r = rig(SteeringMode::MacBased);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 8);
        r.nic.inject_irq_loss(r.pfs[0]);
        let first = r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            100,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        assert!(
            matches!(first, RxOutcome::Delivered { irq: None, .. }),
            "the completion lands but the MSI-X is lost: {first:?}"
        );
        assert_eq!(r.nic.counters().lost_irqs, 1);
        assert_eq!(r.nic.rx_cq_depth(r.q0), 1, "data is not lost");
        // After the watchdog re-arms, interrupts flow again.
        r.nic.rearm_irq(r.q0);
        let second = r.nic.on_wire_packet(
            Time::from_us(5),
            MacAddr::local_admin(0),
            flow(),
            100,
            1,
            &mut r.fab,
            &mut r.mem,
        );
        assert!(matches!(second, RxOutcome::Delivered { irq: Some(_), .. }));
        assert_eq!(r.nic.counters().lost_irqs, 1);
    }

    #[test]
    fn link_down_under_pf_drops_rx() {
        let mut r = rig(SteeringMode::MacBased);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 4);
        r.fab.link_down(r.pfs[0]);
        let out = r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            1448,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        assert!(
            matches!(out, RxOutcome::DroppedLinkDown { pf, .. } if pf == r.pfs[0]),
            "{out:?}"
        );
        assert_eq!(r.nic.rx_dropped(), 1);
        assert!(r.fab.counters().dropped_txns > 0);
        assert_eq!(
            r.nic.rx_bufs_lost(q0_),
            1,
            "the popped buffer is written off, not silently leaked"
        );
        assert_eq!(r.nic.rx_buffers_available(q0_), 3);
    }

    #[test]
    fn audit_balances_drops_across_all_classified_paths() {
        let mut r = rig(SteeringMode::FlowBased);
        let q0_ = r.q0;
        // Path 1: empty ring.
        let out = r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            1448,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        assert!(matches!(out, RxOutcome::DroppedNoBuffer { .. }), "{out:?}");
        // Path 2: link down under the PF mid-DMA.
        post_buffers(&mut r, q0_, N0, 1);
        r.fab.link_down(r.pfs[0]);
        r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            1448,
            1,
            &mut r.fab,
            &mut r.mem,
        );
        // Path 3: every PF dead, nowhere to fail over to.
        r.fab.link_recover(Time::ZERO, r.pfs[0]);
        r.nic.fail_pf(Time::ZERO, r.pfs[0]);
        r.nic.fail_pf(Time::ZERO, r.pfs[1]);
        r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            1448,
            2,
            &mut r.fab,
            &mut r.mem,
        );
        assert_eq!(r.nic.rx_dropped(), 3);
        let mut a = simcore::Audit::new();
        r.nic.audit(&mut a);
        assert!(a.ok(), "{:?}", a.violations());
        assert!(a.checks() >= 2);
    }

    #[test]
    fn cq_held_buffers_tracks_unreaped_deliveries() {
        let mut r = rig(SteeringMode::MacBased);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 2);
        for seq in 0..2 {
            r.nic.on_wire_packet(
                Time::ZERO,
                MacAddr::local_admin(0),
                flow(),
                100,
                seq,
                &mut r.fab,
                &mut r.mem,
            );
        }
        assert_eq!(r.nic.rx_cq_held_buffers(q0_), 2);
        r.nic.pop_rx_completion(q0_);
        assert_eq!(r.nic.rx_cq_held_buffers(q0_), 1);
    }

    #[test]
    fn default_pf_adopts_survivor_after_total_outage_partial_recovery() {
        // Chaos-campaign reproducer (seed 0x10c70b05, schedule 592,
        // minimized): kill PF1, then PF0 — no survivor, so the default-PF
        // fallback has nowhere to move — then recover only PF1. Firmware
        // must adopt PF1 as the default instead of blackholing unmatched
        // traffic on dead PF0 forever.
        let mut r = rig(SteeringMode::FlowBased);
        r.nic.fail_pf(Time::ZERO, r.pfs[1]);
        r.nic.fail_pf(Time::ZERO, r.pfs[0]);
        r.nic.recover_pf(r.pfs[1]);
        assert_eq!(r.nic.mpfs().default_pf(), r.pfs[1]);
        let mut a = simcore::Audit::new();
        r.nic.audit(&mut a);
        assert!(a.ok(), "{:?}", a.violations());
        // The home PF coming back reclaims its configured role.
        r.nic.recover_pf(r.pfs[0]);
        assert_eq!(r.nic.mpfs().default_pf(), r.pfs[0]);
    }

    #[test]
    fn completions_carry_the_pf_epoch() {
        let mut r = rig(SteeringMode::MacBased);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 4);
        assert_eq!(r.nic.pf_epoch(r.pfs[0]), 0);
        r.nic.set_pf_epoch(r.pfs[0], 2);
        // Epochs never move backwards.
        r.nic.set_pf_epoch(r.pfs[0], 1);
        assert_eq!(r.nic.pf_epoch(r.pfs[0]), 2);
        r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            1448,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        let (_, c) = r.nic.pop_rx_completion(q0_).unwrap();
        assert_eq!(c.epoch, 2, "rx CQE stamped with the PF's current epoch");
        let payload = r.mem.alloc(N0, 4096);
        r.nic
            .post_tx(r.q0, TxDesc::simple(payload, 100, flow(), false))
            .unwrap();
        let mut out = TxOutcome::default();
        r.nic.tx_doorbell(
            Time::from_us(1),
            Time::from_us(1),
            r.q0,
            &mut r.fab,
            &mut r.mem,
            &mut out,
        );
        let (_, tc) = r.nic.pop_tx_completion(r.q0).unwrap();
        assert_eq!(tc.epoch, 2, "tx CQE stamped too");
        // Error completions from a function-level reset carry the epoch at
        // flush time.
        r.nic
            .post_tx(r.q0, TxDesc::simple(payload, 100, flow(), false))
            .unwrap();
        r.nic.fail_pf(Time::from_us(2), r.pfs[0]);
        let (_, ec) = r.nic.pop_tx_completion(r.q0).unwrap();
        assert!(ec.error);
        assert_eq!(ec.epoch, 2);
        // Unknown PFs are absorbed as counters.
        assert_eq!(r.nic.pf_epoch(PfId(9)), 0);
        r.nic.set_pf_epoch(PfId(9), 5);
        assert!(r.nic.counters().invalid_refs >= 2);
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn malformed_tx_desc_panics() {
        let mut r = rig(SteeringMode::MacBased);
        let desc = TxDesc {
            fragments: crate::desc::FragList::default(),
            flow: flow(),
            len: 10,
            tso: false,
        };
        r.nic.post_tx(r.q0, desc);
    }
}
