//! The NIC device model: queues, DMA pipelines, steering, interrupts.
//!
//! One [`Nic`] instance models the server's adapter — either a conventional
//! NIC (every PF a separate logical device, MAC-steered) or the octoNIC
//! (one MAC, IOctoRFS flow steering). The difference is *only* firmware
//! state ([`SteeringMode`]) plus which driver manages it, exactly as in the
//! paper (§4.1: "By loading our IOctopus firmware, we can turn the server's
//! NIC into an octoNIC").

use memsys::{MemSystem, NodeId, PhysAddr};
use pcie::{PcieFabric, PfId};
use simcore::{Dur, Time};

use crate::desc::{Completion, RxDesc, TxDesc, CQE_BYTES, DESC_BYTES};
use crate::flow::{FlowTuple, MacAddr};
use crate::mpfs::{Mpfs, SteeringMode};
use crate::ring::DescRing;
use crate::steering::ArfsTable;
use crate::tso;
use crate::wire::{Wire, WireConfig};

/// Identifies one queue pair (Tx + Rx rings and their completion queues).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueueId(pub usize);

impl std::fmt::Display for QueueId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Device-wide parameters.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Wire MTU.
    pub mtu: u64,
    /// TCP MSS (MTU minus IP/TCP headers).
    pub mss: u64,
    /// Ring capacity (descriptors per ring).
    pub ring_entries: usize,
    /// Per-packet device pipeline latency (parse, steer, schedule).
    pub processing_delay: Dur,
    /// Interrupt moderation delay: time from completion to MSI-X fire while
    /// armed. Zero models §5.1.2's "disable adaptive interrupt coalescing".
    pub irq_delay: Dur,
    /// Steering firmware.
    pub steering: SteeringMode,
    /// Wire parameters.
    pub wire: WireConfig,
}

impl NicConfig {
    /// The paper's server NIC as shipped (standard firmware).
    pub fn standard_100g() -> Self {
        NicConfig {
            mtu: crate::wire::MTU,
            mss: crate::wire::MSS,
            ring_entries: 1024,
            processing_delay: Dur::from_ns(10),
            irq_delay: Dur::from_us(8),
            steering: SteeringMode::MacBased,
            wire: WireConfig::back_to_back_100g(),
        }
    }

    /// The same hardware after loading the IOctopus firmware.
    pub fn octonic_100g() -> Self {
        NicConfig {
            steering: SteeringMode::FlowBased,
            ..Self::standard_100g()
        }
    }
}

/// Static configuration of one queue pair.
#[derive(Debug, Clone, Copy)]
pub struct QueueConfig {
    /// The PCIe endpoint this queue's DMA flows through.
    pub pf: PfId,
    /// The core whose interrupts service this queue.
    pub irq_core: usize,
    /// The NUMA node the queue's rings and buffers live on.
    pub node: NodeId,
}

#[derive(Debug)]
struct Queue {
    cfg: QueueConfig,
    tx_ring: DescRing<TxDesc>,
    tx_cq: DescRing<Completion>,
    rx_ring: DescRing<RxDesc>,
    rx_cq: DescRing<Completion>,
    irq_armed: bool,
    busy_until: Time,
}

/// What happened to an arriving wire packet.
#[derive(Debug, Clone)]
pub enum RxOutcome {
    /// Delivered into a posted buffer; a completion entry was written.
    Delivered {
        /// Queue the packet landed on.
        queue: QueueId,
        /// PF the DMA went through (for per-PF accounting).
        pf: PfId,
        /// When the payload + CQE writes finished.
        done_at: Time,
        /// MSI-X delivery, if one fired: `(time, target core)`.
        irq: Option<(Time, usize)>,
    },
    /// No posted Rx buffer — the packet was dropped.
    DroppedNoBuffer {
        /// Queue whose ring was empty.
        queue: QueueId,
    },
}

/// Result of processing a Tx doorbell.
#[derive(Debug, Clone, Default)]
pub struct TxOutcome {
    /// Wire packets sent: `(arrival time at peer, flow, payload bytes)`.
    pub packets: Vec<(Time, FlowTuple, u64)>,
    /// When each descriptor's completion entry landed in host memory.
    pub completions: Vec<Time>,
    /// MSI-X delivery, if one fired: `(time, target core)`.
    pub irq: Option<(Time, usize)>,
}

/// The NIC device.
#[derive(Debug)]
pub struct Nic {
    cfg: NicConfig,
    queues: Vec<Queue>,
    mpfs: Mpfs,
    arfs: Vec<ArfsTable>,
    wire: Wire,
    pf_count: usize,
    rx_bytes_per_pf: Vec<u64>,
    tx_bytes_per_pf: Vec<u64>,
    rx_dropped: u64,
}

impl Nic {
    /// Creates the device with `pf_count` physical functions. `default_pf`
    /// catches traffic no steering rule matches.
    pub fn new(cfg: NicConfig, pf_count: usize, default_pf: PfId) -> Self {
        assert!(pf_count > 0, "a NIC needs at least one PF");
        assert!(default_pf.0 < pf_count, "default PF out of range");
        Nic {
            mpfs: Mpfs::new(cfg.steering, default_pf),
            cfg,
            queues: Vec::new(),
            arfs: vec![ArfsTable::new(Dur::from_ms(500)); pf_count],
            wire: Wire::new(cfg.wire),
            pf_count,
            rx_bytes_per_pf: vec![0; pf_count],
            tx_bytes_per_pf: vec![0; pf_count],
            rx_dropped: 0,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// The integrated multi-PF switch (firmware steering state).
    pub fn mpfs_mut(&mut self) -> &mut Mpfs {
        &mut self.mpfs
    }

    /// Read access to the switch.
    pub fn mpfs(&self) -> &Mpfs {
        &self.mpfs
    }

    /// Registers a queue pair whose rings live at the given host addresses
    /// (allocated by the driver, node-local to the queue's CPU — §2.3 "Q's
    /// memory is allocated from C's node").
    pub fn attach_queue(
        &mut self,
        cfg: QueueConfig,
        tx_ring_base: PhysAddr,
        tx_cq_base: PhysAddr,
        rx_ring_base: PhysAddr,
        rx_cq_base: PhysAddr,
    ) -> QueueId {
        assert!(cfg.pf.0 < self.pf_count, "queue references unknown PF");
        let n = self.cfg.ring_entries;
        let id = QueueId(self.queues.len());
        // Completion queues are sized 4x the work rings: buffers recycle
        // through the rings faster than NAPI drains under bursts, so more
        // completions than ring slots can be outstanding.
        self.queues.push(Queue {
            cfg,
            tx_ring: DescRing::new(tx_ring_base, DESC_BYTES, n),
            tx_cq: DescRing::new(tx_cq_base, CQE_BYTES, n * 4),
            rx_ring: DescRing::new(rx_ring_base, DESC_BYTES, n),
            rx_cq: DescRing::new(rx_cq_base, CQE_BYTES, n * 4),
            irq_armed: true,
            busy_until: Time::ZERO,
        });
        id
    }

    /// Number of attached queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// The static configuration of `q`.
    pub fn queue_config(&self, q: QueueId) -> QueueConfig {
        self.queue(q).cfg
    }

    /// Installs an ARFS rule on `pf`: packets of `flow` arriving at that PF
    /// go to `queue`.
    pub fn arfs_install(&mut self, now: Time, pf: PfId, flow: FlowTuple, queue: QueueId) {
        self.arfs[pf.0].install(now, flow, queue);
    }

    /// Expires idle ARFS rules on every PF; returns the total removed.
    pub fn arfs_expire(&mut self, now: Time) -> usize {
        self.arfs.iter_mut().map(|t| t.expire(now)).sum()
    }

    /// The driver posts an Rx buffer to `q`'s ring. Returns the slot address
    /// written (the driver charges its own `cpu_write`), or `None` if full.
    pub fn post_rx(&mut self, q: QueueId, desc: RxDesc) -> Option<PhysAddr> {
        self.queue_mut(q).rx_ring.post(desc)
    }

    /// The driver posts a Tx descriptor. Returns the slot address, or
    /// `None` if the ring is full.
    pub fn post_tx(&mut self, q: QueueId, desc: TxDesc) -> Option<PhysAddr> {
        assert!(desc.is_consistent(), "malformed Tx descriptor");
        self.queue_mut(q).tx_ring.post(desc)
    }

    /// Outstanding Tx descriptors on `q` (drained by doorbells).
    pub fn tx_backlog(&self, q: QueueId) -> usize {
        self.queue(q).tx_ring.len()
    }

    /// Posted Rx buffers available on `q`.
    pub fn rx_buffers_available(&self, q: QueueId) -> usize {
        self.queue(q).rx_ring.len()
    }

    /// The driver consumes one completion from `q`'s Rx CQ, if any.
    /// Returns the CQE address (for the driver's `cpu_read` charge) and the
    /// completion.
    pub fn pop_rx_completion(&mut self, q: QueueId) -> Option<(PhysAddr, Completion)> {
        self.queue_mut(q).rx_cq.consume()
    }

    /// The driver consumes one Tx completion, if any.
    pub fn pop_tx_completion(&mut self, q: QueueId) -> Option<(PhysAddr, Completion)> {
        self.queue_mut(q).tx_cq.consume()
    }

    /// When the oldest un-reaped Rx completion becomes visible in host
    /// memory, if any.
    pub fn rx_landing(&self, q: QueueId) -> Option<Time> {
        self.queue(q).rx_cq.peek().map(|c| c.landed_at)
    }

    /// When the oldest un-reaped Tx completion becomes visible, if any.
    pub fn tx_landing(&self, q: QueueId) -> Option<Time> {
        self.queue(q).tx_cq.peek().map(|c| c.landed_at)
    }

    /// Re-arms `q`'s interrupt (NAPI poll finished and found nothing).
    pub fn rearm_irq(&mut self, q: QueueId) {
        self.queue_mut(q).irq_armed = true;
    }

    /// Whether `q` currently has completions waiting in its Rx CQ.
    pub fn rx_cq_depth(&self, q: QueueId) -> usize {
        self.queue(q).rx_cq.len()
    }

    /// Whether `q`'s Tx CQ has unreaped completions.
    pub fn tx_cq_depth(&self, q: QueueId) -> usize {
        self.queue(q).tx_cq.len()
    }

    /// Whether `q`'s interrupt is currently armed (diagnostics).
    pub fn irq_armed(&self, q: QueueId) -> bool {
        self.queue(q).irq_armed
    }

    /// Processes a Tx doorbell: drains every posted descriptor on `q`,
    /// performing descriptor fetches, payload DMA reads (TSO-segmented),
    /// wire transmission, and completion writes.
    ///
    /// `doorbell_at` should already include the driver's MMIO cost and sets
    /// the pipeline chronology; `reserve_at` is the *event time* the caller
    /// is executing at, used for all shared-resource reservations (bandwidth
    /// must never be reserved at chained future times — that pushes FIFO
    /// horizons ahead of concurrent traffic and destabilizes the model).
    pub fn tx_doorbell(
        &mut self,
        doorbell_at: Time,
        reserve_at: Time,
        q: QueueId,
        fabric: &mut PcieFabric,
        mem: &mut MemSystem,
    ) -> TxOutcome {
        let mut out = TxOutcome::default();
        let (pf, irq_core, node) = {
            let qq = self.queue(q);
            (qq.cfg.pf, qq.cfg.irq_core, qq.cfg.node)
        };
        // The engine is pipelined: it spends `processing_delay` of occupancy
        // per descriptor while the DMA latencies of consecutive packets
        // overlap (bandwidth is still serialized inside the PCIe links).
        let mut engine = doorbell_at.max(self.queue(q).busy_until);
        let mut t = engine;

        while let Some((slot_addr, desc)) = self.queue_mut(q).tx_ring.consume() {
            engine += self.cfg.processing_delay;
            // Fetch the work descriptor from host memory. Bandwidth is
            // reserved at the doorbell's event time: feeding chained
            // (future) completion times back into shared-link FIFOs would
            // let congested chains starve near-term traffic.
            let d_desc = fabric.dma_read(reserve_at, pf, mem, slot_addr, DESC_BYTES);

            // Read the payload. IOctoSG (§3.3): fragments may carry a PF
            // hint so cross-node payloads are fetched through the local PF.
            // FIFO on the link: slowest component bounds readiness.
            let mut slowest = d_desc;
            for frag in &desc.fragments {
                let frag_pf = frag.pf_hint.unwrap_or(pf);
                let d = fabric.dma_read(reserve_at, frag_pf, mem, frag.addr, frag.len);
                slowest = slowest.max(d);
            }
            t = engine + slowest;

            // Segment onto the wire.
            let segments = if desc.tso {
                tso::segment(desc.len, self.cfg.mss)
            } else {
                vec![desc.len]
            };
            for seg in segments {
                let arrive = self.wire.send_tx(t, seg);
                self.tx_bytes_per_pf[pf.0] += seg;
                out.packets.push((arrive, desc.flow, seg));
            }

            // Completion entry.
            let Some(cq_slot) = self.queue(q).tx_cq.next_slot_addr() else {
                // CQ full: completion coalesced onto the oldest outstanding
                // entry (real hardware cannot overrun its CQ because the
                // driver sizes it to the ring).
                out.completions.push(t);
                continue;
            };
            let cqe_done = t + fabric.dma_write(reserve_at, pf, mem, cq_slot, CQE_BYTES);
            self.queue_mut(q)
                .tx_cq
                .post(Completion {
                    bytes: desc.len,
                    seq: 0,
                    flow: desc.flow,
                    buffer: None,
                    landed_at: cqe_done,
                })
                .expect("slot checked above");
            out.completions.push(cqe_done);
            t = t.max(engine);
        }

        // The interrupt is triggered by the FIRST completion written while
        // armed (moderated by irq_delay); NAPI then paces itself with the
        // later landings.
        if !out.completions.is_empty() && self.queue(q).irq_armed {
            self.queue_mut(q).irq_armed = false;
            let first = out.completions.iter().copied().min().unwrap_or(t);
            let fire = first + self.cfg.irq_delay;
            let lat = fabric.interrupt(reserve_at, pf, mem, node);
            out.irq = Some((fire + lat, irq_core));
        }
        self.queue_mut(q).busy_until = engine;
        out
    }

    /// Handles a packet arriving from the wire at `now` (already including
    /// wire serialization — the caller reserved [`Wire::send_rx`]).
    ///
    /// Steering: MPFS picks the PF (by MAC or by IOctoRFS flow rule), the
    /// PF's ARFS table picks the queue, RSS hashes as a fallback.
    #[allow(clippy::too_many_arguments)]
    pub fn on_wire_packet(
        &mut self,
        now: Time,
        dst_mac: MacAddr,
        flow: FlowTuple,
        payload: u64,
        seq: u64,
        fabric: &mut PcieFabric,
        mem: &mut MemSystem,
    ) -> RxOutcome {
        let pf = self.mpfs.steer(dst_mac, &flow);
        let q = match self.arfs[pf.0].steer(now, &flow) {
            Some(q) => q,
            None => self.rss_fallback(pf, &flow),
        };
        let (qpf, irq_core, node) = {
            let qq = self.queue(q);
            (qq.cfg.pf, qq.cfg.irq_core, qq.cfg.node)
        };
        // Pipelined Rx engine: `processing_delay` of per-packet occupancy;
        // descriptor prefetch + payload/CQE DMA latencies overlap across
        // packets (bandwidth still serializes inside the PCIe links).
        let engine = now.max(self.queue(q).busy_until) + self.cfg.processing_delay;

        // Pop a posted buffer.
        let (rx_slot, buf) = match self.queue_mut(q).rx_ring.consume() {
            Some(x) => x,
            None => {
                self.rx_dropped += 1;
                return RxOutcome::DroppedNoBuffer { queue: q };
            }
        };
        debug_assert!(buf.len >= payload, "posted buffer smaller than MTU packet");
        // Fetch the Rx descriptor, write the payload, write the CQE.
        // Bandwidth reserved at the arrival time (see tx_doorbell). The
        // three DMAs of one packet queue FIFO on the endpoint's link, so
        // the slowest component (whose duration already includes the
        // backlog of the earlier ones) bounds delivery; summing would
        // charge the same queue delay multiple times.
        let d_desc = fabric.dma_read(now, qpf, mem, rx_slot, DESC_BYTES);
        let d_payload = fabric.dma_write(now, qpf, mem, buf.addr, payload);
        let cq_slot = self
            .queue(q)
            .rx_cq
            .next_slot_addr()
            .expect("Rx CQ sized to ring; cannot overrun");
        let d_cqe = fabric.dma_write(now, qpf, mem, cq_slot, CQE_BYTES);
        let t = engine + d_desc.max(d_payload).max(d_cqe);
        self.queue_mut(q)
            .rx_cq
            .post(Completion {
                bytes: payload,
                seq,
                flow,
                buffer: Some(buf),
                landed_at: t,
            })
            .expect("slot checked above");
        self.rx_bytes_per_pf[qpf.0] += payload;
        self.queue_mut(q).busy_until = engine;

        let irq = if self.queue(q).irq_armed {
            self.queue_mut(q).irq_armed = false;
            let fire = t + self.cfg.irq_delay;
            let lat = fabric.interrupt(now, qpf, mem, node);
            Some((fire + lat, irq_core))
        } else {
            None
        };
        RxOutcome::Delivered {
            queue: q,
            pf: qpf,
            done_at: t,
            irq,
        }
    }

    /// The client→server wire direction (the system uses it to model the
    /// peer's transmissions).
    pub fn wire_mut(&mut self) -> &mut Wire {
        &mut self.wire
    }

    /// Receive bytes that flowed through `pf` since construction (Figure 14
    /// samples the per-PF difference every 50 ms).
    pub fn rx_bytes(&self, pf: PfId) -> u64 {
        self.rx_bytes_per_pf[pf.0]
    }

    /// Transmit bytes that flowed through `pf`.
    pub fn tx_bytes(&self, pf: PfId) -> u64 {
        self.tx_bytes_per_pf[pf.0]
    }

    /// Packets dropped for lack of a posted Rx buffer.
    pub fn rx_dropped(&self) -> u64 {
        self.rx_dropped
    }

    fn rss_fallback(&self, pf: PfId, flow: &FlowTuple) -> QueueId {
        let candidates: Vec<QueueId> = (0..self.queues.len())
            .filter(|i| self.queues[*i].cfg.pf == pf)
            .map(QueueId)
            .collect();
        assert!(
            !candidates.is_empty(),
            "no queues attached to {pf}; attach queues before receiving"
        );
        candidates[(flow.rss_hash() % candidates.len() as u64) as usize]
    }

    fn queue(&self, q: QueueId) -> &Queue {
        self.queues
            .get(q.0)
            .unwrap_or_else(|| panic!("unknown queue {q}"))
    }

    fn queue_mut(&mut self, q: QueueId) -> &mut Queue {
        self.queues
            .get_mut(q.0)
            .unwrap_or_else(|| panic!("unknown queue {q}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::MemConfig;
    use pcie::{Bifurcation, FabricConfig, PcieGen};

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    struct Rig {
        mem: MemSystem,
        fab: PcieFabric,
        nic: Nic,
        pfs: Vec<PfId>,
        q0: QueueId,
        q1: QueueId,
    }

    fn rig(mode: SteeringMode) -> Rig {
        let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let mut fab = PcieFabric::new(FabricConfig::default());
        let pfs = fab.add_bifurcated(&Bifurcation::x8x8_dual_socket(PcieGen::Gen3));
        let cfg = if mode == SteeringMode::FlowBased {
            NicConfig::octonic_100g()
        } else {
            NicConfig::standard_100g()
        };
        let mut nic = Nic::new(cfg, 2, pfs[0]);
        let mk_queue = |nic: &mut Nic, mem: &mut MemSystem, pf: PfId, node: NodeId, core: usize| {
            let ring_bytes = DESC_BYTES * 1024;
            let tx = mem.alloc(node, ring_bytes);
            let txc = mem.alloc(node, ring_bytes);
            let rx = mem.alloc(node, ring_bytes);
            let rxc = mem.alloc(node, ring_bytes);
            nic.attach_queue(
                QueueConfig {
                    pf,
                    irq_core: core,
                    node,
                },
                tx,
                txc,
                rx,
                rxc,
            )
        };
        let q0 = mk_queue(&mut nic, &mut mem, pfs[0], N0, 0);
        let q1 = mk_queue(&mut nic, &mut mem, pfs[1], N1, 14);
        nic.mpfs_mut().register_mac(MacAddr::local_admin(0), pfs[0]);
        nic.mpfs_mut().register_mac(MacAddr::local_admin(1), pfs[1]);
        Rig {
            mem,
            fab,
            nic,
            pfs,
            q0,
            q1,
        }
    }

    fn post_buffers(r: &mut Rig, q: QueueId, node: NodeId, n: usize) {
        for _ in 0..n {
            let buf = r.mem.alloc(node, 2048);
            r.nic
                .post_rx(
                    q,
                    RxDesc {
                        addr: buf,
                        len: 2048,
                    },
                )
                .unwrap();
        }
    }

    fn flow() -> FlowTuple {
        FlowTuple::tcp(100, 5000, 200, 80)
    }

    #[test]
    fn rx_delivers_into_posted_buffer() {
        let mut r = rig(SteeringMode::MacBased);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 4);
        let out = r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            1448,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        match out {
            RxOutcome::Delivered {
                queue,
                pf,
                done_at,
                irq,
            } => {
                assert_eq!(queue, r.q0);
                assert_eq!(pf, r.pfs[0]);
                assert!(done_at > Time::ZERO);
                assert!(irq.is_some(), "first packet fires the armed irq");
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(r.nic.rx_cq_depth(r.q0), 1);
        assert_eq!(r.nic.rx_bytes(r.pfs[0]), 1448);
    }

    #[test]
    fn rx_without_buffers_drops() {
        let mut r = rig(SteeringMode::MacBased);
        let out = r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            1448,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        assert!(matches!(out, RxOutcome::DroppedNoBuffer { .. }));
        assert_eq!(r.nic.rx_dropped(), 1);
    }

    #[test]
    fn irq_moderation_fires_once_until_rearm() {
        let mut r = rig(SteeringMode::MacBased);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 8);
        let first = r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            100,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        let second = r.nic.on_wire_packet(
            Time::from_us(1),
            MacAddr::local_admin(0),
            flow(),
            100,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        let irq1 = matches!(first, RxOutcome::Delivered { irq: Some(_), .. });
        let irq2 = matches!(second, RxOutcome::Delivered { irq: None, .. });
        assert!(irq1 && irq2, "second completion is coalesced");
        r.nic.rearm_irq(r.q0);
        let third = r.nic.on_wire_packet(
            Time::from_us(2),
            MacAddr::local_admin(0),
            flow(),
            100,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        assert!(matches!(third, RxOutcome::Delivered { irq: Some(_), .. }));
    }

    #[test]
    fn mac_steering_picks_pf_by_mac() {
        let mut r = rig(SteeringMode::MacBased);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 4);
        let q1_ = r.q1;
        post_buffers(&mut r, q1_, N1, 4);
        let out = r.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(1),
            flow(),
            100,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        match out {
            RxOutcome::Delivered { pf, queue, .. } => {
                assert_eq!(pf, r.pfs[1]);
                assert_eq!(queue, r.q1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ioctorfs_moves_flow_between_pfs() {
        let mut r = rig(SteeringMode::FlowBased);
        let q0_ = r.q0;
        post_buffers(&mut r, q0_, N0, 8);
        let q1_ = r.q1;
        post_buffers(&mut r, q1_, N1, 8);
        let one_mac = MacAddr::local_admin(7); // single externally visible MAC
        r.nic.mpfs_mut().install_flow(flow(), r.pfs[0]);
        r.nic.arfs_install(Time::ZERO, r.pfs[0], flow(), r.q0);
        let a = r
            .nic
            .on_wire_packet(Time::ZERO, one_mac, flow(), 100, 0, &mut r.fab, &mut r.mem);
        assert!(matches!(a, RxOutcome::Delivered { pf, .. } if pf == r.pfs[0]));
        // Process migrated: the driver updates IOctoRFS + the new PF's ARFS.
        r.nic.mpfs_mut().install_flow(flow(), r.pfs[1]);
        r.nic.arfs_install(Time::ZERO, r.pfs[1], flow(), r.q1);
        let b = r.nic.on_wire_packet(
            Time::from_us(5),
            one_mac,
            flow(),
            100,
            0,
            &mut r.fab,
            &mut r.mem,
        );
        assert!(
            matches!(b, RxOutcome::Delivered { pf, queue, .. } if pf == r.pfs[1] && queue == r.q1)
        );
    }

    #[test]
    fn local_rx_faster_than_remote_rx() {
        // The NUDMA effect at device level: same packet, buffer on node 0,
        // via the node-0 PF vs the node-1 PF.
        let mut rl = rig(SteeringMode::MacBased);
        let q0_ = rl.q0;
        post_buffers(&mut rl, q0_, N0, 4);
        let local = match rl.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(0),
            flow(),
            1448,
            0,
            &mut rl.fab,
            &mut rl.mem,
        ) {
            RxOutcome::Delivered { done_at, .. } => done_at,
            o => panic!("{o:?}"),
        };
        let mut rr = rig(SteeringMode::MacBased);
        // Queue q1 rides PF1 (node 1) but we give it node-0 buffers: every
        // payload DMA crosses the socket.
        let q1_ = rr.q1;
        post_buffers(&mut rr, q1_, N0, 4);
        let remote = match rr.nic.on_wire_packet(
            Time::ZERO,
            MacAddr::local_admin(1),
            flow(),
            1448,
            0,
            &mut rr.fab,
            &mut rr.mem,
        ) {
            RxOutcome::Delivered { done_at, .. } => done_at,
            o => panic!("{o:?}"),
        };
        assert!(remote > local, "remote {remote} vs local {local}");
    }

    #[test]
    fn tx_doorbell_sends_and_completes() {
        let mut r = rig(SteeringMode::MacBased);
        let payload = r.mem.alloc(N0, 4096);
        r.nic
            .post_tx(r.q0, TxDesc::simple(payload, 1448, flow(), false))
            .unwrap();
        let out = r
            .nic
            .tx_doorbell(Time::ZERO, Time::ZERO, r.q0, &mut r.fab, &mut r.mem);
        assert_eq!(out.packets.len(), 1);
        assert_eq!(out.packets[0].2, 1448);
        assert_eq!(out.completions.len(), 1);
        assert!(out.irq.is_some());
        assert_eq!(r.nic.tx_bytes(r.pfs[0]), 1448);
        assert_eq!(r.nic.tx_backlog(r.q0), 0);
    }

    #[test]
    fn tso_segments_on_device() {
        let mut r = rig(SteeringMode::MacBased);
        let payload = r.mem.alloc(N0, 65536);
        r.nic
            .post_tx(r.q0, TxDesc::simple(payload, 64 * 1024, flow(), true))
            .unwrap();
        let out = r
            .nic
            .tx_doorbell(Time::ZERO, Time::ZERO, r.q0, &mut r.fab, &mut r.mem);
        let expect = tso::segment_count(64 * 1024, crate::wire::MSS);
        assert_eq!(out.packets.len() as u64, expect);
        assert_eq!(out.packets.iter().map(|p| p.2).sum::<u64>(), 64 * 1024);
        // One CQE for the aggregate, not per segment.
        assert_eq!(out.completions.len(), 1);
    }

    #[test]
    fn ioctosg_fetches_fragments_through_hinted_pf() {
        let mut r = rig(SteeringMode::FlowBased);
        // Payload spans both nodes (sendfile page-cache case, §3.3).
        let frag0 = r.mem.alloc(N0, 4096);
        let frag1 = r.mem.alloc(N1, 4096);
        let desc = TxDesc {
            fragments: vec![
                crate::desc::TxFragment {
                    addr: frag0,
                    len: 1000,
                    pf_hint: Some(r.pfs[0]),
                },
                crate::desc::TxFragment {
                    addr: frag1,
                    len: 448,
                    pf_hint: Some(r.pfs[1]),
                },
            ],
            flow: flow(),
            len: 1448,
            tso: false,
        };
        r.nic.post_tx(r.q0, desc).unwrap();
        let before0 = r.fab.downstream_bytes(r.pfs[0]);
        let before1 = r.fab.downstream_bytes(r.pfs[1]);
        r.nic
            .tx_doorbell(Time::ZERO, Time::ZERO, r.q0, &mut r.fab, &mut r.mem);
        assert!(r.fab.downstream_bytes(r.pfs[0]) > before0, "frag 0 via PF0");
        assert!(r.fab.downstream_bytes(r.pfs[1]) > before1, "frag 1 via PF1");
    }

    #[test]
    fn tx_ring_full_rejected() {
        let mut r = rig(SteeringMode::MacBased);
        let payload = r.mem.alloc(N0, 4096);
        for _ in 0..1024 {
            assert!(r
                .nic
                .post_tx(r.q0, TxDesc::simple(payload, 100, flow(), false))
                .is_some());
        }
        assert!(r
            .nic
            .post_tx(r.q0, TxDesc::simple(payload, 100, flow(), false))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn malformed_tx_desc_panics() {
        let mut r = rig(SteeringMode::MacBased);
        let desc = TxDesc {
            fragments: vec![],
            flow: flow(),
            len: 10,
            tso: false,
        };
        r.nic.post_tx(r.q0, desc);
    }
}
