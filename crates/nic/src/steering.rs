//! Accelerated Receive Flow Steering: the per-PF table mapping flows to
//! receive queues (§2.3).
//!
//! "Modern NICs support Accelerated Receive Flow Steering (ARFS) by
//! (1) providing the OS with an API that allows it to associate networking
//! flows with Rx queues, and by (2) steering incoming packets accordingly."
//! Entries expire if unused, mirroring the kernel worker that "periodically
//! search[es] for expired rules and delete[s] them" (§4.2).

use simcore::{Dur, FxHashMap, Time};

use crate::device::QueueId;
use crate::flow::FlowTuple;

#[derive(Debug, Clone, Copy)]
struct Rule {
    queue: QueueId,
    last_hit: Time,
}

/// One PF's ARFS table.
#[derive(Debug, Clone)]
pub struct ArfsTable {
    rules: FxHashMap<FlowTuple, Rule>,
    expiry: Dur,
    hits: u64,
    misses: u64,
}

impl ArfsTable {
    /// Creates a table whose unused rules expire after `expiry`.
    pub fn new(expiry: Dur) -> Self {
        ArfsTable {
            rules: FxHashMap::default(),
            expiry,
            hits: 0,
            misses: 0,
        }
    }

    /// Installs or updates a flow → queue rule.
    pub fn install(&mut self, now: Time, flow: FlowTuple, queue: QueueId) {
        self.rules.insert(
            flow,
            Rule {
                queue,
                last_hit: now,
            },
        );
    }

    /// Removes a rule; returns the queue it pointed at, if present.
    pub fn remove(&mut self, flow: &FlowTuple) -> Option<QueueId> {
        self.rules.remove(flow).map(|r| r.queue)
    }

    /// Looks up the queue for an arriving packet, refreshing the rule's
    /// last-hit time. `None` means "fall back to RSS".
    pub fn steer(&mut self, now: Time, flow: &FlowTuple) -> Option<QueueId> {
        match self.rules.get_mut(flow) {
            Some(r) => {
                r.last_hit = now;
                self.hits += 1;
                Some(r.queue)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Drops rules idle longer than the expiry period; returns how many were
    /// removed.
    pub fn expire(&mut self, now: Time) -> usize {
        let expiry = self.expiry;
        let before = self.rules.len();
        self.rules.retain(|_, r| now.since(r.last_hit) < expiry);
        before - self.rules.len()
    }

    /// Installed rule count.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Lookup hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(port: u16) -> FlowTuple {
        FlowTuple::tcp(10, port, 20, 80)
    }

    #[test]
    fn install_then_steer() {
        let mut t = ArfsTable::new(Dur::from_ms(100));
        t.install(Time::ZERO, flow(1), QueueId(3));
        assert_eq!(t.steer(Time::ZERO, &flow(1)), Some(QueueId(3)));
        assert_eq!(t.steer(Time::ZERO, &flow(2)), None);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn update_moves_flow() {
        let mut t = ArfsTable::new(Dur::from_ms(100));
        t.install(Time::ZERO, flow(1), QueueId(0));
        t.install(Time::from_ms(1), flow(1), QueueId(5));
        assert_eq!(t.steer(Time::from_ms(2), &flow(1)), Some(QueueId(5)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn expiry_removes_idle_rules() {
        let mut t = ArfsTable::new(Dur::from_ms(10));
        t.install(Time::ZERO, flow(1), QueueId(0));
        t.install(Time::ZERO, flow(2), QueueId(1));
        // Keep flow 1 warm.
        t.steer(Time::from_ms(8), &flow(1));
        assert_eq!(t.expire(Time::from_ms(15)), 1);
        assert!(t.steer(Time::from_ms(15), &flow(1)).is_some());
        assert!(t.steer(Time::from_ms(15), &flow(2)).is_none());
    }

    #[test]
    fn remove_returns_queue() {
        let mut t = ArfsTable::new(Dur::from_ms(10));
        t.install(Time::ZERO, flow(1), QueueId(2));
        assert_eq!(t.remove(&flow(1)), Some(QueueId(2)));
        assert_eq!(t.remove(&flow(1)), None);
        assert!(t.is_empty());
    }

    #[test]
    fn steer_refreshes_recency() {
        let mut t = ArfsTable::new(Dur::from_ms(10));
        t.install(Time::ZERO, flow(1), QueueId(0));
        for ms in (2..30).step_by(2) {
            assert!(t.steer(Time::from_ms(ms), &flow(1)).is_some());
            t.expire(Time::from_ms(ms));
        }
        assert_eq!(t.len(), 1, "continuously used rule survives");
    }
}
