//! TCP Segmentation Offload: "the NIC's TSO functionality allows the kernel
//! to aggregate sent data into 64 KB TCP segments before handing it to the
//! NIC" (§5.1.1), which then cuts them into MTU-sized wire packets.

/// The largest aggregate the kernel hands the device with TSO.
pub const TSO_MAX_BYTES: u64 = 64 * 1024;

/// Splits a `len`-byte payload into wire-packet payload sizes of at most
/// `mss` bytes each.
///
/// # Panics
/// Panics if `mss` is zero.
///
/// # Example
/// ```
/// use nic::tso::segment;
/// assert_eq!(segment(3000, 1448), vec![1448, 1448, 104]);
/// assert_eq!(segment(100, 1448), vec![100]);
/// assert_eq!(segment(0, 1448), Vec::<u64>::new());
/// ```
pub fn segment(len: u64, mss: u64) -> Vec<u64> {
    segments(len, mss).collect()
}

/// Streaming form of [`segment`]: yields the same sizes in the same order
/// without allocating, for the device's per-descriptor hot path.
///
/// # Panics
/// Panics if `mss` is zero.
pub fn segments(len: u64, mss: u64) -> Segments {
    assert!(mss > 0, "MSS must be positive");
    Segments { left: len, mss }
}

/// Iterator over TSO wire-packet payload sizes (see [`segments`]).
#[derive(Debug, Clone)]
pub struct Segments {
    left: u64,
    mss: u64,
}

impl Iterator for Segments {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.left == 0 {
            return None;
        }
        let take = self.left.min(self.mss);
        self.left -= take;
        Some(take)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.left.div_ceil(self.mss) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Segments {}

/// Number of wire packets a payload becomes.
pub fn segment_count(len: u64, mss: u64) -> u64 {
    if len == 0 {
        0
    } else {
        len.div_ceil(mss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    #[test]
    fn exact_multiple() {
        assert_eq!(segment(2896, 1448), vec![1448, 1448]);
    }

    #[test]
    fn max_tso_aggregate() {
        let segs = segment(TSO_MAX_BYTES, 1448);
        assert_eq!(segs.len() as u64, segment_count(TSO_MAX_BYTES, 1448));
        assert_eq!(segs.iter().sum::<u64>(), TSO_MAX_BYTES);
    }

    #[test]
    #[should_panic(expected = "MSS must be positive")]
    fn zero_mss_panics() {
        segment(10, 0);
    }

    #[test]
    fn prop_segments_sum_to_len() {
        let mut r = SimRng::seed(0x750a);
        for _ in 0..256 {
            let len = r.below(200_000);
            let mss = 1 + r.below(8999);
            let segs = segment(len, mss);
            assert_eq!(segs.iter().sum::<u64>(), len);
            assert!(segs.iter().all(|&s| s > 0 && s <= mss));
            assert_eq!(segs.len() as u64, segment_count(len, mss));
        }
    }

    #[test]
    fn prop_only_last_segment_short() {
        let mut r = SimRng::seed(0x750b);
        for _ in 0..256 {
            let len = 1 + r.below(199_999);
            let mss = 1 + r.below(8999);
            let segs = segment(len, mss);
            for &s in &segs[..segs.len() - 1] {
                assert_eq!(s, mss);
            }
        }
    }
}
