//! The multi-PF Ethernet switch (MPFS) integrated in the NIC.
//!
//! With standard firmware the MPFS "steers incoming traffic to PFs based on
//! their target MAC address" (§4.1) — each PF is a separate logical NIC.
//! The octoNIC firmware replaces the MAC lookup with a flow-5-tuple lookup
//! (IOctoRFS): "we modify the MPFS to map packets to a PF based on their
//! flow 5-tuple instead of the MAC address."

use pcie::PfId;
use simcore::FxHashMap;

use crate::flow::{FlowTuple, MacAddr};

/// Which steering logic the firmware runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteeringMode {
    /// Standard firmware: one MAC per PF; packets go to the PF owning their
    /// destination MAC.
    MacBased,
    /// OctoNIC firmware (IOctoRFS): one MAC for the whole device; packets go
    /// to the PF their flow was bound to, defaulting to `default_pf`.
    FlowBased,
}

/// The multi-PF switch state.
#[derive(Debug, Clone)]
pub struct Mpfs {
    mode: SteeringMode,
    macs: FxHashMap<MacAddr, PfId>,
    flows: FxHashMap<FlowTuple, PfId>,
    default_pf: PfId,
    updates: u64,
}

impl Mpfs {
    /// Creates a switch in the given mode; `default_pf` catches unmatched
    /// traffic.
    pub fn new(mode: SteeringMode, default_pf: PfId) -> Self {
        Mpfs {
            mode,
            macs: FxHashMap::default(),
            flows: FxHashMap::default(),
            default_pf,
            updates: 0,
        }
    }

    /// The active steering mode.
    pub fn mode(&self) -> SteeringMode {
        self.mode
    }

    /// Registers a PF's MAC (standard firmware).
    pub fn register_mac(&mut self, mac: MacAddr, pf: PfId) {
        self.macs.insert(mac, pf);
    }

    /// Installs or moves a flow → PF rule (IOctoRFS). This is the operation
    /// the octoNIC driver performs from its ARFS callback when a process
    /// migrates to a CPU on another socket (§4.2 "Receive").
    pub fn install_flow(&mut self, flow: FlowTuple, pf: PfId) {
        self.updates += 1;
        self.flows.insert(flow, pf);
    }

    /// Removes a flow rule (rule expiry).
    pub fn remove_flow(&mut self, flow: &FlowTuple) -> Option<PfId> {
        self.flows.remove(flow)
    }

    /// The PF unmatched traffic currently falls back to.
    pub fn default_pf(&self) -> PfId {
        self.default_pf
    }

    /// Redirects unmatched traffic (failover moves the default off a dead
    /// PF and back after recovery).
    pub fn set_default_pf(&mut self, pf: PfId) {
        self.default_pf = pf;
    }

    /// Number of flow rules currently steering to `pf`.
    pub fn flows_on(&self, pf: PfId) -> usize {
        self.flows.values().filter(|&&p| p == pf).count()
    }

    /// Re-points every flow rule on `from` to `to` — the firmware half of
    /// PF failover: a dead PF's steering entries migrate to a survivor so
    /// its flows keep landing somewhere. Returns the number of rules moved.
    ///
    /// Rules are rewritten in sorted 5-tuple order: the flow table is a
    /// hash map, and iterating it directly would make the update sequence
    /// (and anything seeded from it) nondeterministic across runs.
    pub fn resteer(&mut self, from: PfId, to: PfId) -> usize {
        let mut moved: Vec<FlowTuple> = self
            .flows
            .iter()
            .filter(|&(_, &p)| p == from)
            .map(|(f, _)| *f)
            .collect();
        moved.sort_unstable();
        for f in &moved {
            self.updates += 1;
            self.flows.insert(*f, to);
        }
        moved.len()
    }

    /// Steers an arriving packet to a PF.
    pub fn steer(&self, dst_mac: MacAddr, flow: &FlowTuple) -> PfId {
        match self.mode {
            SteeringMode::MacBased => *self.macs.get(&dst_mac).unwrap_or(&self.default_pf),
            SteeringMode::FlowBased => *self.flows.get(flow).unwrap_or(&self.default_pf),
        }
    }

    /// Number of installed flow rules.
    pub fn flow_rules(&self) -> usize {
        self.flows.len()
    }

    /// Total flow-rule updates ever applied (diagnostics; the paper's
    /// prototype applies these "asynchronously by a separate kernel worker
    /// thread").
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(port: u16) -> FlowTuple {
        FlowTuple::tcp(10, port, 20, 80)
    }

    #[test]
    fn mac_based_steers_by_mac() {
        let mut m = Mpfs::new(SteeringMode::MacBased, PfId(0));
        m.register_mac(MacAddr::local_admin(0), PfId(0));
        m.register_mac(MacAddr::local_admin(1), PfId(1));
        assert_eq!(m.steer(MacAddr::local_admin(1), &flow(1)), PfId(1));
        assert_eq!(m.steer(MacAddr::local_admin(0), &flow(1)), PfId(0));
        // Unknown MAC falls back.
        assert_eq!(m.steer(MacAddr::local_admin(9), &flow(1)), PfId(0));
    }

    #[test]
    fn mac_based_ignores_flow_rules() {
        let mut m = Mpfs::new(SteeringMode::MacBased, PfId(0));
        m.register_mac(MacAddr::local_admin(0), PfId(0));
        m.install_flow(flow(1), PfId(1));
        assert_eq!(m.steer(MacAddr::local_admin(0), &flow(1)), PfId(0));
    }

    #[test]
    fn flow_based_steers_by_tuple() {
        let mut m = Mpfs::new(SteeringMode::FlowBased, PfId(0));
        m.install_flow(flow(1), PfId(1));
        let mac = MacAddr::local_admin(0);
        assert_eq!(m.steer(mac, &flow(1)), PfId(1));
        assert_eq!(m.steer(mac, &flow(2)), PfId(0), "miss -> default");
    }

    #[test]
    fn flow_rule_moves_on_migration() {
        let mut m = Mpfs::new(SteeringMode::FlowBased, PfId(0));
        m.install_flow(flow(1), PfId(0));
        m.install_flow(flow(1), PfId(1));
        assert_eq!(m.steer(MacAddr::local_admin(0), &flow(1)), PfId(1));
        assert_eq!(m.flow_rules(), 1);
        assert_eq!(m.updates(), 2);
    }

    #[test]
    fn resteer_moves_all_rules_off_a_pf() {
        let mut m = Mpfs::new(SteeringMode::FlowBased, PfId(0));
        m.install_flow(flow(1), PfId(0));
        m.install_flow(flow(2), PfId(0));
        m.install_flow(flow(3), PfId(1));
        let before = m.updates();
        assert_eq!(m.resteer(PfId(0), PfId(1)), 2);
        assert_eq!(m.flows_on(PfId(0)), 0);
        assert_eq!(m.flows_on(PfId(1)), 3);
        assert_eq!(m.updates(), before + 2);
        // Nothing left to move.
        assert_eq!(m.resteer(PfId(0), PfId(1)), 0);
    }

    #[test]
    fn default_pf_redirects() {
        let mut m = Mpfs::new(SteeringMode::FlowBased, PfId(0));
        assert_eq!(m.default_pf(), PfId(0));
        m.set_default_pf(PfId(1));
        assert_eq!(m.steer(MacAddr::local_admin(0), &flow(9)), PfId(1));
    }

    #[test]
    fn remove_flow_rule() {
        let mut m = Mpfs::new(SteeringMode::FlowBased, PfId(0));
        m.install_flow(flow(1), PfId(1));
        assert_eq!(m.remove_flow(&flow(1)), Some(PfId(1)));
        assert_eq!(m.steer(MacAddr::local_admin(0), &flow(1)), PfId(0));
    }
}
