//! Descriptor rings: "a cyclic array (known as a 'ring buffer' or simply a
//! 'ring') in DRAM, which the OS accesses through load/store operations,
//! and the device accesses using DMA" (§2.3).
//!
//! The ring stores the simulated descriptor *contents* in a `VecDeque` while
//! tracking the *addresses* of its slots so both sides can charge the memory
//! system for their accesses: the OS `cpu_write`s a slot before ringing the
//! doorbell; the device `dma_read`s it before processing.

use std::collections::VecDeque;

use memsys::PhysAddr;

/// A cyclic descriptor ring in host memory.
#[derive(Debug, Clone)]
pub struct DescRing<T> {
    base: PhysAddr,
    entry_bytes: u64,
    capacity: usize,
    head: usize,
    entries: VecDeque<(usize, T)>,
    posted_total: u64,
    consumed_total: u64,
}

impl<T> DescRing<T> {
    /// Creates a ring of `capacity` slots of `entry_bytes` each, backed by
    /// host memory at `base`.
    ///
    /// # Panics
    /// Panics if `capacity` or `entry_bytes` is zero.
    pub fn new(base: PhysAddr, entry_bytes: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "ring needs capacity");
        assert!(entry_bytes > 0, "ring entries need a size");
        DescRing {
            base,
            entry_bytes,
            capacity,
            head: 0,
            entries: VecDeque::with_capacity(capacity),
            posted_total: 0,
            consumed_total: 0,
        }
    }

    /// Total bytes of host memory the ring occupies.
    pub fn footprint_bytes(&self) -> u64 {
        self.entry_bytes * self.capacity as u64
    }

    /// The host address of slot `idx`.
    pub fn slot_addr(&self, idx: usize) -> PhysAddr {
        self.base
            .offset((idx % self.capacity) as u64 * self.entry_bytes)
    }

    /// The slot address the *next* post will occupy (for charging the DMA
    /// before committing the entry), or `None` if the ring is full.
    pub fn next_slot_addr(&self) -> Option<PhysAddr> {
        if self.entries.len() >= self.capacity {
            return None;
        }
        Some(self.slot_addr((self.head + self.entries.len()) % self.capacity))
    }

    /// Posts an entry at the producer position; returns the slot address the
    /// producer wrote (so it can charge the memory system), or `None` if the
    /// ring is full.
    pub fn post(&mut self, entry: T) -> Option<PhysAddr> {
        if self.entries.len() >= self.capacity {
            return None;
        }
        let slot = (self.head + self.entries.len()) % self.capacity;
        self.entries.push_back((slot, entry));
        self.posted_total += 1;
        Some(self.slot_addr(slot))
    }

    /// Consumes the oldest entry; returns it with its slot address, or
    /// `None` if empty.
    pub fn consume(&mut self) -> Option<(PhysAddr, T)> {
        let (slot, entry) = self.entries.pop_front()?;
        self.head = (slot + 1) % self.capacity;
        self.consumed_total += 1;
        Some((self.slot_addr(slot), entry))
    }

    /// Peeks at the oldest entry without consuming it.
    pub fn peek(&self) -> Option<&T> {
        self.entries.front().map(|(_, e)| e)
    }

    /// Outstanding (posted but unconsumed) entries, oldest first. Audit
    /// code walks completion queues with this to count resources (e.g. Rx
    /// buffers) parked in CQEs the host has not reaped yet.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|(_, e)| e)
    }

    /// Outstanding (posted but unconsumed) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the ring has no free slots.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries ever posted.
    pub fn posted_total(&self) -> u64 {
        self.posted_total
    }

    /// Entries ever consumed.
    pub fn consumed_total(&self) -> u64 {
        self.consumed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    fn ring(cap: usize) -> DescRing<u32> {
        DescRing::new(PhysAddr(0x1000), 64, cap)
    }

    #[test]
    fn fifo_order() {
        let mut r = ring(4);
        r.post(1).unwrap();
        r.post(2).unwrap();
        assert_eq!(r.consume().unwrap().1, 1);
        assert_eq!(r.consume().unwrap().1, 2);
        assert!(r.consume().is_none());
    }

    #[test]
    fn full_ring_rejects() {
        let mut r = ring(2);
        assert!(r.post(1).is_some());
        assert!(r.post(2).is_some());
        assert!(r.post(3).is_none());
        assert!(r.is_full());
        r.consume();
        assert!(r.post(3).is_some());
    }

    #[test]
    fn slot_addresses_wrap() {
        let mut r = ring(2);
        let a0 = r.post(1).unwrap();
        let a1 = r.post(2).unwrap();
        assert_eq!(a0, PhysAddr(0x1000));
        assert_eq!(a1, PhysAddr(0x1040));
        r.consume();
        let a2 = r.post(3).unwrap();
        assert_eq!(a2, a0, "wraps back to slot 0");
    }

    #[test]
    fn consume_returns_matching_slot() {
        let mut r = ring(3);
        let posted = r.post(7).unwrap();
        let (addr, v) = r.consume().unwrap();
        assert_eq!(addr, posted);
        assert_eq!(v, 7);
    }

    #[test]
    fn footprint_and_counters() {
        let mut r = ring(8);
        assert_eq!(r.footprint_bytes(), 512);
        r.post(1);
        r.post(2);
        r.consume();
        assert_eq!(r.posted_total(), 2);
        assert_eq!(r.consumed_total(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn peek_is_nondestructive() {
        let mut r = ring(2);
        r.post(9);
        assert_eq!(r.peek(), Some(&9));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn prop_never_exceeds_capacity() {
        let mut rng = SimRng::seed(0x4149);
        for _ in 0..16 {
            let ops = 1 + rng.below(499) as usize;
            let mut r = ring(8);
            let mut model: VecDeque<u32> = VecDeque::new();
            let mut next = 0u32;
            for _ in 0..ops {
                if rng.chance(0.5) {
                    let ok = r.post(next).is_some();
                    if model.len() < 8 {
                        assert!(ok);
                        model.push_back(next);
                    } else {
                        assert!(!ok);
                    }
                    next += 1;
                } else {
                    let got = r.consume().map(|(_, v)| v);
                    assert_eq!(got, model.pop_front());
                }
                assert!(r.len() <= 8);
                assert_eq!(r.len(), model.len());
            }
        }
    }
}
