//! NIC substrate for the IOctopus reproduction.
//!
//! Models a multi-queue, multi-PF 100 GbE NIC at descriptor granularity —
//! both with the *standard* firmware (each physical function is a separate
//! logical NIC with its own MAC, Figure 5a/b) and with the *octoNIC*
//! firmware (all PFs unified behind one MAC, steered by IOctoRFS,
//! Figure 5c).
//!
//! Modules:
//!
//! * [`flow`] — flow 5-tuples and MAC addresses,
//! * [`desc`] — transmit/receive descriptors and completion entries,
//! * [`ring`] — descriptor rings (cyclic arrays in host memory the NIC
//!   reads/writes by DMA, §2.3),
//! * [`steering`] — per-PF ARFS tables mapping flows to receive queues,
//! * [`mpfs`] — the multi-PF Ethernet switch; its `FlowBased` mode is the
//!   paper's IOctoRFS (§4.1: "we modify the MPFS to map packets to a PF
//!   based on their flow 5-tuple instead of the MAC address"),
//! * [`tso`] — TCP segmentation offload,
//! * [`wire`] — the Ethernet wire with framing overhead,
//! * [`device`] — the NIC device model tying it all together.
//!
//! Every DMA the device performs (descriptor fetches, payload moves,
//! completion writes) goes through the [`pcie`] fabric and the [`memsys`]
//! memory system, so locality effects — DDIO hits, remote invalidations,
//! QPI crossings — fall out of the substrate rather than being asserted.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod desc;
pub mod device;
pub mod flow;
pub mod mpfs;
pub mod ring;
pub mod steering;
pub mod tso;
pub mod wire;

pub use desc::{Completion, RxDesc, TxDesc, TxFragment};
pub use device::{Nic, NicConfig, NicCounters, QueueConfig, QueueId, RxOutcome, TxOutcome};
pub use flow::{FlowTuple, MacAddr, Protocol};
pub use mpfs::{Mpfs, SteeringMode};
pub use steering::ArfsTable;
pub use wire::WireConfig;
