//! Fixture-driven rule validation: for every rule, a seeded true positive
//! must fire, a compliant twin must stay silent, and a reasoned pragma must
//! move the finding to the suppressed list (hygiene findings are
//! unsuppressible by design, so R6's third fixture is a malformed pragma).
//!
//! Fixtures live under `tests/fixtures/` — a directory `lint_workspace`
//! explicitly excludes, so the seeded violations never pollute a real run.
//! Each fixture is linted via [`simlint::lint_source`] under a *virtual*
//! workspace path, which is what drives crate scoping (sim crate vs tool
//! crate, hot-path file lists).

use simlint::report::Report;
use simlint::rules::RuleId;
use simlint::{lint_source, Options};

/// Virtual path placing a fixture inside a simulation crate.
const SIM_PATH: &str = "crates/simcore/src/fixture.rs";
/// Virtual path placing a fixture in the event-loop crate (R3 shapes).
const LOOP_PATH: &str = "crates/ioctopus/src/fixture.rs";
/// Virtual path aliasing the hot-path file list entry for `NetLoop`.
const HOT_PATH: &str = "crates/ioctopus/src/netloop.rs";
/// Virtual path placing a fixture inside the telemetry crate (a sim crate:
/// trace artifacts are covered by the determinism contract).
const TELEM_PATH: &str = "crates/telemetry/src/fixture.rs";

fn fixture(name: &str) -> String {
    let p = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn lint(virtual_path: &str, name: &str) -> Report {
    lint_source(virtual_path, &fixture(name), &Options::default())
}

fn rules_of(findings: &[simlint::scan::Finding]) -> Vec<RuleId> {
    findings.iter().map(|f| f.rule).collect()
}

#[track_caller]
fn assert_fires(rep: &Report, rule: RuleId, at_least: usize) {
    let n = rep.findings.iter().filter(|f| f.rule == rule).count();
    assert!(
        n >= at_least,
        "expected >= {at_least} active {rule:?} findings, got {n} in {:?}",
        rules_of(&rep.findings)
    );
}

#[track_caller]
fn assert_clean(rep: &Report) {
    assert!(
        rep.findings.is_empty(),
        "expected no findings, got {:?}",
        rep.findings
            .iter()
            .map(|f| (f.rule, f.line, f.message.clone()))
            .collect::<Vec<_>>()
    );
}

#[track_caller]
fn assert_suppressed(rep: &Report, rule: RuleId) {
    assert_clean(rep);
    assert!(
        rep.suppressed
            .iter()
            .any(|f| f.rule == rule && f.suppressed_reason.is_some()),
        "expected a suppressed {rule:?} finding with a reason, got {:?}",
        rules_of(&rep.suppressed)
    );
    assert!(
        rep.pragmas.iter().any(|p| p.used),
        "the pragma should be marked used"
    );
}

// R1 — default-hasher -----------------------------------------------------

#[test]
fn default_hasher_fires_on_std_collections() {
    // Import site + constructor site.
    let rep = lint("crates/kernel/src/fixture.rs", "default_hasher_positive.rs");
    assert_fires(&rep, RuleId::DefaultHasher, 2);
}

#[test]
fn default_hasher_silent_on_fx_wrappers() {
    assert_clean(&lint(
        "crates/kernel/src/fixture.rs",
        "default_hasher_negative.rs",
    ));
}

#[test]
fn default_hasher_pragma_suppresses() {
    let rep = lint(
        "crates/kernel/src/fixture.rs",
        "default_hasher_suppressed.rs",
    );
    assert_suppressed(&rep, RuleId::DefaultHasher);
}

#[test]
fn default_hasher_exempt_in_tool_crates_and_wrapper() {
    // The bench crate is allowed wall-clocks and default hashers…
    assert_clean(&lint(
        "crates/bench/src/fixture.rs",
        "default_hasher_positive.rs",
    ));
    // …and the Fx wrapper file itself is the sanctioned declaration site.
    assert_clean(&lint(
        "crates/simcore/src/hash.rs",
        "default_hasher_negative.rs",
    ));
}

// R2 — wallclock -----------------------------------------------------------

#[test]
fn wallclock_fires_on_instant_sleep_parallelism_env() {
    let rep = lint(SIM_PATH, "wallclock_positive.rs");
    assert_fires(&rep, RuleId::Wallclock, 4);
}

#[test]
fn wallclock_silent_on_virtual_time() {
    assert_clean(&lint(SIM_PATH, "wallclock_negative.rs"));
}

#[test]
fn wallclock_pragma_suppresses() {
    assert_suppressed(
        &lint(SIM_PATH, "wallclock_suppressed.rs"),
        RuleId::Wallclock,
    );
}

#[test]
fn wallclock_exempt_in_bench_crate() {
    assert_clean(&lint(
        "crates/bench/src/fixture.rs",
        "wallclock_positive.rs",
    ));
}

#[test]
fn wallclock_fires_in_telemetry_exporters() {
    // The telemetry crate is NOT a tool crate: its exporters feed the
    // determinism suite, so host-time reads are violations there.
    let rep = lint(TELEM_PATH, "telemetry_wallclock_positive.rs");
    assert_fires(&rep, RuleId::Wallclock, 3);
}

#[test]
fn wallclock_silent_on_sim_time_exporter() {
    assert_clean(&lint(TELEM_PATH, "telemetry_wallclock_negative.rs"));
}

// R3 — unordered-iteration -------------------------------------------------

#[test]
fn unordered_iteration_fires_in_scheduling_fn() {
    // `for _ in &self.flows` + `flows.keys()`.
    let rep = lint(LOOP_PATH, "unordered_iteration_positive.rs");
    assert_fires(&rep, RuleId::UnorderedIteration, 2);
}

#[test]
fn unordered_iteration_silent_via_sorted_helper() {
    assert_clean(&lint(LOOP_PATH, "unordered_iteration_negative.rs"));
}

#[test]
fn unordered_iteration_pragma_suppresses() {
    assert_suppressed(
        &lint(LOOP_PATH, "unordered_iteration_suppressed.rs"),
        RuleId::UnorderedIteration,
    );
}

// R4 — lossy-time-cast -----------------------------------------------------

#[test]
fn lossy_time_cast_fires_on_ps_named_values() {
    let rep = lint(SIM_PATH, "lossy_time_cast_positive.rs");
    assert_fires(&rep, RuleId::LossyTimeCast, 2);
}

#[test]
fn lossy_time_cast_silent_on_widening_and_non_ps() {
    assert_clean(&lint(SIM_PATH, "lossy_time_cast_negative.rs"));
}

#[test]
fn lossy_time_cast_pragma_suppresses() {
    assert_suppressed(
        &lint(SIM_PATH, "lossy_time_cast_suppressed.rs"),
        RuleId::LossyTimeCast,
    );
}

// R5 — hot-path-alloc ------------------------------------------------------

#[test]
fn hot_path_alloc_fires_in_hot_fn() {
    // Vec::new + format! + .clone().
    let rep = lint(HOT_PATH, "hot_path_alloc_positive.rs");
    assert_fires(&rep, RuleId::HotPathAlloc, 3);
}

#[test]
fn hot_path_alloc_silent_on_reuse_and_setup_fns() {
    assert_clean(&lint(HOT_PATH, "hot_path_alloc_negative.rs"));
}

#[test]
fn hot_path_alloc_pragma_suppresses() {
    assert_suppressed(
        &lint(HOT_PATH, "hot_path_alloc_suppressed.rs"),
        RuleId::HotPathAlloc,
    );
}

#[test]
fn hot_path_alloc_scoped_to_listed_files() {
    // The same allocating dispatch fn in a *non-hot* file is silent.
    assert_clean(&lint(LOOP_PATH, "hot_path_alloc_positive.rs"));
}

#[test]
fn hot_path_alloc_covers_telemetry_record_paths() {
    // `TraceRing::push` is hot in trace.rs; `record_dma` in flight.rs.
    let rep = lint(
        "crates/telemetry/src/trace.rs",
        "telemetry_hot_path_alloc_positive.rs",
    );
    assert_fires(&rep, RuleId::HotPathAlloc, 1);
    let rep = lint(
        "crates/telemetry/src/flight.rs",
        "telemetry_hot_path_alloc_positive.rs",
    );
    assert_fires(&rep, RuleId::HotPathAlloc, 1);
    // Outside the listed files the same source is silent.
    assert_clean(&lint(TELEM_PATH, "telemetry_hot_path_alloc_positive.rs"));
}

// R6 — pragma-hygiene ------------------------------------------------------

#[test]
fn pragma_hygiene_fires_on_reasonless_and_unknown() {
    let rep = lint(SIM_PATH, "pragma_hygiene_positive.rs");
    assert_fires(&rep, RuleId::PragmaHygiene, 2);
    // The reasonless pragma did NOT silence the wallclock finding.
    assert_fires(&rep, RuleId::Wallclock, 1);
    assert!(rep.suppressed.is_empty());
}

#[test]
fn pragma_hygiene_silent_on_reasoned_used_pragma() {
    let rep = lint(SIM_PATH, "pragma_hygiene_negative.rs");
    assert_clean(&rep);
    assert_eq!(rep.suppressed.len(), 1);
    assert!(rep.pragmas[0].used);
}

#[test]
fn pragma_hygiene_fires_on_malformed_pragma() {
    let rep = lint(SIM_PATH, "pragma_hygiene_malformed.rs");
    assert_fires(&rep, RuleId::PragmaHygiene, 1);
}

// Audit mode and report shape ---------------------------------------------

#[test]
fn audit_flags_pragmas_that_suppress_nothing() {
    let src = "// simlint: allow(wallclock) — stale justification\npub fn clean() {}\n";
    let audit = Options {
        audit_suppressions: true,
        ..Options::default()
    };
    let rep = lint_source(SIM_PATH, src, &audit);
    assert_eq!(rep.unused_pragmas.len(), 1);
    // Without audit mode the stale pragma is tolerated.
    let rep = lint_source(SIM_PATH, src, &Options::default());
    assert!(rep.unused_pragmas.is_empty());
}

#[test]
fn rule_filter_restricts_findings() {
    let opts = Options {
        only: vec![RuleId::Wallclock],
        ..Options::default()
    };
    let rep = lint_source(SIM_PATH, &fixture("lossy_time_cast_positive.rs"), &opts);
    assert_clean(&rep);
}

#[test]
fn json_report_lists_all_rules_and_findings() {
    let rep = lint(SIM_PATH, "wallclock_positive.rs");
    let json = rep.to_json();
    assert!(json.contains("\"schema\": \"simlint-v1\""));
    // The rule catalogue (>= 5 distinct rules) is always present.
    for slug in [
        "default-hasher",
        "wallclock",
        "unordered-iteration",
        "lossy-time-cast",
        "hot-path-alloc",
        "pragma-hygiene",
    ] {
        assert!(json.contains(&format!("\"slug\":\"{slug}\"")), "{slug}");
    }
    assert!(json.contains("\"slug\":\"wallclock\",\"file\":\"crates/simcore/src/fixture.rs\""));
}
