// Fixture: R2 true positive — wall-clock and host-dependent calls in a sim
// crate. Scanned with virtual path crates/simcore/src/fixture.rs.
pub fn measure() -> std::time::Duration {
    let start = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _threads = std::thread::available_parallelism();
    let _cfg = std::env::var("SOME_KNOB");
    start.elapsed()
}
