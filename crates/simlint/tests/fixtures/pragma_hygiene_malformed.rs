// Fixture: R6 malformed — pragma that doesn't parse as `allow(<rules>)`.
// Hygiene findings are never suppressible, so there is no "suppressed"
// variant for this rule.
pub fn noop() {
    // simlint: allow wallclock — missing parentheses
}
