// Fixture: R5 compliant — hot fn reuses long-lived buffers; allocation in a
// non-hot setup fn is fine.
impl Fixture {
    pub fn dispatch(&mut self, ev: Event) {
        self.outbuf.clear();
        self.outbuf.push(ev);
    }

    pub fn setup(&mut self) {
        self.warm = Vec::with_capacity(64);
    }
}
