// Fixture: R2 suppressed — reasoned pragma on the env read.
pub fn worker_count() -> usize {
    // simlint: allow(wallclock) — operator override; affects wall time only, never simulated results
    std::env::var("FIXTURE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}
