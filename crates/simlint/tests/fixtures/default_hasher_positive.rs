// Fixture: R1 true positive — default-hasher collections in a sim crate.
// Scanned with virtual path crates/kernel/src/fixture.rs.
use std::collections::HashMap;

pub fn flow_table() -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    m.insert(1, 2);
    m
}
