// Fixture: R2 compliant twin — the exporter renders sim-time picoseconds
// with integer arithmetic only; no host clock, no env, no float formatting.
// Scanned with virtual path crates/telemetry/src/fixture.rs.
pub fn export_header(retained: usize, t_ps: u64) -> String {
    format!(
        "# ioctopus-trace v1\n# retained={retained}\n{}.{:06}",
        t_ps / 1_000_000,
        t_ps % 1_000_000
    )
}
