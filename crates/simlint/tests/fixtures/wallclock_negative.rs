// Fixture: R2 compliant — virtual time only; no wall-clock reads.
use simcore::time::{Dur, Time};

pub fn advance(now: Time, step: Dur) -> Time {
    now + step
}
