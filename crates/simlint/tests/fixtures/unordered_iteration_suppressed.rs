// Fixture: R3 suppressed — reasoned pragma on the iteration site.
use simcore::hash::FxHashMap;

pub struct Fixture {
    flows: FxHashMap<u64, u64>,
    q: Queue,
}

impl Fixture {
    pub fn dispatch(&mut self, now: u64) {
        // simlint: allow(unordered-iteration) — events land in a calendar queue keyed by (time, seq); map order cannot reorder them
        for (id, bytes) in &self.flows {
            self.q.push(now, *id + *bytes);
        }
    }
}
