// Fixture: R1 compliant — the sanctioned seed-free Fx wrapper types.
use simcore::hash::{FxHashMap, FxHashSet};

pub fn flow_table() -> FxHashMap<u64, u64> {
    let mut m: FxHashMap<u64, u64> = FxHashMap::default();
    m.insert(1, 2);
    let _s: FxHashSet<u32> = FxHashSet::default();
    m
}
