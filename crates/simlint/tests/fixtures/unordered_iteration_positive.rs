// Fixture: R3 true positive — hash-order iteration inside a scheduling fn.
// Scanned with virtual path crates/ioctopus/src/fixture.rs.
use simcore::hash::FxHashMap;

pub struct Fixture {
    flows: FxHashMap<u64, u64>,
    q: Queue,
}

impl Fixture {
    pub fn dispatch(&mut self, now: u64) {
        for (id, bytes) in &self.flows {
            self.q.push(now, *id + *bytes);
        }
        for id in self.flows.keys() {
            self.q.push(now, *id);
        }
    }
}
