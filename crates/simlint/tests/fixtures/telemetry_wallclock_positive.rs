// Fixture: R2 true positive — a trace exporter stamping host time into the
// artifact. The telemetry crate is a *sim* crate (its output is part of the
// determinism contract), so wall-clock reads must fire exactly as they do
// in simcore. Scanned with virtual path crates/telemetry/src/fixture.rs.
pub fn export_header() -> String {
    let stamp = std::time::SystemTime::now();
    let t0 = std::time::Instant::now();
    let _jitter = std::env::var("TRACE_JITTER");
    format!("# exported at {stamp:?} in {:?}", t0.elapsed())
}
