// Fixture: R5 true positive — allocations inside the telemetry record hot
// paths. `TraceRing::push` and `FlightRecorder::record_dma` run once (or
// thrice) per packet when enabled; their rings and row tables are sized at
// enable time, so any allocation here is a regression. Scanned with the
// virtual paths crates/telemetry/src/trace.rs and
// crates/telemetry/src/flight.rs.
impl Fixture {
    pub fn push(&mut self, t: u64, a: u64) {
        let label = format!("t={t}");
        self.records.push((label, a));
    }

    pub fn record_dma(&mut self, flow: u64, bytes: u64) {
        let row = Box::new((flow, bytes));
        self.rows.push(row);
    }
}
