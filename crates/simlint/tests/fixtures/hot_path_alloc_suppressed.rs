// Fixture: R5 suppressed — reasoned pragma on a diagnostic-only allocation.
impl Fixture {
    pub fn dispatch(&mut self, ev: Event) {
        // simlint: allow(hot-path-alloc) — opt-in sampling diagnostic, off the steady-state path
        let snap = self.counters.to_vec();
        self.samples.record(ev, snap);
    }
}
