// Fixture: R6 compliant — well-formed reasoned pragma that suppresses a real
// finding (no hygiene violations, pragma counted as used).
pub fn worker_count() -> usize {
    // simlint: allow(wallclock) — operator override; wall-time only, results unchanged
    std::env::var("FIXTURE_THREADS").ok().map_or(1, |_| 2)
}
