// Fixture: R4 true positive — lossy `as` casts on picosecond-named values.
pub fn truncate(now_ps: u64) -> u32 {
    now_ps as u32
}

pub fn to_float(ps: u64) -> f64 {
    ps as f64
}
