// Fixture: R4 suppressed — reasoned pragma at the sanctioned boundary.
pub fn ps_to_f64(ps: u64) -> f64 {
    // simlint: allow(lossy-time-cast) — sanctioned boundary; exact below 2^53 ps
    ps as f64
}
