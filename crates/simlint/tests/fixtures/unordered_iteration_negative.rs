// Fixture: R3 compliant — same shape, routed through the sorted helper.
use simcore::hash::{sorted_entries, FxHashMap};

pub struct Fixture {
    flows: FxHashMap<u64, u64>,
    q: Queue,
}

impl Fixture {
    pub fn dispatch(&mut self, now: u64) {
        for (id, bytes) in sorted_entries(&self.flows) {
            self.q.push(now, *id + *bytes);
        }
    }
}
