// Fixture: R1 suppressed — reasoned pragma silences the constructor site.
pub fn interned() -> std::collections::HashMap<String, u32> {
    // simlint: allow(default-hasher) — build-time interning table, never iterated during simulation
    std::collections::HashMap::new()
}
