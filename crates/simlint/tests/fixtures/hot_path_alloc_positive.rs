// Fixture: R5 true positive — allocations inside a hot-path function.
// Scanned with virtual path crates/ioctopus/src/netloop.rs.
impl Fixture {
    pub fn dispatch(&mut self, ev: Event) {
        let scratch = Vec::new();
        let label = format!("ev {}", ev.kind);
        let copy = self.batch.clone();
        drop((scratch, label, copy));
    }
}
