// Fixture: R6 true positive — a reasonless pragma (which therefore does NOT
// suppress the wallclock finding beneath it) and an unknown rule slug.
pub fn measure() -> u64 {
    // simlint: allow(wallclock)
    let _t = std::time::SystemTime::now();
    // simlint: allow(made-up-rule) — the slug does not exist
    0
}
