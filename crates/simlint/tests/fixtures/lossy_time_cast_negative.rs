// Fixture: R4 compliant — widening cast on ps, lossy cast on non-ps value.
pub fn widen(now_ps: u64) -> u128 {
    now_ps as u128
}

pub fn ratio(count: u64) -> f64 {
    count as f64
}
