//! The determinism & hot-path rule catalogue.
//!
//! Each rule turns one of the workspace's *dynamic* contracts (bit-identical
//! figure checksums, serial-vs-parallel sweep identity, the zero-allocation
//! steady state) into a *static*, per-PR machine check. DESIGN.md §11 is the
//! prose companion: rationale, failure mode each rule prevents, and the
//! pragma escape hatch.

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// R1: no default-`RandomState` hash collections in sim crates.
    DefaultHasher,
    /// R2: no wall-clock / environment nondeterminism outside `crates/bench`.
    Wallclock,
    /// R3: no hash-order iteration inside event-scheduling functions.
    UnorderedIteration,
    /// R4: no lossy `as` casts on picosecond `u64` time values.
    LossyTimeCast,
    /// R5: no allocating constructs in zero-alloc hot-path functions.
    HotPathAlloc,
    /// R6: suppression pragmas must name a known rule and carry a reason.
    PragmaHygiene,
}

/// Every rule, in report order.
pub const ALL_RULES: [RuleId; 6] = [
    RuleId::DefaultHasher,
    RuleId::Wallclock,
    RuleId::UnorderedIteration,
    RuleId::LossyTimeCast,
    RuleId::HotPathAlloc,
    RuleId::PragmaHygiene,
];

impl RuleId {
    /// Short stable id (`R1`..`R6`).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::DefaultHasher => "R1",
            RuleId::Wallclock => "R2",
            RuleId::UnorderedIteration => "R3",
            RuleId::LossyTimeCast => "R4",
            RuleId::HotPathAlloc => "R5",
            RuleId::PragmaHygiene => "R6",
        }
    }

    /// The slug used in pragmas: `// simlint: allow(<slug>) — reason`.
    pub fn slug(self) -> &'static str {
        match self {
            RuleId::DefaultHasher => "default-hasher",
            RuleId::Wallclock => "wallclock",
            RuleId::UnorderedIteration => "unordered-iteration",
            RuleId::LossyTimeCast => "lossy-time-cast",
            RuleId::HotPathAlloc => "hot-path-alloc",
            RuleId::PragmaHygiene => "pragma-hygiene",
        }
    }

    /// One-line description for reports.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::DefaultHasher => {
                "default-RandomState HashMap/HashSet in a sim crate; use simcore::hash::{FxHashMap, FxHashSet}"
            }
            RuleId::Wallclock => {
                "wall-clock, sleep, or environment read outside crates/bench; sim crates must be replay-deterministic"
            }
            RuleId::UnorderedIteration => {
                "hash-order iteration in a function that schedules events; route through simcore::hash::sorted_entries/sorted_keys"
            }
            RuleId::LossyTimeCast => {
                "lossy `as` cast on a picosecond u64 value; use the Time/Dur conversion methods"
            }
            RuleId::HotPathAlloc => {
                "allocating construct in a zero-alloc hot-path function (complements the runtime alloc_count gate)"
            }
            RuleId::PragmaHygiene => {
                "malformed suppression pragma: unknown rule, missing reason, or (in audit mode) unused"
            }
        }
    }

    /// Parses a pragma/CLI slug.
    pub fn from_slug(s: &str) -> Option<RuleId> {
        ALL_RULES.iter().copied().find(|r| r.slug() == s)
    }
}
