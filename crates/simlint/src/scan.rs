//! Per-file rule matching over the lexed token stream.
//!
//! The matchers are deliberately *lexical*: they know paths, call shapes,
//! and declared-type names, not inferred types. That buys zero dependencies
//! and sub-second whole-workspace runs, at the cost of documented
//! approximations (e.g. R3 recognizes maps by their declaration site in the
//! same file). Each approximation errs toward silence on code it cannot
//! classify; the dynamic gates (checksums, `alloc_count`, sweep identity)
//! remain the backstop.

use crate::lexer::{lex, Tok, TokKind};
use crate::rules::RuleId;
use std::collections::BTreeSet;

/// Crates exempt from the sim-determinism rules (R1/R2/R3): the bench
/// harnesses are *supposed* to read wall-clocks, and the lint/model-checker
/// tooling is not part of the simulation.
const TOOL_CRATE_PREFIXES: [&str; 3] = ["crates/bench/", "crates/simlint/", "crates/loom/"];

/// The sanctioned wrapper around `std::collections` hash types.
const HASH_WRAPPER_FILE: &str = "crates/simcore/src/hash.rs";

/// The zero-alloc hot-path list: (file suffix, steady-state functions).
/// Mirrors DESIGN.md §6.2; the runtime `alloc_count` gate enforces the same
/// contract dynamically over ~13k events.
const HOT_FNS: [(&str, &[&str]); 6] = [
    (
        "crates/kernel/src/host.rs",
        &[
            "irq",
            "irq_stamped",
            "wire_arrival",
            "recv",
            "drain_fenced",
            "release_tx_entry",
        ],
    ),
    (
        "crates/ioctopus/src/netloop.rs",
        &["run", "run_unbatched", "dispatch", "push_outs"],
    ),
    (
        "crates/memsys/src/cache.rs",
        &["probe", "insert", "invalidate", "downgrade"],
    ),
    (
        "crates/simcore/src/outbuf.rs",
        &["push", "drain", "clear", "as_slice"],
    ),
    ("crates/telemetry/src/trace.rs", &["push"]),
    ("crates/telemetry/src/flight.rs", &["record_dma"]),
];

const MAP_TYPES: [&str; 4] = ["FxHashMap", "FxHashSet", "HashMap", "HashSet"];
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
];

/// One rule violation (or suppressed violation) at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the specific site.
    pub message: String,
    /// The trimmed source line, for diff-anchored output.
    pub snippet: String,
    /// `Some(reason)` when an inline pragma suppressed this finding.
    pub suppressed_reason: Option<String>,
}

/// An inline `// simlint: allow(...)` pragma, tracked for the audit report.
#[derive(Debug, Clone)]
pub struct PragmaRecord {
    /// File containing the pragma.
    pub file: String,
    /// Line of the pragma comment itself.
    pub line: u32,
    /// Rule slugs it names (unvalidated).
    pub rules: Vec<String>,
    /// The justification after the rule list, if any.
    pub reason: Option<String>,
    /// The source line the pragma governs (same line for trailing comments,
    /// next code line for own-line comments).
    pub target_line: u32,
    /// Whether it suppressed at least one finding in this run.
    pub used: bool,
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Active violations.
    pub findings: Vec<Finding>,
    /// Violations silenced by a reasoned pragma.
    pub suppressed: Vec<Finding>,
    /// Every pragma seen, used or not.
    pub pragmas: Vec<PragmaRecord>,
}

struct Sig<'a> {
    toks: &'a [Tok],
}

impl<'a> Sig<'a> {
    fn id(&self, i: usize) -> Option<&'a str> {
        match self.toks.get(i) {
            Some(t) if t.kind == TokKind::Ident => Some(t.text.as_str()),
            _ => None,
        }
    }
    fn is_id(&self, i: usize, s: &str) -> bool {
        self.id(i) == Some(s)
    }
    fn is_punct(&self, i: usize, c: char) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == TokKind::Punct && t.text.as_bytes() == [c as u8])
    }
    /// `::` immediately before token `i` (so `i - 3` is the previous path
    /// segment).
    fn sep_before(&self, i: usize) -> bool {
        i >= 2 && self.is_punct(i - 1, ':') && self.is_punct(i - 2, ':')
    }
    /// `::` immediately after token `i`.
    fn sep_after(&self, i: usize) -> bool {
        self.is_punct(i + 1, ':') && self.is_punct(i + 2, ':')
    }
    fn line(&self, i: usize) -> u32 {
        self.toks[i].line
    }
    fn number(&self, i: usize) -> Option<&'a str> {
        match self.toks.get(i) {
            Some(t) if t.kind == TokKind::Number => Some(t.text.as_str()),
            _ => None,
        }
    }
}

struct FnSpan {
    name: String,
    /// Sig-token index range of the body, exclusive of the outer braces.
    body: (usize, usize),
}

/// Locates every `fn name(...) { ... }` body in the significant-token
/// stream. Trait-method declarations without bodies are skipped; `fn` in
/// type position (`fn(u32) -> u32`) has no name and is skipped too.
fn fn_spans(sig: &Sig<'_>) -> Vec<FnSpan> {
    let n = sig.toks.len();
    let mut spans = Vec::new();
    for i in 0..n {
        if !sig.is_id(i, "fn") {
            continue;
        }
        let Some(name) = sig.id(i + 1) else { continue };
        // Find the body's opening brace (or `;` ending a bodiless decl),
        // ignoring everything nested in (), [], or <> along the signature.
        let mut j = i + 2;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut body_start = None;
        while j < n {
            let t = &sig.toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_bytes()[0] {
                    b'(' => paren += 1,
                    b')' => paren -= 1,
                    b'[' => bracket += 1,
                    b']' => bracket -= 1,
                    b'{' if paren == 0 && bracket == 0 => {
                        body_start = Some(j);
                        break;
                    }
                    b';' if paren == 0 && bracket == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(open) = body_start else { continue };
        let mut depth = 0i32;
        let mut k = open;
        while k < n {
            if sig.toks[k].kind == TokKind::Punct {
                match sig.toks[k].text.as_bytes()[0] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        spans.push(FnSpan {
            name: name.to_string(),
            body: (open + 1, k.min(n)),
        });
    }
    spans
}

/// Names in this file declared with a hash-map/set type, via either a type
/// ascription (`name: FxHashMap<...>` — fields, lets, params) or a
/// constructor binding (`let name = FxHashMap::default()`).
fn map_typed_names(sig: &Sig<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..sig.toks.len() {
        let Some(t) = sig.id(i) else { continue };
        if !MAP_TYPES.contains(&t) {
            continue;
        }
        if sig.is_punct(i + 1, '<') {
            // Ascription: walk back over any `path::` segments to the colon.
            let mut j = i;
            while sig.sep_before(j) && j >= 3 && sig.id(j - 3).is_some() {
                j -= 3;
            }
            if j >= 2 && sig.is_punct(j - 1, ':') && !sig.is_punct(j - 2, ':') {
                if let Some(name) = sig.id(j - 2) {
                    names.insert(name.to_string());
                }
            }
        } else if sig.sep_after(i) {
            // Constructor: `let [mut] name = [path::]Type::default()`.
            let mut j = i;
            while sig.sep_before(j) && j >= 3 && sig.id(j - 3).is_some() {
                j -= 3;
            }
            if j >= 1 && sig.is_punct(j - 1, '=') {
                let mut k = j - 2;
                if sig.is_id(k, "mut") && k >= 1 {
                    k -= 1;
                }
                if let Some(name) = sig.id(k) {
                    if k >= 1 && sig.is_id(k - 1, "let") {
                        names.insert(name.to_string());
                    }
                }
            }
        }
    }
    names
}

/// Sig-token ranges of `#[cfg(test)] mod ... { ... }` bodies. The hot-path
/// allocation rule skips them: test helpers collecting into `Vec`s are not
/// on the event hot path.
fn cfg_test_ranges(sig: &Sig<'_>) -> Vec<(usize, usize)> {
    let n = sig.toks.len();
    let mut ranges = Vec::new();
    for i in 0..n {
        if !(sig.is_punct(i, '#')
            && sig.is_punct(i + 1, '[')
            && sig.is_id(i + 2, "cfg")
            && sig.is_punct(i + 3, '(')
            && sig.is_id(i + 4, "test")
            && sig.is_punct(i + 5, ')')
            && sig.is_punct(i + 6, ']'))
        {
            continue;
        }
        // Skip any further attributes, then require a `mod` item.
        let mut j = i + 7;
        while sig.is_punct(j, '#') && sig.is_punct(j + 1, '[') {
            let mut depth = 0i32;
            j += 1;
            while j < n {
                if sig.is_punct(j, '[') {
                    depth += 1;
                } else if sig.is_punct(j, ']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if !sig.is_id(j, "mod") {
            continue;
        }
        while j < n && !sig.is_punct(j, '{') {
            j += 1;
        }
        let mut depth = 0i32;
        let start = j;
        while j < n {
            if sig.is_punct(j, '{') {
                depth += 1;
            } else if sig.is_punct(j, '}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        ranges.push((start, j.min(n)));
    }
    ranges
}

/// Token ranges of `use ...;` statements, for import-site matching.
fn use_ranges(sig: &Sig<'_>) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < sig.toks.len() {
        if sig.is_id(i, "use") {
            let mut j = i + 1;
            while j < sig.toks.len() && !sig.is_punct(j, ';') {
                j += 1;
            }
            ranges.push((i, j));
            i = j;
        }
        i += 1;
    }
    ranges
}

fn parse_pragmas(rel: &str, toks: &[Tok], sig_lines: &[u32], out: &mut FileScan) {
    for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        // Pragmas are plain `//` comments that *begin* with `simlint:`;
        // doc comments mentioning the syntax are not pragmas.
        if t.text.starts_with("///") || t.text.starts_with("//!") || !t.text.starts_with("//") {
            continue;
        }
        let body = t.text[2..].trim_start();
        if !body.starts_with("simlint:") {
            continue;
        }
        let rest = &body["simlint:".len()..];
        let rest = rest.trim_start();
        let parsed = rest.strip_prefix("allow").and_then(|r| {
            let r = r.trim_start();
            let r = r.strip_prefix('(')?;
            let close = r.find(')')?;
            Some((
                r[..close]
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect::<Vec<_>>(),
                r[close + 1..].to_string(),
            ))
        });
        let Some((rules, tail)) = parsed else {
            out.findings.push(Finding {
                rule: RuleId::PragmaHygiene,
                file: rel.to_string(),
                line: t.line,
                message: "malformed simlint pragma (expected `simlint: allow(<rule>) — <reason>`)"
                    .to_string(),
                snippet: String::new(),
                suppressed_reason: None,
            });
            continue;
        };
        let reason = {
            let r = tail
                .trim_start()
                .trim_start_matches(['—', '–', '-', ':', ' '])
                .trim();
            if r.is_empty() {
                None
            } else {
                Some(r.to_string())
            }
        };
        // A trailing comment governs its own line; an own-line comment
        // governs the next line holding significant tokens.
        let trailing = sig_lines.binary_search(&t.line).is_ok();
        let target_line = if trailing {
            t.line
        } else {
            match sig_lines.iter().find(|&&l| l > t.line) {
                Some(&l) => l,
                None => t.line,
            }
        };
        out.pragmas.push(PragmaRecord {
            file: rel.to_string(),
            line: t.line,
            rules,
            reason,
            target_line,
            used: false,
        });
    }
}

fn is_tool_crate(rel: &str) -> bool {
    TOOL_CRATE_PREFIXES.iter().any(|p| rel.starts_with(p))
}

/// Scans one file's source, returning findings after pragma application.
///
/// `rel` is the workspace-relative path (forward slashes); it drives crate
/// scoping, so fixture tests can exercise any rule by picking a virtual
/// path.
pub fn scan_source(rel: &str, src: &str) -> FileScan {
    let toks = lex(src);
    let sig_toks: Vec<Tok> = toks
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .cloned()
        .collect();
    let sig = Sig { toks: &sig_toks };
    let src_lines: Vec<&str> = src.lines().collect();
    let sig_lines: Vec<u32> = {
        let mut v: Vec<u32> = sig_toks.iter().map(|t| t.line).collect();
        v.dedup();
        v
    };

    let mut out = FileScan::default();
    parse_pragmas(rel, &toks, &sig_lines, &mut out);

    let mut raw: Vec<(RuleId, u32, String)> = Vec::new();
    if !is_tool_crate(rel) {
        rule_default_hasher(rel, &sig, &mut raw);
        rule_wallclock(&sig, &mut raw);
        rule_unordered_iteration(&sig, &mut raw);
    }
    rule_lossy_time_cast(&sig, &mut raw);
    rule_hot_path_alloc(rel, &sig, &mut raw);

    // Pragma hygiene: unknown rule slugs and missing reasons are violations
    // in every mode (a reasonless pragma does not suppress).
    for p in &out.pragmas {
        for r in &p.rules {
            if RuleId::from_slug(r).is_none() {
                raw.push((
                    RuleId::PragmaHygiene,
                    p.line,
                    format!("pragma names unknown rule `{r}`"),
                ));
            }
        }
        if p.reason.is_none() {
            raw.push((
                RuleId::PragmaHygiene,
                p.line,
                format!(
                    "pragma suppressing `{}` lacks a reason (write `simlint: allow({}) — <why>`)",
                    p.rules.join(", "),
                    p.rules.join(", ")
                ),
            ));
        }
    }

    for (rule, line, message) in raw {
        let snippet = src_lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        let mut reason = None;
        if rule != RuleId::PragmaHygiene {
            for p in out.pragmas.iter_mut() {
                if p.target_line == line
                    && p.reason.is_some()
                    && p.rules.iter().any(|r| r == rule.slug())
                {
                    reason = p.reason.clone();
                    p.used = true;
                    break;
                }
            }
        }
        let f = Finding {
            rule,
            file: rel.to_string(),
            line,
            message,
            snippet,
            suppressed_reason: reason,
        };
        if f.suppressed_reason.is_some() {
            out.suppressed.push(f);
        } else {
            out.findings.push(f);
        }
    }
    out.findings.sort_by_key(|a| (a.line, a.rule));
    out.suppressed.sort_by_key(|a| (a.line, a.rule));
    out
}

/// R1: default-hasher hash collections in sim crates.
fn rule_default_hasher(rel: &str, sig: &Sig<'_>, raw: &mut Vec<(RuleId, u32, String)>) {
    if rel == HASH_WRAPPER_FILE {
        return;
    }
    let uses = use_ranges(sig);
    for i in 0..sig.toks.len() {
        let Some(t) = sig.id(i) else { continue };
        if t == "RandomState" {
            raw.push((
                RuleId::DefaultHasher,
                sig.line(i),
                "explicit RandomState (seeded per-process; breaks replay determinism)".into(),
            ));
            continue;
        }
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        // Constructor / associated call with the default hasher.
        if sig.sep_after(i) {
            if let Some(m) = sig.id(i + 3) {
                if matches!(m, "new" | "with_capacity" | "default") {
                    raw.push((
                        RuleId::DefaultHasher,
                        sig.line(i),
                        format!(
                            "{t}::{m}() uses the seeded default hasher; use simcore::hash::Fx{t} (or with_hasher)"
                        ),
                    ));
                    continue;
                }
            }
        }
        // Import from std::collections.
        let in_std_use = uses.iter().any(|&(a, b)| {
            i > a
                && i < b
                && (a..b).any(|j| sig.is_id(j, "collections"))
                && (a..b).any(|j| sig.is_id(j, "std"))
        });
        if in_std_use {
            raw.push((
                RuleId::DefaultHasher,
                sig.line(i),
                format!("import of std::collections::{t}; use simcore::hash::Fx{t} in sim crates"),
            ));
        }
    }
}

/// R2: wall-clock / environment nondeterminism outside `crates/bench`.
fn rule_wallclock(sig: &Sig<'_>, raw: &mut Vec<(RuleId, u32, String)>) {
    for i in 0..sig.toks.len() {
        let Some(t) = sig.id(i) else { continue };
        let hit: Option<String> = match t {
            "Instant" if sig.sep_after(i) && sig.is_id(i + 3, "now") => {
                Some("Instant::now() reads the wall clock".into())
            }
            "SystemTime" => Some("SystemTime is wall-clock time".into()),
            "sleep" if sig.sep_before(i) && sig.id(i.wrapping_sub(3)) == Some("thread") => {
                Some("thread::sleep makes timing OS-dependent".into())
            }
            "available_parallelism" => {
                Some("available_parallelism() depends on the host machine".into())
            }
            "var" | "var_os" | "vars"
                if sig.sep_before(i) && sig.id(i.wrapping_sub(3)) == Some("env") =>
            {
                Some(format!("env::{t}() makes behavior environment-dependent"))
            }
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => Some(format!(
                "{t} draws OS entropy; use simcore::rng seeded streams"
            )),
            _ => None,
        };
        if let Some(msg) = hit {
            raw.push((RuleId::Wallclock, sig.line(i), msg));
        }
    }
}

/// R3: hash-order iteration inside functions that schedule events.
fn rule_unordered_iteration(sig: &Sig<'_>, raw: &mut Vec<(RuleId, u32, String)>) {
    let maps = map_typed_names(sig);
    if maps.is_empty() {
        return;
    }
    for span in fn_spans(sig) {
        let (a, b) = span.body;
        let schedules = (a..b).any(|i| match sig.id(i) {
            Some(t) if t.starts_with("schedule") && sig.is_punct(i + 1, '(') => true,
            Some("push")
                if sig.is_punct(i + 1, '(')
                    && sig.is_punct(i.wrapping_sub(1), '.')
                    && matches!(sig.id(i.wrapping_sub(2)), Some("q") | Some("queue")) =>
            {
                true
            }
            Some("push_outs") if sig.is_punct(i + 1, '(') => true,
            _ => false,
        });
        if !schedules {
            continue;
        }
        for i in a..b {
            // `map.iter()` / `map.keys()` / ... with a known map receiver.
            if let Some(m) = sig.id(i) {
                if ITER_METHODS.contains(&m)
                    && sig.is_punct(i + 1, '(')
                    && sig.is_punct(i.wrapping_sub(1), '.')
                {
                    if let Some(recv) = sig.id(i.wrapping_sub(2)) {
                        if maps.contains(recv) {
                            raw.push((
                                RuleId::UnorderedIteration,
                                sig.line(i),
                                format!(
                                    "`{recv}.{m}()` iterates hash order inside scheduling fn `{}`; use simcore::hash::sorted_entries/sorted_keys",
                                    span.name
                                ),
                            ));
                        }
                    }
                }
                // `for x in &map {` / `for x in &self.map {`
                if m == "in" {
                    let mut j = i + 1;
                    if sig.is_punct(j, '&') {
                        j += 1;
                    }
                    if sig.is_id(j, "mut") {
                        j += 1;
                    }
                    if sig.is_id(j, "self") && sig.is_punct(j + 1, '.') {
                        j += 2;
                    }
                    if let Some(name) = sig.id(j) {
                        if maps.contains(name) && sig.is_punct(j + 1, '{') {
                            raw.push((
                                RuleId::UnorderedIteration,
                                sig.line(i),
                                format!(
                                    "`for _ in &{name}` iterates hash order inside scheduling fn `{}`; use simcore::hash::sorted_entries/sorted_keys",
                                    span.name
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// R4: lossy `as` casts on picosecond values.
fn rule_lossy_time_cast(sig: &Sig<'_>, raw: &mut Vec<(RuleId, u32, String)>) {
    const LOSSY_TARGETS: [&str; 11] = [
        "u8", "u16", "u32", "usize", "i8", "i16", "i32", "i64", "isize", "f32", "f64",
    ];
    // Does this file define the Time/Dur newtypes? (Then `self.0` is ps.)
    let defines_time = (0..sig.toks.len()).any(|i| {
        sig.is_id(i, "struct")
            && matches!(sig.id(i + 1), Some("Time") | Some("Dur"))
            && sig.is_punct(i + 2, '(')
    });
    for i in 0..sig.toks.len() {
        if !sig.is_id(i, "as") {
            continue;
        }
        let Some(tgt) = sig.id(i + 1) else { continue };
        if !LOSSY_TARGETS.contains(&tgt) {
            continue;
        }
        let mut ps_source = false;
        if i >= 1 && sig.is_punct(i - 1, ')') {
            // Walk back over the call's parens to its callee.
            let mut depth = 0i32;
            let mut j = i - 1;
            loop {
                if sig.is_punct(j, ')') {
                    depth += 1;
                } else if sig.is_punct(j, '(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if j >= 1 && sig.id(j - 1) == Some("as_ps") {
                ps_source = true;
            }
        } else if let Some(name) = sig.id(i.wrapping_sub(1)) {
            if name == "ps" || (name.ends_with("_ps") && name.to_lowercase() == name) {
                ps_source = true;
            }
        } else if defines_time
            && sig.number(i.wrapping_sub(1)) == Some("0")
            && sig.is_punct(i.wrapping_sub(2), '.')
            && sig.id(i.wrapping_sub(3)) == Some("self")
        {
            ps_source = true;
        }
        if ps_source {
            raw.push((
                RuleId::LossyTimeCast,
                sig.line(i),
                format!(
                    "lossy `as {tgt}` on a picosecond value (u64 ps exceed {tgt}'s exact range); use Time/Dur conversion methods"
                ),
            ));
        }
    }
}

/// R5: allocating constructs in the zero-alloc hot-path functions.
fn rule_hot_path_alloc(rel: &str, sig: &Sig<'_>, raw: &mut Vec<(RuleId, u32, String)>) {
    let Some(&(_, hot)) = HOT_FNS.iter().find(|(f, _)| rel.ends_with(f)) else {
        return;
    };
    const ALLOC_METHODS: [&str; 5] = ["clone", "to_string", "to_owned", "to_vec", "collect"];
    let test_ranges = cfg_test_ranges(sig);
    for span in fn_spans(sig) {
        if !hot.contains(&span.name.as_str()) {
            continue;
        }
        if test_ranges
            .iter()
            .any(|&(a, b)| span.body.0 > a && span.body.1 <= b + 1)
        {
            continue;
        }
        let (a, b) = span.body;
        for i in a..b {
            let Some(t) = sig.id(i) else { continue };
            let hit: Option<String> = match t {
                "Vec" | "Box" | "String" if sig.sep_after(i) => match sig.id(i + 3) {
                    Some(m @ ("new" | "with_capacity" | "from")) => {
                        Some(format!("{t}::{m} allocates"))
                    }
                    _ => None,
                },
                "vec" | "format" if sig.is_punct(i + 1, '!') => Some(format!("{t}! allocates")),
                m if ALLOC_METHODS.contains(&m)
                    && sig.is_punct(i + 1, '(')
                    && sig.is_punct(i.wrapping_sub(1), '.') =>
                {
                    Some(format!(".{m}() allocates"))
                }
                _ => None,
            };
            if let Some(what) = hit {
                raw.push((
                    RuleId::HotPathAlloc,
                    sig.line(i),
                    format!(
                        "{what} inside hot-path fn `{}` (zero-alloc steady state, DESIGN.md §6.2)",
                        span.name
                    ),
                ));
            }
        }
    }
}
