//! A small, dependency-free Rust lexer.
//!
//! `syn` is not vendorable in this offline workspace, so the lint pass works
//! on a token stream produced here. The lexer understands everything that
//! matters for *not mis-lexing*: line/nested-block comments, string and raw
//! string literals (with `#` fences and `b`/`r`/`br` prefixes), char
//! literals vs. lifetimes, raw identifiers, and numeric literals with
//! exponents — so rule matchers never fire on text inside a string or
//! comment, and every token carries the 1-based line it starts on.

/// Kinds of tokens the rule matchers distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `as`, `HashMap`, `r#type` → `type`).
    Ident,
    /// Numeric literal (`0`, `1.5e-3`, `0xff_u64`).
    Number,
    /// String, raw string, byte string, or char literal (text not retained).
    Literal,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// Line or block comment, full text retained (pragmas live here).
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text: the identifier, the punct char, the comment body
    /// (including delimiters), the number; empty for string/char literals.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    fn new(kind: TokKind, text: impl Into<String>, line: u32) -> Self {
        Tok {
            kind,
            text: text.into(),
            line,
        }
    }
}

/// Lexes Rust source into a flat token stream. Never fails: unterminated
/// constructs are closed at end-of-file (good enough for linting — rustc
/// rejects such files anyway).
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                toks.push(Tok::new(
                    TokKind::Comment,
                    b[start..i].iter().collect::<String>(),
                    line,
                ));
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == '/' && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == '*' && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Tok::new(
                    TokKind::Comment,
                    b[start..i].iter().collect::<String>(),
                    start_line,
                ));
            }
            '"' => {
                let start_line = line;
                i += 1;
                while i < n {
                    match b[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok::new(TokKind::Literal, "", start_line));
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`, `'\n'`).
                let is_lifetime = i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') && {
                    let mut j = i + 1;
                    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    !(j < n && b[j] == '\'')
                };
                if is_lifetime {
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    // Lifetimes carry no lint signal; drop them.
                } else {
                    let start_line = line;
                    i += 1;
                    while i < n {
                        match b[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    toks.push(Tok::new(TokKind::Literal, "", start_line));
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    // Exponent sign: `1e-3`, `2.5E+7`.
                    if (b[i] == 'e' || b[i] == 'E')
                        && i + 1 < n
                        && (b[i + 1] == '+' || b[i + 1] == '-')
                        && !b[start..i]
                            .iter()
                            .any(|&x| x == 'x' || x == 'b' || x == 'o')
                    {
                        i += 2;
                        continue;
                    }
                    i += 1;
                }
                // Fraction: a dot followed by a digit (not `.iter()`, not `..`).
                if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        if (b[i] == 'e' || b[i] == 'E')
                            && i + 1 < n
                            && (b[i + 1] == '+' || b[i + 1] == '-')
                        {
                            i += 2;
                            continue;
                        }
                        i += 1;
                    }
                }
                toks.push(Tok::new(
                    TokKind::Number,
                    b[start..i].iter().collect::<String>(),
                    line,
                ));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // String prefixes: r"...", r#"..."#, b"...", br#"..."#, b'x'.
                let next = if i < n { b[i] } else { '\0' };
                let is_raw_capable = ident == "r" || ident == "br";
                let is_bytestr = ident == "b" || ident == "br";
                if is_raw_capable && (next == '"' || next == '#') {
                    if next == '#' && i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                        // Raw identifier r#type.
                        let s = i + 1;
                        i += 1;
                        while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                            i += 1;
                        }
                        toks.push(Tok::new(
                            TokKind::Ident,
                            b[s..i].iter().collect::<String>(),
                            line,
                        ));
                    } else {
                        // Raw string: count fences, scan to `"` + fences.
                        let start_line = line;
                        let mut fences = 0;
                        while i < n && b[i] == '#' {
                            fences += 1;
                            i += 1;
                        }
                        if i < n && b[i] == '"' {
                            i += 1;
                            'scan: while i < n {
                                if b[i] == '"' {
                                    let mut j = i + 1;
                                    let mut seen = 0;
                                    while j < n && b[j] == '#' && seen < fences {
                                        seen += 1;
                                        j += 1;
                                    }
                                    if seen == fences {
                                        line += count_lines(&b[start..j]);
                                        i = j;
                                        break 'scan;
                                    }
                                }
                                i += 1;
                            }
                        }
                        toks.push(Tok::new(TokKind::Literal, "", start_line));
                    }
                } else if is_bytestr && (next == '"' || next == '\'') {
                    // Byte string / byte char: re-lex from the quote.
                    toks.push(Tok::new(TokKind::Literal, "", line));
                    let quote = next;
                    i += 1;
                    while i < n {
                        match b[i] {
                            '\\' => i += 2,
                            c if c == quote => {
                                i += 1;
                                break;
                            }
                            '\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                } else {
                    toks.push(Tok::new(TokKind::Ident, ident, line));
                }
            }
            _ => {
                toks.push(Tok::new(TokKind::Punct, c, line));
                i += 1;
            }
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            let a = "HashMap::new() inside a string";
            // HashMap::new() inside a comment
            /* nested /* HashMap::new() */ still comment */
            let b = r#"raw "fenced" HashMap::new()"#;
            let c = 'h'; let lt: &'static str = "x";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "leaked from literal");
        assert!(!ids.contains(&"static".to_string()), "lifetime idents drop");
        assert!(ids.contains(&"str".to_string()), "type path kept");
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = 2;\n";
        let toks = lex(src);
        let b_tok = toks.iter().find(|t| t.text == "b").expect("b");
        assert_eq!(b_tok.line, 4);
    }

    #[test]
    fn numbers_with_exponents_and_tuple_fields() {
        // `x.0` must lex as ident, punct, number — not swallow into a float.
        let toks = lex("self.0 as f64; 1.5e-3; 0xff_u64");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"self"));
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"1.5e-3"));
        assert!(texts.contains(&"0xff_u64"));
    }

    #[test]
    fn raw_identifiers() {
        let ids = idents("let r#type = 3;");
        assert!(ids.contains(&"type".to_string()));
    }

    #[test]
    fn char_vs_lifetime_disambiguation() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\''; }");
        let lits = toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lits, 2, "two char literals, zero from lifetimes");
    }
}
