//! `simlint` — the workspace determinism & hot-path lint pass.
//!
//! The reproduction's core claim is bit-identical determinism: figure
//! checksums, serial-vs-parallel sweep identity (DESIGN.md §6.1), and the
//! zero-allocation steady state (§6.2) are enforced *dynamically*, so a
//! stray default-hasher map or a wall-clock call only surfaces as a flaky
//! checksum long after merge. This crate turns those conventions into a
//! machine-checked contract that runs in the lint wall on every PR: a
//! dependency-free lexical analysis over every `.rs` file in the workspace,
//! enforcing the rule catalogue in [`rules`] (described for humans in
//! DESIGN.md §11).
//!
//! Run it as:
//!
//! ```text
//! cargo run -p simlint -- --workspace
//! cargo run -p simlint -- --workspace --audit-suppressions   # CI mode
//! ```
//!
//! Violations can be suppressed inline — with a mandatory reason:
//!
//! ```text
//! // simlint: allow(wallclock) — worker count only affects wall time, not results
//! ```
//!
//! Reasonless pragmas do not suppress (the finding stays active and the
//! pragma itself violates `pragma-hygiene`); `--audit-suppressions`
//! additionally fails on pragmas that no longer suppress anything.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

use report::Report;
use rules::RuleId;
use std::path::{Path, PathBuf};

/// Lint options.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Fail on pragmas that suppress nothing (CI drift detection).
    pub audit_suppressions: bool,
    /// Restrict to these rules (empty = all).
    pub only: Vec<RuleId>,
}

/// Directories (workspace-relative) whose `.rs` files are scanned.
const SCAN_ROOTS: [&str; 3] = ["src", "tests", "examples"];

/// Subtrees never scanned: build output and the lint pass's own seeded
/// rule-violation fixtures.
fn is_excluded(rel: &str) -> bool {
    rel.starts_with("target/") || rel.starts_with("crates/simlint/tests/fixtures/")
}

fn walk(dir: &Path, acc: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk(&p, acc);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            acc.push(p);
        }
    }
}

/// Every `.rs` file the pass covers, sorted, workspace-relative.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        walk(&root.join(sub), &mut files);
    }
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut crates: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        crates.sort();
        for c in crates {
            for sub in ["src", "tests", "benches"] {
                walk(&c.join(sub), &mut files);
            }
        }
    }
    files
        .into_iter()
        .filter(|p| {
            let rel = rel_path(root, p);
            !is_excluded(&rel)
        })
        .collect()
}

fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lints the whole workspace under `root`.
pub fn lint_workspace(root: &Path, opts: &Options) -> Report {
    let mut rep = Report::default();
    for path in workspace_files(root) {
        let rel = rel_path(root, &path);
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        collect(&rel, &src, opts, &mut rep);
        rep.files_scanned += 1;
    }
    finish(opts, &mut rep);
    rep
}

/// Lints a single in-memory source with a virtual workspace-relative path
/// (the path drives crate scoping) — the entry point fixture tests use.
pub fn lint_source(rel: &str, src: &str, opts: &Options) -> Report {
    let mut rep = Report::default();
    collect(rel, src, opts, &mut rep);
    rep.files_scanned = 1;
    finish(opts, &mut rep);
    rep
}

fn collect(rel: &str, src: &str, opts: &Options, rep: &mut Report) {
    let mut fs = scan::scan_source(rel, src);
    if !opts.only.is_empty() {
        fs.findings.retain(|f| opts.only.contains(&f.rule));
        fs.suppressed.retain(|f| opts.only.contains(&f.rule));
    }
    rep.findings.append(&mut fs.findings);
    rep.suppressed.append(&mut fs.suppressed);
    rep.pragmas.append(&mut fs.pragmas);
}

fn finish(opts: &Options, rep: &mut Report) {
    rep.findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    rep.suppressed
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    if opts.audit_suppressions {
        rep.unused_pragmas = rep
            .pragmas
            .iter()
            .filter(|p| !p.used && p.reason.is_some())
            .cloned()
            .collect();
    }
}
