//! Report assembly: machine-readable JSON and diff-anchored human output.
//!
//! The JSON is hand-rolled (the workspace vendors no serde); the schema is
//! stable and versioned so CI artifacts stay diffable across runs.

use crate::rules::{RuleId, ALL_RULES};
use crate::scan::{Finding, PragmaRecord};

/// Whole-workspace lint result.
#[derive(Debug, Default)]
pub struct Report {
    /// Active violations, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Violations silenced by reasoned pragmas, same order.
    pub suppressed: Vec<Finding>,
    /// Every pragma in the tree.
    pub pragmas: Vec<PragmaRecord>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Pragmas that suppressed nothing (populated in audit mode only).
    pub unused_pragmas: Vec<PragmaRecord>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"slug\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"snippet\":\"{}\",\"suppressed\":{},\"reason\":{}}}",
        f.rule.id(),
        f.rule.slug(),
        esc(&f.file),
        f.line,
        esc(&f.message),
        esc(&f.snippet),
        f.suppressed_reason.is_some(),
        match &f.suppressed_reason {
            Some(r) => format!("\"{}\"", esc(r)),
            None => "null".to_string(),
        }
    )
}

fn pragma_json(p: &PragmaRecord) -> String {
    format!(
        "{{\"file\":\"{}\",\"line\":{},\"rules\":[{}],\"reason\":{},\"used\":{}}}",
        esc(&p.file),
        p.line,
        p.rules
            .iter()
            .map(|r| format!("\"{}\"", esc(r)))
            .collect::<Vec<_>>()
            .join(","),
        match &p.reason {
            Some(r) => format!("\"{}\"", esc(r)),
            None => "null".to_string(),
        },
        p.used
    )
}

impl Report {
    fn count(&self, list: &[Finding], rule: RuleId) -> usize {
        list.iter().filter(|f| f.rule == rule).count()
    }

    /// Serializes the full report (schema `simlint-v1`).
    pub fn to_json(&self) -> String {
        let rules: Vec<String> = ALL_RULES
            .iter()
            .map(|&r| {
                format!(
                    "{{\"id\":\"{}\",\"slug\":\"{}\",\"description\":\"{}\",\"findings\":{},\"suppressed\":{}}}",
                    r.id(),
                    r.slug(),
                    esc(r.description()),
                    self.count(&self.findings, r),
                    self.count(&self.suppressed, r)
                )
            })
            .collect();
        format!(
            "{{\n  \"schema\": \"simlint-v1\",\n  \"files_scanned\": {},\n  \"violations\": {},\n  \"suppressed\": {},\n  \"rules\": [\n    {}\n  ],\n  \"findings\": [\n    {}\n  ],\n  \"suppressions\": [\n    {}\n  ],\n  \"unused_pragmas\": [\n    {}\n  ]\n}}\n",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len(),
            rules.join(",\n    "),
            self.findings
                .iter()
                .map(finding_json)
                .collect::<Vec<_>>()
                .join(",\n    "),
            self.pragmas
                .iter()
                .map(pragma_json)
                .collect::<Vec<_>>()
                .join(",\n    "),
            self.unused_pragmas
                .iter()
                .map(pragma_json)
                .collect::<Vec<_>>()
                .join(",\n    ")
        )
    }

    /// Renders the human-facing, diff-anchored summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}/{}] {}\n    | {}\n",
                f.file,
                f.line,
                f.rule.id(),
                f.rule.slug(),
                f.message,
                f.snippet
            ));
        }
        for p in &self.unused_pragmas {
            out.push_str(&format!(
                "{}:{}: [audit] pragma allow({}) suppressed nothing — remove it\n",
                p.file,
                p.line,
                p.rules.join(", ")
            ));
        }
        out.push_str(&format!(
            "simlint: {} file(s), {} violation(s), {} suppressed ({} pragma(s))",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len(),
            self.pragmas.len()
        ));
        for &r in &ALL_RULES {
            let (a, s) = (
                self.count(&self.findings, r),
                self.count(&self.suppressed, r),
            );
            if a + s > 0 {
                out.push_str(&format!(" | {}:{}+{}", r.slug(), a, s));
            }
        }
        out.push('\n');
        out
    }
}
