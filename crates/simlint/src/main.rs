//! CLI for the workspace determinism & hot-path lint pass.
//!
//! ```text
//! cargo run -p simlint -- --workspace [--audit-suppressions] [--rule <slug>]
//!                         [--json <path>|-] [--root <dir>] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` violations (or audit failures), `2` usage
//! error. The JSON report (schema `simlint-v1`) is written to `SIMLINT.json`
//! at the workspace root unless `--json` overrides the path (`-` = stdout).

use simlint::rules::{RuleId, ALL_RULES};
use simlint::Options;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: simlint --workspace [--audit-suppressions] [--rule <slug>]... \
         [--json <path>|-] [--root <dir>] [--list-rules]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut json: Option<String> = None;
    let mut opts = Options::default();
    let mut list_rules = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => {}
            "--audit-suppressions" => opts.audit_suppressions = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return usage(),
            },
            "--json" => match args.next() {
                Some(p) => json = Some(p),
                None => return usage(),
            },
            "--rule" => match args.next().as_deref().and_then(RuleId::from_slug) {
                Some(r) => opts.only.push(r),
                None => {
                    eprintln!("unknown rule slug (see --list-rules)");
                    return usage();
                }
            },
            _ => return usage(),
        }
    }

    if list_rules {
        for r in ALL_RULES {
            println!("{:<4} {:<22} {}", r.id(), r.slug(), r.description());
        }
        return ExitCode::SUCCESS;
    }

    // When run via `cargo run -p simlint`, the workspace root is two levels
    // above this crate's manifest; fall back to the current directory.
    let root = root.unwrap_or_else(|| {
        std::env::var("CARGO_MANIFEST_DIR")
            .ok()
            .map(|m| PathBuf::from(m).join("../.."))
            .filter(|p| p.join("Cargo.toml").exists())
            .unwrap_or_else(|| PathBuf::from("."))
    });
    let root = root.canonicalize().unwrap_or(root);

    let report = simlint::lint_workspace(&root, &opts);

    let json_text = report.to_json();
    match json.as_deref() {
        Some("-") => print!("{json_text}"),
        Some(p) => {
            if let Err(e) = std::fs::write(p, &json_text) {
                eprintln!("simlint: cannot write {p}: {e}");
                return ExitCode::from(2);
            }
        }
        None => {
            let p = root.join("SIMLINT.json");
            if let Err(e) = std::fs::write(&p, &json_text) {
                eprintln!("simlint: cannot write {}: {e}", p.display());
                return ExitCode::from(2);
            }
        }
    }

    print!("{}", report.render_human());
    if report.findings.is_empty() && report.unused_pragmas.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
