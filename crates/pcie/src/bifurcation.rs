//! Lane bifurcation: splitting one physical device's lanes into several
//! endpoints wired to different sockets (§3.2).

use memsys::NodeId;

use crate::link::{PcieGen, PcieLinkConfig};

/// How a device's lanes are split across endpoints/sockets.
///
/// Each segment becomes one physical function attached to one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bifurcation {
    segments: Vec<(PcieLinkConfig, NodeId)>,
}

impl Bifurcation {
    /// A conventional single endpoint: all lanes to one socket
    /// (Figure 5a — "one NIC").
    pub fn single(gen: PcieGen, lanes: u8, node: NodeId) -> Self {
        Bifurcation {
            segments: vec![(PcieLinkConfig::new(gen, lanes), node)],
        }
    }

    /// The paper's octoNIC prototype: a x16 device bifurcated into two x8
    /// endpoints, one per socket of a dual-socket machine (§4.1: "The NIC's
    /// 16 PCIe lanes are bifurcated into two 8-lane buses, and we connect
    /// them to each CPU of a dual node system").
    pub fn x8x8_dual_socket(gen: PcieGen) -> Self {
        Bifurcation {
            segments: vec![
                (PcieLinkConfig::new(gen, 8), NodeId(0)),
                (PcieLinkConfig::new(gen, 8), NodeId(1)),
            ],
        }
    }

    /// One endpoint per node, each with `lanes` lanes — the §3.2 "extender"
    /// variant generalized to `nodes` sockets.
    pub fn per_node(gen: PcieGen, lanes: u8, nodes: usize) -> Self {
        assert!(nodes > 0, "at least one node");
        Bifurcation {
            segments: (0..nodes)
                .map(|n| (PcieLinkConfig::new(gen, lanes), NodeId(n)))
                .collect(),
        }
    }

    /// The segments: one `(link, node)` pair per endpoint.
    pub fn segments(&self) -> &[(PcieLinkConfig, NodeId)] {
        &self.segments
    }

    /// Number of endpoints this bifurcation produces.
    pub fn endpoint_count(&self) -> usize {
        self.segments.len()
    }

    /// Total lane count across segments.
    pub fn total_lanes(&self) -> u32 {
        self.segments.iter().map(|(l, _)| l.lanes as u32).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_one_endpoint() {
        let b = Bifurcation::single(PcieGen::Gen3, 16, NodeId(0));
        assert_eq!(b.endpoint_count(), 1);
        assert_eq!(b.total_lanes(), 16);
        assert_eq!(b.segments()[0].1, NodeId(0));
    }

    #[test]
    fn octonic_prototype_split() {
        let b = Bifurcation::x8x8_dual_socket(PcieGen::Gen3);
        assert_eq!(b.endpoint_count(), 2);
        assert_eq!(b.total_lanes(), 16);
        assert_eq!(b.segments()[0].1, NodeId(0));
        assert_eq!(b.segments()[1].1, NodeId(1));
        assert_eq!(b.segments()[0].0.lanes, 8);
    }

    #[test]
    fn per_node_covers_all_sockets() {
        let b = Bifurcation::per_node(PcieGen::Gen4, 4, 4);
        assert_eq!(b.endpoint_count(), 4);
        let nodes: Vec<_> = b.segments().iter().map(|(_, n)| n.0).collect();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }
}
