//! PCIe fabric substrate for the IOctopus reproduction.
//!
//! Models the path between a device's DMA engines and the memory system:
//!
//! * [`link`] — PCIe generation/lane bandwidth and TLP packetization
//!   overhead,
//! * [`fabric`] — the set of endpoints (physical functions) in the machine,
//!   each attached to one NUMA node's I/O controller, with per-direction
//!   bandwidth servers,
//! * [`bifurcation`] — the lane-splitting configurations of §3.2 (a x16
//!   device split into two x8 endpoints wired to different sockets — the
//!   paper's octoNIC prototype), and
//! * an optional programmable-switch latency knob (§3.2's "programmable
//!   PCIe switching" alternative, used by the ablation bench).
//!
//! The crate deliberately knows nothing about NICs or NVMe: it moves bytes
//! between endpoints and memory, charging PCIe serialization, TLP overhead,
//! and the [`memsys`] costs of the access itself.
//!
//! # Example
//!
//! ```
//! use pcie::{PcieFabric, PcieGen, FabricConfig};
//! use memsys::{MemSystem, MemConfig, NodeId};
//! use simcore::Time;
//!
//! let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
//! let mut fab = PcieFabric::new(FabricConfig::default());
//! let pf = fab.add_endpoint(NodeId(0), PcieGen::Gen3, 8);
//! let buf = mem.alloc(NodeId(0), 4096);
//! // `None` would mean the transaction was dropped (unknown PF, dead link).
//! let stall = fab.dma_write(Time::ZERO, pf, &mut mem, buf, 1500).unwrap();
//! assert!(stall > simcore::Dur::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bifurcation;
pub mod fabric;
pub mod link;

pub use bifurcation::Bifurcation;
pub use fabric::{FabricConfig, FabricCounters, LinkState, PcieFabric, PfId};
pub use link::{PcieGen, PcieLinkConfig};
