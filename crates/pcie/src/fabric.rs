//! The machine's PCIe endpoints and the DMA/MMIO transactions they carry.
//!
//! Each endpoint's link runs a small state machine (Up / Degraded / Down)
//! driven by the fault-injection layer: downtrained links transparently slow
//! DMA (retraining latency + reduced bandwidth), dead links drop
//! transactions, and every drop or bad reference is counted rather than
//! panicking.

use memsys::{MemSystem, NodeId, PhysAddr};
use simcore::{Audit, BwLink, Dur, FaultKind, Time};
use std::cell::Cell;

use crate::bifurcation::Bifurcation;
use crate::link::{wire_bytes, PcieGen, PcieLinkConfig, DEFAULT_MPS};

/// Identifies one PCIe physical function (endpoint) in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PfId(pub usize);

impl std::fmt::Display for PfId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PF{}", self.0)
    }
}

/// Fabric-wide parameters.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Negotiated max TLP payload size.
    pub max_payload: u64,
    /// Link propagation + PHY latency, one way.
    pub link_latency: Dur,
    /// Extra per-transaction latency when a programmable PCIe switch sits
    /// between the endpoint and the root port (§3.2; zero = direct wiring).
    pub switch_latency: Dur,
    /// LTSSM retraining downtime charged when a link changes width/speed or
    /// comes back from Down: the link carries nothing for this long.
    pub retrain_latency: Dur,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            max_payload: DEFAULT_MPS,
            link_latency: Dur::from_ns(150),
            switch_latency: Dur::ZERO,
            retrain_latency: Dur::from_us(20),
        }
    }
}

/// Operational state of an endpoint's link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Trained at the configured width and speed.
    Up,
    /// Retrained to fewer lanes / a lower generation: slower, not gone.
    Degraded,
    /// Electrically dead: transactions are dropped (and counted).
    Down,
}

/// Error and fault accounting for the fabric.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricCounters {
    /// References to endpoints that do not exist (driver bugs surfaced as
    /// counters instead of panics).
    pub invalid_refs: u64,
    /// Transactions dropped because the target link was Down.
    pub dropped_txns: u64,
    /// Link retraining events (degrade or recover).
    pub retrains: u64,
    /// Transactions issued (DMA reads/writes, MMIO, interrupts).
    pub issued_txns: u64,
    /// Transactions that completed successfully.
    pub ok_txns: u64,
    /// Surprise hot-removals observed by the fabric.
    pub hot_removals: u64,
    /// Re-enumerations (slot power-up + retrain) observed by the fabric.
    pub reenumerations: u64,
}

#[derive(Debug)]
struct Endpoint {
    node: NodeId,
    /// The link as physically configured (restored by `LinkRecover`).
    configured: PcieLinkConfig,
    state: LinkState,
    /// Device → host direction (DMA writes, read requests, MSI-X).
    upstream: BwLink,
    /// Host → device direction (DMA read completions, MMIO).
    downstream: BwLink,
    /// Physically in the slot. Surprise removal clears this; transactions
    /// against an absent endpoint drop (and count) like a Down link.
    present: bool,
    /// Device epoch, bumped on every surprise removal *and* every
    /// re-enumeration. Completions and interrupts are stamped with the
    /// epoch at issue time; the driver fences anything stamped with an
    /// older epoch than the endpoint's current one.
    epoch: u64,
}

/// All PCIe endpoints in the machine.
///
/// Devices (NIC, NVMe) hold [`PfId`]s and issue their DMA through this
/// fabric, which charges PCIe serialization + TLP overhead on the endpoint's
/// link and the memory-system cost of the access itself.
///
/// Transaction methods return `None` when the transaction cannot happen —
/// unknown endpoint (bumps `invalid_refs`) or a Down link (bumps
/// `dropped_txns`) — so callers degrade gracefully instead of panicking.
#[derive(Debug)]
pub struct PcieFabric {
    cfg: FabricConfig,
    endpoints: Vec<Endpoint>,
    invalid_refs: Cell<u64>,
    dropped_txns: u64,
    retrains: u64,
    /// Transactions entering any of the four transaction methods.
    issued_txns: u64,
    /// Transactions that returned a duration.
    ok_txns: u64,
    /// Transactions rejected for an unknown endpoint (subset of
    /// `invalid_refs`, which also counts non-transaction lookups).
    invalid_txns: u64,
    hot_removals: u64,
    reenumerations: u64,
}

impl PcieFabric {
    /// Creates an empty fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        PcieFabric {
            cfg,
            endpoints: Vec::new(),
            invalid_refs: Cell::new(0),
            dropped_txns: 0,
            retrains: 0,
            issued_txns: 0,
            ok_txns: 0,
            invalid_txns: 0,
            hot_removals: 0,
            reenumerations: 0,
        }
    }

    /// Registers an endpoint attached to `node` with the given link.
    pub fn add_endpoint(&mut self, node: NodeId, gen: PcieGen, lanes: u8) -> PfId {
        let link = PcieLinkConfig::new(gen, lanes);
        let id = PfId(self.endpoints.len());
        let bps = link.bytes_per_sec();
        self.endpoints.push(Endpoint {
            node,
            configured: link,
            state: LinkState::Up,
            upstream: BwLink::new(format!("pcie{}-up", id.0), bps, self.cfg.link_latency),
            downstream: BwLink::new(format!("pcie{}-down", id.0), bps, self.cfg.link_latency),
            present: true,
            epoch: 0,
        });
        id
    }

    /// Registers every endpoint of a bifurcated device; returns their ids in
    /// segment order.
    pub fn add_bifurcated(&mut self, bif: &Bifurcation) -> Vec<PfId> {
        bif.segments()
            .iter()
            .map(|(link, node)| self.add_endpoint(*node, link.gen, link.lanes))
            .collect()
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// The NUMA node an endpoint's I/O controller belongs to, or `None`
    /// (counted in `invalid_refs`) for an unknown id.
    pub fn node_of(&self, pf: PfId) -> Option<NodeId> {
        Some(self.ep(pf)?.node)
    }

    /// The current link state of `pf`, or `None` for an unknown id.
    pub fn link_state(&self, pf: PfId) -> Option<LinkState> {
        Some(self.ep(pf)?.state)
    }

    /// Applies a link-level fault event at `now`, including hotplug
    /// (`SurpriseRemove`/`Reenumerate`). PF-level faults
    /// (`PfFail`/`PfRecover`/`IrqLoss`) are the device's concern and are
    /// ignored here. Returns `false` (counted) for an unknown endpoint.
    pub fn apply_link_fault(&mut self, now: Time, pf: PfId, kind: FaultKind) -> bool {
        match kind {
            FaultKind::LinkDown => self.link_down(pf),
            FaultKind::LinkDegrade { lanes, gen } => {
                let gen = match gen {
                    4 => PcieGen::Gen4,
                    _ => PcieGen::Gen3,
                };
                self.link_degrade(now, pf, lanes, gen)
            }
            FaultKind::LinkRecover => self.link_recover(now, pf),
            FaultKind::SurpriseRemove => self.surprise_remove(pf),
            FaultKind::Reenumerate => self.reenumerate(now, pf),
            _ => true,
        }
    }

    /// Takes the link behind `pf` down: every future transaction drops until
    /// [`link_recover`](Self::link_recover). Returns `false` for an unknown
    /// endpoint.
    pub fn link_down(&mut self, pf: PfId) -> bool {
        match self.ep_mut(pf) {
            Some(ep) => {
                ep.state = LinkState::Down;
                true
            }
            None => false,
        }
    }

    /// Retrains the link behind `pf` to `lanes` lanes at `gen`: the link
    /// carries nothing during `retrain_latency`, then runs at the reduced
    /// rate. Returns `false` for an unknown endpoint.
    pub fn link_degrade(&mut self, now: Time, pf: PfId, lanes: u8, gen: PcieGen) -> bool {
        let retrain = self.cfg.retrain_latency;
        match self.ep_mut(pf) {
            Some(ep) => {
                let bps = PcieLinkConfig::new(gen, lanes).bytes_per_sec();
                ep.state = LinkState::Degraded;
                ep.upstream.set_bytes_per_sec(bps);
                ep.downstream.set_bytes_per_sec(bps);
                ep.upstream.stall_until(now + retrain);
                ep.downstream.stall_until(now + retrain);
                self.retrains += 1;
                true
            }
            None => false,
        }
    }

    /// Retrains the link behind `pf` back to its configured width and speed
    /// (from Degraded or Down), paying `retrain_latency` of downtime.
    /// Returns `false` for an unknown endpoint.
    pub fn link_recover(&mut self, now: Time, pf: PfId) -> bool {
        let retrain = self.cfg.retrain_latency;
        match self.ep_mut(pf) {
            Some(ep) => {
                let bps = ep.configured.bytes_per_sec();
                ep.state = LinkState::Up;
                ep.upstream.set_bytes_per_sec(bps);
                ep.downstream.set_bytes_per_sec(bps);
                ep.upstream.stall_until(now + retrain);
                ep.downstream.stall_until(now + retrain);
                self.retrains += 1;
                true
            }
            None => false,
        }
    }

    /// Surprise hot-removal of the endpoint behind `pf`: the device vanishes
    /// from the slot and its epoch retires. Every future transaction drops
    /// (and counts) until [`reenumerate`](Self::reenumerate); completions the
    /// device produced under the old epoch are the driver's to fence.
    /// Idempotent on an already-absent endpoint (the epoch bumps only on the
    /// present→absent transition). Returns `false` for an unknown endpoint.
    pub fn surprise_remove(&mut self, pf: PfId) -> bool {
        match self.ep_mut(pf) {
            Some(ep) => {
                if ep.present {
                    ep.present = false;
                    ep.state = LinkState::Down;
                    ep.epoch += 1;
                    self.hot_removals += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Re-enumerates the endpoint behind `pf` after a surprise removal: slot
    /// power-up, link retrain at the configured width/speed (paying
    /// `retrain_latency` of downtime), and a fresh device epoch. Idempotent
    /// on a present endpoint. Returns `false` for an unknown endpoint.
    pub fn reenumerate(&mut self, now: Time, pf: PfId) -> bool {
        let retrain = self.cfg.retrain_latency;
        match self.ep_mut(pf) {
            Some(ep) => {
                if !ep.present {
                    let bps = ep.configured.bytes_per_sec();
                    ep.present = true;
                    ep.state = LinkState::Up;
                    ep.epoch += 1;
                    ep.upstream.set_bytes_per_sec(bps);
                    ep.downstream.set_bytes_per_sec(bps);
                    ep.upstream.stall_until(now + retrain);
                    ep.downstream.stall_until(now + retrain);
                    self.retrains += 1;
                    self.reenumerations += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Whether the endpoint behind `pf` is physically present (unknown ids
    /// return `false`, counted).
    pub fn present(&self, pf: PfId) -> bool {
        self.ep(pf).is_some_and(|ep| ep.present)
    }

    /// The current device epoch of `pf`, or `None` for an unknown id.
    pub fn epoch(&self, pf: PfId) -> Option<u64> {
        Some(self.ep(pf)?.epoch)
    }

    /// Device-initiated DMA write: `len` bytes from the device into memory
    /// at `addr`, via endpoint `pf`. Returns the time until the write is
    /// globally visible, or `None` if the transaction was dropped (unknown
    /// endpoint or Down link).
    pub fn dma_write(
        &mut self,
        now: Time,
        pf: PfId,
        mem: &mut MemSystem,
        addr: PhysAddr,
        len: u64,
    ) -> Option<Dur> {
        self.issued_txns += 1;
        let wire = wire_bytes(len, self.cfg.max_payload);
        let node = self.usable_ep(pf)?.node;
        // Hops reserved at `now`, durations summed: reserving downstream at
        // a future arrival time would push shared-link FIFO horizons ahead
        // of near-term traffic (see memsys::system for the same rule).
        let up_dur =
            self.ep_mut(pf)?.upstream.reserve(now, wire).since(now) + self.cfg.switch_latency;
        let mem_stall = mem.dma_write(now, node, addr, len);
        self.ok_txns += 1;
        Some(up_dur + mem_stall)
    }

    /// Device-initiated DMA read: `len` bytes from memory at `addr` into the
    /// device, via endpoint `pf`. Returns the time until the data has fully
    /// arrived at the device, or `None` if the transaction was dropped.
    pub fn dma_read(
        &mut self,
        now: Time,
        pf: PfId,
        mem: &mut MemSystem,
        addr: PhysAddr,
        len: u64,
    ) -> Option<Dur> {
        self.issued_txns += 1;
        let node = self.usable_ep(pf)?.node;
        // Read request TLP upstream (header only); hops reserved at `now`,
        // durations summed (see dma_write).
        let req_wire = wire_bytes(1, self.cfg.max_payload);
        let req_dur =
            self.ep_mut(pf)?.upstream.reserve(now, req_wire).since(now) + self.cfg.switch_latency;
        let mem_stall = mem.dma_read(now, node, addr, len);
        // Completion TLPs downstream with the data.
        let wire = wire_bytes(len, self.cfg.max_payload);
        let data_dur =
            self.ep_mut(pf)?.downstream.reserve(now, wire).since(now) + self.cfg.switch_latency;
        self.ok_txns += 1;
        Some(req_dur + mem_stall + data_dur)
    }

    /// CPU-initiated MMIO write (doorbell) from a core on `core_node` to the
    /// device behind `pf`. Posted: the returned duration is the time until
    /// the device observes it (the CPU does not stall that long). `None` if
    /// the write was dropped (the device will never see the doorbell; the
    /// driver's watchdog is responsible for noticing).
    pub fn mmio_write(
        &mut self,
        now: Time,
        core_node: NodeId,
        pf: PfId,
        mem: &MemSystem,
    ) -> Option<Dur> {
        self.issued_txns += 1;
        let hop = mem.mmio_extra_hops(core_node, self.usable_ep(pf)?.node);
        let wire = wire_bytes(8, self.cfg.max_payload);
        let done = self.ep_mut(pf)?.downstream.reserve(now, wire);
        self.ok_txns += 1;
        Some(done.since(now) + hop + self.cfg.switch_latency)
    }

    /// Device-initiated MSI-X interrupt from `pf` to a core on `target`.
    /// Returns the delivery latency, or `None` if the interrupt was lost.
    pub fn interrupt(
        &mut self,
        now: Time,
        pf: PfId,
        mem: &MemSystem,
        target: NodeId,
    ) -> Option<Dur> {
        self.issued_txns += 1;
        let hop = mem.interrupt_extra_hops(self.usable_ep(pf)?.node, target);
        let wire = wire_bytes(4, self.cfg.max_payload);
        let done = self.ep_mut(pf)?.upstream.reserve(now, wire);
        self.ok_txns += 1;
        Some(done.since(now) + hop + self.cfg.switch_latency)
    }

    /// Upstream (device→host) bytes carried by `pf` since construction
    /// (0 for an unknown endpoint, counted).
    pub fn upstream_bytes(&self, pf: PfId) -> u64 {
        self.ep(pf).map_or(0, |ep| ep.upstream.total_bytes())
    }

    /// Downstream (host→device) bytes carried by `pf` since construction
    /// (0 for an unknown endpoint, counted).
    pub fn downstream_bytes(&self, pf: PfId) -> u64 {
        self.ep(pf).map_or(0, |ep| ep.downstream.total_bytes())
    }

    /// Publishes the fabric's counters into a per-run metric snapshot.
    pub fn publish_metrics(&self, s: &mut telemetry::Snapshot) {
        let c = self.counters();
        s.push("pcie.invalid_refs", c.invalid_refs);
        s.push("pcie.dropped_txns", c.dropped_txns);
        s.push("pcie.retrains", c.retrains);
        s.push("pcie.issued_txns", c.issued_txns);
        s.push("pcie.ok_txns", c.ok_txns);
        s.push("pcie.hot_removals", c.hot_removals);
        s.push("pcie.reenumerations", c.reenumerations);
    }

    /// Error and fault accounting.
    pub fn counters(&self) -> FabricCounters {
        FabricCounters {
            invalid_refs: self.invalid_refs.get(),
            dropped_txns: self.dropped_txns,
            retrains: self.retrains,
            issued_txns: self.issued_txns,
            ok_txns: self.ok_txns,
            hot_removals: self.hot_removals,
            reenumerations: self.reenumerations,
        }
    }

    /// Audits transaction conservation into `a`: every transaction that
    /// entered the fabric must be accounted exactly once as completed,
    /// dropped on a Down link, or rejected for an unknown endpoint. The
    /// four tallies are maintained at independent code sites, so a future
    /// early-return that skips its bookkeeping shows up here.
    pub fn audit(&self, a: &mut Audit) {
        let accounted = self.ok_txns + self.dropped_txns + self.invalid_txns;
        a.check(
            "pcie",
            "txn-conservation",
            self.issued_txns == accounted,
            || {
                format!(
                    "issued {} != ok {} + dropped {} + invalid {}",
                    self.issued_txns, self.ok_txns, self.dropped_txns, self.invalid_txns
                )
            },
        );
        a.check(
            "pcie",
            "hotplug-pairing",
            self.reenumerations <= self.hot_removals,
            || {
                format!(
                    "reenumerations {} exceed hot removals {}",
                    self.reenumerations, self.hot_removals
                )
            },
        );
        a.check(
            "pcie",
            "invalid-ref-superset",
            self.invalid_txns <= self.invalid_refs.get(),
            || {
                format!(
                    "txn-path invalid refs {} exceed total invalid refs {}",
                    self.invalid_txns,
                    self.invalid_refs.get()
                )
            },
        );
    }

    fn ep(&self, pf: PfId) -> Option<&Endpoint> {
        let ep = self.endpoints.get(pf.0);
        if ep.is_none() {
            self.invalid_refs.set(self.invalid_refs.get() + 1);
        }
        ep
    }

    fn ep_mut(&mut self, pf: PfId) -> Option<&mut Endpoint> {
        if pf.0 >= self.endpoints.len() {
            self.invalid_refs.set(self.invalid_refs.get() + 1);
            return None;
        }
        Some(&mut self.endpoints[pf.0])
    }

    /// Like [`ep`](Self::ep) but also fails (and counts a dropped
    /// transaction) when the link is Down.
    fn usable_ep(&mut self, pf: PfId) -> Option<&Endpoint> {
        if pf.0 >= self.endpoints.len() {
            self.invalid_refs.set(self.invalid_refs.get() + 1);
            self.invalid_txns += 1;
            return None;
        }
        if self.endpoints[pf.0].state == LinkState::Down {
            self.dropped_txns += 1;
            return None;
        }
        Some(&self.endpoints[pf.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::MemConfig;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn setup() -> (MemSystem, PcieFabric, Vec<PfId>) {
        let mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let mut fab = PcieFabric::new(FabricConfig::default());
        let pfs = fab.add_bifurcated(&Bifurcation::x8x8_dual_socket(PcieGen::Gen3));
        (mem, fab, pfs)
    }

    #[test]
    fn bifurcated_endpoints_attach_to_both_sockets() {
        let (_, fab, pfs) = setup();
        assert_eq!(pfs.len(), 2);
        assert_eq!(fab.node_of(pfs[0]), Some(N0));
        assert_eq!(fab.node_of(pfs[1]), Some(N1));
    }

    #[test]
    fn local_dma_write_cheaper_than_remote() {
        let (mut mem, mut fab, pfs) = setup();
        let buf0 = mem.alloc(N0, 8192);
        let local = fab
            .dma_write(Time::ZERO, pfs[0], &mut mem, buf0, 1500)
            .unwrap();
        let buf0b = mem.alloc(N0, 8192);
        let remote = fab
            .dma_write(Time::from_us(10), pfs[1], &mut mem, buf0b, 1500)
            .unwrap();
        assert!(remote > local, "remote {remote} vs local {local}");
    }

    #[test]
    fn local_dma_read_cheaper_than_remote() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 8192);
        let local = fab
            .dma_read(Time::ZERO, pfs[0], &mut mem, buf, 1500)
            .unwrap();
        let buf2 = mem.alloc(N0, 8192);
        let remote = fab
            .dma_read(Time::from_us(10), pfs[1], &mut mem, buf2, 1500)
            .unwrap();
        assert!(remote > local, "remote {remote} vs local {local}");
    }

    #[test]
    fn dma_write_consumes_upstream_bandwidth() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 8192);
        fab.dma_write(Time::ZERO, pfs[0], &mut mem, buf, 1500);
        assert!(fab.upstream_bytes(pfs[0]) > 1500, "payload + TLP overhead");
        assert_eq!(fab.downstream_bytes(pfs[0]), 0);
    }

    #[test]
    fn dma_read_consumes_downstream_bandwidth() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 8192);
        fab.dma_read(Time::ZERO, pfs[0], &mut mem, buf, 1500);
        assert!(fab.downstream_bytes(pfs[0]) > 1500);
    }

    #[test]
    fn x8_link_saturates() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 1 << 22);
        // Push ~2 MiB through the x8 endpoint at one instant: later writes
        // queue behind earlier ones.
        let first = fab
            .dma_write(Time::ZERO, pfs[0], &mut mem, buf, 4096)
            .unwrap();
        let mut last = Dur::ZERO;
        for i in 0..512 {
            last = fab
                .dma_write(
                    Time::ZERO,
                    pfs[0],
                    &mut mem,
                    buf.offset(i * 4096 % (1 << 22)),
                    4096,
                )
                .unwrap();
        }
        assert!(last > first * 10, "queueing on the PCIe link");
    }

    #[test]
    fn mmio_remote_pays_hop() {
        let (mem, mut fab, pfs) = setup();
        let local = fab.mmio_write(Time::ZERO, N0, pfs[0], &mem).unwrap();
        let remote = fab.mmio_write(Time::ZERO, N0, pfs[1], &mem).unwrap();
        assert!(remote > local);
    }

    #[test]
    fn interrupt_remote_pays_hop() {
        let (mem, mut fab, pfs) = setup();
        let local = fab.interrupt(Time::ZERO, pfs[0], &mem, N0).unwrap();
        let remote = fab.interrupt(Time::ZERO, pfs[0], &mem, N1).unwrap();
        assert!(remote > local);
    }

    #[test]
    fn switch_latency_ablation() {
        let mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let mut direct = PcieFabric::new(FabricConfig::default());
        let mut switched = PcieFabric::new(FabricConfig {
            switch_latency: Dur::from_ns(120),
            ..FabricConfig::default()
        });
        let d = direct.add_endpoint(N0, PcieGen::Gen3, 8);
        let s = switched.add_endpoint(N0, PcieGen::Gen3, 8);
        let ld = direct.mmio_write(Time::ZERO, N0, d, &mem).unwrap();
        let ls = switched.mmio_write(Time::ZERO, N0, s, &mem).unwrap();
        assert_eq!(ls - ld, Dur::from_ns(120));
    }

    #[test]
    fn unknown_pf_counted_not_panicking() {
        let (mut mem, mut fab, _) = setup();
        assert_eq!(fab.node_of(PfId(99)), None);
        assert_eq!(fab.counters().invalid_refs, 1);
        let buf = mem.alloc(N0, 4096);
        assert_eq!(fab.dma_write(Time::ZERO, PfId(99), &mut mem, buf, 64), None);
        assert_eq!(fab.dma_read(Time::ZERO, PfId(99), &mut mem, buf, 64), None);
        assert_eq!(fab.mmio_write(Time::ZERO, N0, PfId(99), &mem), None);
        assert_eq!(fab.interrupt(Time::ZERO, PfId(99), &mem, N0), None);
        assert_eq!(fab.counters().invalid_refs, 5);
        assert_eq!(fab.counters().dropped_txns, 0);
    }

    #[test]
    fn down_link_drops_and_counts() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 8192);
        assert!(fab.link_down(pfs[0]));
        assert_eq!(fab.link_state(pfs[0]), Some(LinkState::Down));
        assert_eq!(fab.dma_write(Time::ZERO, pfs[0], &mut mem, buf, 1500), None);
        assert_eq!(fab.interrupt(Time::ZERO, pfs[0], &mem, N0), None);
        assert_eq!(fab.counters().dropped_txns, 2);
        // The sibling PF is unaffected.
        assert!(fab
            .dma_write(Time::ZERO, pfs[1], &mut mem, buf, 1500)
            .is_some());
    }

    #[test]
    fn degraded_link_slows_but_delivers() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 1 << 20);
        let healthy = fab
            .dma_write(Time::ZERO, pfs[0], &mut mem, buf, 65536)
            .unwrap();
        // Downtrain x8 -> x1 well after the first transfer drained.
        let t1 = Time::from_ms(1);
        assert!(fab.link_degrade(t1, pfs[0], 1, PcieGen::Gen3));
        assert_eq!(fab.link_state(pfs[0]), Some(LinkState::Degraded));
        // Issue after retraining completes: pure bandwidth effect, ~8x slower.
        let t2 = t1 + Dur::from_ms(1);
        let degraded = fab
            .dma_write(t2, pfs[0], &mut mem, buf.offset(65536), 65536)
            .unwrap();
        assert!(
            degraded > healthy * 4,
            "x1 transfer ({degraded}) should be much slower than x8 ({healthy})"
        );
        // Recovery restores the configured rate.
        let t3 = t2 + Dur::from_ms(1);
        assert!(fab.link_recover(t3, pfs[0]));
        assert_eq!(fab.link_state(pfs[0]), Some(LinkState::Up));
        let t4 = t3 + Dur::from_ms(1);
        let recovered = fab
            .dma_write(t4, pfs[0], &mut mem, buf.offset(131072), 65536)
            .unwrap();
        assert!(recovered < degraded / 2);
        assert_eq!(fab.counters().retrains, 2);
    }

    #[test]
    fn retrain_stalls_transactions_in_flight_window() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 8192);
        let quiet = fab
            .dma_write(Time::ZERO, pfs[0], &mut mem, buf, 64)
            .unwrap();
        // Degrade at t=1ms; a transaction right after waits out retraining.
        let t = Time::from_ms(1);
        fab.link_degrade(t, pfs[0], 8, PcieGen::Gen3);
        let stalled = fab
            .dma_write(t, pfs[0], &mut mem, buf.offset(4096), 64)
            .unwrap();
        assert!(
            stalled >= FabricConfig::default().retrain_latency,
            "stalled={stalled} behind retraining, quiet={quiet}"
        );
    }

    #[test]
    fn txn_audit_balances_across_ok_dropped_and_invalid() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 8192);
        // ok
        fab.dma_write(Time::ZERO, pfs[0], &mut mem, buf, 1500)
            .unwrap();
        fab.interrupt(Time::ZERO, pfs[0], &mem, N0).unwrap();
        // dropped
        fab.link_down(pfs[0]);
        assert_eq!(fab.dma_write(Time::ZERO, pfs[0], &mut mem, buf, 64), None);
        // invalid
        assert_eq!(fab.mmio_write(Time::ZERO, N0, PfId(42), &mem), None);
        let c = fab.counters();
        assert_eq!(c.issued_txns, 4);
        assert_eq!(c.ok_txns, 2);
        assert_eq!(c.dropped_txns, 1);
        let mut a = Audit::new();
        fab.audit(&mut a);
        assert!(a.ok(), "{:?}", a.violations());
        assert_eq!(a.checks(), 3);
    }

    #[test]
    fn surprise_remove_drops_txns_and_bumps_epoch() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 8192);
        assert_eq!(fab.epoch(pfs[0]), Some(0));
        assert!(fab.present(pfs[0]));
        assert!(fab.surprise_remove(pfs[0]));
        assert!(!fab.present(pfs[0]));
        assert_eq!(fab.epoch(pfs[0]), Some(1));
        assert_eq!(fab.link_state(pfs[0]), Some(LinkState::Down));
        // Transactions against the empty slot drop and count.
        assert_eq!(fab.dma_write(Time::ZERO, pfs[0], &mut mem, buf, 1500), None);
        assert_eq!(fab.interrupt(Time::ZERO, pfs[0], &mem, N0), None);
        assert_eq!(fab.counters().dropped_txns, 2);
        assert_eq!(fab.counters().hot_removals, 1);
        // Removal is idempotent: no second epoch bump for a removed slot.
        assert!(fab.surprise_remove(pfs[0]));
        assert_eq!(fab.epoch(pfs[0]), Some(1));
        assert_eq!(fab.counters().hot_removals, 1);
        // The sibling PF is unaffected.
        assert!(fab
            .dma_write(Time::ZERO, pfs[1], &mut mem, buf, 1500)
            .is_some());
        let mut a = Audit::new();
        fab.audit(&mut a);
        assert!(a.ok(), "{:?}", a.violations());
    }

    #[test]
    fn reenumerate_restores_service_behind_retrain_and_new_epoch() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 8192);
        fab.surprise_remove(pfs[0]);
        let t = Time::from_ms(1);
        assert!(fab.reenumerate(t, pfs[0]));
        assert!(fab.present(pfs[0]));
        assert_eq!(fab.link_state(pfs[0]), Some(LinkState::Up));
        // Removal and re-add each retire an epoch: 0 → 1 → 2.
        assert_eq!(fab.epoch(pfs[0]), Some(2));
        assert_eq!(fab.counters().reenumerations, 1);
        // Re-enumeration is idempotent on a present slot.
        assert!(fab.reenumerate(t, pfs[0]));
        assert_eq!(fab.epoch(pfs[0]), Some(2));
        // The first transaction waits out the retrain window.
        let stalled = fab.dma_write(t, pfs[0], &mut mem, buf, 64).unwrap();
        assert!(
            stalled >= FabricConfig::default().retrain_latency,
            "stalled={stalled} behind slot power-up retrain"
        );
        let mut a = Audit::new();
        fab.audit(&mut a);
        assert!(a.ok(), "{:?}", a.violations());
    }

    #[test]
    fn unknown_endpoint_hotplug_is_counted_not_panicking() {
        let (_, mut fab, _) = setup();
        assert!(!fab.surprise_remove(PfId(9)));
        assert!(!fab.reenumerate(Time::ZERO, PfId(9)));
        assert!(!fab.present(PfId(9)));
        assert_eq!(fab.epoch(PfId(9)), None);
        assert!(fab.counters().invalid_refs >= 4);
    }

    #[test]
    fn apply_link_fault_dispatches() {
        let (_, mut fab, pfs) = setup();
        assert!(fab.apply_link_fault(Time::ZERO, pfs[0], FaultKind::LinkDown));
        assert_eq!(fab.link_state(pfs[0]), Some(LinkState::Down));
        assert!(fab.apply_link_fault(
            Time::from_us(1),
            pfs[0],
            FaultKind::LinkDegrade { lanes: 4, gen: 3 }
        ));
        assert_eq!(fab.link_state(pfs[0]), Some(LinkState::Degraded));
        assert!(fab.apply_link_fault(Time::from_us(2), pfs[0], FaultKind::LinkRecover));
        assert_eq!(fab.link_state(pfs[0]), Some(LinkState::Up));
        // PF-level faults are a no-op at the fabric layer.
        assert!(fab.apply_link_fault(Time::from_us(3), pfs[0], FaultKind::PfFail));
        assert_eq!(fab.link_state(pfs[0]), Some(LinkState::Up));
        // Unknown endpoints are reported, not panicked on.
        assert!(!fab.apply_link_fault(Time::from_us(4), PfId(9), FaultKind::LinkDown));
    }
}
