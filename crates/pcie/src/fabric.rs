//! The machine's PCIe endpoints and the DMA/MMIO transactions they carry.

use memsys::{MemSystem, NodeId, PhysAddr};
use simcore::{BwLink, Dur, Time};

use crate::bifurcation::Bifurcation;
use crate::link::{wire_bytes, PcieGen, PcieLinkConfig, DEFAULT_MPS};

/// Identifies one PCIe physical function (endpoint) in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PfId(pub usize);

impl std::fmt::Display for PfId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PF{}", self.0)
    }
}

/// Fabric-wide parameters.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Negotiated max TLP payload size.
    pub max_payload: u64,
    /// Link propagation + PHY latency, one way.
    pub link_latency: Dur,
    /// Extra per-transaction latency when a programmable PCIe switch sits
    /// between the endpoint and the root port (§3.2; zero = direct wiring).
    pub switch_latency: Dur,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            max_payload: DEFAULT_MPS,
            link_latency: Dur::from_ns(150),
            switch_latency: Dur::ZERO,
        }
    }
}

#[derive(Debug)]
struct Endpoint {
    node: NodeId,
    /// Device → host direction (DMA writes, read requests, MSI-X).
    upstream: BwLink,
    /// Host → device direction (DMA read completions, MMIO).
    downstream: BwLink,
}

/// All PCIe endpoints in the machine.
///
/// Devices (NIC, NVMe) hold [`PfId`]s and issue their DMA through this
/// fabric, which charges PCIe serialization + TLP overhead on the endpoint's
/// link and the memory-system cost of the access itself.
#[derive(Debug)]
pub struct PcieFabric {
    cfg: FabricConfig,
    endpoints: Vec<Endpoint>,
}

impl PcieFabric {
    /// Creates an empty fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        PcieFabric {
            cfg,
            endpoints: Vec::new(),
        }
    }

    /// Registers an endpoint attached to `node` with the given link.
    pub fn add_endpoint(&mut self, node: NodeId, gen: PcieGen, lanes: u8) -> PfId {
        let link = PcieLinkConfig::new(gen, lanes);
        let id = PfId(self.endpoints.len());
        let bps = link.bytes_per_sec();
        self.endpoints.push(Endpoint {
            node,
            upstream: BwLink::new(format!("pcie{}-up", id.0), bps, self.cfg.link_latency),
            downstream: BwLink::new(format!("pcie{}-down", id.0), bps, self.cfg.link_latency),
        });
        id
    }

    /// Registers every endpoint of a bifurcated device; returns their ids in
    /// segment order.
    pub fn add_bifurcated(&mut self, bif: &Bifurcation) -> Vec<PfId> {
        bif.segments()
            .iter()
            .map(|(link, node)| self.add_endpoint(*node, link.gen, link.lanes))
            .collect()
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// The NUMA node an endpoint's I/O controller belongs to.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn node_of(&self, pf: PfId) -> NodeId {
        self.ep(pf).node
    }

    /// Device-initiated DMA write: `len` bytes from the device into memory
    /// at `addr`, via endpoint `pf`. Returns the time until the write is
    /// globally visible.
    pub fn dma_write(
        &mut self,
        now: Time,
        pf: PfId,
        mem: &mut MemSystem,
        addr: PhysAddr,
        len: u64,
    ) -> Dur {
        let wire = wire_bytes(len, self.cfg.max_payload);
        let node = self.ep(pf).node;
        // Hops reserved at `now`, durations summed: reserving downstream at
        // a future arrival time would push shared-link FIFO horizons ahead
        // of near-term traffic (see memsys::system for the same rule).
        let up_dur =
            self.ep_mut(pf).upstream.reserve(now, wire).since(now) + self.cfg.switch_latency;
        let mem_stall = mem.dma_write(now, node, addr, len);
        up_dur + mem_stall
    }

    /// Device-initiated DMA read: `len` bytes from memory at `addr` into the
    /// device, via endpoint `pf`. Returns the time until the data has fully
    /// arrived at the device.
    pub fn dma_read(
        &mut self,
        now: Time,
        pf: PfId,
        mem: &mut MemSystem,
        addr: PhysAddr,
        len: u64,
    ) -> Dur {
        let node = self.ep(pf).node;
        // Read request TLP upstream (header only); hops reserved at `now`,
        // durations summed (see dma_write).
        let req_wire = wire_bytes(1, self.cfg.max_payload);
        let req_dur =
            self.ep_mut(pf).upstream.reserve(now, req_wire).since(now) + self.cfg.switch_latency;
        let mem_stall = mem.dma_read(now, node, addr, len);
        // Completion TLPs downstream with the data.
        let wire = wire_bytes(len, self.cfg.max_payload);
        let data_dur =
            self.ep_mut(pf).downstream.reserve(now, wire).since(now) + self.cfg.switch_latency;
        req_dur + mem_stall + data_dur
    }

    /// CPU-initiated MMIO write (doorbell) from a core on `core_node` to the
    /// device behind `pf`. Posted: the returned duration is the time until
    /// the device observes it (the CPU does not stall that long).
    pub fn mmio_write(&mut self, now: Time, core_node: NodeId, pf: PfId, mem: &MemSystem) -> Dur {
        let hop = mem.mmio_extra_hops(core_node, self.ep(pf).node);
        let wire = wire_bytes(8, self.cfg.max_payload);
        let done = self.ep_mut(pf).downstream.reserve(now, wire);
        done.since(now) + hop + self.cfg.switch_latency
    }

    /// Device-initiated MSI-X interrupt from `pf` to a core on `target`.
    /// Returns the delivery latency.
    pub fn interrupt(&mut self, now: Time, pf: PfId, mem: &MemSystem, target: NodeId) -> Dur {
        let hop = mem.interrupt_extra_hops(self.ep(pf).node, target);
        let wire = wire_bytes(4, self.cfg.max_payload);
        let done = self.ep_mut(pf).upstream.reserve(now, wire);
        done.since(now) + hop + self.cfg.switch_latency
    }

    /// Upstream (device→host) bytes carried by `pf` since construction.
    pub fn upstream_bytes(&self, pf: PfId) -> u64 {
        self.ep(pf).upstream.total_bytes()
    }

    /// Downstream (host→device) bytes carried by `pf` since construction.
    pub fn downstream_bytes(&self, pf: PfId) -> u64 {
        self.ep(pf).downstream.total_bytes()
    }

    fn ep(&self, pf: PfId) -> &Endpoint {
        self.endpoints
            .get(pf.0)
            .unwrap_or_else(|| panic!("unknown endpoint {pf}"))
    }

    fn ep_mut(&mut self, pf: PfId) -> &mut Endpoint {
        self.endpoints
            .get_mut(pf.0)
            .unwrap_or_else(|| panic!("unknown endpoint {pf}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::MemConfig;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn setup() -> (MemSystem, PcieFabric, Vec<PfId>) {
        let mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let mut fab = PcieFabric::new(FabricConfig::default());
        let pfs = fab.add_bifurcated(&Bifurcation::x8x8_dual_socket(PcieGen::Gen3));
        (mem, fab, pfs)
    }

    #[test]
    fn bifurcated_endpoints_attach_to_both_sockets() {
        let (_, fab, pfs) = setup();
        assert_eq!(pfs.len(), 2);
        assert_eq!(fab.node_of(pfs[0]), N0);
        assert_eq!(fab.node_of(pfs[1]), N1);
    }

    #[test]
    fn local_dma_write_cheaper_than_remote() {
        let (mut mem, mut fab, pfs) = setup();
        let buf0 = mem.alloc(N0, 8192);
        let local = fab.dma_write(Time::ZERO, pfs[0], &mut mem, buf0, 1500);
        let buf0b = mem.alloc(N0, 8192);
        let remote = fab.dma_write(Time::from_us(10), pfs[1], &mut mem, buf0b, 1500);
        assert!(remote > local, "remote {remote} vs local {local}");
    }

    #[test]
    fn local_dma_read_cheaper_than_remote() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 8192);
        let local = fab.dma_read(Time::ZERO, pfs[0], &mut mem, buf, 1500);
        let buf2 = mem.alloc(N0, 8192);
        let remote = fab.dma_read(Time::from_us(10), pfs[1], &mut mem, buf2, 1500);
        assert!(remote > local, "remote {remote} vs local {local}");
    }

    #[test]
    fn dma_write_consumes_upstream_bandwidth() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 8192);
        fab.dma_write(Time::ZERO, pfs[0], &mut mem, buf, 1500);
        assert!(fab.upstream_bytes(pfs[0]) > 1500, "payload + TLP overhead");
        assert_eq!(fab.downstream_bytes(pfs[0]), 0);
    }

    #[test]
    fn dma_read_consumes_downstream_bandwidth() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 8192);
        fab.dma_read(Time::ZERO, pfs[0], &mut mem, buf, 1500);
        assert!(fab.downstream_bytes(pfs[0]) > 1500);
    }

    #[test]
    fn x8_link_saturates() {
        let (mut mem, mut fab, pfs) = setup();
        let buf = mem.alloc(N0, 1 << 22);
        // Push ~2 MiB through the x8 endpoint at one instant: later writes
        // queue behind earlier ones.
        let first = fab.dma_write(Time::ZERO, pfs[0], &mut mem, buf, 4096);
        let mut last = Dur::ZERO;
        for i in 0..512 {
            last = fab.dma_write(
                Time::ZERO,
                pfs[0],
                &mut mem,
                buf.offset(i * 4096 % (1 << 22)),
                4096,
            );
        }
        assert!(last > first * 10, "queueing on the PCIe link");
    }

    #[test]
    fn mmio_remote_pays_hop() {
        let (mem, mut fab, pfs) = setup();
        let local = fab.mmio_write(Time::ZERO, N0, pfs[0], &mem);
        let remote = fab.mmio_write(Time::ZERO, N0, pfs[1], &mem);
        assert!(remote > local);
    }

    #[test]
    fn interrupt_remote_pays_hop() {
        let (mem, mut fab, pfs) = setup();
        let local = fab.interrupt(Time::ZERO, pfs[0], &mem, N0);
        let remote = fab.interrupt(Time::ZERO, pfs[0], &mem, N1);
        assert!(remote > local);
    }

    #[test]
    fn switch_latency_ablation() {
        let mem = MemSystem::new(MemConfig::dual_socket_broadwell());
        let mut direct = PcieFabric::new(FabricConfig::default());
        let mut switched = PcieFabric::new(FabricConfig {
            switch_latency: Dur::from_ns(120),
            ..FabricConfig::default()
        });
        let d = direct.add_endpoint(N0, PcieGen::Gen3, 8);
        let s = switched.add_endpoint(N0, PcieGen::Gen3, 8);
        let ld = direct.mmio_write(Time::ZERO, N0, d, &mem);
        let ls = switched.mmio_write(Time::ZERO, N0, s, &mem);
        assert_eq!(ls - ld, Dur::from_ns(120));
    }

    #[test]
    #[should_panic(expected = "unknown endpoint")]
    fn unknown_pf_panics() {
        let (_, fab, _) = setup();
        fab.node_of(PfId(99));
    }
}
