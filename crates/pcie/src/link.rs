//! PCIe link rates and TLP packetization overhead.

/// PCIe signaling generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcieGen {
    /// 8 GT/s per lane, 128b/130b encoding (the paper's hardware).
    Gen3,
    /// 16 GT/s per lane, 128b/130b encoding.
    Gen4,
}

impl PcieGen {
    /// Effective payload-carrying bandwidth per lane, bytes/second, after
    /// line encoding.
    pub fn bytes_per_sec_per_lane(self) -> u64 {
        match self {
            // 8 GT/s * 128/130 / 8 bits ≈ 0.9846 GB/s per lane.
            PcieGen::Gen3 => 984_615_384,
            PcieGen::Gen4 => 1_969_230_769,
        }
    }
}

/// A configured link: generation × lane count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcieLinkConfig {
    /// Signaling generation.
    pub gen: PcieGen,
    /// Lane count (1, 2, 4, 8, 16).
    pub lanes: u8,
}

impl PcieLinkConfig {
    /// Creates a link config.
    ///
    /// # Panics
    /// Panics if `lanes` is not a power of two in `1..=16`.
    pub fn new(gen: PcieGen, lanes: u8) -> Self {
        assert!(
            matches!(lanes, 1 | 2 | 4 | 8 | 16),
            "invalid lane count {lanes}"
        );
        PcieLinkConfig { gen, lanes }
    }

    /// One-direction bandwidth in bytes/second.
    pub fn bytes_per_sec(&self) -> u64 {
        self.gen.bytes_per_sec_per_lane() * self.lanes as u64
    }
}

/// TLP header + framing overhead per transaction-layer packet, bytes.
/// (12–16 B header + 6 B framing + 4 B LCRC, rounded.)
pub const TLP_OVERHEAD_BYTES: u64 = 24;

/// Typical max payload size negotiated on servers.
pub const DEFAULT_MPS: u64 = 256;

/// Wire bytes needed to move `payload` bytes of DMA data, given the
/// negotiated max payload size: the payload plus per-TLP overhead.
///
/// # Example
/// ```
/// use pcie::link::wire_bytes;
/// assert_eq!(wire_bytes(256, 256), 256 + 24);
/// assert_eq!(wire_bytes(257, 256), 257 + 48);
/// assert_eq!(wire_bytes(0, 256), 0);
/// ```
pub fn wire_bytes(payload: u64, mps: u64) -> u64 {
    assert!(mps > 0, "max payload size must be positive");
    if payload == 0 {
        return 0;
    }
    let tlps = payload.div_ceil(mps);
    payload + tlps * TLP_OVERHEAD_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    #[test]
    fn gen3_x8_matches_published_rate() {
        let cfg = PcieLinkConfig::new(PcieGen::Gen3, 8);
        // ≈ 7.88 GB/s ≈ 63 Gb/s one direction.
        let gbps = cfg.bytes_per_sec() as f64 * 8.0 / 1e9;
        assert!((gbps - 63.0).abs() < 0.1, "got {gbps}");
    }

    #[test]
    fn gen3_x16_covers_100gbe() {
        let cfg = PcieLinkConfig::new(PcieGen::Gen3, 16);
        assert!(cfg.bytes_per_sec() as f64 * 8.0 / 1e9 > 100.0);
    }

    #[test]
    fn gen4_doubles_gen3() {
        let g3 = PcieLinkConfig::new(PcieGen::Gen3, 8).bytes_per_sec();
        let g4 = PcieLinkConfig::new(PcieGen::Gen4, 8).bytes_per_sec();
        assert!((g4 as f64 / g3 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "invalid lane count")]
    fn bad_lanes() {
        PcieLinkConfig::new(PcieGen::Gen3, 3);
    }

    #[test]
    fn wire_bytes_packetization() {
        assert_eq!(wire_bytes(64, 256), 64 + 24);
        assert_eq!(wire_bytes(1500, 256), 1500 + 6 * 24);
        assert_eq!(wire_bytes(0, 256), 0);
    }

    #[test]
    fn prop_wire_bytes_ge_payload() {
        let mut r = SimRng::seed(0x91e1);
        for _ in 0..256 {
            let p = r.below(1 << 24);
            let mps = 1 + r.below(4095);
            assert!(wire_bytes(p, mps) >= p);
        }
    }

    #[test]
    fn prop_overhead_fraction_bounded() {
        // With MPS 256, overhead is at most 24/1 per TLP but relative
        // overhead for multi-TLP payloads is bounded by 24/256 + slack.
        let mut r = SimRng::seed(0x91e2);
        for _ in 0..256 {
            let p = 1 + r.below((1 << 24) - 1);
            let w = wire_bytes(p, DEFAULT_MPS);
            assert!(w <= p + (p.div_ceil(DEFAULT_MPS)) * TLP_OVERHEAD_BYTES);
        }
    }
}
