//! Machine assembly: the back-to-back server/client pair of §5.
//!
//! * **Server**: 2× 14-core Broadwell, Mellanox 100 Gb/s NIC "with a
//!   bifurcated PCIe interface" — two x8 endpoints, one per socket. With
//!   standard firmware it appears "as two NICs, each connected to a
//!   different CPU"; loading the IOctopus firmware turns it into an
//!   octoNIC (§4.1, §5).
//! * **Client**: identical CPUs, "equipped with a 100 Gb/s Mellanox
//!   ConnectX-4 NIC" — a single x16 endpoint on node 0, apps pinned local.

use kernel::Host;
use memsys::{MemConfig, MemSystem, NodeId};
use nic::{FlowTuple, Nic, NicConfig, QueueId};
use pcie::{Bifurcation, FabricConfig, PcieFabric, PcieGen, PfId};
use simcore::{Dur, Time};

use kernel::{HostOut, ThreadId};

use crate::config::{client_host_config, server_host_config, BuildOpts, DdioMode, Placement};

/// Which machine an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The instrumented server.
    Server,
    /// The traffic-generating client.
    Client,
}

impl Side {
    /// The opposite machine.
    pub fn other(self) -> Side {
        match self {
            Side::Server => Side::Client,
            Side::Client => Side::Server,
        }
    }
}

/// Events of the two-host discrete-event loop.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A wire packet reaches `to`'s NIC.
    WireArrival {
        /// Receiving machine.
        to: Side,
        /// Flow as seen by the receiver (its inbound tuple).
        flow: FlowTuple,
        /// Payload bytes.
        bytes: u64,
        /// Per-flow sequence number.
        seq: u64,
    },
    /// MSI-X fires on `side`.
    Irq {
        /// Machine.
        side: Side,
        /// Queue to service.
        queue: QueueId,
        /// Device epoch stamped when the interrupt was raised; the host
        /// fences the delivery if the queue's PF has been hot-removed or
        /// re-enumerated since.
        epoch: u64,
    },
    /// A blocked thread resumes on `side`.
    Wake {
        /// Machine.
        side: Side,
        /// Thread.
        thread: ThreadId,
    },
    /// Receive-window credit returned to app `app`'s sender.
    Credit {
        /// Application index in the loop.
        app: usize,
        /// Bytes consumed by the receiver.
        bytes: u64,
    },
    /// `sched_setaffinity` of a server thread (Figure 14).
    Migrate {
        /// Thread to move.
        thread: ThreadId,
        /// Destination core.
        core: usize,
    },
    /// Periodic per-PF throughput sampling (Figure 14).
    Sample,
    /// A scheduled hardware fault fires on the server (fault plans always
    /// target the instrumented machine).
    Fault {
        /// Raw PF index into the server's PF list.
        pf: usize,
        /// What happens.
        kind: simcore::FaultKind,
    },
    /// Periodic driver-watchdog tick on the server.
    Watchdog,
    /// One STREAM-antagonist loop iteration.
    StreamStep {
        /// Antagonist index.
        idx: usize,
    },
    /// One PageRank worker chunk (Figure 13).
    PrStep {
        /// Worker index.
        idx: usize,
    },
    /// Periodic system-wide invariant audit (see `NetLoop::enable_audit`).
    Audit,
}

/// The two machines, wired back-to-back.
#[derive(Debug)]
pub struct Duplex {
    /// The instrumented server.
    pub server: Host,
    /// The traffic generator.
    pub client: Host,
    /// Server NIC endpoints (PF0 on node 0, PF1 on node 1).
    pub server_pfs: Vec<PfId>,
    /// Client NIC endpoint.
    pub client_pfs: Vec<PfId>,
}

impl Duplex {
    /// The host for `side`.
    pub fn host_mut(&mut self, side: Side) -> &mut Host {
        match side {
            Side::Server => &mut self.server,
            Side::Client => &mut self.client,
        }
    }

    /// Read access to the host for `side`.
    pub fn host(&self, side: Side) -> &Host {
        match side {
            Side::Server => &self.server,
            Side::Client => &self.client,
        }
    }
}

/// Builds the §5 testbed in the given placement.
pub fn build_duplex(p: Placement, opts: BuildOpts) -> Duplex {
    // ---- Server ----
    let mut mem = MemSystem::new(MemConfig::dual_socket_broadwell());
    if opts.ddio == DdioMode::Off {
        mem.set_ddio(false);
    }
    let mut fabric = PcieFabric::new(FabricConfig::default());
    let server_pfs = fabric.add_bifurcated(&Bifurcation::x8x8_dual_socket(PcieGen::Gen3));
    let mut nic_cfg = match p {
        Placement::Octopus => NicConfig::octonic_100g(),
        _ => NicConfig::standard_100g(),
    };
    if opts.coalescing_off {
        nic_cfg.irq_delay = Dur::ZERO;
    }
    let nic = Nic::new(nic_cfg, server_pfs.len(), server_pfs[0]);
    let server = Host::new(mem, fabric, nic, &server_pfs, server_host_config(p, opts));

    // ---- Client ----
    let mut cmem = MemSystem::new(MemConfig::dual_socket_broadwell());
    if opts.ddio == DdioMode::Off {
        cmem.set_ddio(false);
    }
    let mut cfabric = PcieFabric::new(FabricConfig::default());
    let client_pf = cfabric.add_endpoint(NodeId(0), PcieGen::Gen3, 16);
    let mut cnic_cfg = NicConfig::standard_100g();
    if opts.coalescing_off {
        cnic_cfg.irq_delay = Dur::ZERO;
    }
    let cnic = Nic::new(cnic_cfg, 1, client_pf);
    let client = Host::new(cmem, cfabric, cnic, &[client_pf], client_host_config());

    Duplex {
        server,
        client,
        server_pfs,
        client_pfs: vec![client_pf],
    }
}

/// Translates [`HostOut`]s produced by `from` into loop events, assigning
/// per-flow wire sequence numbers.
#[derive(Debug, Default)]
pub struct OutRouter {
    seqs: simcore::FxHashMap<(Side, FlowTuple), u64>,
}

impl OutRouter {
    /// Creates a router with fresh sequence counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Converts one host out-event into a `(time, event)` pair ready for
    /// the queue. Allocation-free; callers drain their [`simcore::OutBuf`]
    /// through this one item at a time, preserving production order (which
    /// is what keeps per-flow wire sequence numbers monotone).
    pub fn route_one(&mut self, from: Side, o: HostOut) -> (Time, Event) {
        match o {
            HostOut::PacketToPeer { at, flow, bytes } => {
                let to = from.other();
                let seq = self.seqs.entry((to, flow)).or_insert(0);
                let s = *seq;
                *seq += 1;
                (
                    at,
                    Event::WireArrival {
                        to,
                        flow,
                        bytes,
                        seq: s,
                    },
                )
            }
            HostOut::Irq { at, queue, epoch } => (
                at,
                Event::Irq {
                    side: from,
                    queue,
                    epoch,
                },
            ),
            HostOut::Wake { at, thread } => (at, Event::Wake { side: from, thread }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::DriverModel;

    #[test]
    fn server_nic_spans_both_sockets() {
        let d = build_duplex(Placement::Octopus, BuildOpts::default());
        assert_eq!(d.server_pfs.len(), 2);
        assert_eq!(d.server.fabric.node_of(d.server_pfs[0]), Some(NodeId(0)));
        assert_eq!(d.server.fabric.node_of(d.server_pfs[1]), Some(NodeId(1)));
        assert_eq!(d.client_pfs.len(), 1);
    }

    #[test]
    fn placement_selects_driver() {
        let std = build_duplex(Placement::Remote, BuildOpts::default());
        assert_eq!(std.server.config().driver, DriverModel::Standard);
        assert_eq!(std.server.netdev_count(), 2);
        let octo = build_duplex(Placement::Octopus, BuildOpts::default());
        assert_eq!(octo.server.config().driver, DriverModel::OctoTeam);
        assert_eq!(octo.server.netdev_count(), 1);
    }

    #[test]
    fn ddio_off_applies_to_both_hosts() {
        let d = build_duplex(
            Placement::Local,
            BuildOpts {
                ddio: DdioMode::Off,
                ..BuildOpts::default()
            },
        );
        assert!(!d.server.mem.ddio());
        assert!(!d.client.mem.ddio());
    }

    #[test]
    fn router_assigns_monotone_seqs_per_flow() {
        let mut r = OutRouter::new();
        let flow = FlowTuple::tcp(1, 2, 3, 4);
        let outs = vec![
            HostOut::PacketToPeer {
                at: Time::from_us(1),
                flow,
                bytes: 100,
            },
            HostOut::PacketToPeer {
                at: Time::from_us(2),
                flow,
                bytes: 100,
            },
        ];
        let evs: Vec<(Time, Event)> = outs
            .into_iter()
            .map(|o| r.route_one(Side::Client, o))
            .collect();
        match (&evs[0].1, &evs[1].1) {
            (
                Event::WireArrival {
                    seq: a,
                    to: Side::Server,
                    ..
                },
                Event::WireArrival { seq: b, .. },
            ) => {
                assert_eq!(*a, 0);
                assert_eq!(*b, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn side_other_is_involution() {
        assert_eq!(Side::Server.other(), Side::Client);
        assert_eq!(Side::Client.other().other(), Side::Client);
    }
}
