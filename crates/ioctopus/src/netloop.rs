//! The discrete-event loop driving applications over the two hosts.
//!
//! [`NetLoop`] owns the [`Duplex`], an event queue, and a set of
//! applications:
//!
//! * [`RxStream`] — netperf TCP_STREAM receive: the client streams
//!   fixed-size messages under a receive-window credit loop; the server
//!   `recv`s them (Figures 6, 11, 13, 14);
//! * [`TxStream`] — netperf TCP_STREAM transmit with TSO (Figure 7);
//! * [`Rr`] — netperf TCP_RR / sockperf ping-pong latency (Figures 9, 12);
//! * [`Kv`] — memcached/memslap GET/SET transactions (Figures 10, 13).
//!
//! STREAM antagonists and the PageRank victim ride the same queue as
//! stepper events, so their memory traffic contends with the I/O path in
//! simulated time — which is precisely how the paper's co-location and
//! congestion figures arise.

use simcore::FxHashMap;

use kernel::{HostOut, RecvOutcome, SendOutcome, SockId, ThreadId};
use memsys::{AccessKind, PhysAddr};
use nic::FlowTuple;
use simcore::stats::Histogram;
use simcore::{Dur, EventQueue, OutBuf, Time};
use workloads::{KvOp, KvWorkload, PageRank, StreamAntagonist};

use crate::system::{Duplex, Event, OutRouter, Side};

/// Acknowledgement path delay for receive-window credits: wire latency plus
/// the client's (GRO-batched) ACK processing.
pub const ACK_DELAY: Dur = Dur::from_us(2);

/// netperf TCP_STREAM receive (client → server).
#[derive(Debug)]
pub struct RxStream {
    /// Server-side socket.
    pub server_sock: SockId,
    /// Server app thread.
    pub server_thread: ThreadId,
    /// Client-side socket.
    pub client_sock: SockId,
    /// Client app thread.
    pub client_thread: ThreadId,
    /// Message size per send/recv call.
    pub msg: u64,
    credit: i64,
    client_blocked: bool,
    /// Bytes the server application has consumed.
    pub consumed: u64,
}

/// netperf TCP_STREAM transmit (server → client).
#[derive(Debug)]
pub struct TxStream {
    /// Server-side socket.
    pub server_sock: SockId,
    /// Server app thread.
    pub server_thread: ThreadId,
    /// Client-side socket.
    pub client_sock: SockId,
    /// Client app thread.
    pub client_thread: ThreadId,
    /// Message size per send call.
    pub msg: u64,
    server_blocked: bool,
    credit: i64,
    /// Bytes the client application has consumed.
    pub consumed: u64,
}

/// Request/response ping-pong (netperf TCP_RR, sockperf).
#[derive(Debug)]
pub struct Rr {
    /// Server-side socket.
    pub server_sock: SockId,
    /// Server app thread.
    pub server_thread: ThreadId,
    /// Client-side socket.
    pub client_sock: SockId,
    /// Client app thread.
    pub client_thread: ThreadId,
    /// Message size (both directions).
    pub msg: u64,
    /// Transactions to run.
    pub target: usize,
    server_acc: u64,
    client_acc: u64,
    sent_at: Time,
    /// Completed transactions.
    pub done: usize,
    /// Round-trip samples.
    pub rtt: Histogram,
}

/// One memcached connection (client memslap instance ↔ server worker).
#[derive(Debug)]
pub struct Kv {
    /// Server-side socket.
    pub server_sock: SockId,
    /// Server worker thread.
    pub server_thread: ThreadId,
    /// Client-side socket.
    pub client_sock: SockId,
    /// Client memslap thread.
    pub client_thread: ThreadId,
    /// Request mix generator.
    pub workload: KvWorkload,
    /// Value store: key → value address (on the server worker's node).
    pub values: Vec<PhysAddr>,
    cur_op: KvOp,
    server_acc: u64,
    client_acc: u64,
    send_pending: bool,
    /// Completed operations.
    pub done: u64,
    /// Per-op hash/bookkeeping CPU cost on the server.
    pub op_cost: Dur,
}

/// An application driven by the loop.
#[derive(Debug)]
pub enum App {
    /// netperf Rx.
    Rx(RxStream),
    /// netperf Tx.
    Tx(TxStream),
    /// Ping-pong latency.
    Rr(Rr),
    /// memcached connection.
    Kv(Kv),
}

/// The two-host event loop.
#[derive(Debug)]
pub struct NetLoop {
    /// The machines.
    pub duplex: Duplex,
    q: EventQueue<Event>,
    router: OutRouter,
    apps: Vec<App>,
    by_server_thread: FxHashMap<ThreadId, usize>,
    by_client_thread: FxHashMap<ThreadId, usize>,
    /// STREAM antagonists on the server.
    pub antagonists: Vec<StreamAntagonist>,
    /// Optional PageRank victim on the server (Figure 13).
    pub pagerank: Option<PageRank>,
    /// When PageRank finished, if it did.
    pub pagerank_done: Option<Time>,
    sample_every: Option<Dur>,
    /// Per-PF `(time, rx_bytes, tx_bytes)` samples of the server NIC.
    pub samples: Vec<(Time, Vec<(u64, u64)>)>,
    watchdog_every: Option<Dur>,
    audit_every: Option<Dur>,
    /// Accumulated invariant-audit results (see [`NetLoop::enable_audit`]).
    pub audit: simcore::Audit,
    now: Time,
    /// Recycled out-buffer threaded through every host entry point: hosts
    /// append follow-ups here and [`NetLoop::push_outs`] drains them into
    /// the queue, so steady-state dispatch never allocates.
    outbuf: OutBuf<HostOut>,
    /// Recycled same-timestamp batch for NAPI-style dispatch (see
    /// [`NetLoop::run`]).
    batch: Vec<Event>,
    /// Rolling FNV-1a checksum over the dispatched event stream (see
    /// [`NetLoop::checksum`]).
    checksum: u64,
}

/// FNV-1a offset basis: the checksum of an empty event stream.
const CHECKSUM_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one dispatched event into the rolling stream checksum (FNV-1a over
/// the dispatch time, the event kind, and every delivery-visible field).
/// Alloc-free — it runs on the hot dispatch path. Interrupt epoch stamps
/// are deliberately excluded: a reconfiguration cycle applied to a fully
/// quiesced system must leave the subsequent event stream bit-identical to
/// a never-reconfigured run, epochs aside (`tests/reconfig_differential`).
fn fold_event(h: &mut u64, now: Time, ev: &Event) {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut fold = |v: u64| *h = (*h ^ v).wrapping_mul(PRIME);
    fold(now.as_ps());
    match *ev {
        Event::WireArrival {
            to,
            flow,
            bytes,
            seq,
        } => {
            fold(1);
            fold(to as u64);
            fold(u64::from(flow.src_ip) << 32 | u64::from(flow.dst_ip));
            fold(u64::from(flow.src_port) << 16 | u64::from(flow.dst_port));
            fold(bytes);
            fold(seq);
        }
        Event::Irq { side, queue, .. } => {
            fold(2);
            fold(side as u64);
            fold(queue.0 as u64);
        }
        Event::Wake { side, thread } => {
            fold(3);
            fold(side as u64);
            fold(thread.0 as u64);
        }
        Event::Credit { app, bytes } => {
            fold(4);
            fold(app as u64);
            fold(bytes);
        }
        Event::Migrate { thread, core } => {
            fold(5);
            fold(thread.0 as u64);
            fold(core as u64);
        }
        Event::Sample => fold(6),
        Event::Fault { pf, kind } => {
            fold(7);
            fold(pf as u64);
            fold(fault_tag(kind));
        }
        Event::Watchdog => fold(8),
        Event::StreamStep { idx } => {
            fold(9);
            fold(idx as u64);
        }
        Event::PrStep { idx } => {
            fold(10);
            fold(idx as u64);
        }
        Event::Audit => fold(11),
    }
}

/// Stable small integer for each fault kind (checksum input only).
fn fault_tag(kind: simcore::FaultKind) -> u64 {
    use simcore::FaultKind::*;
    match kind {
        LinkDown => 0,
        LinkDegrade { lanes, gen } => 100 + u64::from(lanes) * 8 + u64::from(gen),
        LinkRecover => 1,
        PfFail => 2,
        PfRecover => 3,
        IrqLoss => 4,
        MediaFault { errors } => 200 + u64::from(errors),
        SurpriseRemove => 5,
        Reenumerate => 6,
    }
}

impl NetLoop {
    /// Wraps a duplex in an empty loop.
    pub fn new(duplex: Duplex) -> Self {
        NetLoop {
            duplex,
            q: EventQueue::new(),
            router: OutRouter::new(),
            apps: Vec::new(),
            by_server_thread: FxHashMap::default(),
            by_client_thread: FxHashMap::default(),
            antagonists: Vec::new(),
            pagerank: None,
            pagerank_done: None,
            sample_every: None,
            samples: Vec::new(),
            watchdog_every: None,
            audit_every: None,
            audit: simcore::Audit::new(),
            now: Time::ZERO,
            outbuf: OutBuf::new(),
            batch: Vec::new(),
            checksum: CHECKSUM_BASIS,
        }
    }

    /// Rolling checksum of every event dispatched so far. Two loops that
    /// dispatched the same event stream (times, kinds, delivery-visible
    /// fields) report the same value; the differential suites compare it
    /// across batched/unbatched and degrade→restore runs.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Returns the stream checksum and resets it to the empty-stream basis,
    /// so a later window of the run can be compared in isolation (e.g. the
    /// post-restore tail of a reconfiguration cycle).
    pub fn take_checksum(&mut self) -> u64 {
        std::mem::replace(&mut self.checksum, CHECKSUM_BASIS)
    }

    /// Registers an application; returns its index.
    pub fn add_app(&mut self, app: App) -> usize {
        let i = self.apps.len();
        let (st, ct) = match &app {
            App::Rx(a) => (a.server_thread, a.client_thread),
            App::Tx(a) => (a.server_thread, a.client_thread),
            App::Rr(a) => (a.server_thread, a.client_thread),
            App::Kv(a) => (a.server_thread, a.client_thread),
        };
        self.by_server_thread.insert(st, i);
        self.by_client_thread.insert(ct, i);
        self.apps.push(app);
        i
    }

    /// Immutable access to an app.
    pub fn app(&self, i: usize) -> &App {
        &self.apps[i]
    }

    /// Current simulated time (last dispatched event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Enables Figure 14-style per-PF sampling.
    pub fn enable_sampling(&mut self, every: Dur) {
        self.sample_every = Some(every);
        self.q.push(Time::ZERO + every, Event::Sample);
    }

    /// Enables the system-wide invariant audit: conservation checks on
    /// both hosts (buffer pools, descriptor rings, socket accounting, PCIe
    /// transaction tallies) plus event-queue time-monotonicity, run every
    /// `every` of simulated time. Passing `Dur::ZERO` audits after *every*
    /// dispatched event instead (first-failure isolation for debugging; it
    /// stops at the first violation so the list stays bounded). Results
    /// accumulate in [`NetLoop::audit`]; auditing reads the simulation
    /// without touching it, so enabling it never perturbs a run's event
    /// order.
    pub fn enable_audit(&mut self, every: Dur) {
        self.audit_every = Some(every);
        if every > Dur::ZERO {
            self.q.push(Time::ZERO + every, Event::Audit);
        }
    }

    /// Runs one audit pass over the whole system into
    /// [`NetLoop::audit`] — both hosts and the event queue. Harnesses call
    /// this at quiesce points; the periodic [`Event::Audit`] tick calls it
    /// on schedule.
    pub fn run_audit(&mut self) {
        self.duplex.server.audit(&mut self.audit);
        self.duplex.client.audit(&mut self.audit);
        self.q.audit(&mut self.audit);
    }

    /// Enables sim-time tracing on the server stack: the kernel host's
    /// ring (IRQ delivery, reconfiguration phases) and the NIC's ring
    /// (steering decisions, DMA issue/land). `cap` records per ring, each
    /// pre-sized here — the record path never allocates. Off by default.
    pub fn enable_tracing(&mut self, cap: usize) {
        self.duplex.server.enable_tracing(cap);
        self.duplex.server.nic.enable_tracing(cap);
    }

    /// Harvests every enabled tracer ring into a [`telemetry::TraceSet`]
    /// (disabling tracing). The set's merged order is `(time, domain,
    /// seq)` — independent of harvest order, so serial and parallel sweeps
    /// export bit-identical artifacts.
    pub fn take_trace(&mut self) -> telemetry::TraceSet {
        let mut set = telemetry::TraceSet::new();
        if let Some(r) = self.duplex.server.nic.take_trace() {
            set.add(r);
        }
        if let Some(r) = self.duplex.server.take_trace() {
            set.add(r);
        }
        set
    }

    /// Enables the NUMA-locality flight recorder on the server NIC with
    /// room for `cap` distinct `(flow, PF)` rows. Off by default.
    pub fn enable_flight_recorder(&mut self, cap: usize) {
        self.duplex.server.nic.enable_flight_recorder(cap);
    }

    /// A sorted snapshot of the server NIC's locality ledger, if the
    /// flight recorder is enabled.
    pub fn flight_table(&self) -> Option<telemetry::LocalityTable> {
        self.duplex.server.nic.flight_table()
    }

    /// Harvests a per-run metric snapshot from every server-side
    /// component (kernel, NIC, PCIe fabric, memory system) plus the
    /// loop's own dispatch accounting, sorted by label.
    pub fn metrics_snapshot(&self) -> telemetry::Snapshot {
        let mut s = telemetry::Snapshot::new();
        self.duplex.server.publish_metrics(&mut s);
        self.duplex.server.fabric.publish_metrics(&mut s);
        self.duplex.server.mem.publish_metrics(&mut s);
        s.push("net.events_processed", self.events_processed());
        s.push("net.audit_checks", self.audit.checks());
        s.sort();
        s
    }

    /// Schedules a thread migration (Figure 14's `sched_setaffinity`).
    pub fn schedule_migration(&mut self, at: Time, thread: ThreadId, core: usize) {
        self.q.push(at, Event::Migrate { thread, core });
    }

    /// Installs a fault plan against the server and starts the server
    /// driver's watchdog ticking every `watchdog_every` (the watchdog is
    /// what turns lost interrupts and dropped doorbells into recoveries
    /// rather than hangs). The plan's events enter the same queue as all
    /// other events, so a faulted run stays fully deterministic.
    pub fn install_fault_plan(&mut self, plan: &simcore::FaultPlan, watchdog_every: Dur) {
        for e in plan.events() {
            self.q.push(
                e.at,
                Event::Fault {
                    pf: e.pf,
                    kind: e.kind,
                },
            );
        }
        if self.watchdog_every.is_none() {
            self.watchdog_every = Some(watchdog_every);
            self.q.push(Time::ZERO + watchdog_every, Event::Watchdog);
        }
    }

    /// Adds a STREAM antagonist and starts its loop at `start`.
    pub fn add_antagonist(&mut self, ant: StreamAntagonist, start: Time) {
        let idx = self.antagonists.len();
        self.antagonists.push(ant);
        self.q.push(start, Event::StreamStep { idx });
    }

    /// Installs the PageRank victim and starts all its workers at `start`.
    pub fn set_pagerank(&mut self, pr: PageRank, start: Time) {
        for i in 0..pr.thread_count() {
            self.q.push(start, Event::PrStep { idx: i });
        }
        self.pagerank = Some(pr);
    }

    /// Kicks every registered application at `start`.
    pub fn start_apps(&mut self, start: Time) {
        for i in 0..self.apps.len() {
            match &self.apps[i] {
                App::Rx(_) => {
                    // Server parks in recv, client starts streaming.
                    let ssock = match &self.apps[i] {
                        App::Rx(a) => a.server_sock,
                        _ => unreachable!(),
                    };
                    let _ = self.duplex.server.recv(start, ssock, u64::MAX);
                    self.pump_rx_client(i, start);
                }
                App::Tx(_) => {
                    // Client parks in recv, server starts sending.
                    let (csock, _ct) = match &self.apps[i] {
                        App::Tx(a) => (a.client_sock, a.client_thread),
                        _ => unreachable!(),
                    };
                    let _ = self.duplex.client.recv(start, csock, u64::MAX);
                    self.pump_tx_server(i, start);
                }
                App::Rr(_) => {
                    let ssock = match &self.apps[i] {
                        App::Rr(a) => a.server_sock,
                        _ => unreachable!(),
                    };
                    let _ = self.duplex.server.recv(start, ssock, u64::MAX);
                    self.rr_client_send(i, start);
                }
                App::Kv(_) => {
                    let ssock = match &self.apps[i] {
                        App::Kv(a) => a.server_sock,
                        _ => unreachable!(),
                    };
                    let _ = self.duplex.server.recv(start, ssock, u64::MAX);
                    self.kv_client_send(i, start);
                }
            }
        }
    }

    /// Runs the loop until the queue drains or simulated time passes
    /// `until`.
    ///
    /// NAPI-style dispatch: all events sharing the head timestamp are
    /// drained into one (recycled) batch, and consecutive [`Event::
    /// WireArrival`]s for the same destination are dispatched under a single
    /// host borrow with their follow-ups routed together. Bit-identical to
    /// [`run_unbatched`](Self::run_unbatched): same-instant events dispatch
    /// in push-sequence order either way, handlers never read the queue, and
    /// anything they schedule lands at a later sequence number than every
    /// batch member — so the pop order, the router's sequence assignment,
    /// and every reservation are unchanged.
    pub fn run(&mut self, until: Time) {
        // Per-step auditing wants the queue observed between every two
        // events, which batching elides; use the reference loop there.
        if self.audit_every == Some(Dur::ZERO) {
            self.run_unbatched(until);
            return;
        }
        while let Some(at) = self.q.peek_time() {
            if at > until {
                break;
            }
            let mut batch = std::mem::take(&mut self.batch);
            self.q.pop_batch_into(&mut batch);
            self.now = at;
            let mut k = 0;
            while k < batch.len() {
                if let Event::WireArrival { to, .. } = batch[k] {
                    // One borrow of the destination host for the whole run
                    // of same-destination arrivals; follow-ups accumulate in
                    // `outbuf` in dispatch order and route once at the end.
                    let host = self.duplex.host_mut(to);
                    while k < batch.len() {
                        match batch[k] {
                            Event::WireArrival {
                                to: t2,
                                flow,
                                bytes,
                                seq,
                            } if t2 == to => {
                                fold_event(&mut self.checksum, at, &batch[k]);
                                host.wire_arrival(at, flow, bytes, seq, &mut self.outbuf);
                                k += 1;
                            }
                            _ => break,
                        }
                    }
                    self.push_outs(to);
                } else {
                    let ev = batch[k];
                    self.dispatch(at, ev);
                    k += 1;
                }
            }
            batch.clear();
            self.batch = batch;
        }
        self.now = self.now.max(until);
    }

    /// The reference event loop: pops and dispatches one event at a time.
    /// Kept as the differential-test oracle for the batched [`run`]
    /// (`tests/batched_dispatch.rs` requires bit-identical results) and as
    /// the carrier for per-step auditing.
    pub fn run_unbatched(&mut self, until: Time) {
        while let Some(at) = self.q.peek_time() {
            if at > until {
                break;
            }
            let (at, ev) = self.q.pop().expect("peeked");
            self.now = at;
            self.dispatch(at, ev);
            // Per-step auditing (`enable_audit(Dur::ZERO)`) stops at the
            // first violation: it pinpoints the offending event without
            // letting a persistently broken invariant grow the list.
            if self.audit_every == Some(Dur::ZERO) && self.audit.ok() {
                self.run_audit();
            }
        }
        self.now = self.now.max(until);
    }

    /// Events this loop's queue has dispatched so far (perf accounting).
    pub fn events_processed(&self) -> u64 {
        self.q.events_processed()
    }

    /// Drains the shared [`OutBuf`] through the router into the queue.
    /// Allocation-free: the buffer's capacity is retained across drains.
    fn push_outs(&mut self, from: Side) {
        let NetLoop {
            q, router, outbuf, ..
        } = self;
        for o in outbuf.drain() {
            let (t, e) = router.route_one(from, o);
            q.push(t, e);
        }
    }

    fn dispatch(&mut self, now: Time, ev: Event) {
        fold_event(&mut self.checksum, now, &ev);
        match ev {
            Event::WireArrival {
                to,
                flow,
                bytes,
                seq,
            } => {
                self.duplex
                    .host_mut(to)
                    .wire_arrival(now, flow, bytes, seq, &mut self.outbuf);
                self.push_outs(to);
            }
            Event::Irq { side, queue, epoch } => {
                self.duplex
                    .host_mut(side)
                    .irq_stamped(now, queue, epoch, &mut self.outbuf);
                self.push_outs(side);
            }
            Event::Wake { side, thread } => match side {
                Side::Server => {
                    if let Some(&i) = self.by_server_thread.get(&thread) {
                        self.on_server_wake(i, now);
                    }
                }
                Side::Client => {
                    if let Some(&i) = self.by_client_thread.get(&thread) {
                        self.on_client_wake(i, now);
                    }
                }
            },
            Event::Credit { app, bytes } => match &mut self.apps[app] {
                App::Rx(a) => {
                    a.credit += bytes as i64;
                    a.client_blocked = false;
                    self.pump_rx_client(app, now);
                }
                App::Tx(a) => {
                    a.credit += bytes as i64;
                    a.server_blocked = false;
                    self.pump_tx_server(app, now);
                }
                App::Rr(_) | App::Kv(_) => {}
            },
            Event::Migrate { thread, core } => {
                self.duplex.server.migrate_thread(now, thread, core);
            }
            Event::Sample => {
                let duplex = &self.duplex;
                let snap = duplex
                    .server_pfs
                    .iter()
                    .map(|&pf| {
                        (
                            duplex.server.nic.rx_bytes(pf),
                            duplex.server.nic.tx_bytes(pf),
                        )
                    })
                    // simlint: allow(hot-path-alloc) — opt-in sampling diagnostic (sample_every); never on the steady-state dispatch path the zero-alloc gate covers
                    .collect();
                self.samples.push((now, snap));
                if let Some(every) = self.sample_every {
                    self.q.push(now + every, Event::Sample);
                }
            }
            Event::Fault { pf, kind } => {
                let target = self.duplex.server_pfs[pf % self.duplex.server_pfs.len()];
                self.duplex
                    .server
                    .apply_fault(now, target, kind, &mut self.outbuf);
                // Hotplug drains can wake senders whose fenced buffers were
                // reclaimed; route those like any other host follow-up.
                self.push_outs(Side::Server);
            }
            Event::Watchdog => {
                self.duplex.server.watchdog(now, &mut self.outbuf);
                self.push_outs(Side::Server);
                if let Some(every) = self.watchdog_every {
                    self.q.push(now + every, Event::Watchdog);
                }
            }
            Event::Audit => {
                self.run_audit();
                if let Some(every) = self.audit_every {
                    if every > Dur::ZERO {
                        self.q.push(now + every, Event::Audit);
                    }
                }
            }
            Event::StreamStep { idx } => {
                let server = &mut self.duplex.server;
                let next = self.antagonists[idx].step(now, &mut server.mem, &mut server.cores);
                self.q.push(next, Event::StreamStep { idx });
            }
            Event::PrStep { idx } => {
                if let Some(pr) = &mut self.pagerank {
                    let server = &mut self.duplex.server;
                    match pr.step(idx, now, &mut server.mem, &mut server.cores) {
                        Some(next) => self.q.push(next, Event::PrStep { idx }),
                        None => {
                            if pr.finished() && self.pagerank_done.is_none() {
                                self.pagerank_done = Some(now);
                            }
                        }
                    }
                }
            }
        }
    }

    // ---------- Rx stream ----------

    fn pump_rx_client(&mut self, i: usize, now: Time) {
        // One send per invocation, continuation self-scheduled: chaining an
        // unbounded send loop inside one event would run the core's clock
        // arbitrarily far ahead of simulated time.
        let (sock, msg, has_credit, thread) = match &self.apps[i] {
            App::Rx(a) => (
                a.client_sock,
                a.msg,
                a.credit >= a.msg as i64,
                a.client_thread,
            ),
            _ => return,
        };
        if !has_credit {
            return;
        }
        match self.duplex.client.send(now, sock, msg, &mut self.outbuf) {
            SendOutcome::Sent { done_at } => {
                if let App::Rx(a) = &mut self.apps[i] {
                    a.credit -= msg as i64;
                }
                self.push_outs(Side::Client);
                self.q.push(
                    done_at,
                    Event::Wake {
                        side: Side::Client,
                        thread,
                    },
                );
            }
            SendOutcome::WouldBlock => {
                if let App::Rx(a) = &mut self.apps[i] {
                    a.client_blocked = true;
                }
            }
        }
    }

    fn rx_server_drain(&mut self, i: usize, now: Time) {
        // One recv per wake: the continuation is self-scheduled so that
        // interrupts and arrivals interleave at their correct times instead
        // of an unbounded synchronous drain starving ring refills.
        let (sock, msg, thread) = match &self.apps[i] {
            App::Rx(a) => (a.server_sock, a.msg, a.server_thread),
            _ => return,
        };
        match self.duplex.server.recv(now, sock, msg) {
            RecvOutcome::Data { done_at, bytes } => {
                if let App::Rx(a) = &mut self.apps[i] {
                    a.consumed += bytes;
                }
                self.q
                    .push(done_at + ACK_DELAY, Event::Credit { app: i, bytes });
                self.q.push(
                    done_at,
                    Event::Wake {
                        side: Side::Server,
                        thread,
                    },
                );
            }
            RecvOutcome::WouldBlock => {}
        }
    }

    // ---------- Tx stream ----------

    fn pump_tx_server(&mut self, i: usize, now: Time) {
        // One send per invocation with a self-scheduled continuation (see
        // pump_rx_client).
        let (sock, msg, has_credit, thread) = match &self.apps[i] {
            App::Tx(a) => (
                a.server_sock,
                a.msg,
                a.credit >= a.msg as i64,
                a.server_thread,
            ),
            _ => return,
        };
        if !has_credit {
            return;
        }
        match self.duplex.server.send(now, sock, msg, &mut self.outbuf) {
            SendOutcome::Sent { done_at } => {
                if let App::Tx(a) = &mut self.apps[i] {
                    a.credit -= msg as i64;
                }
                self.push_outs(Side::Server);
                self.q.push(
                    done_at,
                    Event::Wake {
                        side: Side::Server,
                        thread,
                    },
                );
            }
            SendOutcome::WouldBlock => {
                if let App::Tx(a) = &mut self.apps[i] {
                    a.server_blocked = true;
                }
            }
        }
    }

    fn tx_client_drain(&mut self, i: usize, now: Time) {
        // One recv per wake (see rx_server_drain). GRO-batched: each call
        // consumes at most one TSO aggregate's worth.
        let (sock, thread) = match &self.apps[i] {
            App::Tx(a) => (a.client_sock, a.client_thread),
            _ => return,
        };
        match self.duplex.client.recv(now, sock, 64 * 1024) {
            RecvOutcome::Data { done_at, bytes } => {
                if let App::Tx(a) = &mut self.apps[i] {
                    a.consumed += bytes;
                }
                self.q
                    .push(done_at + ACK_DELAY, Event::Credit { app: i, bytes });
                self.q.push(
                    done_at,
                    Event::Wake {
                        side: Side::Client,
                        thread,
                    },
                );
            }
            RecvOutcome::WouldBlock => {}
        }
    }

    // ---------- RR ----------

    fn rr_client_send(&mut self, i: usize, now: Time) {
        let (sock, msg, done, target) = match &self.apps[i] {
            App::Rr(a) => (a.client_sock, a.msg, a.done, a.target),
            _ => return,
        };
        if done >= target {
            return;
        }
        match self.duplex.client.send(now, sock, msg, &mut self.outbuf) {
            SendOutcome::Sent { done_at } => {
                if let App::Rr(a) = &mut self.apps[i] {
                    a.sent_at = now;
                }
                self.push_outs(Side::Client);
                // Park in recv for the response.
                let _ = self.duplex.client.recv(done_at, sock, u64::MAX);
            }
            SendOutcome::WouldBlock => {
                // Tiny messages never block in practice; retry on wake.
            }
        }
    }

    fn rr_server_wake(&mut self, i: usize, now: Time) {
        // All host calls anchor at the event's dispatch time: the calling
        // thread's ordering is carried by its core's busy-until horizon, and
        // reservations must never be issued at chained future times.
        loop {
            let sock = match &self.apps[i] {
                App::Rr(a) => a.server_sock,
                _ => return,
            };
            match self.duplex.server.recv(now, sock, u64::MAX) {
                RecvOutcome::Data { done_at, bytes } => {
                    let _ = done_at;
                    let ready = {
                        let a = match &mut self.apps[i] {
                            App::Rr(a) => a,
                            _ => unreachable!(),
                        };
                        a.server_acc += bytes;
                        a.server_acc >= a.msg
                    };
                    if ready {
                        let (sock, msg) = match &mut self.apps[i] {
                            App::Rr(a) => {
                                a.server_acc -= a.msg;
                                (a.server_sock, a.msg)
                            }
                            _ => unreachable!(),
                        };
                        if let SendOutcome::Sent { .. } =
                            self.duplex.server.send(now, sock, msg, &mut self.outbuf)
                        {
                            self.push_outs(Side::Server);
                        }
                    }
                }
                RecvOutcome::WouldBlock => return,
            }
        }
    }

    fn rr_client_wake(&mut self, i: usize, now: Time) {
        loop {
            let sock = match &self.apps[i] {
                App::Rr(a) => a.client_sock,
                _ => return,
            };
            match self.duplex.client.recv(now, sock, u64::MAX) {
                RecvOutcome::Data { done_at, bytes } => {
                    let finished = {
                        let a = match &mut self.apps[i] {
                            App::Rr(a) => a,
                            _ => unreachable!(),
                        };
                        a.client_acc += bytes;
                        if a.client_acc >= a.msg {
                            a.client_acc -= a.msg;
                            a.rtt.record(done_at.since(a.sent_at));
                            a.done += 1;
                            true
                        } else {
                            false
                        }
                    };
                    if finished {
                        // Anchor at the event time (see rr_server_wake).
                        self.rr_client_send(i, now);
                    }
                }
                RecvOutcome::WouldBlock => return,
            }
        }
    }

    // ---------- memcached ----------

    fn kv_client_send(&mut self, i: usize, now: Time) {
        let (sock, req) = match &mut self.apps[i] {
            App::Kv(a) => {
                if !a.send_pending {
                    a.cur_op = a.workload.next_op();
                }
                (a.client_sock, a.cur_op.request_bytes())
            }
            _ => return,
        };
        match self.duplex.client.send(now, sock, req, &mut self.outbuf) {
            SendOutcome::Sent { done_at } => {
                if let App::Kv(a) = &mut self.apps[i] {
                    a.send_pending = false;
                }
                self.push_outs(Side::Client);
                let _ = self.duplex.client.recv(done_at, sock, u64::MAX);
            }
            SendOutcome::WouldBlock => {
                // Woken by a Tx completion; retried from on_client_wake.
                if let App::Kv(a) = &mut self.apps[i] {
                    a.send_pending = true;
                }
            }
        }
    }

    fn kv_server_wake(&mut self, i: usize, now: Time) {
        // One bounded recv per event, self-continued at its completion time:
        // draining an arbitrarily large request at a single instant would
        // charge n² self-queueing on the memory links (see pump_rx_client).
        let (sock, thread) = match &self.apps[i] {
            App::Kv(a) => (a.server_sock, a.server_thread),
            _ => return,
        };
        match self.duplex.server.recv(now, sock, 64 * 1024) {
            RecvOutcome::Data { done_at, bytes } => {
                let ready = {
                    let a = match &mut self.apps[i] {
                        App::Kv(a) => a,
                        _ => unreachable!(),
                    };
                    a.server_acc += bytes;
                    a.server_acc >= a.cur_op.request_bytes()
                };
                if ready {
                    // Serve at the event's dispatch time, not the chained
                    // recv completion: the worker core's busy-until horizon
                    // already orders the serve after the copy, and issuing
                    // the value-store reservation at a future `done_at`
                    // would push shared FIFO horizons ahead of simulated
                    // time (a positive feedback that wedges the run).
                    self.kv_serve(i, now);
                }
                // Re-enter recv: either more data is already buffered
                // (continues the drain) or the thread parks for the next
                // request.
                self.q.push(
                    done_at,
                    Event::Wake {
                        side: Side::Server,
                        thread,
                    },
                );
            }
            RecvOutcome::WouldBlock => {}
        }
    }

    fn kv_serve(&mut self, i: usize, now: Time) {
        let (sock, op, op_cost, value_addr, thread) = match &mut self.apps[i] {
            App::Kv(a) => {
                a.server_acc -= a.cur_op.request_bytes();
                (
                    a.server_sock,
                    a.cur_op,
                    a.op_cost,
                    a.values[a.cur_op.key() % a.values.len()],
                    a.server_thread,
                )
            }
            _ => unreachable!(),
        };
        let core = self.duplex.server.sched.core_of(thread);
        let node = self.duplex.server.sched.node_of(thread);
        // Hash lookup + item bookkeeping (core busy-until carries ordering;
        // everything anchors at the event time `now`).
        self.duplex.server.cores.run(core, now, op_cost);
        let resp = op.response_bytes();
        match op {
            KvOp::Get { .. } => {
                // Response payload is copied straight out of the value
                // region, so its residency (LLC vs DRAM) is what the copy
                // pays for.
                if let SendOutcome::Sent { .. } =
                    self.duplex
                        .server
                        .send_from(now, sock, resp, value_addr, &mut self.outbuf)
                {
                    self.push_outs(Side::Server);
                }
            }
            KvOp::Set { .. } => {
                // Store the new value, then acknowledge.
                let w = self.duplex.server.mem.cpu_write(
                    now,
                    node,
                    value_addr,
                    workloads::memcached::VALUE_BYTES,
                    AccessKind::Stream,
                );
                self.duplex.server.cores.run(core, now, w);
                if let SendOutcome::Sent { .. } =
                    self.duplex.server.send(now, sock, resp, &mut self.outbuf)
                {
                    self.push_outs(Side::Server);
                }
            }
        }
    }

    fn kv_client_wake(&mut self, i: usize, now: Time) {
        // Retry a backpressured request first (woken by a Tx completion).
        let retry = matches!(&self.apps[i], App::Kv(a) if a.send_pending);
        if retry {
            self.kv_client_send(i, now);
            return;
        }
        // One bounded (GRO-batched) recv per event; see kv_server_wake.
        let (sock, thread) = match &self.apps[i] {
            App::Kv(a) => (a.client_sock, a.client_thread),
            _ => return,
        };
        match self.duplex.client.recv(now, sock, 64 * 1024) {
            RecvOutcome::Data { done_at, bytes } => {
                let finished = {
                    let a = match &mut self.apps[i] {
                        App::Kv(a) => a,
                        _ => unreachable!(),
                    };
                    a.client_acc += bytes;
                    if a.client_acc >= a.cur_op.response_bytes() {
                        a.client_acc -= a.cur_op.response_bytes();
                        a.done += 1;
                        true
                    } else {
                        false
                    }
                };
                if finished {
                    // Anchor the next request at the event time (see
                    // kv_server_wake): the client core's horizon carries
                    // the ordering.
                    self.kv_client_send(i, now);
                } else {
                    self.q.push(
                        done_at,
                        Event::Wake {
                            side: Side::Client,
                            thread,
                        },
                    );
                }
            }
            RecvOutcome::WouldBlock => {}
        }
    }

    fn on_server_wake(&mut self, i: usize, now: Time) {
        match &self.apps[i] {
            App::Rx(_) => self.rx_server_drain(i, now),
            App::Tx(_) => self.pump_tx_server(i, now),
            App::Rr(_) => self.rr_server_wake(i, now),
            App::Kv(_) => self.kv_server_wake(i, now),
        }
    }

    fn on_client_wake(&mut self, i: usize, now: Time) {
        match &self.apps[i] {
            App::Rx(_) => self.pump_rx_client(i, now),
            App::Tx(_) => self.tx_client_drain(i, now),
            App::Rr(_) => self.rr_client_wake(i, now),
            App::Kv(_) => self.kv_client_wake(i, now),
        }
    }
}

/// Builds an [`RxStream`] app over fresh sockets/threads.
pub fn make_rx_stream(
    duplex: &mut Duplex,
    server_core: usize,
    client_core: usize,
    server_netdev: kernel::NetdevId,
    msg: u64,
    window: u64,
    port: u16,
) -> RxStream {
    let st = duplex.server.spawn_thread(server_core);
    let ct = duplex.client.spawn_thread(client_core);
    // Inbound flow at the server: client → server.
    let flow = FlowTuple::tcp(0x0A00_0001, port, 0x0A00_0002, 5001);
    let ss = duplex
        .server
        .open_socket(Time::ZERO, st, flow, server_netdev);
    let cs = duplex
        .client
        .open_socket(Time::ZERO, ct, flow.reversed(), kernel::NetdevId(0));
    RxStream {
        server_sock: ss,
        server_thread: st,
        client_sock: cs,
        client_thread: ct,
        msg,
        credit: window as i64,
        client_blocked: false,
        consumed: 0,
    }
}

/// Builds a [`TxStream`] app over fresh sockets/threads.
pub fn make_tx_stream(
    duplex: &mut Duplex,
    server_core: usize,
    client_core: usize,
    server_netdev: kernel::NetdevId,
    msg: u64,
    port: u16,
) -> TxStream {
    let st = duplex.server.spawn_thread(server_core);
    let ct = duplex.client.spawn_thread(client_core);
    let flow = FlowTuple::tcp(0x0A00_0001, port, 0x0A00_0002, 5001);
    let ss = duplex
        .server
        .open_socket(Time::ZERO, st, flow, server_netdev);
    let cs = duplex
        .client
        .open_socket(Time::ZERO, ct, flow.reversed(), kernel::NetdevId(0));
    TxStream {
        server_sock: ss,
        server_thread: st,
        client_sock: cs,
        client_thread: ct,
        msg,
        server_blocked: false,
        credit: 4 * 1024 * 1024,
        consumed: 0,
    }
}

/// Builds an [`Rr`] app over fresh sockets/threads.
#[allow(clippy::too_many_arguments)]
pub fn make_rr(
    duplex: &mut Duplex,
    server_core: usize,
    client_core: usize,
    server_netdev: kernel::NetdevId,
    msg: u64,
    target: usize,
    port: u16,
    udp: bool,
) -> Rr {
    let st = duplex.server.spawn_thread(server_core);
    let ct = duplex.client.spawn_thread(client_core);
    let flow = if udp {
        FlowTuple::udp(0x0A00_0001, port, 0x0A00_0002, 5001)
    } else {
        FlowTuple::tcp(0x0A00_0001, port, 0x0A00_0002, 5001)
    };
    let ss = duplex
        .server
        .open_socket(Time::ZERO, st, flow, server_netdev);
    let cs = duplex
        .client
        .open_socket(Time::ZERO, ct, flow.reversed(), kernel::NetdevId(0));
    Rr {
        server_sock: ss,
        server_thread: st,
        client_sock: cs,
        client_thread: ct,
        msg,
        target,
        server_acc: 0,
        client_acc: 0,
        sent_at: Time::ZERO,
        done: 0,
        rtt: Histogram::new(),
    }
}

/// Builds a [`Kv`] connection with `keys` values stored on the server
/// worker's node.
#[allow(clippy::too_many_arguments)]
pub fn make_kv(
    duplex: &mut Duplex,
    server_core: usize,
    client_core: usize,
    server_netdev: kernel::NetdevId,
    set_ratio: f64,
    keys: usize,
    port: u16,
    seed: u64,
) -> Kv {
    let st = duplex.server.spawn_thread(server_core);
    let ct = duplex.client.spawn_thread(client_core);
    let flow = FlowTuple::tcp(0x0A00_0001, port, 0x0A00_0002, 11211);
    let ss = duplex
        .server
        .open_socket(Time::ZERO, st, flow, server_netdev);
    let cs = duplex
        .client
        .open_socket(Time::ZERO, ct, flow.reversed(), kernel::NetdevId(0));
    let node = duplex.server.sched.node_of(st);
    let values = (0..keys)
        .map(|_| {
            duplex
                .server
                .mem
                .alloc(node, workloads::memcached::VALUE_BYTES)
        })
        .collect();
    Kv {
        server_sock: ss,
        server_thread: st,
        client_sock: cs,
        client_thread: ct,
        workload: KvWorkload::new(set_ratio, keys, seed),
        values,
        cur_op: KvOp::Get { key: 0 },
        server_acc: 0,
        client_acc: 0,
        send_pending: false,
        done: 0,
        op_cost: Dur::from_us(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BuildOpts, Placement};
    use crate::system::build_duplex;

    #[test]
    fn rx_stream_moves_data_end_to_end() {
        let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
        let app = make_rx_stream(
            &mut duplex,
            14,
            0,
            kernel::NetdevId(0),
            65536,
            512 * 1024,
            4000,
        );
        let mut nl = NetLoop::new(duplex);
        let i = nl.add_app(App::Rx(app));
        nl.start_apps(Time::ZERO);
        nl.run(Time::from_ms(5));
        let consumed = match nl.app(i) {
            App::Rx(a) => a.consumed,
            _ => unreachable!(),
        };
        // At ≥10 Gb/s, 5 ms moves ≥ 6 MB.
        assert!(consumed > 6_000_000, "consumed = {consumed}");
        assert_eq!(nl.duplex.server.nic.rx_dropped(), 0);
    }

    #[test]
    fn tx_stream_moves_data_end_to_end() {
        let mut duplex = build_duplex(Placement::Local, BuildOpts::default());
        let app = make_tx_stream(&mut duplex, 0, 0, kernel::NetdevId(0), 65536, 4001);
        let mut nl = NetLoop::new(duplex);
        let i = nl.add_app(App::Tx(app));
        nl.start_apps(Time::ZERO);
        nl.run(Time::from_ms(5));
        let consumed = match nl.app(i) {
            App::Tx(a) => a.consumed,
            _ => unreachable!(),
        };
        assert!(consumed > 10_000_000, "consumed = {consumed}");
    }

    #[test]
    fn rr_completes_transactions() {
        let mut duplex = build_duplex(
            Placement::Local,
            BuildOpts {
                coalescing_off: true,
                ..BuildOpts::default()
            },
        );
        let app = make_rr(&mut duplex, 0, 0, kernel::NetdevId(0), 64, 50, 4002, false);
        let mut nl = NetLoop::new(duplex);
        let i = nl.add_app(App::Rr(app));
        nl.start_apps(Time::ZERO);
        nl.run(Time::from_ms(50));
        match nl.app(i) {
            App::Rr(a) => {
                assert_eq!(a.done, 50, "all transactions complete");
                let mean = a.rtt.clone().mean().unwrap();
                assert!(mean > Dur::from_us(5), "RTT {mean} too small");
                assert!(mean < Dur::from_us(200), "RTT {mean} too large");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn kv_completes_ops() {
        let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
        let app = make_kv(&mut duplex, 14, 0, kernel::NetdevId(0), 0.5, 8, 4003, 7);
        let mut nl = NetLoop::new(duplex);
        let i = nl.add_app(App::Kv(app));
        nl.start_apps(Time::ZERO);
        nl.run(Time::from_ms(20));
        match nl.app(i) {
            App::Kv(a) => {
                assert!(a.done > 5, "ops done = {}", a.done);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn antagonists_step_in_loop() {
        let duplex = build_duplex(Placement::Local, BuildOpts::default());
        let mut nl = NetLoop::new(duplex);
        let (r, w) = StreamAntagonist::pair(2, 3, memsys::NodeId(1));
        nl.add_antagonist(r, Time::ZERO);
        nl.add_antagonist(w, Time::ZERO);
        nl.run(Time::from_ms(2));
        assert!(nl.antagonists[0].bytes_done() > 10_000_000);
        assert!(nl.antagonists[1].bytes_done() > 10_000_000);
    }

    #[test]
    fn sampling_produces_a_monotone_timeline() {
        let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
        let app = make_rx_stream(
            &mut duplex,
            14,
            0,
            kernel::NetdevId(0),
            65536,
            512 * 1024,
            4010,
        );
        let mut nl = NetLoop::new(duplex);
        let _ = nl.add_app(App::Rx(app));
        nl.enable_sampling(Dur::from_us(100));
        nl.start_apps(Time::ZERO);
        nl.run(Time::from_ms(3));
        assert!(nl.samples.len() >= 25, "got {} samples", nl.samples.len());
        assert!(nl.samples.windows(2).all(|w| w[0].0 < w[1].0), "monotone");
        // Cumulative per-PF byte counters never decrease.
        for pf in 0..2 {
            assert!(nl.samples.windows(2).all(|w| w[0].1[pf].0 <= w[1].1[pf].0));
        }
    }

    #[test]
    fn migration_mid_stream_is_transparent_to_the_app() {
        let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
        let app = make_rx_stream(
            &mut duplex,
            0,
            0,
            kernel::NetdevId(0),
            65536,
            512 * 1024,
            4011,
        );
        let th = app.server_thread;
        let sock = app.server_sock;
        let mut nl = NetLoop::new(duplex);
        let i = nl.add_app(App::Rx(app));
        nl.schedule_migration(Time::from_ms(2), th, 14);
        nl.start_apps(Time::ZERO);
        nl.run(Time::from_ms(5));
        let consumed = match nl.app(i) {
            App::Rx(a) => a.consumed,
            _ => unreachable!(),
        };
        assert!(
            consumed > 5_000_000,
            "stream survived migration: {consumed}"
        );
        assert_eq!(nl.duplex.server.ooo_count(sock), 0);
        assert_eq!(nl.duplex.server.nic.rx_dropped(), 0);
    }

    #[test]
    fn rr_latency_percentiles_are_ordered() {
        let mut duplex = build_duplex(
            Placement::Local,
            BuildOpts {
                coalescing_off: true,
                ..BuildOpts::default()
            },
        );
        let app = make_rr(&mut duplex, 0, 0, kernel::NetdevId(0), 256, 80, 4012, false);
        let mut nl = NetLoop::new(duplex);
        let i = nl.add_app(App::Rr(app));
        nl.start_apps(Time::ZERO);
        nl.run(Time::from_ms(50));
        match nl.app(i) {
            App::Rr(a) => {
                let mut h = a.rtt.clone();
                let mean = h.mean().unwrap();
                let p90 = h.percentile(90.0).unwrap();
                let p99 = h.percentile(99.0).unwrap();
                assert!(p90 <= p99);
                assert!(mean <= p99);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn udp_and_tcp_rr_both_complete() {
        for udp in [false, true] {
            let mut duplex = build_duplex(
                Placement::Octopus,
                BuildOpts {
                    coalescing_off: true,
                    ..BuildOpts::default()
                },
            );
            let app = make_rr(&mut duplex, 14, 0, kernel::NetdevId(0), 64, 30, 4013, udp);
            let mut nl = NetLoop::new(duplex);
            let i = nl.add_app(App::Rr(app));
            nl.start_apps(Time::ZERO);
            nl.run(Time::from_ms(30));
            match nl.app(i) {
                App::Rr(a) => assert!(a.done >= 30, "udp={udp}: done {}", a.done),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn kv_get_and_set_roundtrip_accounting() {
        let mut duplex = build_duplex(Placement::Octopus, BuildOpts::default());
        let app = make_kv(&mut duplex, 14, 0, kernel::NetdevId(0), 0.5, 4, 4014, 99);
        let mut nl = NetLoop::new(duplex);
        let i = nl.add_app(App::Kv(app));
        nl.start_apps(Time::ZERO);
        nl.run(Time::from_ms(25));
        match nl.app(i) {
            App::Kv(a) => {
                assert!(a.done >= 5, "ops: {}", a.done);
                let (gets, sets) = a.workload.counts();
                assert!(gets > 0 && sets > 0, "mix exercised: {gets}/{sets}");
            }
            _ => unreachable!(),
        }
    }
}
