//! Typed results the experiment runners return and the bench harnesses
//! print.

/// One throughput-style measurement (Figures 6, 7, 8, 10, 11, 13).
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Configuration label ("ioct", "local", "remote", …).
    pub config: String,
    /// Independent variable (message size, packet size, SET %, pairs…).
    pub x: f64,
    /// Network throughput in Gb/s.
    pub throughput_gbps: f64,
    /// Server memory bandwidth (DRAM read+write) in Gb/s.
    pub membw_gbps: f64,
    /// Server CPU utilization in cores.
    pub cpu_cores: f64,
    /// Packets (or transactions) per second, where meaningful.
    pub rate_per_sec: f64,
}

/// One latency measurement (Figures 9, 12).
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// Configuration label ("ll", "rr", "llnd", …).
    pub config: String,
    /// Independent variable (message size or STREAM pairs).
    pub x: f64,
    /// Mean round-trip in microseconds.
    pub mean_us: f64,
    /// 90th percentile, microseconds.
    pub p90_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Transactions completed.
    pub transactions: usize,
}

/// One Figure 14 sample point.
#[derive(Debug, Clone)]
pub struct PfSample {
    /// Sample time, seconds.
    pub t_secs: f64,
    /// Throughput through PF0 in Gb/s over the sample interval.
    pub pf0_gbps: f64,
    /// Throughput through PF1 in Gb/s over the sample interval.
    pub pf1_gbps: f64,
}

/// Figure 14's full timeline.
#[derive(Debug, Clone)]
pub struct MigrationResult {
    /// Configuration label ("octoNIC" / "ethNIC").
    pub config: String,
    /// Timeline samples.
    pub samples: Vec<PfSample>,
    /// Out-of-order packets observed by the socket (must be 0).
    pub ooo_packets: u64,
    /// Packets dropped at the NIC.
    pub dropped: u64,
}

/// Fault-injection timeline: throughput through a PF outage, plus the
/// recovery counters that show *how* the stack survived (or didn't).
#[derive(Debug, Clone)]
pub struct FailoverResult {
    /// Configuration label ("octoNIC" / "ethNIC").
    pub config: String,
    /// Per-PF throughput timeline.
    pub samples: Vec<PfSample>,
    /// Flow rules the firmware moved off the dead PF.
    pub resteered_flows: u64,
    /// Descriptors completed with error status by the NIC.
    pub error_completions: u64,
    /// Packets dropped because their PF was dead and no failover existed.
    pub dropped_pf_dead: u64,
    /// Queues the driver watchdog polled after a lost interrupt.
    pub watchdog_recoveries: u64,
    /// Bytes the server application consumed over the run.
    pub consumed: u64,
}

/// Hotplug-reconfiguration timeline: a surprise removal drops the system
/// to legacy NUDMA mode, a re-enumeration restores uniform IOctopus mode,
/// and every transition runs behind the device-epoch fence.
#[derive(Debug, Clone)]
pub struct ReconfigResult {
    /// Configuration label ("octoNIC").
    pub config: String,
    /// Per-PF throughput timeline.
    pub samples: Vec<PfSample>,
    /// Down-transition latency: removal instant → survivor PF observed
    /// carrying the stream, in sampled microseconds (sampling quantizes
    /// this to the 50 µs tick).
    pub remove_to_survivor_us: f64,
    /// Up-transition latency: re-enumeration instant → home PF observed
    /// carrying the stream again, in sampled microseconds.
    pub readd_to_home_us: f64,
    /// Degraded-mode throughput as a fraction of the healthy baseline
    /// (legacy NUDMA: every byte crosses the interconnect).
    pub degraded_ratio: f64,
    /// Post-restore throughput as a fraction of the healthy baseline.
    pub recovered_ratio: f64,
    /// Stale-epoch completions fenced across both transitions.
    pub fenced_completions: u64,
    /// Stale-epoch interrupts fenced.
    pub fenced_irqs: u64,
    /// Quiesce/drain/rebind sequences completed (2 for one full cycle).
    pub reconfigs: u64,
    /// Transitions into legacy NUDMA mode.
    pub nudma_entries: u64,
    /// Transitions back to uniform IOctopus mode.
    pub nudma_exits: u64,
    /// Packets dropped because their PF was dead with no failover path.
    pub dropped_pf_dead: u64,
    /// Flow rules the firmware moved off the removed PF.
    pub resteered_flows: u64,
    /// Bytes the server application consumed over the run.
    pub consumed: u64,
    /// Flight-recorder reading over the healthy window (before the
    /// removal): uniform IOctopus mode — the home PF carries everything
    /// node-locally.
    pub locality_healthy: LocalityWindow,
    /// Reading over the outage window: legacy NUDMA mode. The survivor
    /// PF's DMA stays local to *its* socket (failover lands the flow in
    /// the survivor's own rings), so the nonuniformity shows up as the
    /// per-PF shift in the ledger plus the CPU-side interconnect bytes the
    /// node-0 application pays to reach node-1 buffers.
    pub locality_nudma: LocalityWindow,
    /// Reading after the re-enumeration: back to uniform IOctopus mode.
    pub locality_recovered: LocalityWindow,
    /// The full-run per-flow/per-PF locality table (shows the flow's rows
    /// on both PFs as it moved away and back).
    pub locality: telemetry::LocalityTable,
}

/// One phase window of the reconfiguration timeline as the flight
/// recorder (plus the memory system's interconnect meter) saw it.
#[derive(Debug, Clone, Copy)]
pub struct LocalityWindow {
    /// DMA locality cells over the window, all PFs.
    pub dma: telemetry::LedgerCells,
    /// The home PF's (PF0) share of the window.
    pub home_pf: telemetry::LedgerCells,
    /// The survivor PF's (PF1) share of the window.
    pub survivor_pf: telemetry::LedgerCells,
    /// Socket-interconnect bytes (CPU- and DMA-side) over the window.
    pub interconnect_bytes: u64,
}

/// Figure 13's co-location measurement.
#[derive(Debug, Clone)]
pub struct ColocationResult {
    /// Configuration label.
    pub config: String,
    /// PageRank completion time, milliseconds (simulated).
    pub pr_time_ms: f64,
    /// Aggregate I/O throughput: Gb/s for netperf, K transactions/s for
    /// memcached.
    pub io_metric: f64,
}

/// Figure 15's normalized-throughput point.
#[derive(Debug, Clone)]
pub struct NvmeResult {
    /// Number of STREAM antagonist instances.
    pub streams: usize,
    /// fio throughput normalized to the antagonist-free run.
    pub fio_normalized: f64,
    /// STREAM aggregate bandwidth normalized to a solo instance × count.
    pub stream_normalized: f64,
    /// Absolute fio throughput, GB/s.
    pub fio_gbs: f64,
}

/// Formats a fraction as the paper's "N.NNx" ratio annotations.
pub fn ratio_label(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}

/// A row that can be emitted to the CSV files the bench harnesses write
/// next to their textual tables (for replotting the figures).
pub trait CsvRow {
    /// The CSV header line (no trailing newline).
    fn csv_header() -> &'static str;
    /// One CSV data line (no trailing newline).
    fn csv_row(&self) -> String;
}

impl CsvRow for ThroughputResult {
    fn csv_header() -> &'static str {
        "config,x,throughput_gbps,membw_gbps,cpu_cores,rate_per_sec"
    }
    fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{}",
            self.config,
            self.x,
            self.throughput_gbps,
            self.membw_gbps,
            self.cpu_cores,
            self.rate_per_sec
        )
    }
}

impl CsvRow for LatencyResult {
    fn csv_header() -> &'static str {
        "config,x,mean_us,p90_us,p99_us,transactions"
    }
    fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{}",
            self.config, self.x, self.mean_us, self.p90_us, self.p99_us, self.transactions
        )
    }
}

impl CsvRow for PfSample {
    fn csv_header() -> &'static str {
        "t_secs,pf0_gbps,pf1_gbps"
    }
    fn csv_row(&self) -> String {
        format!("{},{},{}", self.t_secs, self.pf0_gbps, self.pf1_gbps)
    }
}

impl CsvRow for NvmeResult {
    fn csv_header() -> &'static str {
        "streams,fio_normalized,stream_normalized,fio_gbs"
    }
    fn csv_row(&self) -> String {
        format!(
            "{},{},{},{}",
            self.streams, self.fio_normalized, self.stream_normalized, self.fio_gbs
        )
    }
}

/// Writes `rows` to `<workspace>/target/figures/<name>.csv`; best-effort
/// (figure regeneration must not fail on a read-only filesystem). Returns
/// the path written, if any.
pub fn write_csv<T: CsvRow>(name: &str, rows: &[T]) -> Option<std::path::PathBuf> {
    // Anchor at the workspace root (the bench binaries run with the
    // package directory as CWD): walk up to the first Cargo.lock.
    let mut root = std::env::current_dir().ok()?;
    while !root.join("Cargo.lock").exists() {
        if !root.pop() {
            root = std::env::current_dir().ok()?;
            break;
        }
    }
    let dir = root.join("target").join("figures");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::from(T::csv_header());
    out.push('\n');
    for r in rows {
        out.push_str(&r.csv_row());
        out.push('\n');
    }
    std::fs::write(&path, out).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rows_are_well_formed() {
        let t = ThroughputResult {
            config: "ioct".into(),
            x: 64.0,
            throughput_gbps: 1.5,
            membw_gbps: 0.5,
            cpu_cores: 1.0,
            rate_per_sec: 2.0,
        };
        assert_eq!(
            ThroughputResult::csv_header().split(',').count(),
            t.csv_row().split(',').count()
        );
        let s = PfSample {
            t_secs: 1.0,
            pf0_gbps: 2.0,
            pf1_gbps: 3.0,
        };
        assert_eq!(s.csv_row(), "1,2,3");
    }

    #[test]
    fn results_construct() {
        let t = ThroughputResult {
            config: "ioct".into(),
            x: 64.0,
            throughput_gbps: 1.0,
            membw_gbps: 0.0,
            cpu_cores: 1.0,
            rate_per_sec: 1e6,
        };
        assert_eq!(t.config, "ioct");
        let l = LatencyResult {
            config: "ll".into(),
            x: 64.0,
            mean_us: 20.0,
            p90_us: 25.0,
            p99_us: 30.0,
            transactions: 100,
        };
        assert!(l.mean_us <= l.p90_us);
    }
}
