//! Experiment configuration: placements, DDIO modes, machine presets.

use kernel::{CpuCosts, DriverModel, HostConfig};

/// Where the server's workload runs relative to the NIC — the paper's three
/// evaluated configurations (§5, "Evaluated configurations").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Standard firmware; workload (and interrupts, and memory) on the
    /// socket the utilized PF attaches to.
    Local,
    /// Standard firmware; workload on the *other* socket — every DMA
    /// crosses the interconnect (the NUDMA configuration).
    Remote,
    /// The NIC acts as an octoNIC: IOctoRFS firmware + team driver. The
    /// workload runs on the second socket (like `Remote`) but steering
    /// makes every DMA local — the paper's headline claim is that this
    /// matches `Local`.
    Octopus,
}

impl Placement {
    /// The server core the single-threaded workloads pin to.
    ///
    /// Core 0 is on node 0 (where PF0 attaches); core 14 is the first core
    /// of node 1.
    pub fn app_core(self) -> usize {
        match self {
            Placement::Local => 0,
            Placement::Remote | Placement::Octopus => 14,
        }
    }

    /// The driver model the server loads.
    pub fn driver(self) -> DriverModel {
        match self {
            Placement::Local | Placement::Remote => DriverModel::Standard,
            Placement::Octopus => DriverModel::OctoTeam,
        }
    }

    /// Label used in figure output (the paper merges `Octopus` and `Local`
    /// into "ioct/local" because their results coincide).
    pub fn label(self) -> &'static str {
        match self {
            Placement::Local => "local",
            Placement::Remote => "remote",
            Placement::Octopus => "ioct",
        }
    }

    /// All three configurations.
    pub fn all() -> [Placement; 3] {
        [Placement::Local, Placement::Remote, Placement::Octopus]
    }
}

/// Whether Data Direct I/O is enabled (Figure 9's `nd` suffix = disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdioMode {
    /// DDIO on (hardware default).
    On,
    /// DDIO disabled in hardware on both machines (§5.1.2's `llnd`).
    Off,
}

/// Tunables for machine assembly beyond placement.
#[derive(Debug, Clone, Copy)]
pub struct BuildOpts {
    /// DDIO mode on both hosts.
    pub ddio: DdioMode,
    /// Disable interrupt moderation (latency experiments, §5.1.2: "To
    /// minimize latency, we disable adaptive interrupt coalescing").
    pub coalescing_off: bool,
    /// §2.4 ablation: server rings allocated device-local.
    pub server_rings_device_local: bool,
}

impl Default for BuildOpts {
    fn default() -> Self {
        BuildOpts {
            ddio: DdioMode::On,
            coalescing_off: false,
            server_rings_device_local: false,
        }
    }
}

/// The server host configuration (Broadwell, Linux 4.14 cost model).
pub fn server_host_config(p: Placement, opts: BuildOpts) -> HostConfig {
    HostConfig {
        costs: CpuCosts::broadwell_linux414(),
        driver: p.driver(),
        rings_device_local: opts.server_rings_device_local,
        // Linux auto-tunes tcp_wmem up to 16 MB on 100 GbE; enough to ride
        // out completion latency without idling the sender.
        sndbuf_bytes: 16 << 20,
        tx_bufs_per_node: 512,
        // Pool sized to the ring so bursty multi-connection workloads
        // (memcached SETs) never starve posted buffers.
        rx_buffers_per_queue: 1024,
        ..HostConfig::default()
    }
}

/// The client host configuration.
///
/// The client machine runs nothing but traffic generation and uses GRO
/// (on by default in its kernel), so its effective per-packet and copy
/// costs are far lower than the instrumented server's; it must never be
/// the bottleneck (§5: "The client-side of the workload uses the socket
/// local to its NIC and so incurs no NU(D)MA effects").
pub fn client_host_config() -> HostConfig {
    let base = CpuCosts::broadwell_linux414();
    HostConfig {
        costs: CpuCosts {
            // GRO aggregates ~45 MTU segments per stack traversal, so the
            // effective per-packet protocol cost collapses.
            per_pkt_stack: base.per_pkt_stack / 10,
            per_msg_stack: base.per_msg_stack / 2,
            per_desc: base.per_desc / 2,
            per_tx_completion: base.per_tx_completion / 2,
            memcpy_bytes_per_sec: 40_000_000_000,
            ..base
        },
        driver: DriverModel::Standard,
        // Plenty of Rx buffering: the traffic generator must absorb full
        // TSO bursts without drops.
        rx_buffers_per_queue: 4096,
        ..HostConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_cores_and_drivers() {
        assert_eq!(Placement::Local.app_core(), 0);
        assert_eq!(Placement::Remote.app_core(), 14);
        assert_eq!(Placement::Octopus.app_core(), 14);
        assert_eq!(Placement::Local.driver(), DriverModel::Standard);
        assert_eq!(Placement::Octopus.driver(), DriverModel::OctoTeam);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Placement::Octopus.label(), "ioct");
        assert_eq!(Placement::Remote.label(), "remote");
    }

    #[test]
    fn client_is_cheaper_than_server() {
        let s = server_host_config(Placement::Local, BuildOpts::default());
        let c = client_host_config();
        assert!(c.costs.per_pkt_stack < s.costs.per_pkt_stack);
        assert!(c.costs.memcpy_bytes_per_sec > s.costs.memcpy_bytes_per_sec);
    }
}
