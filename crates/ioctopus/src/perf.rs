//! Self-profiling counters for the experiment runners.
//!
//! Every runner reports how many simulation events (or equivalent work
//! units) it dispatched; the bench harnesses read the totals alongside
//! wall-clock time to print an events/second figure and to emit the
//! machine-readable perf baseline (`BENCH_2.json`).
//!
//! Storage lives in the `telemetry` crate's process-wide metrics registry
//! (under the well-known `sim.*` labels), so the human bench footer, the
//! baseline JSON, and any other registry consumer all read the *same*
//! cells — this module is a compatibility shim that keeps the established
//! `note_*`/`take_*` API for the runners. The cells are relaxed atomics:
//! cheap enough to bump once per *run* (not per event), safe under the
//! parallel sweep.

use telemetry::registry::{run_counter, AUDITS, EVENTS, FENCED, RECONFIGS};

/// Credits `n` simulation events to the process-wide counter. Runners call
/// this once per simulation with their event loop's final count.
pub fn note_events(n: u64) {
    run_counter(EVENTS).add(n);
}

/// Total events credited since the process started (or since the last
/// [`take_events`]).
pub fn events() -> u64 {
    run_counter(EVENTS).get()
}

/// Reads and resets the counter; returns the count at the moment of reset.
/// Harnesses call this around each figure to attribute events per figure.
pub fn take_events() -> u64 {
    run_counter(EVENTS).take()
}

/// Credits `n` invariant checks (individual [`simcore::Audit`] predicate
/// evaluations) to the process-wide counter, so bench footers can report
/// audit throughput alongside event throughput.
pub fn note_audits(n: u64) {
    run_counter(AUDITS).add(n);
}

/// Total invariant checks credited since the process started (or since the
/// last [`take_audits`]).
pub fn audits() -> u64 {
    run_counter(AUDITS).get()
}

/// Reads and resets the invariant-check counter.
pub fn take_audits() -> u64 {
    run_counter(AUDITS).take()
}

/// Credits `n` epoch-fenced completions/interrupts (stale deliveries from a
/// surprise-removed device, counted and discarded). Runners call this once
/// per simulation from the host's robustness counters.
pub fn note_fenced(n: u64) {
    run_counter(FENCED).add(n);
}

/// Total fenced deliveries credited since the process started (or since the
/// last [`take_fenced`]).
pub fn fenced() -> u64 {
    run_counter(FENCED).get()
}

/// Reads and resets the fenced-delivery counter.
pub fn take_fenced() -> u64 {
    run_counter(FENCED).take()
}

/// Credits `n` completed quiesce/drain/rebind reconfiguration sequences
/// (hotplug transitions in either direction).
pub fn note_reconfigs(n: u64) {
    run_counter(RECONFIGS).add(n);
}

/// Total reconfigurations credited since the process started (or since the
/// last [`take_reconfigs`]).
pub fn reconfigs() -> u64 {
    run_counter(RECONFIGS).get()
}

/// Reads and resets the reconfiguration counter.
pub fn take_reconfigs() -> u64 {
    run_counter(RECONFIGS).take()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_take_roundtrip() {
        // The counter is process-global; use take() to isolate this test's
        // contribution from any doctest neighbours.
        let _ = take_events();
        note_events(5);
        note_events(7);
        assert!(events() >= 12);
        let got = take_events();
        assert!(got >= 12);
    }

    #[test]
    fn audit_counter_roundtrip() {
        let _ = take_audits();
        note_audits(9);
        assert!(audits() >= 9);
        assert!(take_audits() >= 9);
    }

    #[test]
    fn reconfig_counters_roundtrip() {
        let _ = take_fenced();
        let _ = take_reconfigs();
        note_fenced(3);
        note_reconfigs(2);
        assert!(fenced() >= 3);
        assert!(reconfigs() >= 2);
        assert!(take_fenced() >= 3);
        assert!(take_reconfigs() >= 2);
    }

    #[test]
    fn shares_cells_with_registry_run_stats() {
        // The shim and telemetry::registry::take_run_stats drain the SAME
        // storage: crediting through the shim must be visible to a
        // registry drain.
        let _ = telemetry::registry::take_run_stats();
        note_events(11);
        note_audits(4);
        let stats = telemetry::registry::take_run_stats();
        assert!(stats.events >= 11);
        assert!(stats.audits >= 4);
    }
}
