//! Parallel fan-out of independent simulation points.
//!
//! Every figure of the evaluation sweeps a parameter grid (message sizes ×
//! placements, flow counts × placements, …) where each point is a complete,
//! self-contained simulation run. Points share no mutable state, every run
//! is deterministic, and results are returned in **input order** — so a
//! parallel sweep is bit-for-bit identical to the serial loop it replaces
//! (the `parallel_sweep` integration test enforces this).
//!
//! Workers come from [`simcore::pool`]; `IOCTOPUS_THREADS=1` forces the
//! serial path, `IOCTOPUS_THREADS=N` pins the pool size, and the default is
//! the machine's available parallelism.
//!
//! # Example
//! ```
//! use ioctopus::config::Placement;
//! use ioctopus::experiments::tcp_stream;
//! use ioctopus::sweep;
//!
//! let points: Vec<u64> = vec![64, 256, 1024];
//! let results = sweep::sweep(points, |msg| {
//!     tcp_stream::run_rx(Placement::Octopus, msg, 2)
//! });
//! assert_eq!(results.len(), 3);
//! ```

/// Runs `f` over every point on the worker pool, returning results in input
/// order. See the module docs for the determinism argument.
pub fn sweep<T, R, F>(points: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    simcore::pool::scoped_map(points, f)
}

/// The serial reference: same signature as [`sweep`], plain `map`. Used by
/// the differential test and available to harnesses that want a guaranteed
/// single-threaded run without touching the environment.
pub fn sweep_serial<T, R, F>(points: Vec<T>, f: F) -> Vec<R>
where
    F: Fn(T) -> R,
{
    points.into_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_on_plain_function() {
        let pts: Vec<u64> = (0..64).collect();
        let serial = sweep_serial(pts.clone(), |x| x.wrapping_mul(2654435761));
        let par = sweep(pts, |x| x.wrapping_mul(2654435761));
        assert_eq!(serial, par);
    }
}
