//! Figure 14: per-PF throughput across a thread migration.
//!
//! "We run the TCP Rx netperf workload (64 KB buffers) and migrate the
//! process to the other socket after approximately 4.5 seconds using the
//! sched_setaffinity system call. Throughout the experiment, we sample the
//! throughput of the NIC's two PFs every 50 msec … When the NIC acts as an
//! octoNIC … traffic smoothly moves to the PF local to the process. (We
//! observe no lost or out-of-order packets during the test.) In contrast,
//! with the NIC's standard firmware and driver, the process keeps using the
//! same PF after migrating, resulting in a throughput drop from
//! ioct/local-level to remote-level." (§5.3)
//!
//! Simulated time is scaled 1000×: the paper's 10 s / 4.5 s / 50 ms become
//! 10 ms / 4.5 ms / 50 µs — rates are stationary, so only the axis scale
//! changes.

use kernel::NetdevId;
use simcore::{Dur, Time};

use crate::config::{BuildOpts, Placement};
use crate::experiments::pf_rates;
use crate::netloop::{make_rx_stream, App, NetLoop};
use crate::results::{MigrationResult, PfSample};
use crate::system::build_duplex;

/// Total simulated duration (paper: 10 s).
pub const TOTAL: Dur = Dur::from_ms(10);
/// Migration instant (paper: ~4.5 s).
pub const MIGRATE_AT: Dur = Dur::from_us(4_500);
/// Sampling interval (paper: 50 ms).
pub const SAMPLE_EVERY: Dur = Dur::from_us(50);

/// Runs the migration experiment. `octo = false` uses the standard
/// firmware/driver (the "ethNIC" panel).
pub fn run(octo: bool) -> MigrationResult {
    // The workload starts local to PF0 (core 0) and migrates to core 14.
    let p = if octo {
        Placement::Octopus
    } else {
        Placement::Local
    };
    let mut duplex = build_duplex(p, BuildOpts::default());
    let app = make_rx_stream(&mut duplex, 0, 0, NetdevId(0), 65536, 512 * 1024, 4242);
    let thread = app.server_thread;
    let sock = app.server_sock;
    let mut nl = NetLoop::new(duplex);
    let _ = nl.add_app(App::Rx(app));
    nl.enable_sampling(SAMPLE_EVERY);
    nl.schedule_migration(Time::ZERO + MIGRATE_AT, thread, 14);
    nl.start_apps(Time::ZERO);
    nl.run(Time::ZERO + TOTAL);
    crate::perf::note_events(nl.events_processed());

    MigrationResult {
        config: if octo { "octoNIC" } else { "ethNIC" }.to_string(),
        // Present cumulative samples as per-interval rates on the paper's
        // 0-10 s axis.
        samples: pf_rates(&nl.samples),
        ooo_packets: nl.duplex.server.ooo_count(sock),
        dropped: nl.duplex.server.nic.rx_dropped(),
    }
}

/// Mean PF throughputs `(pf0, pf1)` over samples with `t` in `[a_ms, b_ms)`.
pub fn mean_rates(r: &MigrationResult, a_ms: f64, b_ms: f64) -> (f64, f64) {
    let sel: Vec<&PfSample> = r
        .samples
        .iter()
        .filter(|s| s.t_secs >= a_ms && s.t_secs < b_ms)
        .collect();
    if sel.is_empty() {
        return (0.0, 0.0);
    }
    let n = sel.len() as f64;
    (
        sel.iter().map(|s| s.pf0_gbps).sum::<f64>() / n,
        sel.iter().map(|s| s.pf1_gbps).sum::<f64>() / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14a_octonic_traffic_follows_the_thread() {
        let r = run(true);
        let (pf0_before, pf1_before) = mean_rates(&r, 1.0, 4.0);
        let (pf0_after, pf1_after) = mean_rates(&r, 6.0, 9.5);
        assert!(
            pf0_before > 5.0,
            "PF0 carries traffic before: {pf0_before:.1}"
        );
        assert!(pf1_before < 1.0, "PF1 idle before: {pf1_before:.1}");
        assert!(pf1_after > 5.0, "PF1 carries traffic after: {pf1_after:.1}");
        assert!(pf0_after < 1.0, "PF0 idle after: {pf0_after:.1}");
        // Throughput level preserved (ioct/local on both sides of the move).
        assert!(
            (pf1_after / pf0_before) > 0.85,
            "no throughput loss: {pf0_before:.1} -> {pf1_after:.1}"
        );
    }

    #[test]
    fn fig14a_no_loss_or_reordering() {
        let r = run(true);
        assert_eq!(r.ooo_packets, 0, "no out-of-order packets");
        assert_eq!(r.dropped, 0, "no lost packets");
    }

    #[test]
    fn fig14b_ethnic_sticks_to_pf0_and_drops_to_remote_level() {
        let r = run(false);
        let (pf0_before, _) = mean_rates(&r, 1.0, 4.0);
        let (pf0_after, pf1_after) = mean_rates(&r, 6.0, 9.5);
        assert!(pf1_after < 1.0, "standard firmware cannot move the flow");
        assert!(pf0_after > 1.0, "traffic still flows via PF0");
        let drop = pf0_after / pf0_before;
        assert!(
            (0.5..0.95).contains(&drop),
            "throughput drops to remote level: {pf0_before:.1} -> {pf0_after:.1} ({drop:.2})"
        );
    }
}
