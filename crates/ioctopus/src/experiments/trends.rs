//! Figure 2 (motivation, §2.6): NIC bandwidth vs. what a CPU can consume.
//!
//! "The figure indicates that one NIC is capable of satisfying the needs of
//! multiple CPUs, even in such a demanding scenario." We regenerate the
//! figure's series from the same public data points the paper cites
//! (Ethernet generations, Intel/AMD core counts) and its two per-core-rate
//! assumptions (513 Mb/s measured in clouds; 10 Gb/s optimistic).

/// One year's data point.
#[derive(Debug, Clone, Copy)]
pub struct TrendPoint {
    /// Calendar year.
    pub year: u32,
    /// Single-port NIC full-duplex bandwidth, Gb/s (2× line rate).
    pub nic_single_gbps: f64,
    /// Dual-port NIC full-duplex bandwidth, Gb/s.
    pub nic_dual_gbps: f64,
    /// Highest per-CPU core count shipped that year.
    pub cores: u32,
}

/// The paper's data series (Ethernet generations 10/40/100/200/400 GbE;
/// Intel/AMD top core counts 4→48).
pub fn series() -> Vec<TrendPoint> {
    let mk = |year, line_gbps: f64, cores| TrendPoint {
        year,
        nic_single_gbps: 2.0 * line_gbps,
        nic_dual_gbps: 4.0 * line_gbps,
        cores,
    };
    vec![
        mk(2008, 10.0, 4),
        mk(2010, 40.0, 8),
        mk(2012, 40.0, 10),
        mk(2014, 100.0, 12),
        mk(2016, 100.0, 18),
        mk(2017, 200.0, 24),
        mk(2018, 200.0, 28),
        mk(2019, 400.0, 32),
        mk(2020, 400.0, 48),
    ]
}

/// Cloud-measured per-core TCP rate (§2.6: "an upper bound on the per-core
/// TCP throughput that was reported for Amazon EC2 high-spec instances").
pub const CLOUD_PER_CORE_GBPS: f64 = 0.513;
/// Optimistic bare-metal per-core rate ("an unusually high per-core rate of
/// 10 Gb/s TCP").
pub const OPTIMISTIC_PER_CORE_GBPS: f64 = 10.0;

/// CPU consumption for a point under a per-core assumption.
pub fn cpu_gbps(p: &TrendPoint, per_core: f64) -> f64 {
    p.cores as f64 * per_core
}

/// The headline gaps the figure annotates at the final year: the dual-port
/// NIC over the optimistic CPU line (~3.3×) and the single-port NIC over
/// the cloud-measured CPU line (~32×).
pub fn final_year_gaps() -> (f64, f64) {
    let last = *series().last().expect("non-empty");
    (
        last.nic_dual_gbps / cpu_gbps(&last, OPTIMISTIC_PER_CORE_GBPS),
        last.nic_single_gbps / cpu_gbps(&last, CLOUD_PER_CORE_GBPS),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_nic_exceeds_cloud_cpu_demand_everywhere() {
        for p in series() {
            assert!(
                p.nic_single_gbps > cpu_gbps(&p, CLOUD_PER_CORE_GBPS),
                "year {}: NIC {} vs CPU {}",
                p.year,
                p.nic_single_gbps,
                cpu_gbps(&p, CLOUD_PER_CORE_GBPS)
            );
        }
    }

    #[test]
    fn fig2_headline_gaps_match_annotations() {
        let (optimistic, cloud) = final_year_gaps();
        // Paper labels: ~3.3x and ~32x.
        assert!(
            (2.5..4.5).contains(&optimistic),
            "optimistic gap = {optimistic:.1}"
        );
        assert!((25.0..40.0).contains(&cloud), "cloud gap = {cloud:.1}");
    }

    #[test]
    fn fig2_series_monotone_in_year() {
        let s = series();
        assert!(s.windows(2).all(|w| w[0].year < w[1].year));
        assert!(s.windows(2).all(|w| w[0].cores <= w[1].cores));
    }
}
