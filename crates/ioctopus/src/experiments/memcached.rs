//! Figure 10: memcached throughput and memory bandwidth vs. SET ratio.
//!
//! "We measure the aggregated throughput of a single memcached key-value
//! store accessed by 14 memslap instances running on one client CPU. We use
//! keys and values of 256 bytes and 512 KB … The advantage of ioct/local
//! over remote grows up to 16% with the ratio of SETs because these
//! operations cause TCP Rx traffic that suffers from NUDMA effects."
//! (§5.1.3)

use kernel::NetdevId;
use simcore::Time;

use crate::config::{BuildOpts, Placement};
use crate::netloop::{make_kv, App, NetLoop};
use crate::results::ThroughputResult;
use crate::system::build_duplex;

use super::{gbps, Window};

/// Number of memslap client instances (one per client core).
pub const CLIENTS: usize = 14;
/// Server worker cores used by the memcached instance.
pub const SERVER_CORES: usize = 7;
/// Distinct keys: 64 × 512 KB = 32 MB — comparable to the LLC, so the
/// working set partially spills ("The working set here is larger than in
/// the netperf TCP Rx experiments").
pub const KEYS: usize = 64;

/// Runs the memcached workload at the given SET ratio.
pub fn run(p: Placement, set_ratio: f64, sim_ms: u64) -> ThroughputResult {
    let mut duplex = build_duplex(p, BuildOpts::default());
    let base_core = p.app_core(); // first core of the memcached socket
    let mut nl_apps = Vec::new();
    for c in 0..CLIENTS {
        let server_core = base_core + (c % SERVER_CORES);
        let app = make_kv(
            &mut duplex,
            server_core,
            c,
            NetdevId(0),
            set_ratio,
            KEYS,
            5000 + c as u16,
            0xC0FFEE + c as u64,
        );
        nl_apps.push(app);
    }
    let mut nl = NetLoop::new(duplex);
    let idxs: Vec<usize> = nl_apps
        .into_iter()
        .map(|a| nl.add_app(App::Kv(a)))
        .collect();
    nl.start_apps(Time::ZERO);

    let w = Window::of_ms(sim_ms);
    nl.run(w.warmup);
    nl.duplex.server.mem.reset_counters();
    nl.duplex.server.cores.reset_meters();
    let snapshot = |nl: &NetLoop, idxs: &[usize]| -> (u64, u64) {
        let mut done = 0;
        let mut bytes = 0;
        for &i in idxs {
            if let App::Kv(a) = nl.app(i) {
                done += a.done;
                let s = nl.duplex.server.socket(a.server_sock);
                bytes += s.rx_bytes + s.tx_bytes;
            }
        }
        (done, bytes)
    };
    let (done0, bytes0) = snapshot(&nl, &idxs);
    nl.run(w.end);
    crate::perf::note_events(nl.events_processed());
    let (done1, bytes1) = snapshot(&nl, &idxs);
    let cores = nl.duplex.server.mem.topology().total_cores();
    ThroughputResult {
        config: p.label().to_string(),
        x: set_ratio * 100.0,
        throughput_gbps: gbps(bytes1 - bytes0, w),
        membw_gbps: gbps(nl.duplex.server.mem.counters().total_dram_bytes(), w),
        cpu_cores: nl
            .duplex
            .server
            .cores
            .utilization_of(0..cores, w.warmup, w.end),
        rate_per_sec: (done1 - done0) as f64 / w.secs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_local_beats_remote_and_gap_grows_with_sets() {
        let l0 = run(Placement::Octopus, 0.0, 12);
        let r0 = run(Placement::Remote, 0.0, 12);
        let l100 = run(Placement::Octopus, 1.0, 12);
        let r100 = run(Placement::Remote, 1.0, 12);
        let gain0 = l0.rate_per_sec / r0.rate_per_sec;
        let gain100 = l100.rate_per_sec / r100.rate_per_sec;
        assert!(gain0 > 0.98, "0% SET gain = {gain0:.3}");
        assert!(gain100 > 1.05, "100% SET gain = {gain100:.3} (paper ~1.16)");
        assert!(
            gain100 > gain0,
            "advantage grows with SETs: {gain0:.3} -> {gain100:.3}"
        );
    }

    #[test]
    fn fig10_throughput_in_paper_band() {
        // Paper: ~10-12.5 KT/s at 0% SET.
        let l = run(Placement::Octopus, 0.0, 12);
        assert!(
            l.rate_per_sec > 3_000.0 && l.rate_per_sec < 40_000.0,
            "rate = {:.0}/s",
            l.rate_per_sec
        );
    }

    #[test]
    fn fig10_local_moves_less_memory_per_transaction() {
        // Figure 10's lower panel: ioct/local moves ~0.57-0.75x the memory
        // bytes of remote. The paper's configs run at similar rates; ours
        // differ more, so compare DRAM bytes *per transaction*.
        let l = run(Placement::Octopus, 0.5, 12);
        let r = run(Placement::Remote, 0.5, 12);
        let l_per_op = l.membw_gbps / l.rate_per_sec;
        let r_per_op = r.membw_gbps / r.rate_per_sec;
        assert!(
            l_per_op < r_per_op,
            "local membw/op {l_per_op:.2e} vs remote {r_per_op:.2e}"
        );
    }
}
