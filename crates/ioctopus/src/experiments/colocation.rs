//! Figure 13: co-locating PageRank with I/O workloads.
//!
//! "We use a 16-thread parallel PageRank (PR) benchmark, with 8 threads
//! pinned to each CPU. We measure the effect of dedicating the remaining
//! six cores on each CPU to instances of (1) memcached or (2) netperf TCP
//! Rx benchmarks … The PR run time is 12% higher when netperf is remote
//! than when it is ioct/local. For memcached, the difference is 4%." (§5.2)

use kernel::NetdevId;
use simcore::Time;
use workloads::PageRank;

use crate::config::{BuildOpts, Placement};
use crate::netloop::{make_kv, make_rx_stream, App, NetLoop};
use crate::results::ColocationResult;
use crate::system::build_duplex;

/// Which I/O workload shares the machine with PageRank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// netperf TCP Rx instances (64 KB messages).
    Netperf,
    /// memcached connections.
    Memcached,
}

/// PR workers per socket (cores 0–7 and 14–21).
pub const PR_THREADS_PER_NODE: usize = 8;
/// I/O instances per socket (cores 8–9 and 22–23; enough to keep the wire
/// busy without over-saturating the interconnect in every config).
pub const IO_PER_NODE: usize = 2;

/// The netdev an I/O instance on `core` binds to. Under the standard
/// driver, `remote = true` binds each instance to the netdev whose PF sits
/// on the *other* socket; the octoNIC has a single netdev.
fn netdev_for(p: Placement, core: usize) -> NetdevId {
    let node = usize::from(core >= 14);
    match p {
        Placement::Octopus => NetdevId(0),
        Placement::Local => NetdevId(node),
        Placement::Remote => NetdevId(1 - node),
    }
}

/// Runs Figure 13: returns PR completion time and the aggregate I/O metric
/// (Gb/s for netperf, K transactions/s for memcached).
pub fn run(p: Placement, io: IoKind, pr_chunks: u64, deadline_ms: u64) -> ColocationResult {
    let mut duplex = build_duplex(p, BuildOpts::default());
    let mut app_idxs = Vec::new();
    let io_cores: Vec<usize> = (8..8 + IO_PER_NODE).chain(22..22 + IO_PER_NODE).collect();

    let mut apps = Vec::new();
    for (k, &core) in io_cores.iter().enumerate() {
        let nd = netdev_for(p, core);
        match io {
            IoKind::Netperf => {
                apps.push(App::Rx(make_rx_stream(
                    &mut duplex,
                    core,
                    k % 14,
                    nd,
                    65536,
                    512 * 1024,
                    6000 + k as u16,
                )));
            }
            IoKind::Memcached => {
                apps.push(App::Kv(make_kv(
                    &mut duplex,
                    core,
                    k % 14,
                    nd,
                    0.1,
                    16,
                    6000 + k as u16,
                    0xFEED + k as u64,
                )));
            }
        }
    }
    let pr = PageRank::new(&duplex.server.mem, PR_THREADS_PER_NODE, pr_chunks);
    let mut nl = NetLoop::new(duplex);
    for a in apps {
        app_idxs.push(nl.add_app(a));
    }
    nl.set_pagerank(pr, Time::ZERO);
    nl.start_apps(Time::ZERO);
    nl.run(Time::from_ms(deadline_ms));
    crate::perf::note_events(nl.events_processed());

    let pr_time = nl.pagerank_done.map(|t| t.as_ms()).unwrap_or(f64::INFINITY);
    let secs = nl.now().as_secs();
    let io_metric = match io {
        IoKind::Netperf => {
            let bytes: u64 = app_idxs
                .iter()
                .map(|&i| match nl.app(i) {
                    App::Rx(a) => a.consumed,
                    _ => 0,
                })
                .sum();
            bytes as f64 * 8.0 / 1e9 / secs
        }
        IoKind::Memcached => {
            let done: u64 = app_idxs
                .iter()
                .map(|&i| match nl.app(i) {
                    App::Kv(a) => a.done,
                    _ => 0,
                })
                .sum();
            done as f64 / secs / 1e3
        }
    };
    ColocationResult {
        config: p.label().to_string(),
        pr_time_ms: pr_time,
        io_metric,
    }
}

/// PR running alone (the baseline both bars are implicitly compared to).
pub fn run_pr_alone(pr_chunks: u64) -> f64 {
    let duplex = build_duplex(Placement::Local, BuildOpts::default());
    let mut nl = NetLoop::new(duplex);
    let pr = PageRank::new(&nl.duplex.server.mem, PR_THREADS_PER_NODE, pr_chunks);
    nl.set_pagerank(pr, Time::ZERO);
    nl.run(Time::from_ms(10_000));
    crate::perf::note_events(nl.events_processed());
    nl.pagerank_done.map(|t| t.as_ms()).unwrap_or(f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHUNKS: u64 = 150;

    #[test]
    fn fig13_remote_netperf_slows_pagerank_more() {
        let local = run(Placement::Octopus, IoKind::Netperf, CHUNKS, 200);
        let remote = run(Placement::Remote, IoKind::Netperf, CHUNKS, 200);
        assert!(local.pr_time_ms.is_finite(), "PR finished (local)");
        assert!(remote.pr_time_ms.is_finite(), "PR finished (remote)");
        let slowdown = remote.pr_time_ms / local.pr_time_ms;
        assert!(
            slowdown > 1.02,
            "PR slowdown with remote netperf = {slowdown:.3} (paper ~1.12)"
        );
    }

    #[test]
    fn fig13_colocated_pr_slower_than_alone() {
        let alone = run_pr_alone(CHUNKS);
        let with_io = run(Placement::Octopus, IoKind::Netperf, CHUNKS, 200);
        assert!(
            with_io.pr_time_ms > alone,
            "co-location must slow PR: alone {alone:.2}ms vs {:.2}ms",
            with_io.pr_time_ms
        );
    }

    #[test]
    fn fig13_netperf_keeps_most_throughput_in_both_configs() {
        // The paper reports netperf throughput "comparable" in both
        // configurations (their aggregate was wire-bound). In our model the
        // remote instances additionally suffer the Figure 11 QPI-congestion
        // effect from PageRank's cross-socket traffic, so we assert the
        // weaker invariant: remote keeps a substantial fraction and local
        // never loses. The deviation is documented in EXPERIMENTS.md.
        let local = run(Placement::Octopus, IoKind::Netperf, CHUNKS, 200);
        let remote = run(Placement::Remote, IoKind::Netperf, CHUNKS, 200);
        let ratio = local.io_metric / remote.io_metric;
        assert!(
            (0.9..3.5).contains(&ratio),
            "netperf local/remote = {ratio:.2}"
        );
        assert!(
            remote.io_metric > 10.0,
            "remote still flows: {:.1} Gb/s",
            remote.io_metric
        );
    }
}
