//! Figure 9: netperf TCP_RR latency.
//!
//! "This benchmark measures the latency of sending a TCP message of a
//! certain size from the server machine to the client machine and receiving
//! a response of the same size … To minimize latency, we disable adaptive
//! interrupt coalescing. We compare configurations in which both server and
//! client utilize the NIC local or remote, respectively, to their CPUs
//! (ll / rr). An nd suffix indicates DDIO is disabled." (§5.1.2)

use kernel::NetdevId;
use simcore::Time;

use crate::config::{BuildOpts, DdioMode, Placement};
use crate::netloop::{make_rr, App, NetLoop};
use crate::results::LatencyResult;
use crate::system::build_duplex;

/// Figure 9's configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrConfig {
    /// Both server and client local to their NICs.
    Ll,
    /// Both remote (the NUDMA configuration).
    Rr,
    /// Both local, DDIO disabled in hardware on both sides.
    Llnd,
    /// Server NIC as octoNIC (the paper: identical to `ll`).
    Octo,
}

impl RrConfig {
    /// The label used in the figure.
    pub fn label(self) -> &'static str {
        match self {
            RrConfig::Ll => "ll",
            RrConfig::Rr => "rr",
            RrConfig::Llnd => "llnd",
            RrConfig::Octo => "octo",
        }
    }

    fn placement(self) -> Placement {
        match self {
            RrConfig::Ll | RrConfig::Llnd => Placement::Local,
            RrConfig::Rr => Placement::Remote,
            RrConfig::Octo => Placement::Octopus,
        }
    }

    /// Core the client app pins to: local (node 0, where its NIC lives) or
    /// remote (node 1).
    fn client_core(self) -> usize {
        match self {
            RrConfig::Rr => 14,
            _ => 0,
        }
    }

    fn ddio(self) -> DdioMode {
        match self {
            RrConfig::Llnd => DdioMode::Off,
            _ => DdioMode::On,
        }
    }
}

/// Runs TCP_RR at `msg`-byte messages for `transactions` round trips.
pub fn run(cfg: RrConfig, msg: u64, transactions: usize) -> LatencyResult {
    let p = cfg.placement();
    let mut duplex = build_duplex(
        p,
        BuildOpts {
            ddio: cfg.ddio(),
            coalescing_off: true,
            ..BuildOpts::default()
        },
    );
    let app = make_rr(
        &mut duplex,
        p.app_core(),
        cfg.client_core(),
        NetdevId(0),
        msg,
        transactions + 16,
        4242,
        false,
    );
    let mut nl = NetLoop::new(duplex);
    let i = nl.add_app(App::Rr(app));
    nl.start_apps(Time::ZERO);
    // Generous deadline; RR self-terminates at the transaction target.
    nl.run(Time::from_ms(400));
    crate::perf::note_events(nl.events_processed());
    match nl.app(i) {
        App::Rr(a) => {
            let mut h = a.rtt.clone();
            LatencyResult {
                config: cfg.label().to_string(),
                x: msg as f64,
                mean_us: h.mean().map(|d| d.as_us()).unwrap_or(f64::NAN),
                p90_us: h.percentile(90.0).map(|d| d.as_us()).unwrap_or(f64::NAN),
                p99_us: h.percentile(99.0).map(|d| d.as_us()).unwrap_or(f64::NAN),
                transactions: a.done,
            }
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_rr_slower_than_ll() {
        let ll = run(RrConfig::Ll, 1024, 60);
        let rr = run(RrConfig::Rr, 1024, 60);
        assert!(ll.transactions >= 60, "ll completed {}", ll.transactions);
        assert!(rr.transactions >= 60, "rr completed {}", rr.transactions);
        let ratio = rr.mean_us / ll.mean_us;
        assert!(
            (1.02..1.45).contains(&ratio),
            "rr/ll = {ratio:.3} (paper 1.10-1.25)"
        );
    }

    #[test]
    fn fig9_llnd_between_ll_and_rr() {
        // "even if DDIO worked for remote NICs, IOctopus would still
        // eliminate substantial QPI latency overhead": llnd > ll, and rr is
        // at least as bad as the DDIO loss alone.
        let ll = run(RrConfig::Ll, 4096, 60);
        let llnd = run(RrConfig::Llnd, 4096, 60);
        let rr = run(RrConfig::Rr, 4096, 60);
        assert!(
            llnd.mean_us > ll.mean_us,
            "llnd {} vs ll {}",
            llnd.mean_us,
            ll.mean_us
        );
        assert!(
            rr.mean_us > llnd.mean_us * 0.95,
            "rr {} vs llnd {}",
            rr.mean_us,
            llnd.mean_us
        );
    }

    #[test]
    fn fig9_octo_matches_ll() {
        let ll = run(RrConfig::Ll, 1024, 60);
        let octo = run(RrConfig::Octo, 1024, 60);
        let ratio = octo.mean_us / ll.mean_us;
        assert!((0.9..1.1).contains(&ratio), "octo/ll = {ratio:.3}");
    }

    #[test]
    fn rtt_grows_with_message_size() {
        let small = run(RrConfig::Ll, 64, 40);
        let big = run(RrConfig::Ll, 65536, 40);
        assert!(big.mean_us > small.mean_us * 1.5);
    }
}
