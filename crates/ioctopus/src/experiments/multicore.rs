//! The multi-core throughput experiment of §5.1.1 (described in prose; the
//! paper omits the figures "due to space constraints"):
//!
//! "We evaluate multi-core performance by running a netperf instance on
//! each core of the machine. Having multiple cores driving the workload
//! shifts the bottleneck from the CPU to the network, and both
//! configurations are able to sustain line rate. However, ioct/local incurs
//! memory traffic, unlike the single-core workloads. The reason is that the
//! combined working set of all the cores exceeds the LLC size."

use kernel::NetdevId;
use simcore::Time;

use crate::config::{BuildOpts, Placement};
use crate::netloop::{make_rx_stream, App, NetLoop};
use crate::results::ThroughputResult;
use crate::system::build_duplex;

use super::{gbps, Window};

/// Runs `instances` single-flow netperf Rx instances, one per server core.
///
/// * `Local`: instances on node 0, netdev 0 (PF0) — every flow local.
/// * `Remote`: instances on node 1, netdev 0 — every flow remote.
/// * `Octopus`: instances spread across *both* sockets on the single
///   octoNIC netdev — the configuration multiple devices cannot express
///   (§2.5) and the octoNIC handles natively.
pub fn run_rx(p: Placement, instances: usize, sim_ms: u64) -> ThroughputResult {
    assert!(
        (1..=13).contains(&instances),
        "1..=13 instances (client has 14 cores)"
    );
    let mut duplex = build_duplex(p, BuildOpts::default());
    let mut apps = Vec::new();
    for k in 0..instances {
        let server_core = match p {
            Placement::Local => k,                      // node 0 cores
            Placement::Remote => 14 + k,                // node 1 cores
            Placement::Octopus => (k % 2) * 14 + k / 2, // both sockets
        };
        apps.push(make_rx_stream(
            &mut duplex,
            server_core,
            k, // one client core each
            NetdevId(0),
            65536,
            512 * 1024,
            7000 + k as u16,
        ));
    }
    let mut nl = NetLoop::new(duplex);
    let idxs: Vec<usize> = apps.into_iter().map(|a| nl.add_app(App::Rx(a))).collect();
    nl.start_apps(Time::ZERO);

    let w = Window::of_ms(sim_ms);
    nl.run(w.warmup);
    nl.duplex.server.mem.reset_counters();
    nl.duplex.server.cores.reset_meters();
    let base: u64 = idxs
        .iter()
        .map(|&i| match nl.app(i) {
            App::Rx(a) => a.consumed,
            _ => 0,
        })
        .sum();
    nl.run(w.end);
    crate::perf::note_events(nl.events_processed());
    let consumed: u64 = idxs
        .iter()
        .map(|&i| match nl.app(i) {
            App::Rx(a) => a.consumed,
            _ => 0,
        })
        .sum::<u64>()
        - base;
    let cores = nl.duplex.server.mem.topology().total_cores();
    ThroughputResult {
        config: p.label().to_string(),
        x: instances as f64,
        throughput_gbps: gbps(consumed, w),
        membw_gbps: gbps(nl.duplex.server.mem.counters().total_dram_bytes(), w),
        cpu_cores: nl
            .duplex
            .server
            .cores
            .utilization_of(0..cores, w.warmup, w.end),
        rate_per_sec: consumed as f64 / 65536.0 / w.secs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicore_shifts_bottleneck_off_the_cpu() {
        // Aggregate throughput must far exceed a single core's and the
        // per-instance CPU must drop below saturation (the NIC/PCIe becomes
        // the limit).
        let one = run_rx(Placement::Octopus, 1, 6);
        let many = run_rx(Placement::Octopus, 8, 6);
        assert!(
            many.throughput_gbps > 2.0 * one.throughput_gbps,
            "8 instances {:.1} vs 1 instance {:.1}",
            many.throughput_gbps,
            one.throughput_gbps
        );
        let per_core = many.cpu_cores / 8.0;
        assert!(
            per_core < 0.95,
            "per-instance cpu = {per_core:.2} (network-bound)"
        );
    }

    #[test]
    fn multicore_local_incurs_memory_traffic() {
        // "ioct/local incurs memory traffic, unlike the single-core
        // workloads ... the combined working set of all the cores exceeds
        // the LLC size."
        let one = run_rx(Placement::Local, 1, 6);
        let many = run_rx(Placement::Local, 12, 6);
        assert!(one.membw_gbps < 0.1 * one.throughput_gbps.max(1.0));
        assert!(
            many.membw_gbps > one.membw_gbps,
            "12 instances spill the LLC: {:.2} vs {:.2} Gb/s",
            many.membw_gbps,
            one.membw_gbps
        );
    }

    #[test]
    fn multicore_local_saturates_its_pf() {
        // "both configurations are able to sustain line rate" — for a
        // single PF of the bifurcated NIC, line rate is the x8 link
        // (~57 Gb/s payload).
        let local = run_rx(Placement::Local, 13, 6);
        assert!(
            local.throughput_gbps > 45.0,
            "local must saturate its x8 PF: {:.1}",
            local.throughput_gbps
        );
        let remote = run_rx(Placement::Remote, 13, 6);
        let ratio = local.throughput_gbps / remote.throughput_gbps;
        assert!(ratio < 1.55, "multi-core gap bounded: {ratio:.2}");
    }

    #[test]
    fn octopus_aggregates_both_pfs_beyond_single_pf_line_rate() {
        // With instances on both sockets, the octoNIC drives BOTH x8
        // endpoints — throughput no single-PF configuration can reach.
        // (The paper's transparency goal, §3.4, quantified.)
        let octo = run_rx(Placement::Octopus, 8, 6);
        let local = run_rx(Placement::Local, 8, 6);
        assert!(
            octo.throughput_gbps > 70.0 && octo.throughput_gbps > 1.3 * local.throughput_gbps,
            "octo {:.1} vs single-PF local {:.1}",
            octo.throughput_gbps,
            local.throughput_gbps
        );
    }
}
