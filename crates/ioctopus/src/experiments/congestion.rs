//! Figures 11 and 12: I/O co-located with QPI-congesting STREAM pairs.
//!
//! "We measure the effect that QPI load has on single-core TCP Rx
//! throughput (netperf) and 64-byte UDP message latency (using sockperf).
//! To load the QPI, we occupy the other server cores with pairs of the
//! STREAM memory bandwidth benchmark. Both STREAM instances in each pair
//! target memory remote to their CPU, one reading and the other writing."
//! (§5.2)

use kernel::NetdevId;
use memsys::NodeId;
use simcore::Time;
use workloads::StreamAntagonist;

use crate::config::{BuildOpts, Placement};
use crate::netloop::{make_rr, make_rx_stream, App, NetLoop};
use crate::results::{LatencyResult, ThroughputResult};
use crate::system::build_duplex;

use super::{gbps, Window};

/// Installs `pairs` STREAM pairs, split across both sockets, skipping the
/// netperf/sockperf cores (0 and 14).
fn add_pairs(nl: &mut NetLoop, pairs: usize) {
    for i in 0..pairs {
        let reader_core = 1 + i; // node 0 cores 1..
        let writer_core = 15 + i; // node 1 cores 15..
        assert!(reader_core < 14 && writer_core < 28, "too many pairs");
        let (r, _) = StreamAntagonist::pair(reader_core, reader_core, NodeId(1));
        let (_, w) = StreamAntagonist::pair(writer_core, writer_core, NodeId(0));
        nl.add_antagonist(r, Time::ZERO);
        nl.add_antagonist(w, Time::ZERO);
    }
}

/// Figure 11: single-core TCP Rx throughput under `pairs` STREAM pairs.
pub fn run_fig11(p: Placement, pairs: usize, sim_ms: u64) -> ThroughputResult {
    let mut duplex = build_duplex(p, BuildOpts::default());
    let app = make_rx_stream(
        &mut duplex,
        p.app_core(),
        0,
        NetdevId(0),
        65536,
        512 * 1024,
        4242,
    );
    let mut nl = NetLoop::new(duplex);
    let i = nl.add_app(App::Rx(app));
    add_pairs(&mut nl, pairs);
    nl.start_apps(Time::ZERO);

    let w = Window::of_ms(sim_ms);
    nl.run(w.warmup);
    nl.duplex.server.mem.reset_counters();
    nl.duplex.server.cores.reset_meters();
    let base = match nl.app(i) {
        App::Rx(a) => a.consumed,
        _ => unreachable!(),
    };
    nl.run(w.end);
    crate::perf::note_events(nl.events_processed());
    let consumed = match nl.app(i) {
        App::Rx(a) => a.consumed - base,
        _ => unreachable!(),
    };
    let cores = nl.duplex.server.mem.topology().total_cores();
    ThroughputResult {
        config: p.label().to_string(),
        x: pairs as f64,
        throughput_gbps: gbps(consumed, w),
        membw_gbps: gbps(nl.duplex.server.mem.counters().total_dram_bytes(), w),
        cpu_cores: nl
            .duplex
            .server
            .cores
            .utilization_of(0..cores, w.warmup, w.end),
        rate_per_sec: consumed as f64 / 65536.0 / w.secs(),
    }
}

/// Figure 12: 64-byte UDP ping-pong latency under `pairs` STREAM pairs.
pub fn run_fig12(p: Placement, pairs: usize, transactions: usize) -> LatencyResult {
    let mut duplex = build_duplex(
        p,
        BuildOpts {
            coalescing_off: true,
            ..BuildOpts::default()
        },
    );
    let app = make_rr(
        &mut duplex,
        p.app_core(),
        0,
        NetdevId(0),
        64,
        transactions + 16,
        4242,
        true,
    );
    let mut nl = NetLoop::new(duplex);
    let i = nl.add_app(App::Rr(app));
    add_pairs(&mut nl, pairs);
    nl.start_apps(Time::ZERO);
    nl.run(Time::from_ms(400));
    crate::perf::note_events(nl.events_processed());
    match nl.app(i) {
        App::Rr(a) => {
            let mut h = a.rtt.clone();
            LatencyResult {
                config: p.label().to_string(),
                x: pairs as f64,
                mean_us: h.mean().map(|d| d.as_us()).unwrap_or(f64::NAN),
                p90_us: h.percentile(90.0).map(|d| d.as_us()).unwrap_or(f64::NAN),
                p99_us: h.percentile(99.0).map(|d| d.as_us()).unwrap_or(f64::NAN),
                transactions: a.done,
            }
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_congestion_craters_remote_not_local() {
        let local = run_fig11(Placement::Octopus, 4, 10);
        let remote = run_fig11(Placement::Remote, 4, 10);
        let ratio = local.throughput_gbps / remote.throughput_gbps;
        assert!(
            ratio > 1.5,
            "ioct/remote under 4 STREAM pairs = {ratio:.2} (paper 1.82-2.67)"
        );
    }

    #[test]
    fn fig11_remote_degrades_with_pairs() {
        let r1 = run_fig11(Placement::Remote, 1, 10);
        let r6 = run_fig11(Placement::Remote, 6, 10);
        assert!(
            r6.throughput_gbps < r1.throughput_gbps,
            "remote under 6 pairs ({:.1}) must be below 1 pair ({:.1})",
            r6.throughput_gbps,
            r1.throughput_gbps
        );
    }

    #[test]
    fn fig12_remote_latency_grows_with_pairs() {
        let l = run_fig12(Placement::Octopus, 4, 50);
        let r = run_fig12(Placement::Remote, 4, 50);
        assert!(l.transactions >= 50 && r.transactions >= 50);
        assert!(
            l.mean_us < r.mean_us,
            "ioct {:.1}us vs remote {:.1}us (paper: 10-22% lower)",
            l.mean_us,
            r.mean_us
        );
        // Local latency should be roughly flat in the antagonist count.
        let l0 = run_fig12(Placement::Octopus, 1, 50);
        assert!(
            l.mean_us < l0.mean_us * 1.35,
            "ioct latency nearly flat: {:.1} -> {:.1}",
            l0.mean_us,
            l.mean_us
        );
    }
}
